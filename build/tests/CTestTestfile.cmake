# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(assembler_edge_test "/root/repo/build/tests/assembler_edge_test")
set_tests_properties(assembler_edge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cache_test "/root/repo/build/tests/cache_test")
set_tests_properties(cache_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_basic_test "/root/repo/build/tests/core_basic_test")
set_tests_properties(core_basic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_components_test "/root/repo/build/tests/core_components_test")
set_tests_properties(core_components_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(doppelganger_test "/root/repo/build/tests/doppelganger_test")
set_tests_properties(doppelganger_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(functional_test "/root/repo/build/tests/functional_test")
set_tests_properties(functional_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(policy_test "/root/repo/build/tests/policy_test")
set_tests_properties(policy_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(predictor_test "/root/repo/build/tests/predictor_test")
set_tests_properties(predictor_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(random_program_test "/root/repo/build/tests/random_program_test")
set_tests_properties(random_program_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(security_leak_test "/root/repo/build/tests/security_leak_test")
set_tests_properties(security_leak_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(simulator_test "/root/repo/build/tests/simulator_test")
set_tests_properties(simulator_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stlf_memorder_test "/root/repo/build/tests/stlf_memorder_test")
set_tests_properties(stlf_memorder_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;7;add_test;/root/repo/tests/CMakeLists.txt;0;")
