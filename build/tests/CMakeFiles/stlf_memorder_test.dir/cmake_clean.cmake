file(REMOVE_RECURSE
  "CMakeFiles/stlf_memorder_test.dir/stlf_memorder_test.cc.o"
  "CMakeFiles/stlf_memorder_test.dir/stlf_memorder_test.cc.o.d"
  "stlf_memorder_test"
  "stlf_memorder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stlf_memorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
