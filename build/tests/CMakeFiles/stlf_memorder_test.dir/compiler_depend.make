# Empty compiler generated dependencies file for stlf_memorder_test.
# This may be replaced when dependencies are built.
