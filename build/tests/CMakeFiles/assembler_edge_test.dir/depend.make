# Empty dependencies file for assembler_edge_test.
# This may be replaced when dependencies are built.
