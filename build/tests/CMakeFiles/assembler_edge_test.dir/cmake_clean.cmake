file(REMOVE_RECURSE
  "CMakeFiles/assembler_edge_test.dir/assembler_edge_test.cc.o"
  "CMakeFiles/assembler_edge_test.dir/assembler_edge_test.cc.o.d"
  "assembler_edge_test"
  "assembler_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assembler_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
