file(REMOVE_RECURSE
  "CMakeFiles/doppelganger_test.dir/doppelganger_test.cc.o"
  "CMakeFiles/doppelganger_test.dir/doppelganger_test.cc.o.d"
  "doppelganger_test"
  "doppelganger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doppelganger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
