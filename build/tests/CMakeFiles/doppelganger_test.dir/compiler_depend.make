# Empty compiler generated dependencies file for doppelganger_test.
# This may be replaced when dependencies are built.
