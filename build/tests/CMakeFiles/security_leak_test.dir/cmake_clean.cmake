file(REMOVE_RECURSE
  "CMakeFiles/security_leak_test.dir/security_leak_test.cc.o"
  "CMakeFiles/security_leak_test.dir/security_leak_test.cc.o.d"
  "security_leak_test"
  "security_leak_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_leak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
