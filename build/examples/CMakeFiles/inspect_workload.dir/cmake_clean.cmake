file(REMOVE_RECURSE
  "CMakeFiles/inspect_workload.dir/inspect_workload.cpp.o"
  "CMakeFiles/inspect_workload.dir/inspect_workload.cpp.o.d"
  "inspect_workload"
  "inspect_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
