file(REMOVE_RECURSE
  "libdgsim.a"
)
