# Empty compiler generated dependencies file for dgsim.
# This may be replaced when dependencies are built.
