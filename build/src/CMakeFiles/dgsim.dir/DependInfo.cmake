
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cc" "src/CMakeFiles/dgsim.dir/common/config.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/common/config.cc.o.d"
  "/root/repo/src/common/log.cc" "src/CMakeFiles/dgsim.dir/common/log.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/common/log.cc.o.d"
  "/root/repo/src/core/doppelganger.cc" "src/CMakeFiles/dgsim.dir/core/doppelganger.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/core/doppelganger.cc.o.d"
  "/root/repo/src/cpu/core.cc" "src/CMakeFiles/dgsim.dir/cpu/core.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/cpu/core.cc.o.d"
  "/root/repo/src/isa/assembler.cc" "src/CMakeFiles/dgsim.dir/isa/assembler.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/isa/assembler.cc.o.d"
  "/root/repo/src/isa/functional.cc" "src/CMakeFiles/dgsim.dir/isa/functional.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/isa/functional.cc.o.d"
  "/root/repo/src/isa/isa.cc" "src/CMakeFiles/dgsim.dir/isa/isa.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/isa/isa.cc.o.d"
  "/root/repo/src/memory/cache.cc" "src/CMakeFiles/dgsim.dir/memory/cache.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/memory/cache.cc.o.d"
  "/root/repo/src/memory/hierarchy.cc" "src/CMakeFiles/dgsim.dir/memory/hierarchy.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/memory/hierarchy.cc.o.d"
  "/root/repo/src/predictor/branch_predictor.cc" "src/CMakeFiles/dgsim.dir/predictor/branch_predictor.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/predictor/branch_predictor.cc.o.d"
  "/root/repo/src/predictor/stride_table.cc" "src/CMakeFiles/dgsim.dir/predictor/stride_table.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/predictor/stride_table.cc.o.d"
  "/root/repo/src/secure/policy.cc" "src/CMakeFiles/dgsim.dir/secure/policy.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/secure/policy.cc.o.d"
  "/root/repo/src/security/gadgets.cc" "src/CMakeFiles/dgsim.dir/security/gadgets.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/security/gadgets.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/dgsim.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/sim/simulator.cc.o.d"
  "/root/repo/src/workloads/generators.cc" "src/CMakeFiles/dgsim.dir/workloads/generators.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/workloads/generators.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/CMakeFiles/dgsim.dir/workloads/suite.cc.o" "gcc" "src/CMakeFiles/dgsim.dir/workloads/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
