# Empty dependencies file for fig1_summary.
# This may be replaced when dependencies are built.
