file(REMOVE_RECURSE
  "../bench/fig1_summary"
  "../bench/fig1_summary.pdb"
  "CMakeFiles/fig1_summary.dir/fig1_summary.cc.o"
  "CMakeFiles/fig1_summary.dir/fig1_summary.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
