# Empty compiler generated dependencies file for fig6_normalized_ipc.
# This may be replaced when dependencies are built.
