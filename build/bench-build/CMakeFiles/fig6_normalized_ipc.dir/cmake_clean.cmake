file(REMOVE_RECURSE
  "../bench/fig6_normalized_ipc"
  "../bench/fig6_normalized_ipc.pdb"
  "CMakeFiles/fig6_normalized_ipc.dir/fig6_normalized_ipc.cc.o"
  "CMakeFiles/fig6_normalized_ipc.dir/fig6_normalized_ipc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_normalized_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
