file(REMOVE_RECURSE
  "../bench/ablation_predictor"
  "../bench/ablation_predictor.pdb"
  "CMakeFiles/ablation_predictor.dir/ablation_predictor.cc.o"
  "CMakeFiles/ablation_predictor.dir/ablation_predictor.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
