# Empty dependencies file for fig7_coverage_accuracy.
# This may be replaced when dependencies are built.
