file(REMOVE_RECURSE
  "../bench/fig7_coverage_accuracy"
  "../bench/fig7_coverage_accuracy.pdb"
  "CMakeFiles/fig7_coverage_accuracy.dir/fig7_coverage_accuracy.cc.o"
  "CMakeFiles/fig7_coverage_accuracy.dir/fig7_coverage_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_coverage_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
