# Empty dependencies file for ablation_dom_branch.
# This may be replaced when dependencies are built.
