file(REMOVE_RECURSE
  "../bench/ablation_dom_branch"
  "../bench/ablation_dom_branch.pdb"
  "CMakeFiles/ablation_dom_branch.dir/ablation_dom_branch.cc.o"
  "CMakeFiles/ablation_dom_branch.dir/ablation_dom_branch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dom_branch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
