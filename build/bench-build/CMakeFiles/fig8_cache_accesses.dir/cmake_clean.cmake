file(REMOVE_RECURSE
  "../bench/fig8_cache_accesses"
  "../bench/fig8_cache_accesses.pdb"
  "CMakeFiles/fig8_cache_accesses.dir/fig8_cache_accesses.cc.o"
  "CMakeFiles/fig8_cache_accesses.dir/fig8_cache_accesses.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_cache_accesses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
