# Empty dependencies file for fig8_cache_accesses.
# This may be replaced when dependencies are built.
