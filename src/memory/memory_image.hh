/**
 * @file
 * Paged word-granular data memory image.
 *
 * This is the architectural data store read/written on every simulated
 * load and store by both the timing core and the lockstep functional
 * oracle, so it is a hot-path structure: reads and writes must be a
 * shift, a bounds check and a direct index — never a hash.
 *
 * Layout: a flat page directory (vector of page pointers) indexed by
 * word-address >> kPageShift. Pages are allocated on first write and
 * hold kPageWords contiguous 8-byte words plus a written-word bitmap
 * (so the footprint/iteration semantics of the old sparse map are
 * preserved exactly). Untouched words read as zero, including reads of
 * arbitrary wrong-path addresses that never allocate anything.
 *
 * Addresses at or beyond kMaxDirectPages pages fall back to a sparse
 * overflow map so a stray committed store to a wild (but architecturally
 * legal) address cannot balloon the directory; in practice the overflow
 * map stays empty.
 *
 * Both the functional oracle and the timing core operate on copies of
 * the program's initial image (copy-on-run), so a single read-only
 * Program can be shared by many concurrent runs.
 */

#ifndef DGSIM_MEMORY_MEMORY_IMAGE_HH
#define DGSIM_MEMORY_MEMORY_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace dgsim
{

/** Paged word-granular data memory image (copy-on-run). */
class MemoryImage
{
  public:
    /// Words per page: 512 words = 4 KiB of data per page.
    static constexpr std::uint64_t kPageShift = 9;
    static constexpr std::uint64_t kPageWords = 1ull << kPageShift;
    static constexpr std::uint64_t kPageMask = kPageWords - 1;
    /// Direct-directory limit: 2^21 pages = 8 GiB of address space.
    static constexpr std::uint64_t kMaxDirectPages = 1ull << 21;

    MemoryImage() = default;
    MemoryImage(const MemoryImage &other);
    MemoryImage &operator=(const MemoryImage &other);
    MemoryImage(MemoryImage &&) noexcept = default;
    MemoryImage &operator=(MemoryImage &&) noexcept = default;

    /** Read the 8-byte word at @p addr (must be word aligned). */
    RegValue
    read(Addr addr) const
    {
        const std::uint64_t word = addr / kWordBytes;
        const std::uint64_t page = word >> kPageShift;
        if (page < pages_.size()) {
            const Page *p = pages_[page].get();
            return p ? p->words[word & kPageMask] : 0;
        }
        return farRead(word);
    }

    /** Write the 8-byte word at @p addr. */
    void
    write(Addr addr, RegValue value)
    {
        const std::uint64_t word = addr / kWordBytes;
        const std::uint64_t page = word >> kPageShift;
        if (page < pages_.size() && pages_[page]) {
            Page &p = *pages_[page];
            const std::uint64_t idx = word & kPageMask;
            std::uint64_t &bits = p.written[idx >> 6];
            const std::uint64_t bit = 1ull << (idx & 63);
            footprint_words_ += (bits & bit) == 0;
            bits |= bit;
            p.words[idx] = value;
            return;
        }
        writeSlow(word, value);
    }

    /** Number of distinct words ever written. */
    std::size_t footprintWords() const { return footprint_words_; }

    /**
     * Materialize every written word as (addr, value), sorted by
     * address. For tests and digests only — not a hot path.
     */
    std::vector<std::pair<Addr, RegValue>> words() const;

    /**
     * FNV-1a over the sorted written-word list (addresses and values,
     * including words written and later overwritten with zero). Two
     * images with the same written set hash equal regardless of how the
     * pages were populated — the checkpoint round-trip invariant.
     */
    std::uint64_t digest() const;

  private:
    struct Page
    {
        std::array<RegValue, kPageWords> words{};
        /// One bit per word: has it ever been written?
        std::array<std::uint64_t, kPageWords / 64> written{};
    };

    RegValue farRead(std::uint64_t word) const;
    void writeSlow(std::uint64_t word, RegValue value);

    std::vector<std::unique_ptr<Page>> pages_;
    /// Words at or beyond the direct directory limit (normally empty).
    std::unordered_map<std::uint64_t, RegValue> far_words_;
    std::size_t footprint_words_ = 0;
};

} // namespace dgsim

#endif // DGSIM_MEMORY_MEMORY_IMAGE_HH
