/**
 * @file
 * A single set-associative cache level with LRU replacement,
 * fill-time tracking, and support for delayed replacement updates
 * (required by Delay-on-Miss).
 */

#ifndef DGSIM_MEMORY_CACHE_HH
#define DGSIM_MEMORY_CACHE_HH

#include <cstdint>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dgsim
{

/** One cache line's tag state. */
struct CacheLine
{
    Addr tag = 0;
    bool valid = false;
    bool dirty = false;
    /** Cycle at which the fill completes (line usable from then on). */
    Cycle readyAt = 0;
    /** LRU stamp: higher = more recently used. */
    std::uint64_t lruStamp = 0;
};

/** Result of a tag lookup. */
struct CacheLookup
{
    bool present = false;   ///< Tag match on a valid line.
    Cycle readyAt = 0;      ///< Fill completion time of the line.
    CacheLine *line = nullptr;
};

/** One exported line of warm tag state (checkpointing). */
struct CacheWarmLine
{
    Addr tag = 0;
    bool dirty = false;
};

/**
 * Exported warm tag-array state: per set, the valid lines ordered
 * LRU-oldest first. Way positions and absolute LRU stamps are
 * deliberately dropped — replacement decisions and the security digest
 * depend only on the set's tag contents and *relative* recency, so the
 * canonical form makes checkpoints independent of the access count
 * that produced them.
 */
struct CacheWarmState
{
    std::vector<std::vector<CacheWarmLine>> sets;
};

/**
 * Tag array of one cache level.
 *
 * Timing is owned by MemoryHierarchy; this class only tracks presence,
 * replacement state and per-level statistics.
 */
class Cache
{
  public:
    Cache(const CacheConfig &config, StatRegistry &stats);

    /**
     * Look up @p line_addr.
     * @param update_lru refresh the replacement stamp on a hit. Pass
     *        false for DoM speculative hits (update deferred to commit)
     *        and for pure probes.
     */
    CacheLookup lookup(Addr line_addr, bool update_lru);

    /** Probe without disturbing any state or statistics. */
    bool probe(Addr line_addr) const;

    /**
     * Install @p line_addr, evicting the LRU victim if needed.
     * @param ready_at fill completion time.
     * @param dirty initial dirty state (write-allocate stores).
     * @return the victim's line address if a dirty line was evicted,
     *         kInvalidAddr otherwise.
     */
    Addr install(Addr line_addr, Cycle ready_at, bool dirty);

    /** Refresh the replacement stamp of @p line_addr if present. */
    void touch(Addr line_addr);

    /** Mark the line dirty if present (stores that hit). */
    void markDirty(Addr line_addr);

    /** Drop @p line_addr if present (coherence invalidation). */
    void invalidate(Addr line_addr);

    /** Mix the full tag-array contents into @p hash (security digest). */
    void hashState(std::uint64_t &hash) const;

    /** Export the tag array in canonical (LRU-ordered) form. */
    CacheWarmState exportWarmState() const;

    /**
     * Replace the tag array with @p state: lines are installed in LRU
     * order with fresh stamps and readyAt = 0 (every fill complete —
     * the handoff invariant). Fatal on geometry mismatch.
     */
    void restoreWarmState(const CacheWarmState &state);

    const CacheConfig &config() const { return config_; }

    // Statistics (shared registry; names are "<name>.<stat>").
    Counter &accesses;
    Counter &hits;
    Counter &misses;
    Counter &mshrMerges;
    Counter &writebacks;

  private:
    unsigned setIndex(Addr line_addr) const
    {
        return static_cast<unsigned>(line_addr % num_sets_);
    }

    const CacheConfig config_;
    unsigned num_sets_;
    std::vector<CacheLine> lines_; ///< num_sets_ * assoc, set-major.
    std::uint64_t lru_clock_ = 0;
};

} // namespace dgsim

#endif // DGSIM_MEMORY_CACHE_HH
