#include "memory/memory_image.hh"

#include <algorithm>

namespace dgsim
{

MemoryImage::MemoryImage(const MemoryImage &other)
    : far_words_(other.far_words_),
      footprint_words_(other.footprint_words_)
{
    pages_.resize(other.pages_.size());
    for (std::size_t i = 0; i < other.pages_.size(); ++i) {
        if (other.pages_[i])
            pages_[i] = std::make_unique<Page>(*other.pages_[i]);
    }
}

MemoryImage &
MemoryImage::operator=(const MemoryImage &other)
{
    if (this != &other) {
        MemoryImage copy(other);
        *this = std::move(copy);
    }
    return *this;
}

RegValue
MemoryImage::farRead(std::uint64_t word) const
{
    if (far_words_.empty())
        return 0;
    auto it = far_words_.find(word);
    return it == far_words_.end() ? 0 : it->second;
}

void
MemoryImage::writeSlow(std::uint64_t word, RegValue value)
{
    const std::uint64_t page = word >> kPageShift;
    if (page >= kMaxDirectPages) {
        footprint_words_ += far_words_.count(word) == 0;
        far_words_[word] = value;
        return;
    }
    if (page >= pages_.size())
        pages_.resize(page + 1);
    pages_[page] = std::make_unique<Page>();
    write(word * kWordBytes, value); // Re-enter the fast path.
}

std::vector<std::pair<Addr, RegValue>>
MemoryImage::words() const
{
    std::vector<std::pair<Addr, RegValue>> out;
    out.reserve(footprint_words_);
    for (std::size_t page = 0; page < pages_.size(); ++page) {
        const Page *p = pages_[page].get();
        if (!p)
            continue;
        for (std::uint64_t idx = 0; idx < kPageWords; ++idx) {
            if (p->written[idx >> 6] & (1ull << (idx & 63))) {
                const Addr addr =
                    ((page << kPageShift) + idx) * kWordBytes;
                out.emplace_back(addr, p->words[idx]);
            }
        }
    }
    // Overflow words all lie beyond every direct page; sort them and
    // append to keep the whole list address-ordered.
    std::vector<std::pair<Addr, RegValue>> far;
    far.reserve(far_words_.size());
    for (const auto &kv : far_words_)
        far.emplace_back(kv.first * kWordBytes, kv.second);
    std::sort(far.begin(), far.end());
    out.insert(out.end(), far.begin(), far.end());
    return out;
}

std::uint64_t
MemoryImage::digest() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](std::uint64_t v) {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (v >> (i * 8)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    };
    for (const auto &[addr, value] : words()) {
        mix(addr);
        mix(value);
    }
    return hash;
}

} // namespace dgsim
