#include "memory/cache.hh"

#include <algorithm>

#include "common/log.hh"

namespace dgsim
{

Cache::Cache(const CacheConfig &config, StatRegistry &stats)
    : accesses(stats.counter(config.name + ".accesses")),
      hits(stats.counter(config.name + ".hits")),
      misses(stats.counter(config.name + ".misses")),
      mshrMerges(stats.counter(config.name + ".mshrMerges")),
      writebacks(stats.counter(config.name + ".writebacks")),
      config_(config),
      num_sets_(config.numSets())
{
    DGSIM_ASSERT(num_sets_ > 0, "cache must have at least one set");
    DGSIM_ASSERT(config.sizeBytes % (config.assoc * config.lineBytes) == 0,
                 "cache size must be a multiple of assoc * line size");
    lines_.resize(static_cast<std::size_t>(num_sets_) * config.assoc);
}

CacheLookup
Cache::lookup(Addr line_addr, bool update_lru)
{
    const unsigned set = setIndex(line_addr);
    CacheLine *base = &lines_[static_cast<std::size_t>(set) * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        CacheLine &line = base[way];
        if (line.valid && line.tag == line_addr) {
            if (update_lru)
                line.lruStamp = ++lru_clock_;
            return CacheLookup{true, line.readyAt, &line};
        }
    }
    return CacheLookup{};
}

bool
Cache::probe(Addr line_addr) const
{
    const unsigned set = setIndex(line_addr);
    const CacheLine *base =
        &lines_[static_cast<std::size_t>(set) * config_.assoc];
    for (unsigned way = 0; way < config_.assoc; ++way) {
        if (base[way].valid && base[way].tag == line_addr)
            return true;
    }
    return false;
}

Addr
Cache::install(Addr line_addr, Cycle ready_at, bool dirty)
{
    const unsigned set = setIndex(line_addr);
    CacheLine *base = &lines_[static_cast<std::size_t>(set) * config_.assoc];

    // Reuse the matching way if the line is already present (re-fill).
    CacheLine *victim = nullptr;
    for (unsigned way = 0; way < config_.assoc; ++way) {
        CacheLine &line = base[way];
        if (line.valid && line.tag == line_addr) {
            line.readyAt = ready_at;
            line.dirty = line.dirty || dirty;
            line.lruStamp = ++lru_clock_;
            return kInvalidAddr;
        }
        if (!line.valid) {
            if (victim == nullptr || victim->valid)
                victim = &line;
        } else if (victim == nullptr ||
                   (victim->valid && line.lruStamp < victim->lruStamp)) {
            victim = &line;
        }
    }

    DGSIM_ASSERT(victim != nullptr, "no victim way found");
    Addr evicted = kInvalidAddr;
    if (victim->valid && victim->dirty) {
        evicted = victim->tag;
        ++writebacks;
    }
    victim->tag = line_addr;
    victim->valid = true;
    victim->dirty = dirty;
    victim->readyAt = ready_at;
    victim->lruStamp = ++lru_clock_;
    return evicted;
}

void
Cache::touch(Addr line_addr)
{
    CacheLookup result = lookup(line_addr, /*update_lru=*/true);
    (void)result;
}

void
Cache::markDirty(Addr line_addr)
{
    CacheLookup result = lookup(line_addr, /*update_lru=*/false);
    if (result.present)
        result.line->dirty = true;
}

void
Cache::invalidate(Addr line_addr)
{
    CacheLookup result = lookup(line_addr, /*update_lru=*/false);
    if (result.present) {
        result.line->valid = false;
        result.line->dirty = false;
    }
}

CacheWarmState
Cache::exportWarmState() const
{
    CacheWarmState state;
    state.sets.resize(num_sets_);
    std::vector<const CacheLine *> valid;
    valid.reserve(config_.assoc);
    for (unsigned set = 0; set < num_sets_; ++set) {
        const CacheLine *base =
            &lines_[static_cast<std::size_t>(set) * config_.assoc];
        valid.clear();
        for (unsigned way = 0; way < config_.assoc; ++way) {
            if (base[way].valid)
                valid.push_back(&base[way]);
        }
        std::sort(valid.begin(), valid.end(),
                  [](const CacheLine *a, const CacheLine *b) {
                      return a->lruStamp < b->lruStamp;
                  });
        auto &lines = state.sets[set];
        lines.reserve(valid.size());
        for (const CacheLine *line : valid)
            lines.push_back(CacheWarmLine{line->tag, line->dirty});
    }
    return state;
}

void
Cache::restoreWarmState(const CacheWarmState &state)
{
    if (state.sets.size() != num_sets_)
        DGSIM_FATAL("checkpoint cache geometry mismatch for '" +
                    config_.name + "': " +
                    std::to_string(state.sets.size()) + " sets in the "
                    "checkpoint vs " + std::to_string(num_sets_) +
                    " configured");
    std::fill(lines_.begin(), lines_.end(), CacheLine{});
    lru_clock_ = 0;
    for (unsigned set = 0; set < num_sets_; ++set) {
        const auto &lines = state.sets[set];
        if (lines.size() > config_.assoc)
            DGSIM_FATAL("checkpoint cache geometry mismatch for '" +
                        config_.name + "': set " + std::to_string(set) +
                        " holds " + std::to_string(lines.size()) +
                        " lines but associativity is " +
                        std::to_string(config_.assoc));
        CacheLine *base =
            &lines_[static_cast<std::size_t>(set) * config_.assoc];
        for (std::size_t way = 0; way < lines.size(); ++way) {
            base[way].tag = lines[way].tag;
            base[way].valid = true;
            base[way].dirty = lines[way].dirty;
            base[way].readyAt = 0;
            base[way].lruStamp = ++lru_clock_;
        }
    }
}

void
Cache::hashState(std::uint64_t &hash) const
{
    // FNV-1a over (index, valid, tag, lru-rank). The fill time (readyAt)
    // is deliberately excluded: the security digest captures the
    // *persistent* microarchitectural state an attacker can probe after
    // the transient window (which lines are present and their
    // replacement order), not transient timing.
    auto mix = [&hash](std::uint64_t v) {
        hash ^= v;
        hash *= 0x100000001b3ULL;
    };
    // Ranks within a set must be hashed relative to each other, not as
    // raw stamps, so that identical cache contents reached through a
    // different number of accesses still hash equal. A line's rank is
    // the number of valid lines in its set with a strictly smaller
    // stamp; sorting the set's stamps once turns the quadratic
    // count-smaller loop into a binary search per way with the same
    // result (ties included).
    std::vector<std::uint64_t> stamps;
    stamps.reserve(config_.assoc);
    for (unsigned set = 0; set < num_sets_; ++set) {
        const CacheLine *base =
            &lines_[static_cast<std::size_t>(set) * config_.assoc];
        stamps.clear();
        for (unsigned way = 0; way < config_.assoc; ++way) {
            if (base[way].valid)
                stamps.push_back(base[way].lruStamp);
        }
        std::sort(stamps.begin(), stamps.end());
        for (unsigned way = 0; way < config_.assoc; ++way) {
            const CacheLine &line = base[way];
            mix(set);
            mix(way);
            mix(line.valid ? 1 : 0);
            mix(line.valid ? line.tag : 0);
            // Rank of this way inside its set by recency.
            unsigned rank = 0;
            if (line.valid) {
                rank = static_cast<unsigned>(
                    std::lower_bound(stamps.begin(), stamps.end(),
                                     line.lruStamp) -
                    stamps.begin());
            }
            mix(rank);
        }
    }
}

} // namespace dgsim
