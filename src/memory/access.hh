/**
 * @file
 * Request/response types exchanged between the core and the memory
 * hierarchy.
 */

#ifndef DGSIM_MEMORY_ACCESS_HH
#define DGSIM_MEMORY_ACCESS_HH

#include "common/types.hh"

namespace dgsim
{

/** Properties of one memory access, as seen by the hierarchy. */
struct MemAccessFlags
{
    bool isWrite = false;
    bool isPrefetch = false;
    /** Access issued on behalf of a doppelganger (predicted address). */
    bool isDoppelganger = false;
    /** The issuing load is still covered by a speculation shadow. */
    bool speculative = false;
    /**
     * Delay-on-Miss semantics apply: a speculative access that misses in
     * the L1 must be rejected without touching lower levels (paper §2.3).
     * Doppelganger accesses never set this — their addresses are
     * secret-independent, so DoM lets them miss (paper §4.6).
     */
    bool domProtected = false;
    /**
     * Suppress the replacement-state update on an L1 hit; the core
     * performs it retroactively at commit (DoM delayed replacement).
     */
    bool delayReplacementUpdate = false;
};

/** What happened to an access. */
enum class AccessStatus
{
    Hit,        ///< Data available at completeAt (L1 hit, incl. merges).
    Miss,       ///< Filled from a lower level; data at completeAt.
    DomDelayed, ///< Rejected by Delay-on-Miss; retry when non-speculative.
    Rejected,   ///< No MSHR available; retry next cycle.
};

/** Timing/result of one access. */
struct AccessOutcome
{
    AccessStatus status = AccessStatus::Rejected;
    /** Cycle at which the data (or write completion) is available. */
    Cycle completeAt = kInvalidCycle;
    /** 1 = L1, 2 = L2, 3 = L3, 4 = DRAM; 0 when not applicable. */
    unsigned serviceLevel = 0;
    /** True if the access found (or merged onto) the line in the L1. */
    bool l1Hit = false;

    bool accepted() const
    {
        return status == AccessStatus::Hit || status == AccessStatus::Miss;
    }
};

} // namespace dgsim

#endif // DGSIM_MEMORY_ACCESS_HH
