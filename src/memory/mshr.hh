/**
 * @file
 * Miss Status Holding Register file: bounds the number of outstanding
 * misses per cache level and merges requests to in-flight lines.
 *
 * Entries are retired lazily: an entry whose fill has completed (its
 * completion cycle is in the past) is reclaimable on the next
 * allocation attempt, so no event machinery is required.
 */

#ifndef DGSIM_MEMORY_MSHR_HH
#define DGSIM_MEMORY_MSHR_HH

#include <unordered_map>

#include "common/types.hh"

namespace dgsim
{

/** MSHR file of one cache level. */
class MshrFile
{
  public:
    explicit MshrFile(unsigned capacity) : capacity_(capacity) {}

    /**
     * Look for an in-flight miss on @p line_addr.
     * @return the fill completion cycle, or kInvalidCycle if none.
     */
    Cycle
    findInFlight(Addr line_addr) const
    {
        auto it = entries_.find(line_addr);
        return it == entries_.end() ? kInvalidCycle : it->second;
    }

    /**
     * Try to allocate an entry for @p line_addr completing at @p fill_at.
     * Entries whose fills completed before @p now are reclaimed first.
     * @return true on success, false if the file is full.
     */
    bool
    allocate(Addr line_addr, Cycle now, Cycle fill_at)
    {
        reclaim(now);
        if (entries_.size() >= capacity_)
            return false;
        entries_[line_addr] = fill_at;
        return true;
    }

    /** True if no entry can be allocated at @p now. */
    bool
    full(Cycle now)
    {
        reclaim(now);
        return entries_.size() >= capacity_;
    }

    /** Number of entries still outstanding at @p now. */
    unsigned
    outstanding(Cycle now)
    {
        reclaim(now);
        return static_cast<unsigned>(entries_.size());
    }

    /**
     * Earliest fill completion still in the future at @p now, or
     * kInvalidCycle if nothing is outstanding. This is the first cycle
     * at which an entry becomes reclaimable again, i.e. the first
     * cycle a previously Rejected access can possibly succeed — the
     * MSHR horizon of the core's idle-skip layer. Const on purpose:
     * horizon queries must not reclaim (state-neutral by contract,
     * DESIGN.md §5d).
     */
    Cycle
    earliestCompletion(Cycle now) const
    {
        Cycle earliest = kInvalidCycle;
        for (const auto &entry : entries_) {
            if (entry.second > now && entry.second < earliest)
                earliest = entry.second;
        }
        return earliest;
    }

    unsigned capacity() const { return capacity_; }

    /** Drop everything (used when resetting between runs). */
    void clear() { entries_.clear(); }

  private:
    void
    reclaim(Cycle now)
    {
        for (auto it = entries_.begin(); it != entries_.end();) {
            if (it->second <= now)
                it = entries_.erase(it);
            else
                ++it;
        }
    }

    unsigned capacity_;
    std::unordered_map<Addr, Cycle> entries_;
};

} // namespace dgsim

#endif // DGSIM_MEMORY_MSHR_HH
