#include "memory/hierarchy.hh"

#include "common/log.hh"

namespace dgsim
{

MemoryHierarchy::MemoryHierarchy(const SimConfig &config, StatRegistry &stats)
    : config_(config),
      line_bytes_(config.l1d.lineBytes),
      l1_(std::make_unique<Cache>(config.l1d, stats)),
      l2_(std::make_unique<Cache>(config.l2, stats)),
      l3_(std::make_unique<Cache>(config.l3, stats)),
      l1Mshrs_(config.l1d.numMshrs),
      dramAccesses_(stats.counter("dram.accesses")),
      domDelayedAccesses_(stats.counter("mem.domDelayed")),
      missLatencyDist_(stats.histogram("mem.missLatencyDist", 8, 32)),
      mshrOccupancyDist_(stats.histogram("mem.mshrOccupancyDist", 1, 32))
{
    DGSIM_ASSERT(config.l1d.lineBytes == config.l2.lineBytes &&
                 config.l2.lineBytes == config.l3.lineBytes,
                 "all levels must share one line size");
}

Cycle
MemoryHierarchy::reserveDramSlot(Cycle earliest)
{
    Cycle start = earliest;
    if (start < next_dram_slot_)
        start = next_dram_slot_;
    next_dram_slot_ = start + config_.dramIssueInterval;
    return start;
}

AccessOutcome
MemoryHierarchy::access(Addr byte_addr, Cycle now, const MemAccessFlags &flags)
{
    const Addr line = lineAddr(byte_addr);
    const bool update_lru = !flags.delayReplacementUpdate;
    AccessOutcome outcome;

    // ---- L1 ----------------------------------------------------------
    CacheLookup l1_hit = l1_->lookup(line, update_lru);
    if (l1_hit.present) {
        ++l1_->accesses;
        if (l1_hit.readyAt > now && flags.domProtected && flags.speculative) {
            // The line is still being filled: for Delay-on-Miss this is
            // an L1 miss like any other, so the shadowed load must wait
            // until it is non-speculative (paper §2.3) rather than
            // merging onto the in-flight fill.
            ++l1_->misses;
            ++domDelayedAccesses_;
            outcome.status = AccessStatus::DomDelayed;
            return outcome;
        }
        if (flags.isWrite)
            l1_hit.line->dirty = true;
        if (l1_hit.readyAt <= now) {
            // Plain L1 hit.
            ++l1_->hits;
            outcome.status = AccessStatus::Hit;
            outcome.completeAt = now + config_.l1d.latency;
            outcome.serviceLevel = 1;
            outcome.l1Hit = true;
            return outcome;
        }
        // Line is in flight: merge onto the outstanding fill. No new
        // request leaves the L1, so lower levels see no extra access.
        ++l1_->mshrMerges;
        ++l1_->misses;
        outcome.status = AccessStatus::Miss;
        outcome.completeAt = l1_hit.readyAt;
        outcome.serviceLevel = 1;
        outcome.l1Hit = true;
        return outcome;
    }

    // ---- L1 miss -----------------------------------------------------
    if (flags.domProtected && flags.speculative) {
        // Delay-on-Miss: a shadowed access may not change state below
        // (or in) the L1. The lookup above mutated nothing on the miss
        // path, so rejecting here leaves no microarchitectural residue.
        ++l1_->accesses;
        ++l1_->misses;
        ++domDelayedAccesses_;
        outcome.status = AccessStatus::DomDelayed;
        return outcome;
    }
    if (l1Mshrs_.full(now)) {
        // Structural reject: the core retries, so nothing is counted
        // here to avoid double-counting the eventual real access.
        outcome.status = AccessStatus::Rejected;
        return outcome;
    }
    ++l1_->accesses;
    ++l1_->misses;

    // ---- L2 ----------------------------------------------------------
    Cycle complete;
    unsigned service_level;
    ++l2_->accesses;
    CacheLookup l2_hit = l2_->lookup(line, true);
    if (l2_hit.present) {
        ++l2_->hits;
        complete = std::max(now + config_.l2.latency, l2_hit.readyAt);
        service_level = 2;
    } else {
        ++l2_->misses;
        // ---- L3 -----------------------------------------------------
        ++l3_->accesses;
        CacheLookup l3_hit = l3_->lookup(line, true);
        if (l3_hit.present) {
            ++l3_->hits;
            complete = std::max(now + config_.l3.latency, l3_hit.readyAt);
            service_level = 3;
        } else {
            ++l3_->misses;
            // ---- DRAM -----------------------------------------------
            ++dramAccesses_;
            const Cycle dram_start =
                reserveDramSlot(now + config_.l3.latency);
            complete = dram_start + config_.dramLatency;
            service_level = 4;
            l3_->install(line, complete, false);
        }
        l2_->install(line, complete, false);
    }

    // Fill the L1 eagerly with the future ready time; later accesses to
    // this line merge onto the fill (see above). The MSHR entry tracks
    // occupancy until the fill lands.
    l1_->install(line, complete, flags.isWrite);
    l1Mshrs_.allocate(line, now, complete);
    missLatencyDist_.sample(complete - now);
    mshrOccupancyDist_.sample(l1Mshrs_.outstanding(now));

    outcome.status = AccessStatus::Miss;
    outcome.completeAt = complete;
    outcome.serviceLevel = service_level;
    outcome.l1Hit = false;
    return outcome;
}

unsigned
MemoryHierarchy::warmAccess(Addr byte_addr, bool is_write)
{
    const Addr line = lineAddr(byte_addr);
    ++l1_->accesses;
    CacheLookup l1_hit = l1_->lookup(line, /*update_lru=*/true);
    if (l1_hit.present) {
        ++l1_->hits;
        if (is_write)
            l1_hit.line->dirty = true;
        return 1;
    }
    ++l1_->misses;

    unsigned service_level;
    ++l2_->accesses;
    CacheLookup l2_hit = l2_->lookup(line, /*update_lru=*/true);
    if (l2_hit.present) {
        ++l2_->hits;
        service_level = 2;
    } else {
        ++l2_->misses;
        ++l3_->accesses;
        CacheLookup l3_hit = l3_->lookup(line, /*update_lru=*/true);
        if (l3_hit.present) {
            ++l3_->hits;
            service_level = 3;
        } else {
            ++l3_->misses;
            ++dramAccesses_;
            service_level = 4;
            l3_->install(line, /*ready_at=*/0, /*dirty=*/false);
        }
        l2_->install(line, /*ready_at=*/0, /*dirty=*/false);
    }
    l1_->install(line, /*ready_at=*/0, is_write);
    return service_level;
}

HierarchyWarmState
MemoryHierarchy::exportWarmState() const
{
    HierarchyWarmState state;
    state.l1 = l1_->exportWarmState();
    state.l2 = l2_->exportWarmState();
    state.l3 = l3_->exportWarmState();
    return state;
}

void
MemoryHierarchy::restoreWarmState(const HierarchyWarmState &state)
{
    l1_->restoreWarmState(state.l1);
    l2_->restoreWarmState(state.l2);
    l3_->restoreWarmState(state.l3);
    next_dram_slot_ = 0;
}

void
MemoryHierarchy::commitTouch(Addr byte_addr)
{
    l1_->touch(lineAddr(byte_addr));
}

void
MemoryHierarchy::invalidate(Addr byte_addr)
{
    const Addr line = lineAddr(byte_addr);
    l1_->invalidate(line);
    l2_->invalidate(line);
    l3_->invalidate(line);
}

bool
MemoryHierarchy::linePresent(unsigned level, Addr byte_addr) const
{
    const Addr line = lineAddr(byte_addr);
    switch (level) {
      case 1: return l1_->probe(line);
      case 2: return l2_->probe(line);
      case 3: return l3_->probe(line);
      default: DGSIM_PANIC("bad cache level");
    }
}

std::uint64_t
MemoryHierarchy::digest() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    l1_->hashState(hash);
    l2_->hashState(hash);
    l3_->hashState(hash);
    return hash;
}

} // namespace dgsim
