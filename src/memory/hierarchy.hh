/**
 * @file
 * Three-level cache hierarchy plus DRAM.
 *
 * Timing model: the hierarchy resolves every access at issue time by
 * walking the tag arrays, computing the completion cycle from the
 * cumulative roundtrip latency of the level that services it (Table 1:
 * L1 5, L2 15, L3 40, DRAM +~50 with a bandwidth cap). Lines are
 * installed eagerly with a future readyAt, so later accesses to an
 * in-flight line merge onto the same fill (MSHR-merge semantics) and
 * MLP is bounded by the per-level MSHR counts. The paper's key
 * property holds by construction: doppelganger accesses traverse this
 * hierarchy exactly like demand accesses — no modifications outside
 * the core are needed (paper §5.1).
 */

#ifndef DGSIM_MEMORY_HIERARCHY_HH
#define DGSIM_MEMORY_HIERARCHY_HH

#include <array>
#include <cstdint>
#include <memory>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "memory/access.hh"
#include "memory/cache.hh"
#include "memory/mshr.hh"

namespace dgsim
{

/** Warm tag state of all three levels (checkpointing). */
struct HierarchyWarmState
{
    CacheWarmState l1;
    CacheWarmState l2;
    CacheWarmState l3;
};

/** The full data-side memory system below the core. */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const SimConfig &config, StatRegistry &stats);

    /** Issue one access; all timing is resolved immediately. */
    AccessOutcome access(Addr byte_addr, Cycle now,
                         const MemAccessFlags &flags);

    /**
     * Atomic-mode access for functional fast-forward warming: walks the
     * tag arrays and installs at every level exactly like a demand miss,
     * but with no timing — fills complete instantly (readyAt = 0), no
     * MSHRs are consumed and no DRAM slot is reserved. Per-level
     * access/hit/miss counters still tick (into whatever registry this
     * hierarchy was built with; the fast-forward engine uses a scratch
     * registry so warm traffic never pollutes measured stats).
     * @return the level that serviced the access (1..3, 4 = DRAM).
     */
    unsigned warmAccess(Addr byte_addr, bool is_write);

    /** Export all three tag arrays in canonical (LRU-ordered) form. */
    HierarchyWarmState exportWarmState() const;

    /**
     * Restore all three tag arrays from a checkpoint. Also rewinds the
     * DRAM bandwidth reservation: a restored run starts at cycle 0 with
     * every fill complete. Fatal on geometry mismatch.
     */
    void restoreWarmState(const HierarchyWarmState &state);

    /**
     * Retroactive replacement update for a DoM speculative hit that has
     * now committed (paper footnote 1: "replacement state in the L1 is
     * updated retroactively").
     */
    void commitTouch(Addr byte_addr);

    /** Coherence invalidation from another core (testing §4.5). */
    void invalidate(Addr byte_addr);

    /** Probe for line presence at a given level (1..3); no side effects. */
    bool linePresent(unsigned level, Addr byte_addr) const;

    /**
     * Digest of all persistent microarchitectural state (presence +
     * replacement order at every level). Two runs that differ only in a
     * secret must produce equal digests under a secure scheme.
     */
    std::uint64_t digest() const;

    Addr lineAddr(Addr byte_addr) const
    {
        return byte_addr / line_bytes_;
    }

    const Cache &l1() const { return *l1_; }
    const Cache &l2() const { return *l2_; }
    const Cache &l3() const { return *l3_; }

    /** L1 MSHR entries outstanding at @p now (wedge-state dumps). */
    unsigned
    l1MshrOutstanding(Cycle now)
    {
        return l1Mshrs_.outstanding(now);
    }

    /**
     * Next-event horizon of the memory system: the earliest future
     * cycle at which an outstanding L1 fill completes, or kInvalidCycle
     * with nothing in flight. Since all access timing is resolved at
     * issue (no event queue), the only time-driven transition below the
     * core is an MSHR entry expiring — which is exactly what unblocks a
     * Rejected (MSHR-full) store/load/doppelganger retry. Side-effect
     * free (DESIGN.md §5d).
     */
    Cycle
    nextFillCompletion(Cycle now) const
    {
        return l1Mshrs_.earliestCompletion(now);
    }

  private:
    /** Reserve a DRAM bandwidth slot at or after @p earliest. */
    Cycle reserveDramSlot(Cycle earliest);

    const SimConfig config_;
    unsigned line_bytes_;
    std::unique_ptr<Cache> l1_;
    std::unique_ptr<Cache> l2_;
    std::unique_ptr<Cache> l3_;
    /// Only the L1 MSHR file bounds MLP (Table 1 specifies 16 L1 MSHRs);
    /// lower levels are modelled with unbounded concurrency plus the
    /// DRAM bandwidth cap.
    MshrFile l1Mshrs_;

    /** Earliest cycle the next DRAM line transfer may start. */
    Cycle next_dram_slot_ = 0;

    Counter &dramAccesses_;
    Counter &domDelayedAccesses_;

    // Distribution stats (separate dump section; miss path only, so
    // the L1-hit fast path is untouched).
    Histogram &missLatencyDist_;
    Histogram &mshrOccupancyDist_;
};

} // namespace dgsim

#endif // DGSIM_MEMORY_HIERARCHY_HH
