/**
 * @file
 * Dynamic (in-flight) instruction state for the out-of-order core.
 */

#ifndef DGSIM_CPU_DYN_INST_HH
#define DGSIM_CPU_DYN_INST_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace dgsim
{

/** Doppelganger (address-predicted load) state machine, paper §5. */
enum class DgState : std::uint8_t
{
    None,       ///< Load has no doppelganger (predictor did not fire).
    Predicted,  ///< Prediction stored in the LQ entry, unverified.
    Verified,   ///< Resolved address matched the prediction.
    Mispredicted, ///< Addresses differed; preload discarded, load replays.
};

/** One in-flight instruction (ROB entry). */
struct DynInst
{
    // --- Identity ---------------------------------------------------
    SeqNum seq = kInvalidSeq;
    Addr pc = 0;
    Instruction inst;
    OpClass cls = OpClass::No_OpClass;
    // Operand roles, decoded once at dispatch. The issue wakeup loop
    // re-checks readiness every cycle for every IQ entry; caching these
    // keeps the per-opcode switches off that path.
    bool usesRs1 = false; ///< readsRs1(inst)
    bool usesRs2 = false; ///< readsRs2(inst)
    bool hasDest = false; ///< writesDest(inst)

    // --- Rename ------------------------------------------------------
    PhysReg prs1 = kInvalidPhysReg; ///< Physical source 1 (if read).
    PhysReg prs2 = kInvalidPhysReg; ///< Physical source 2 (if read).
    PhysReg prd = kInvalidPhysReg;  ///< Physical dest (if written).
    PhysReg prevPrd = kInvalidPhysReg; ///< Previous mapping of rd.

    // --- Pipeline status ----------------------------------------------
    bool inIq = false;      ///< Waiting in the issue queue.
    bool issued = false;    ///< Sent to a functional unit.
    bool executed = false;  ///< Result computed (cycle: execDoneAt).
    bool completed = false; ///< Result propagated; eligible to commit.
    bool squashed = false;
    Cycle execDoneAt = kInvalidCycle;

    // --- Control flow ---------------------------------------------------
    bool predictedTaken = false;
    Addr predictedTarget = 0;
    std::uint64_t ghrSnapshot = 0; ///< GHR before this branch's prediction.
    bool actualTaken = false;
    Addr actualTarget = 0;
    bool mispredicted = false;
    bool resolved = false; ///< Branch resolution performed (shadow freed).

    // --- Memory -----------------------------------------------------------
    Addr effAddr = kInvalidAddr; ///< AGU-resolved effective address.
    bool addrReady = false;      ///< effAddr valid.
    bool memIssued = false;      ///< Demand access accepted by hierarchy.
    bool dataArrived = false;    ///< Load data available (value readable).
    Cycle dataAt = kInvalidCycle;
    bool l1Hit = false;          ///< Load was serviced from the L1.
    bool domDelayed = false;     ///< Rejected by DoM; retry when non-spec.
    bool forwarded = false;      ///< Value forwarded from an older store.
    SeqNum fwdFromSeq = kInvalidSeq; ///< Store the value came from.
    bool invalSnooped = false;   ///< LQ entry matched an invalidation.
    /// DoM: replacement update was suppressed at access; touch at commit.
    bool domDeferredTouch = false;
    bool dgDeferredTouch = false; ///< Same, for the doppelganger access.

    // --- Doppelganger ---------------------------------------------------
    DgState dgState = DgState::None;
    Addr dgPredictedAddr = kInvalidAddr;
    /** The doppelganger access was sent to the hierarchy. Orthogonal to
     * dgState: a verified-but-unissued prediction may still issue later
     * (the predicted address remains secret-independent). */
    bool dgAccessIssued = false;
    bool dgDataArrived = false;
    Cycle dgDataAt = kInvalidCycle;
    bool dgL1Hit = false;

    // --- Observability ----------------------------------------------------
    /**
     * Cycle stamps maintained unconditionally (one store each at
     * dispatch / issue / completion, which those paths already own):
     * the distribution stats (load-to-use latency, shadow-release
     * delay) are computed from them with tracing off.
     */
    Cycle dispatchedAt = 0;
    Cycle issuedAt = kInvalidCycle;
    Cycle completedAt = kInvalidCycle;
    /// Frontend stamps, recorded only for traced instructions.
    Cycle tsFetch = 0;
    Cycle tsDecode = 0;
    /// This instruction was armed for pipeline tracing at dispatch.
    bool traced = false;
    /// A secure-speculation gate blocked this load's issue or
    /// propagation at least once (trace annotation / flight recorder).
    bool policyBlocked = false;
    /// STT tainted this load's result when it propagated.
    bool resultTainted = false;

    // --- Scan sleep state -------------------------------------------------
    /**
     * Wake-epoch stamps for the two per-cycle retry scans (demand issue
     * and propagation/resolution). A gate-blocked instruction records
     * the core's wake epoch; the scan skips it until some event that
     * could unblock it (register wakeup, shadow release, untaint,
     * squash, dispatch) bumps the epoch. Purely a host-side
     * memoisation: the retry outcome is unchanged, it just is not
     * recomputed on quiescent cycles.
     */
    std::uint64_t issueSleepEpoch = 0;
    std::uint64_t propSleepEpoch = 0;

    // --- Pool bookkeeping -------------------------------------------------
    /**
     * Number of lazily-filtered side lists (exec_pending_,
     * unresolved_branches_) still holding this instruction. A squashed
     * instruction is returned to the pool only once this drops to zero,
     * so those lists may keep filtering by the squashed flag without
     * ever touching a recycled entry.
     */
    std::uint8_t lazyRefs = 0;

    // --- Helpers ----------------------------------------------------------
    bool isLoad() const { return cls == OpClass::MemRead; }
    bool isStore() const { return cls == OpClass::MemWrite; }
    bool isBranch() const { return cls == OpClass::Branch; }

    bool
    hasDoppelganger() const
    {
        return dgState != DgState::None;
    }
};

/**
 * Pool handle. In-flight instructions live in DynInstPool slabs; the
 * handle is a plain pointer into stable slab storage (slabs are never
 * freed or moved while the core lives). Allocated at dispatch, returned
 * to the pool at commit or on squash.
 */
using DynInstPtr = DynInst *;

/**
 * Recycling slab allocator for DynInst.
 *
 * The steady-state cycle loop allocates one DynInst per dispatched
 * instruction (including the wrong path); a heap allocation per
 * instruction dominated the fetch/dispatch profile. The pool hands out
 * entries from fixed-size slabs via a free list: after warm-up (live
 * count is bounded by the ROB) no allocation ever happens again.
 */
class DynInstPool
{
  public:
    /// Slab granularity, entries.
    static constexpr std::size_t kSlabEntries = 256;

    DynInstPool() = default;
    DynInstPool(const DynInstPool &) = delete;
    DynInstPool &operator=(const DynInstPool &) = delete;

    /** Take a freshly reset entry from the pool. */
    DynInstPtr
    alloc()
    {
        if (free_.empty())
            grow();
        DynInst *inst = free_.back();
        free_.pop_back();
        *inst = DynInst{}; // Reset to default state; no heap traffic.
        ++live_;
        return inst;
    }

    /** Return an entry; the caller must hold the only reference. */
    void
    release(DynInstPtr inst)
    {
        --live_;
        free_.push_back(inst);
    }

    /** Entries currently handed out (== in-flight instructions). */
    std::size_t live() const { return live_; }

    /** Total entries ever allocated across all slabs. */
    std::size_t capacity() const { return slabs_.size() * kSlabEntries; }

  private:
    void
    grow()
    {
        slabs_.push_back(std::make_unique<DynInst[]>(kSlabEntries));
        DynInst *base = slabs_.back().get();
        for (std::size_t i = kSlabEntries; i-- > 0;)
            free_.push_back(base + i);
    }

    std::vector<std::unique_ptr<DynInst[]>> slabs_;
    std::vector<DynInst *> free_;
    std::size_t live_ = 0;
};

} // namespace dgsim

#endif // DGSIM_CPU_DYN_INST_HH
