/**
 * @file
 * Dynamic (in-flight) instruction state for the out-of-order core.
 */

#ifndef DGSIM_CPU_DYN_INST_HH
#define DGSIM_CPU_DYN_INST_HH

#include <memory>

#include "common/types.hh"
#include "isa/isa.hh"

namespace dgsim
{

/** Doppelganger (address-predicted load) state machine, paper §5. */
enum class DgState : std::uint8_t
{
    None,       ///< Load has no doppelganger (predictor did not fire).
    Predicted,  ///< Prediction stored in the LQ entry, unverified.
    Verified,   ///< Resolved address matched the prediction.
    Mispredicted, ///< Addresses differed; preload discarded, load replays.
};

/** One in-flight instruction (ROB entry). */
struct DynInst
{
    // --- Identity ---------------------------------------------------
    SeqNum seq = kInvalidSeq;
    Addr pc = 0;
    Instruction inst;
    OpClass cls = OpClass::No_OpClass;

    // --- Rename ------------------------------------------------------
    PhysReg prs1 = kInvalidPhysReg; ///< Physical source 1 (if read).
    PhysReg prs2 = kInvalidPhysReg; ///< Physical source 2 (if read).
    PhysReg prd = kInvalidPhysReg;  ///< Physical dest (if written).
    PhysReg prevPrd = kInvalidPhysReg; ///< Previous mapping of rd.

    // --- Pipeline status ----------------------------------------------
    bool inIq = false;      ///< Waiting in the issue queue.
    bool issued = false;    ///< Sent to a functional unit.
    bool executed = false;  ///< Result computed (cycle: execDoneAt).
    bool completed = false; ///< Result propagated; eligible to commit.
    bool squashed = false;
    Cycle execDoneAt = kInvalidCycle;

    // --- Control flow ---------------------------------------------------
    bool predictedTaken = false;
    Addr predictedTarget = 0;
    std::uint64_t ghrSnapshot = 0; ///< GHR before this branch's prediction.
    bool actualTaken = false;
    Addr actualTarget = 0;
    bool mispredicted = false;
    bool resolved = false; ///< Branch resolution performed (shadow freed).

    // --- Memory -----------------------------------------------------------
    Addr effAddr = kInvalidAddr; ///< AGU-resolved effective address.
    bool addrReady = false;      ///< effAddr valid.
    bool memIssued = false;      ///< Demand access accepted by hierarchy.
    bool dataArrived = false;    ///< Load data available (value readable).
    Cycle dataAt = kInvalidCycle;
    bool l1Hit = false;          ///< Load was serviced from the L1.
    bool domDelayed = false;     ///< Rejected by DoM; retry when non-spec.
    bool forwarded = false;      ///< Value forwarded from an older store.
    SeqNum fwdFromSeq = kInvalidSeq; ///< Store the value came from.
    bool invalSnooped = false;   ///< LQ entry matched an invalidation.
    /// DoM: replacement update was suppressed at access; touch at commit.
    bool domDeferredTouch = false;
    bool dgDeferredTouch = false; ///< Same, for the doppelganger access.

    // --- Doppelganger ---------------------------------------------------
    DgState dgState = DgState::None;
    Addr dgPredictedAddr = kInvalidAddr;
    /** The doppelganger access was sent to the hierarchy. Orthogonal to
     * dgState: a verified-but-unissued prediction may still issue later
     * (the predicted address remains secret-independent). */
    bool dgAccessIssued = false;
    bool dgDataArrived = false;
    Cycle dgDataAt = kInvalidCycle;
    bool dgL1Hit = false;

    // --- Helpers ----------------------------------------------------------
    bool isLoad() const { return cls == OpClass::MemRead; }
    bool isStore() const { return cls == OpClass::MemWrite; }
    bool isBranch() const { return cls == OpClass::Branch; }

    bool
    hasDoppelganger() const
    {
        return dgState != DgState::None;
    }
};

using DynInstPtr = std::shared_ptr<DynInst>;

} // namespace dgsim

#endif // DGSIM_CPU_DYN_INST_HH
