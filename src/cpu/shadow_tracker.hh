/**
 * @file
 * Speculation shadow tracking (Ghost Loads / Delay-on-Miss style).
 *
 * An instruction is *speculative* while any older shadow caster is
 * unresolved. Following the paper (§5) we track two caster kinds:
 *   - control shadows: branches, from dispatch until resolution;
 *   - data shadows: stores, from dispatch until their address resolves.
 *
 * A load "reaches its visibility point" (STT) / "becomes
 * non-speculative" (NDA, DoM) when no caster older than it remains.
 *
 * Hot-path note: cast/release/isShadowed run for every branch, store
 * and load every cycle, so the tracker is a flat seq-sorted vector with
 * a head cursor instead of a node-based std::set — casters are
 * dispatched in sequence order (push_back), releases mark a tombstone
 * found by binary search, and both ends are trimmed of resolved
 * entries so the oldest unresolved caster is always the front element.
 * Steady state performs zero allocations.
 */

#ifndef DGSIM_CPU_SHADOW_TRACKER_HH
#define DGSIM_CPU_SHADOW_TRACKER_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"

namespace dgsim
{

/** Seq-ordered list of unresolved shadow casters. */
class ShadowTracker
{
  public:
    /** A branch or unresolved-address store entered the window. */
    void
    cast(SeqNum seq)
    {
        ++unresolved_;
        if (entries_.empty() || entries_.back().seq < seq) {
            entries_.push_back({seq, false}); // Dispatch order: O(1).
            return;
        }
        // Out-of-order cast (unit tests only): sorted insert.
        entries_.insert(lookup(seq), {seq, false});
    }

    /** The caster resolved (branch resolved / store address known).
     * Idempotent; a seq that was never cast is ignored. */
    void
    release(SeqNum seq)
    {
        auto it = lookup(seq);
        if (it == entries_.end() || it->seq != seq || it->resolved)
            return;
        it->resolved = true;
        --unresolved_;
        trim();
    }

    /** Remove all casters younger than @p seq (squash). */
    void
    squashYoungerThan(SeqNum seq)
    {
        while (entries_.size() > head_ && entries_.back().seq > seq) {
            unresolved_ -= !entries_.back().resolved;
            entries_.pop_back();
        }
        trim();
    }

    /** True if any caster older than @p seq is still unresolved. */
    bool
    isShadowed(SeqNum seq) const
    {
        return unresolved_ != 0 && entries_[head_].seq < seq;
    }

    /** Oldest unresolved caster, or kInvalidSeq if none. */
    SeqNum
    oldest() const
    {
        return unresolved_ == 0 ? kInvalidSeq : entries_[head_].seq;
    }

    bool empty() const { return unresolved_ == 0; }
    std::size_t size() const { return unresolved_; }

    void
    clear()
    {
        entries_.clear();
        head_ = 0;
        unresolved_ = 0;
    }

  private:
    struct Entry
    {
        SeqNum seq;
        bool resolved;
    };

    std::vector<Entry>::iterator
    lookup(SeqNum seq)
    {
        return std::lower_bound(
            entries_.begin() + static_cast<std::ptrdiff_t>(head_),
            entries_.end(), seq,
            [](const Entry &e, SeqNum s) { return e.seq < s; });
    }

    /** Restore the invariant: first and last live entries unresolved. */
    void
    trim()
    {
        if (unresolved_ == 0) {
            entries_.clear(); // Keeps capacity; no allocation later.
            head_ = 0;
            return;
        }
        while (entries_[head_].resolved)
            ++head_;
        while (entries_.back().resolved)
            entries_.pop_back();
        // Compact once the dead prefix dominates, so the vector never
        // grows beyond ~2x the in-flight caster count.
        if (head_ > 64 && head_ * 2 > entries_.size()) {
            entries_.erase(entries_.begin(),
                           entries_.begin() +
                               static_cast<std::ptrdiff_t>(head_));
            head_ = 0;
        }
    }

    std::vector<Entry> entries_;
    std::size_t head_ = 0;    ///< First live (possibly resolved) entry.
    std::size_t unresolved_ = 0;
};

} // namespace dgsim

#endif // DGSIM_CPU_SHADOW_TRACKER_HH
