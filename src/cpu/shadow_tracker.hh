/**
 * @file
 * Speculation shadow tracking (Ghost Loads / Delay-on-Miss style).
 *
 * An instruction is *speculative* while any older shadow caster is
 * unresolved. Following the paper (§5) we track two caster kinds:
 *   - control shadows: branches, from dispatch until resolution;
 *   - data shadows: stores, from dispatch until their address resolves.
 *
 * A load "reaches its visibility point" (STT) / "becomes
 * non-speculative" (NDA, DoM) when no caster older than it remains.
 */

#ifndef DGSIM_CPU_SHADOW_TRACKER_HH
#define DGSIM_CPU_SHADOW_TRACKER_HH

#include <set>

#include "common/types.hh"

namespace dgsim
{

/** Ordered set of unresolved shadow casters. */
class ShadowTracker
{
  public:
    /** A branch or unresolved-address store entered the window. */
    void cast(SeqNum seq) { casters_.insert(seq); }

    /** The caster resolved (branch resolved / store address known). */
    void release(SeqNum seq) { casters_.erase(seq); }

    /** Remove all casters younger than @p seq (squash). */
    void
    squashYoungerThan(SeqNum seq)
    {
        casters_.erase(casters_.upper_bound(seq), casters_.end());
    }

    /** True if any caster older than @p seq is still unresolved. */
    bool
    isShadowed(SeqNum seq) const
    {
        return !casters_.empty() && *casters_.begin() < seq;
    }

    /** Oldest unresolved caster, or kInvalidSeq if none. */
    SeqNum
    oldest() const
    {
        return casters_.empty() ? kInvalidSeq : *casters_.begin();
    }

    bool empty() const { return casters_.empty(); }
    std::size_t size() const { return casters_.size(); }
    void clear() { casters_.clear(); }

  private:
    std::set<SeqNum> casters_;
};

} // namespace dgsim

#endif // DGSIM_CPU_SHADOW_TRACKER_HH
