#include "cpu/core.hh"

#include <algorithm>
#include <iostream>

#include "ckpt/checkpoint.hh"
#include "common/errors.hh"
#include "common/log.hh"

namespace dgsim
{

OooCore::OooCore(const Program &program, const SimConfig &config,
                 StatRegistry &stats)
    : program_(program),
      config_(config),
      stats_(stats),
      policy_(makePolicy(config)),
      hierarchy_(std::make_unique<MemoryHierarchy>(config, stats)),
      stride_table_(std::make_unique<StrideTable>(
          config.predictorEntries, config.predictorAssoc,
          config.predictorConfidenceThreshold, stats)),
      branch_pred_(std::make_unique<BranchPredictor>(
          config.bpHistoryBits, config.btbEntries, stats)),
      dg_unit_(std::make_unique<DoppelgangerUnit>(config, *stride_table_,
                                                  stats)),
      regfile_(config.numPhysRegs),
      data_mem_(program.initialData),
      fetch_pc_(program.entry),
      committedInstrs_(stats.counter("core.committedInstrs")),
      committedLoadsStat_(stats.counter("core.committedLoads")),
      committedStores_(stats.counter("core.committedStores")),
      committedBranches_(stats.counter("core.committedBranches")),
      branchSquashes_(stats.counter("core.branchSquashes")),
      memOrderSquashes_(stats.counter("core.memOrderSquashes")),
      snoopSquashes_(stats.counter("core.snoopSquashes")),
      stlForwards_(stats.counter("core.stlForwards")),
      domRetries_(stats.counter("core.domRetries")),
      prefetchesIssued_(stats.counter("core.prefetchesIssued")),
      cyclesStat_(stats.counter("core.cycles")),
      idleSkippedStat_(stats.hostCounter("core.idleCyclesSkipped")),
      skipEventsStat_(stats.hostCounter("core.skipEvents")),
      loadToUseDist_(stats.histogram("core.loadToUseDist", 4, 64)),
      shadowReleaseDelayDist_(
          stats.histogram("core.shadowReleaseDelayDist", 4, 64)),
      robOccupancyDist_(stats.histogram("core.robOccupancyDist", 16, 32)),
      iqOccupancyDist_(stats.histogram("core.iqOccupancyDist", 8, 32)),
      lqOccupancyDist_(stats.histogram("core.lqOccupancyDist", 8, 24)),
      panic_hook_(&OooCore::panicDumpThunk, this)
{
    if (config.checkArchState)
        oracle_ = std::make_unique<FunctionalCore>(program);
    if (!config.tracePath.empty()) {
        tracer_ = std::make_unique<PipeTracer>(
            config.tracePath, config.traceStartInst, config.traceMaxInsts);
        tracing_ = tracer_->ok();
    }
}

OooCore::~OooCore() = default;

void
OooCore::restoreFromCheckpoint(const ckpt::Checkpoint &checkpoint)
{
    DGSIM_ASSERT(cycle_ == 0 && committed_count_ == 0,
                 "checkpoint restore requires a fresh core");
    if (checkpoint.workload != program_.name)
        DGSIM_FATAL("checkpoint is for workload '" + checkpoint.workload +
                    "' but the core runs '" + program_.name + "'");
    // The reset RAT maps arch reg i to phys reg i, so writing through
    // lookup() establishes the architectural values without renaming.
    for (RegIndex i = 1; i < kNumArchRegs; ++i)
        regfile_.setValue(regfile_.lookup(i), checkpoint.regs[i]);
    data_mem_ = checkpoint.memory;
    fetch_pc_ = checkpoint.pc;
    hierarchy_->restoreWarmState(checkpoint.hierarchy);
    branch_pred_->restoreState(checkpoint.branch);
    stride_table_->restoreState(checkpoint.stride);
    if (oracle_) {
        oracle_->restoreArchState(checkpoint.regs, checkpoint.memory,
                                  checkpoint.pc, checkpoint.halted,
                                  checkpoint.instret);
    }
}

// ---------------------------------------------------------------------
// Policy context helpers.
// ---------------------------------------------------------------------

bool
OooCore::operandsTainted(const DynInst &inst) const
{
    if (inst.usesRs1 &&
        taint_tracker_.tainted(regfile_.taintRoot(inst.prs1))) {
        return true;
    }
    if (inst.usesRs2 &&
        taint_tracker_.tainted(regfile_.taintRoot(inst.prs2))) {
        return true;
    }
    return false;
}

SpecContext
OooCore::contextFor(const DynInst &inst) const
{
    SpecContext ctx;
    ctx.shadowed = shadow_tracker_.isShadowed(inst.seq);
    ctx.operandsTainted = operandsTainted(inst);
    ctx.addressPrediction = config_.addressPrediction;
    return ctx;
}

// ---------------------------------------------------------------------
// Top-level loop.
// ---------------------------------------------------------------------

void
OooCore::tick()
{
    ++cycle_;
    ++cyclesStat_;
    // Quiescence detection: any stage action or wake-epoch bump below
    // marks this tick as having made forward progress. run() consults
    // the flag to decide whether warping to the next event is safe.
    progress_ = false;
    const std::uint64_t epoch_at_entry = wake_epoch_;
    // Occupancy distributions, sampled sparsely (1 in 64 cycles): the
    // shape of the distribution is the point, not the exact integral,
    // and per-cycle sampling is measurable in the cycle loop.
    if ((cycle_ & 63) == 0) {
        robOccupancyDist_.sample(rob_.size());
        iqOccupancyDist_.sample(iq_.size());
        lqOccupancyDist_.sample(lq_.size());
    }
    commitStage();
    if (done_)
        return;
    if (config_.watchdogCycles != 0 &&
        cycle_ - last_commit_cycle_ >= config_.watchdogCycles) {
        watchdogFire();
    }
    // Wall-clock sibling of the commit watchdog: sampled sparsely so
    // the steady_clock read stays off the per-cycle path, and thrown
    // (not panicked) because a slow host is a recoverable condition.
    if (job_deadline_armed_ && (cycle_ & 8191) == 0 &&
        std::chrono::steady_clock::now() >= job_deadline_) {
        jobDeadlineFire();
    }
    writebackStage();
    executeStage();
    memoryIssueStage();
    issueStage();
    dispatchStage();
    fetchStage();
    if (wake_epoch_ != epoch_at_entry)
        progress_ = true;
}

std::uint64_t
OooCore::run()
{
    if (config_.jobTimeoutMs != 0) {
        job_deadline_armed_ = true;
        job_deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.jobTimeoutMs);
    }
    while (!done_) {
        tick();
        if (config_.maxCycles != 0 && cycle_ >= config_.maxCycles) {
            // A sweep whose config systematically hits the limit would
            // otherwise print one of these per job; the per-job numbers
            // are in the stats dump regardless.
            DGSIM_WARN_ONCE(program_.name + ": cycle limit reached at " +
                            std::to_string(cycle_) + " cycles, " +
                            std::to_string(committed_count_) +
                            " instructions (warned once per process)");
            done_ = true;
        }
        if (!config_.idleSkip || progress_ || done_)
            continue;
        // Quiescent tick: every later tick before the next event is a
        // provable no-op, so warp straight to it. Clamped so the commit
        // watchdog and the cycle limit fire at the exact cycle the
        // per-cycle loop would reach them (the landing tick runs the
        // normal checks). No finite horizon and no limit means a
        // genuinely wedged machine: keep ticking, matching the
        // per-cycle infinite spin instead of inventing a termination.
        Cycle target = nextEventCycle();
        if (config_.watchdogCycles != 0) {
            target = std::min(target,
                              last_commit_cycle_ + config_.watchdogCycles);
        }
        if (config_.maxCycles != 0)
            target = std::min(target, config_.maxCycles);
        if (target != kInvalidCycle && target > cycle_ + 1)
            skipTo(target);
    }
    return committed_count_;
}

Cycle
OooCore::nextEventCycle() const
{
    Cycle horizon = kInvalidCycle;
    const auto consider = [&horizon, this](Cycle at) {
        if (at > cycle_ && at < horizon)
            horizon = at;
    };
    // In-flight functional units (includes load/store AGU latency).
    for (const DynInstPtr &inst : exec_pending_) {
        if (!inst->squashed)
            consider(inst->execDoneAt);
    }
    // LQ data arrivals: demand fills, forwarded data and doppelganger
    // fills. Same countdown bound as the writeback scan.
    std::size_t incomplete = lq_incomplete_;
    for (auto it = lqScanStart(lq_complete_barrier_);
         it != lq_.end() && incomplete != 0; ++it) {
        const DynInstPtr &load = *it;
        if (load->squashed || load->completed)
            continue;
        --incomplete;
        if (load->dgState == DgState::Verified && load->dgAccessIssued) {
            if (!load->dgDataArrived)
                consider(load->dgDataAt);
        } else if ((load->memIssued || load->forwarded) &&
                   !load->dataArrived) {
            consider(load->dataAt);
        }
    }
    // Frontend: the oldest fetched-but-not-decoded slot, and the
    // post-squash redirect stall.
    if (!fetch_queue_.empty())
        consider(fetch_queue_.front().readyAt);
    if (!fetch_halted_ && cycle_ < fetch_stall_until_)
        consider(fetch_stall_until_);
    // Memory system: the next MSHR fill completion is the first cycle
    // a Rejected (MSHR-full) retry can succeed.
    consider(hierarchy_->nextFillCompletion(cycle_));
    return horizon;
}

void
OooCore::skipTo(Cycle target)
{
    // Stop one short: the next tick() pre-increments onto the target
    // cycle itself and runs the full stage sequence there, so the
    // landing cycle is simulated exactly as the per-cycle loop would.
    const Cycle advance_to = target - 1;
    const std::uint64_t skipped = advance_to - cycle_;
    // The skipped ticks would each have taken a sparse occupancy sample
    // at cycles divisible by 64. Queue sizes cannot change across a
    // quiescent span, so those samples are this many repeats of the
    // current sizes.
    const std::uint64_t samples = advance_to / 64 - cycle_ / 64;
    if (samples != 0) {
        robOccupancyDist_.sample(rob_.size(), samples);
        iqOccupancyDist_.sample(iq_.size(), samples);
        lqOccupancyDist_.sample(lq_.size(), samples);
    }
    cycle_ = advance_to;
    cyclesStat_ += skipped;
    idleSkippedStat_ += skipped;
    ++skipEventsStat_;
    // The per-cycle loop polls the wall-clock deadline every 8192
    // cycles; a warp can jump any number of those polls, so re-check
    // here or a wedged-but-warping run could overstay its budget.
    if (job_deadline_armed_ &&
        std::chrono::steady_clock::now() >= job_deadline_) {
        jobDeadlineFire();
    }
}

// ---------------------------------------------------------------------
// Commit.
// ---------------------------------------------------------------------

void
OooCore::commitStage()
{
    unsigned committed_this_cycle = 0;
    unsigned stores_this_cycle = 0;
    while (committed_this_cycle < config_.commitWidth && !rob_.empty() &&
           !done_) {
        DynInstPtr inst = rob_.front();
        DGSIM_ASSERT(!inst->squashed, "squashed instruction at ROB head");
        if (!commitOne(inst, stores_this_cycle))
            break;
        if (inst->traced)
            tracer_->flush(*inst, cycle_);
        rob_.pop_front();
        DGSIM_ASSERT(inst->lazyRefs == 0,
                     "committed instruction still on a lazy list");
        pool_.release(inst);
        ++committed_this_cycle;
    }
    if (committed_this_cycle != 0) {
        last_commit_cycle_ = cycle_;
        progress_ = true;
    }
}

bool
OooCore::commitOne(const DynInstPtr &inst, unsigned &stores_this_cycle)
{
    // --- Is the instruction committable this cycle? --------------------
    switch (inst->cls) {
      case OpClass::No_OpClass:
        break; // Completed at dispatch.
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
      case OpClass::MemRead:
        if (!inst->completed)
            return false;
        break;
      case OpClass::Branch:
        if (!inst->executed || !inst->resolved)
            return false;
        break;
      case OpClass::MemWrite: {
        if (!inst->addrReady)
            return false;
        if (!regfile_.ready(inst->prs2))
            return false; // Store data not yet propagated.
        if (stores_this_cycle >= config_.storePorts)
            return false;
        // Drain to the memory system. Non-speculative by construction.
        MemAccessFlags flags;
        flags.isWrite = true;
        AccessOutcome outcome =
            hierarchy_->access(inst->effAddr, cycle_, flags);
        if (outcome.status == AccessStatus::Rejected) {
            flight_recorder_.record(FrEvent::MshrReject, cycle_, inst->seq,
                                    inst->effAddr);
            return false; // MSHRs full; retry next cycle.
        }
        ++stores_this_cycle;
        data_mem_.write(inst->effAddr, regfile_.value(inst->prs2));
        break;
      }
    }

    // --- Lockstep oracle cross-check -----------------------------------
    if (oracle_) {
        DGSIM_ASSERT(!oracle_->halted() || inst->inst.op == Opcode::Halt,
                     "oracle halted before the pipeline");
        DGSIM_ASSERT(oracle_->pc() == inst->pc,
                     "committed PC diverged from functional oracle at seq " +
                         std::to_string(inst->seq));
        const StepResult step = oracle_->step();
        if (inst->isLoad() || inst->isStore()) {
            DGSIM_ASSERT(step.effAddr == inst->effAddr,
                         "effective address diverged from oracle at " +
                             disassemble(inst->inst));
        }
        if (inst->isBranch()) {
            DGSIM_ASSERT(step.taken == inst->actualTaken,
                         "branch outcome diverged from oracle");
        }
        if (inst->hasDest) {
            DGSIM_ASSERT(regfile_.value(inst->prd) ==
                             oracle_->reg(inst->inst.rd),
                         "register value diverged from oracle at " +
                             disassemble(inst->inst));
        }
    }

    // --- Commit actions --------------------------------------------------
    if (inst->hasDest)
        regfile_.releaseAtCommit(inst->prevPrd);

    if (inst->isBranch()) {
        ++committedBranches_;
        branch_pred_->update(inst->pc, inst->inst, inst->actualTaken,
                             inst->actualTarget, inst->ghrSnapshot);
    }

    if (inst->isLoad()) {
        ++committedLoadsStat_;
        DGSIM_ASSERT(!lq_.empty() && lq_.front() == inst,
                     "LQ head out of sync with ROB");
        lq_.pop_front();
        taint_tracker_.clearRoot(inst->seq);
        if (policy_->taintsLoads())
            ++wake_epoch_; // Untaint can unblock gated work.
        if (inst->domDeferredTouch)
            hierarchy_->commitTouch(inst->effAddr);
        if (inst->dgDeferredTouch &&
            inst->dgState == DgState::Verified) {
            hierarchy_->commitTouch(inst->dgPredictedAddr);
        }
        dg_unit_->commitLoad(*inst);
        // Prefetching mode of the shared stride structure (paper §5.1):
        // at commit, predict future instances and prefetch them.
        if (config_.prefetcherEnabled) {
            auto ahead = stride_table_->predictAhead(
                inst->pc, inst->effAddr, config_.prefetchDegree);
            if (ahead &&
                hierarchy_->lineAddr(*ahead) !=
                    hierarchy_->lineAddr(inst->effAddr)) {
                MemAccessFlags flags;
                flags.isPrefetch = true;
                AccessOutcome outcome =
                    hierarchy_->access(*ahead, cycle_, flags);
                if (outcome.accepted())
                    ++prefetchesIssued_;
            }
        }
    }

    if (inst->isStore()) {
        ++committedStores_;
        DGSIM_ASSERT(!sq_.empty() && sq_.front() == inst,
                     "SQ head out of sync with ROB");
        sq_.pop_front();
    }

    if (inst->inst.op == Opcode::Halt) {
        done_ = true;
        halted_ = true;
    }

    ++committed_count_;
    ++committedInstrs_;

    if (config_.maxInstructions != 0 &&
        committed_count_ >= config_.maxInstructions) {
        done_ = true;
    }
    if (config_.warmupInstructions != 0 && !stats_reset_done_ &&
        committed_count_ >= config_.warmupInstructions) {
        stats_.resetAll();
        stats_reset_done_ = true;
    }
    return true;
}

// ---------------------------------------------------------------------
// Writeback: load data arrival/propagation, branch resolution, untaint.
// ---------------------------------------------------------------------

void
OooCore::propagateLoad(const DynInstPtr &inst, RegValue value)
{
    if (inst->prd != kInvalidPhysReg) {
        regfile_.setValue(inst->prd, value);
        if (policy_->taintsLoads() &&
            shadow_tracker_.isShadowed(inst->seq)) {
            regfile_.setTaintRoot(inst->prd, inst->seq);
            taint_tracker_.addRoot(inst->seq);
            inst->resultTainted = true;
        }
        regfile_.setReady(inst->prd);
    }
    ++wake_epoch_; // Register wakeup (and possibly a new taint root).
    // A doppelganger-fed load can complete without ever issuing its
    // demand access; retire it from the unissued count if so.
    if (!inst->memIssued && !inst->forwarded)
        --lq_unissued_;
    --lq_incomplete_;
    inst->completed = true;
    inst->completedAt = cycle_;
    // Load-to-use latency: dispatch to value propagation, i.e. what
    // the consumer actually observes (includes every policy delay).
    loadToUseDist_.sample(cycle_ - inst->dispatchedAt);
}

std::optional<std::pair<RegValue, SeqNum>>
OooCore::loadValueNow(const DynInst &inst, Addr addr) const
{
    // Youngest older store with a resolved matching address wins
    // (store-to-load forwarding / doppelganger preload override §4.4).
    for (auto it = sq_.rbegin(); it != sq_.rend(); ++it) {
        const DynInstPtr &store = *it;
        if (store->seq >= inst.seq)
            continue;
        if (!store->addrReady || store->effAddr != addr)
            continue;
        if (!regfile_.ready(store->prs2))
            return std::nullopt; // Data not produced yet; retry.
        return std::make_pair(regfile_.value(store->prs2), store->seq);
    }
    return std::make_pair(data_mem_.read(addr), kInvalidSeq);
}

void
OooCore::writebackStage()
{
    // --- Load data arrival and propagation ------------------------------
    // Start past the completed prefix and count down the incomplete
    // entries: once all of them have been visited the rest of the LQ
    // is completed loads awaiting commit, which this scan would only
    // skip.
    std::size_t incomplete = lq_incomplete_;
    SeqNum first_incomplete = kInvalidSeq;
    for (auto it = lqScanStart(lq_complete_barrier_); it != lq_.end();
         ++it) {
        const DynInstPtr &load = *it;
        if (incomplete == 0)
            break;
        if (load->squashed || load->completed)
            continue;
        --incomplete;
        if (first_incomplete == kInvalidSeq)
            first_incomplete = load->seq;

        if (load->dgState == DgState::Verified && load->dgAccessIssued) {
            if (!load->dgDataArrived && load->dgDataAt <= cycle_) {
                load->dgDataArrived = true;
                progress_ = true;
            }
            if (!load->dgDataArrived)
                continue;
            if (load->propSleepEpoch == wake_epoch_)
                continue; // Gate-blocked; nothing changed since.
            const SpecContext ctx = contextFor(*load);
            if (!policy_->dgMayPropagate(*load, ctx)) {
                load->propSleepEpoch = wake_epoch_;
                load->policyBlocked = true;
                flight_recorder_.record(
                    FrEvent::PropBlocked, cycle_, load->seq, load->effAddr,
                    static_cast<std::uint32_t>(FrGate::Policy));
                continue;
            }
            if (load->invalSnooped) {
                // §4.5: the noted invalidation takes effect when the
                // preloaded data would propagate.
                ++snoopSquashes_;
                squashFrom(load->seq, load->pc,
                           SquashReason::InvalidationSnoop);
                return;
            }
            auto value = loadValueNow(*load, load->effAddr);
            if (!value) {
                load->propSleepEpoch = wake_epoch_;
                flight_recorder_.record(
                    FrEvent::PropBlocked, cycle_, load->seq, load->effAddr,
                    static_cast<std::uint32_t>(FrGate::StoreData));
                continue;
            }
            load->fwdFromSeq = value->second;
            propagateLoad(load, value->first);
            continue;
        }

        if ((load->memIssued || load->forwarded) && !load->dataArrived &&
            load->dataAt <= cycle_) {
            load->dataArrived = true;
            progress_ = true;
        }
        if (!load->dataArrived)
            continue;
        if (load->propSleepEpoch == wake_epoch_)
            continue; // Gate-blocked; nothing changed since.
        const SpecContext ctx = contextFor(*load);
        if (!policy_->loadMayPropagate(*load, ctx)) {
            load->propSleepEpoch = wake_epoch_;
            load->policyBlocked = true;
            flight_recorder_.record(
                FrEvent::PropBlocked, cycle_, load->seq, load->effAddr,
                static_cast<std::uint32_t>(FrGate::Policy));
            continue;
        }
        if (load->invalSnooped) {
            ++snoopSquashes_;
            squashFrom(load->seq, load->pc, SquashReason::InvalidationSnoop);
            return;
        }
        auto value = loadValueNow(*load, load->effAddr);
        if (!value) {
            load->propSleepEpoch = wake_epoch_;
            flight_recorder_.record(
                FrEvent::PropBlocked, cycle_, load->seq, load->effAddr,
                static_cast<std::uint32_t>(FrGate::StoreData));
            continue;
        }
        load->fwdFromSeq = value->second;
        propagateLoad(load, value->first);
    }
    // Advance the barrier to the first load seen still incomplete (it
    // may have completed just now; one stale entry is harmless). With
    // none left, everything currently in flight is complete.
    if (first_incomplete != kInvalidSeq)
        lq_complete_barrier_ = first_incomplete;
    else if (lq_incomplete_ == 0)
        lq_complete_barrier_ = next_seq_;

    // --- Deferred branch resolutions, oldest first -----------------------
    // The list is kept seq-sorted by insertUnresolved(), so no per-cycle
    // sort is needed.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < unresolved_branches_.size(); ++i) {
        const DynInstPtr inst = unresolved_branches_[i];
        if (inst->squashed) {
            dropLazyRef(inst);
            continue;
        }
        if (inst->propSleepEpoch == wake_epoch_) {
            unresolved_branches_[kept++] = inst;
            continue; // Resolution still gated; nothing changed since.
        }
        const std::size_t rob_size_before = rob_.size();
        resolveBranch(inst);
        if (!inst->resolved) {
            inst->propSleepEpoch = wake_epoch_;
            unresolved_branches_[kept++] = inst;
        } else {
            dropLazyRef(inst);
        }
        if (rob_.size() != rob_size_before) {
            // A squash truncated the ROB; keep the rest for next cycle.
            for (std::size_t j = i + 1; j < unresolved_branches_.size();
                 ++j) {
                unresolved_branches_[kept++] = unresolved_branches_[j];
            }
            break;
        }
    }
    unresolved_branches_.resize(kept);

    // --- STT untaint sweep -------------------------------------------------
    // Every root older than the oldest unresolved shadow caster has
    // reached its visibility point.
    if (policy_->taintsLoads() && !taint_tracker_.empty()) {
        const SeqNum oldest_caster = shadow_tracker_.oldest();
        const std::size_t cleared =
            taint_tracker_.clearRootsBelow(oldest_caster);
        if (cleared != 0) {
            ++wake_epoch_; // Untaint can unblock gated work.
            flight_recorder_.record(
                FrEvent::Untaint, cycle_, oldest_caster, 0,
                static_cast<std::uint32_t>(cleared));
        }
    }
}

void
OooCore::insertUnresolved(const DynInstPtr &inst)
{
    ++inst->lazyRefs;
    // Issue order is not program order (an older branch can issue after
    // a younger one), so insert at the sorted position. The list is a
    // handful of entries; the shift is cheaper than the per-cycle sort
    // it replaces.
    const auto it = std::upper_bound(
        unresolved_branches_.begin(), unresolved_branches_.end(),
        inst->seq, [](SeqNum seq, const DynInstPtr &b) {
            return seq < b->seq;
        });
    unresolved_branches_.insert(it, inst);
}

void
OooCore::resolveBranch(const DynInstPtr &inst)
{
    SpecContext ctx = contextFor(*inst);
    if (!policy_->branchMayResolve(*inst, ctx))
        return;
    inst->resolved = true;
    shadow_tracker_.release(inst->seq);
    ++wake_epoch_; // A lifted shadow can unblock gated work.
    // Only actual casters (conditional branches, indirect jumps) held a
    // shadow; release() was a no-op for the rest.
    if (isCondBranch(inst->inst.op) || inst->inst.op == Opcode::Jalr) {
        flight_recorder_.record(FrEvent::ShadowRelease, cycle_, inst->seq,
                                inst->pc);
        shadowReleaseDelayDist_.sample(cycle_ - inst->dispatchedAt);
    }
    if (!inst->mispredicted)
        return;

    ++branchSquashes_;
    // Repair the speculative global history.
    if (isCondBranch(inst->inst.op)) {
        branch_pred_->repairHistory(inst->ghrSnapshot, inst->actualTaken);
    } else {
        // Indirect jumps never shifted the history; restore the snapshot.
        branch_pred_->repairHistory(inst->ghrSnapshot >> 1,
                                    inst->ghrSnapshot & 1);
    }
    const Addr redirect =
        inst->actualTaken ? inst->actualTarget : inst->pc + 1;
    squashFrom(inst->seq + 1, redirect, SquashReason::BranchMispredict);
}

// ---------------------------------------------------------------------
// Execute: retire functional units, resolve addresses, detect
// violations, verify doppelgangers.
// ---------------------------------------------------------------------

void
OooCore::executeStage()
{
    // exec_pending_ holds issued-but-unfinished instructions in issue
    // order (== program order, since select is oldest-first). Squashed
    // entries are filtered lazily.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < exec_pending_.size(); ++i) {
        const DynInstPtr inst = exec_pending_[i];
        if (inst->squashed) {
            dropLazyRef(inst);
            continue;
        }
        if (inst->execDoneAt > cycle_) {
            exec_pending_[kept++] = inst;
            continue;
        }
        // Leaving the list either way below; a deferred branch re-adds
        // itself to unresolved_branches_.
        --inst->lazyRefs;
        DGSIM_ASSERT(!inst->executed, "double execution");
        inst->executed = true;
        progress_ = true;
        bool squashed_younger = false;
        switch (inst->cls) {
          case OpClass::IntAlu:
          case OpClass::IntMul:
          case OpClass::IntDiv:
            if (inst->prd != kInvalidPhysReg) {
                regfile_.setReady(inst->prd);
                ++wake_epoch_; // Register wakeup.
            }
            inst->completed = true;
            inst->completedAt = cycle_;
            break;
          case OpClass::Branch: {
            if (inst->prd != kInvalidPhysReg) {
                regfile_.setReady(inst->prd);
                ++wake_epoch_; // Register wakeup.
            }
            inst->completedAt = cycle_;
            // Resolution is attempted immediately; if the policy defers
            // it (tainted predicate, out-of-order under DoM+AP), the
            // writeback stage retries every cycle.
            const std::size_t rob_size_before = rob_.size();
            resolveBranch(inst);
            if (!inst->resolved) {
                // Once per deferral (retries are epoch-gated): makes a
                // resolution-wedged pipeline legible in the dump.
                flight_recorder_.record(
                    FrEvent::PropBlocked, cycle_, inst->seq, inst->pc,
                    static_cast<std::uint32_t>(FrGate::Policy));
                insertUnresolved(inst);
            }
            squashed_younger = rob_.size() != rob_size_before;
            break;
          }
          case OpClass::MemRead: {
            inst->addrReady = true;
            const bool had_prediction = inst->dgState == DgState::Predicted;
            dg_unit_->verify(*inst);
            if (had_prediction) {
                if (inst->dgState == DgState::Verified) {
                    flight_recorder_.record(FrEvent::DgVerifyOk, cycle_,
                                            inst->seq, inst->effAddr);
                } else if (inst->dgState == DgState::Mispredicted) {
                    flight_recorder_.record(FrEvent::DgVerifyBad, cycle_,
                                            inst->seq, inst->effAddr);
                }
            }
            break;
          }
          case OpClass::MemWrite: {
            inst->addrReady = true;
            // Address known: the data shadow lifts.
            shadow_tracker_.release(inst->seq);
            ++wake_epoch_; // A lifted shadow can unblock gated work.
            flight_recorder_.record(FrEvent::ShadowRelease, cycle_,
                                    inst->seq, inst->effAddr);
            shadowReleaseDelayDist_.sample(cycle_ - inst->dispatchedAt);
            const std::size_t rob_size_before = rob_.size();
            checkMemOrderViolation(inst);
            squashed_younger = rob_.size() != rob_size_before;
            // Commit-readiness is tracked via addrReady + data ready.
            inst->completed = true;
            inst->completedAt = cycle_;
            break;
          }
          case OpClass::No_OpClass:
            inst->completed = true;
            inst->completedAt = cycle_;
            break;
        }
        if (squashed_younger) {
            // Keep the unprocessed tail (squashed entries in it are
            // filtered next cycle) and stop this scan.
            for (std::size_t j = i + 1; j < exec_pending_.size(); ++j)
                exec_pending_[kept++] = exec_pending_[j];
            break;
        }
    }
    exec_pending_.resize(kept);
}

void
OooCore::checkMemOrderViolation(const DynInstPtr &store)
{
    // A younger load that already propagated a value not obtained from
    // this store (or a store younger than it) read stale data. The LQ
    // is seq-sorted; skip straight past the older loads.
    for (auto it = lqScanStart(store->seq + 1); it != lq_.end(); ++it) {
        const DynInstPtr &load = *it;
        if (load->squashed)
            continue;
        if (!load->completed || !load->addrReady)
            continue;
        if (load->effAddr != store->effAddr)
            continue;
        if (load->fwdFromSeq != kInvalidSeq &&
            load->fwdFromSeq >= store->seq) {
            continue; // Got its value from this store or a younger one.
        }
        ++memOrderSquashes_;
        squashFrom(load->seq, load->pc, SquashReason::MemOrderViolation);
        return;
    }
}

// ---------------------------------------------------------------------
// Memory issue: demand loads first, doppelgangers fill idle ports.
// ---------------------------------------------------------------------

void
OooCore::memoryIssueStage()
{
    unsigned slots = config_.loadPorts;

    // --- Pass 1: demand loads (priority; paper §5 "non-predicted
    // addresses are always prioritized for execution") ------------------
    // Start past the prefix of already-issued loads and count down the
    // ones still awaiting demand issue: most cycles the scan touches
    // only the few actionable entries at the young end of the queue.
    std::size_t pending = lq_unissued_;
    SeqNum first_pending = kInvalidSeq;
    for (auto it = lqScanStart(lq_issue_barrier_); it != lq_.end(); ++it) {
        const DynInstPtr &load = *it;
        if (slots == 0 || pending == 0)
            break;
        if (load->squashed || load->completed || load->memIssued ||
            load->forwarded) {
            continue;
        }
        --pending;
        if (first_pending == kInvalidSeq)
            first_pending = load->seq;
        if (!load->addrReady)
            continue;
        if (load->dgState == DgState::Verified && load->dgAccessIssued)
            continue; // Data comes from the doppelganger access.
        if (load->issueSleepEpoch == wake_epoch_)
            continue; // Gate-blocked; nothing changed since.

        const SpecContext ctx = contextFor(*load);
        if (load->dgState == DgState::Mispredicted &&
            !policy_->dgReplayMayIssue(*load, ctx)) {
            load->issueSleepEpoch = wake_epoch_;
            load->policyBlocked = true;
            flight_recorder_.record(
                FrEvent::IssueBlocked, cycle_, load->seq, load->effAddr,
                static_cast<std::uint32_t>(FrGate::DgReplay));
            continue;
        }
        if (!policy_->loadMayIssue(*load, ctx)) {
            load->issueSleepEpoch = wake_epoch_;
            load->policyBlocked = true;
            flight_recorder_.record(
                FrEvent::IssueBlocked, cycle_, load->seq, load->effAddr,
                static_cast<std::uint32_t>(FrGate::Policy));
            continue;
        }
        if (load->domDelayed && ctx.shadowed) {
            load->issueSleepEpoch = wake_epoch_;
            load->policyBlocked = true;
            flight_recorder_.record(
                FrEvent::IssueBlocked, cycle_, load->seq, load->effAddr,
                static_cast<std::uint32_t>(FrGate::DomWait));
            continue; // DoM: wait until non-speculative.
        }

        // Store-to-load forwarding: the youngest older resolved store
        // with a matching address supplies the value without a cache
        // access.
        bool handled = false;
        for (auto it = sq_.rbegin(); it != sq_.rend(); ++it) {
            const DynInstPtr &store = *it;
            if (store->seq >= load->seq)
                continue;
            if (!store->addrReady || store->effAddr != load->effAddr)
                continue;
            if (regfile_.ready(store->prs2)) {
                load->forwarded = true;
                load->fwdFromSeq = store->seq;
                load->dataAt = cycle_ + 1;
                ++stlForwards_;
                --lq_unissued_;
                progress_ = true;
            } else {
                // Wait for the store data (a register wakeup); either
                // way no cache access.
                load->issueSleepEpoch = wake_epoch_;
                flight_recorder_.record(
                    FrEvent::IssueBlocked, cycle_, load->seq, load->effAddr,
                    static_cast<std::uint32_t>(FrGate::StoreData));
            }
            handled = true;
            break;
        }
        if (handled)
            continue;

        MemAccessFlags flags = policy_->loadAccessFlags(*load, ctx);
        if (load->domDelayed) {
            // Counted per attempt, including MSHR-rejected ones below —
            // a golden counter moves on this tick, so it must never be
            // treated as quiescent (the time warp would compress the
            // per-cycle retry spin and undercount).
            ++domRetries_;
            progress_ = true;
            flags.speculative = false; // Non-speculative re-issue.
        }
        const AccessOutcome outcome =
            hierarchy_->access(load->effAddr, cycle_, flags);
        switch (outcome.status) {
          case AccessStatus::Hit:
          case AccessStatus::Miss:
            load->memIssued = true;
            --lq_unissued_;
            load->dataAt = outcome.completeAt;
            load->l1Hit = outcome.l1Hit;
            load->domDeferredTouch = flags.delayReplacementUpdate &&
                                     outcome.status == AccessStatus::Hit;
            --slots;
            progress_ = true;
            break;
          case AccessStatus::DomDelayed:
            load->domDelayed = true;
            flight_recorder_.record(FrEvent::DomDelay, cycle_, load->seq,
                                    load->effAddr);
            --slots;
            progress_ = true;
            break;
          case AccessStatus::Rejected:
            flight_recorder_.record(FrEvent::MshrReject, cycle_, load->seq,
                                    load->effAddr);
            --slots; // Port spent on the rejected attempt.
            break;
        }
    }
    // First load seen still pending becomes the new issue barrier
    // (conservative if it issued just now); none seen and none left
    // means every current load is past demand issue.
    if (first_pending != kInvalidSeq)
        lq_issue_barrier_ = first_pending;
    else if (lq_unissued_ == 0)
        lq_issue_barrier_ = next_seq_;

    // --- Pass 2: doppelgangers into the remaining slots ------------------
    // Only loads that dispatched with a prediction can ever issue one,
    // so the pass walks the short dg_pending_ list (seq-sorted) instead
    // of the LQ, pruning stale entries as it goes.
    if (!dg_unit_->enabled())
        return;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < dg_pending_.size(); ++i) {
        const DynInstPtr load = dg_pending_[i];
        if (load->squashed) {
            dropLazyRef(load);
            continue;
        }
        // Issued, completed and confirmed-mispredicted loads can never
        // issue a doppelganger again; drop them for good.
        if (load->dgAccessIssued || load->completed ||
            load->dgState == DgState::Mispredicted) {
            --load->lazyRefs;
            continue;
        }
        if (slots == 0) {
            // Ports exhausted: keep the unexamined tail for next cycle.
            for (std::size_t j = i; j < dg_pending_.size(); ++j)
                dg_pending_[kept++] = dg_pending_[j];
            break;
        }
        // Unverified predictions always qualify. A *verified* prediction
        // may still issue if the demand access is being held by DoM: the
        // predicted address is secret-independent either way (§4.6).
        const bool eligible =
            load->dgState == DgState::Predicted ||
            (load->dgState == DgState::Verified && load->domDelayed);
        if (!eligible) {
            dg_pending_[kept++] = load;
            continue;
        }
        const bool shadowed = shadow_tracker_.isShadowed(load->seq);
        MemAccessFlags flags;
        flags.isDoppelganger = true;
        flags.speculative = shadowed;
        // A doppelganger may miss even under DoM (its address cannot
        // depend on a secret, §4.6), but a DoM speculative hit defers
        // its replacement update like any DoM hit (§5.3).
        flags.delayReplacementUpdate =
            config_.scheme == Scheme::Dom && shadowed;
        const AccessOutcome outcome =
            hierarchy_->access(load->dgPredictedAddr, cycle_, flags);
        switch (outcome.status) {
          case AccessStatus::Hit:
          case AccessStatus::Miss:
            load->dgAccessIssued = true;
            load->dgDataAt = outcome.completeAt;
            load->dgL1Hit = outcome.status == AccessStatus::Hit;
            load->dgDeferredTouch = flags.delayReplacementUpdate &&
                                    outcome.status == AccessStatus::Hit;
            ++dg_unit_->issuedDg;
            flight_recorder_.record(FrEvent::DgIssue, cycle_, load->seq,
                                    load->dgPredictedAddr);
            --slots;
            --load->lazyRefs; // Done with the list.
            progress_ = true;
            break;
          case AccessStatus::Rejected:
            flight_recorder_.record(FrEvent::MshrReject, cycle_, load->seq,
                                    load->dgPredictedAddr);
            --slots; // Retry next cycle.
            dg_pending_[kept++] = load;
            break;
          case AccessStatus::DomDelayed:
            DGSIM_PANIC("doppelganger access must never be DoM-delayed");
        }
    }
    dg_pending_.resize(kept);
}

// ---------------------------------------------------------------------
// Issue: wake up and select from the IQ, oldest first.
// ---------------------------------------------------------------------

void
OooCore::startExecution(const DynInstPtr &inst)
{
    const RegValue a = inst->usesRs1 ? regfile_.value(inst->prs1) : 0;
    const RegValue b = inst->usesRs2 ? regfile_.value(inst->prs2) : 0;

    switch (inst->cls) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
        if (inst->prd != kInvalidPhysReg) {
            regfile_.setValue(inst->prd, evalAlu(inst->inst, a, b));
            // Taint propagates through register dataflow (STT).
            const SeqNum root = taint_tracker_.combine(
                inst->usesRs1 ? regfile_.taintRoot(inst->prs1)
                              : kInvalidSeq,
                inst->usesRs2 ? regfile_.taintRoot(inst->prs2)
                              : kInvalidSeq);
            regfile_.setTaintRoot(inst->prd, root);
        }
        break;
      case OpClass::Branch: {
        inst->actualTaken = evalBranchTaken(inst->inst, a, b);
        if (inst->inst.op == Opcode::Jal) {
            inst->actualTarget = static_cast<Addr>(inst->inst.imm);
        } else if (inst->inst.op == Opcode::Jalr) {
            inst->actualTarget = a + static_cast<Addr>(inst->inst.imm);
        } else {
            inst->actualTarget = inst->actualTaken
                                     ? static_cast<Addr>(inst->inst.imm)
                                     : inst->pc + 1;
        }
        const Addr predicted_next = inst->predictedTaken
                                        ? inst->predictedTarget
                                        : inst->pc + 1;
        const Addr actual_next =
            inst->actualTaken ? inst->actualTarget : inst->pc + 1;
        inst->mispredicted = predicted_next != actual_next ||
                             inst->predictedTaken != inst->actualTaken;
        if (inst->prd != kInvalidPhysReg) {
            regfile_.setValue(inst->prd, inst->pc + 1);
            regfile_.setTaintRoot(inst->prd, kInvalidSeq);
        }
        break;
      }
      case OpClass::MemRead:
      case OpClass::MemWrite:
        // AGU: word-aligned effective address (wrong-path addresses may
        // be arbitrary; mask instead of faulting).
        inst->effAddr =
            (a + static_cast<Addr>(inst->inst.imm)) &
            ~static_cast<Addr>(kWordBytes - 1);
        break;
      case OpClass::No_OpClass:
        break;
    }
}

bool
OooCore::mayIssueNow(const DynInstPtr &inst, unsigned alu_used,
                     unsigned muldiv_used, unsigned agu_used) const
{
    // Operand readiness (stores only need the address operand; the
    // data register is read at commit).
    if (inst->usesRs1 && !regfile_.ready(inst->prs1))
        return false;
    if (inst->usesRs2 && !inst->isStore() &&
        !regfile_.ready(inst->prs2)) {
        return false;
    }

    // Functional unit availability.
    switch (inst->cls) {
      case OpClass::IntAlu:
      case OpClass::Branch:
        if (alu_used >= config_.numAlus)
            return false;
        break;
      case OpClass::IntMul:
      case OpClass::IntDiv:
        if (muldiv_used >= config_.numMulDivs)
            return false;
        break;
      case OpClass::MemRead:
      case OpClass::MemWrite:
        if (agu_used >= config_.numAgus)
            return false;
        break;
      case OpClass::No_OpClass:
        break;
    }

    // Scheme gates at the AGU.
    if (inst->isStore()) {
        SpecContext ctx = contextFor(*inst);
        if (!policy_->storeMayIssueAgu(*inst, ctx))
            return false;
    }
    return true;
}

void
OooCore::issueStage()
{
    // A full select pass that issued nothing stays fruitless until a
    // wakeup-relevant event occurs (with zero functional units in use,
    // the FU gates cannot be the blocker).
    if (iq_sleep_epoch_ == wake_epoch_)
        return;

    unsigned total = 0;
    unsigned alu_used = 0;
    unsigned muldiv_used = 0;
    unsigned agu_used = 0;

    // Single pass: oldest-first select, compacting issued entries out
    // of the queue in place (iq_ is in program order and squashes
    // truncate a suffix, so nothing here is ever squashed).
    std::size_t kept = 0;
    const std::size_t n = iq_.size();
    for (std::size_t i = 0; i < n; ++i) {
        if (total >= config_.issueWidth) {
            // Width exhausted: bulk-compact the unexamined tail.
            std::copy(iq_.begin() + static_cast<std::ptrdiff_t>(i),
                      iq_.end(), iq_.begin() + static_cast<std::ptrdiff_t>(kept));
            kept += n - i;
            break;
        }
        const DynInstPtr inst = iq_[i];
        DGSIM_ASSERT(!inst->squashed, "squashed instruction in IQ");
        if (!mayIssueNow(inst, alu_used, muldiv_used, agu_used)) {
            iq_[kept++] = inst;
            continue;
        }

        inst->issued = true;
        inst->issuedAt = cycle_;
        inst->execDoneAt = cycle_ + execLatency(inst->inst.op);
        startExecution(inst);
        ++inst->lazyRefs;
        exec_pending_.push_back(inst);
        ++total;
        switch (inst->cls) {
          case OpClass::IntAlu:
          case OpClass::Branch:
            ++alu_used;
            break;
          case OpClass::IntMul:
          case OpClass::IntDiv:
            ++muldiv_used;
            break;
          case OpClass::MemRead:
          case OpClass::MemWrite:
            ++agu_used;
            break;
          default:
            break;
        }
    }
    iq_.resize(kept);
    if (total == 0)
        iq_sleep_epoch_ = wake_epoch_;
    else
        progress_ = true;
}

// ---------------------------------------------------------------------
// Dispatch: rename and allocate ROB/IQ/LQ/SQ entries.
// ---------------------------------------------------------------------

void
OooCore::dispatchStage()
{
    unsigned dispatched = 0;
    while (dispatched < config_.decodeWidth && !fetch_queue_.empty() &&
           fetch_queue_.front().readyAt <= cycle_) {
        const FetchSlot &slot = fetch_queue_.front();
        const Opcode op = slot.inst.op;
        const OpClass cls = opClass(op);
        const bool needs_iq = cls != OpClass::No_OpClass;

        // Structural hazards: stall dispatch in order.
        if (rob_.size() >= config_.robEntries)
            break;
        if (needs_iq && iq_.size() >= config_.iqEntries)
            break;
        if (cls == OpClass::MemRead && lq_.size() >= config_.lqEntries)
            break;
        if (cls == OpClass::MemWrite && sq_.size() >= config_.sqEntries)
            break;
        const bool has_dest = writesDest(slot.inst);
        if (has_dest && regfile_.freeListEmpty())
            break;

        const DynInstPtr inst = pool_.alloc();
        inst->seq = next_seq_++;
        inst->pc = slot.pc;
        inst->inst = slot.inst;
        inst->cls = cls;
        inst->dispatchedAt = cycle_;
        if (tracing_ && tracer_->shouldArm(committed_count_)) {
            inst->traced = true;
            inst->tsFetch = slot.readyAt - config_.frontendDelay;
            inst->tsDecode = slot.readyAt;
        }
        inst->usesRs1 = readsRs1(slot.inst);
        inst->usesRs2 = readsRs2(slot.inst);
        inst->hasDest = has_dest;
        if (inst->usesRs1)
            inst->prs1 = regfile_.lookup(slot.inst.rs1);
        if (inst->usesRs2)
            inst->prs2 = regfile_.lookup(slot.inst.rs2);
        if (has_dest) {
            auto [fresh, previous] = regfile_.rename(slot.inst.rd);
            inst->prd = fresh;
            inst->prevPrd = previous;
        }

        if (cls == OpClass::Branch) {
            inst->predictedTaken = slot.predictedTaken;
            inst->predictedTarget = slot.predictedTarget;
            inst->ghrSnapshot = slot.ghrBefore;
            // Control shadows: conditional branches and indirect jumps
            // speculate; direct unconditional jumps do not.
            if (isCondBranch(op) || op == Opcode::Jalr)
                shadow_tracker_.cast(inst->seq);
        } else if (cls == OpClass::MemWrite) {
            // Data shadow until the store address resolves.
            shadow_tracker_.cast(inst->seq);
        } else if (cls == OpClass::No_OpClass) {
            inst->completed = true;
            inst->completedAt = cycle_;
        }

        rob_.push_back(inst);
        if (needs_iq) {
            iq_.push_back(inst);
            ++wake_epoch_; // New IQ entry: the select pass must look.
        }
        if (cls == OpClass::MemRead) {
            lq_.push_back(inst);
            ++lq_unissued_;
            ++lq_incomplete_;
            dg_unit_->attachPrediction(*inst);
            if (inst->dgState == DgState::Predicted) {
                flight_recorder_.record(FrEvent::DgPredict, cycle_,
                                        inst->seq, inst->dgPredictedAddr);
                ++inst->lazyRefs;
                dg_pending_.push_back(inst);
            }
        }
        if (cls == OpClass::MemWrite)
            sq_.push_back(inst);

        fetch_queue_.pop_front();
        ++dispatched;
    }
    if (dispatched != 0)
        progress_ = true;
}

// ---------------------------------------------------------------------
// Fetch.
// ---------------------------------------------------------------------

void
OooCore::fetchStage()
{
    if (fetch_halted_ || cycle_ < fetch_stall_until_)
        return;
    // Bound the frontend buffer (fetch-to-rename skid).
    const std::size_t cap =
        static_cast<std::size_t>(config_.fetchWidth) *
        (config_.frontendDelay + 4);
    const std::size_t queued_before = fetch_queue_.size();
    for (unsigned i = 0;
         i < config_.fetchWidth && fetch_queue_.size() < cap; ++i) {
        const Instruction inst = program_.fetch(fetch_pc_);
        FetchSlot slot;
        slot.pc = fetch_pc_;
        slot.inst = inst;
        slot.readyAt = cycle_ + config_.frontendDelay;

        if (isControl(inst.op)) {
            const BranchPrediction prediction =
                branch_pred_->predict(fetch_pc_, inst);
            slot.predictedTaken = prediction.taken;
            slot.predictedTarget = prediction.target;
            slot.ghrBefore = prediction.ghrBefore;
            fetch_queue_.push_back(slot);
            if (prediction.taken) {
                fetch_pc_ = prediction.target;
                break; // Taken-branch fetch break.
            }
            ++fetch_pc_;
        } else {
            fetch_queue_.push_back(slot);
            if (inst.op == Opcode::Halt) {
                fetch_halted_ = true;
                break;
            }
            ++fetch_pc_;
        }
    }
    if (fetch_queue_.size() != queued_before)
        progress_ = true;
}

// ---------------------------------------------------------------------
// Squash.
// ---------------------------------------------------------------------

void
OooCore::squashFrom(SeqNum first_bad, Addr redirect_pc, SquashReason why)
{
    flight_recorder_.record(FrEvent::Squash, cycle_, first_bad, redirect_pc,
                            static_cast<std::uint32_t>(why));
    // Rename rollback, shadow and taint cleanup below can all unblock
    // older gated work; wake every sleeper.
    ++wake_epoch_;
    // IQ/LQ/SQ are in program order, so a squash removes a suffix.
    // Drop their references before the ROB walk recycles the entries.
    while (!iq_.empty() && iq_.back()->seq >= first_bad)
        iq_.pop_back();
    while (!lq_.empty() && lq_.back()->seq >= first_bad) {
        const DynInstPtr load = lq_.back();
        if (!load->completed) {
            --lq_incomplete_;
            if (!load->memIssued && !load->forwarded)
                --lq_unissued_;
        }
        lq_.pop_back();
    }
    while (!sq_.empty() && sq_.back()->seq >= first_bad)
        sq_.pop_back();
    while (!rob_.empty() && rob_.back()->seq >= first_bad) {
        const DynInstPtr inst = rob_.back();
        inst->squashed = true;
        if (inst->traced)
            tracer_->flush(*inst, 0); // Retire tick 0 == squashed.
        // Undo rename youngest-first so RAT state unwinds correctly.
        if (inst->hasDest)
            regfile_.rollback(inst->inst.rd, inst->prd, inst->prevPrd);
        // Idempotent cleanups.
        shadow_tracker_.release(inst->seq);
        if (inst->isLoad()) {
            taint_tracker_.clearRoot(inst->seq);
            dg_unit_->squashLoad(*inst);
        }
        rob_.pop_back();
        // exec_pending_/unresolved_branches_ may still reference the
        // entry; their lazy filters recycle it when they drop it.
        if (inst->lazyRefs == 0)
            pool_.release(inst);
    }

    fetch_queue_.clear();
    fetch_pc_ = redirect_pc;
    fetch_stall_until_ = cycle_ + config_.mispredictPenalty;
    fetch_halted_ = false;
}

// ---------------------------------------------------------------------
// Observability: commit watchdog and wedge-state dump.
// ---------------------------------------------------------------------

namespace
{

const char *
dgStateName(DgState state)
{
    switch (state) {
      case DgState::None: return "none";
      case DgState::Predicted: return "predicted";
      case DgState::Verified: return "verified";
      case DgState::Mispredicted: return "mispredicted";
    }
    return "?";
}

} // namespace

void
OooCore::dumpPipelineState(std::ostream &os)
{
    os << "=== dgsim pipeline state (" << program_.name << " / "
       << config_.label() << ") ===\n";
    os << "cycle " << cycle_ << ", committed " << committed_count_
       << ", last commit at cycle " << last_commit_cycle_ << "\n";
    os << "occupancy: rob " << rob_.size() << "/" << config_.robEntries
       << ", iq " << iq_.size() << "/" << config_.iqEntries << ", lq "
       << lq_.size() << "/" << config_.lqEntries << " (" << lq_unissued_
       << " unissued, " << lq_incomplete_ << " incomplete), sq "
       << sq_.size() << "/" << config_.sqEntries << ", fetchq "
       << fetch_queue_.size() << "\n";
    os << "speculation: " << shadow_tracker_.size()
       << " unresolved shadow(s), oldest caster seq ";
    if (shadow_tracker_.empty())
        os << "-";
    else
        os << shadow_tracker_.oldest();
    os << "; " << taint_tracker_.roots().size() << " live taint root(s)\n";
    os << "l1 mshrs outstanding: " << hierarchy_->l1MshrOutstanding(cycle_)
       << "/" << config_.l1d.numMshrs << "\n";
    if (rob_.empty()) {
        os << "rob head: <empty>\n";
    } else {
        const DynInstPtr head = rob_.front();
        os << "rob head: seq " << head->seq << " pc 0x" << std::hex
           << head->pc << std::dec << "  " << disassemble(head->inst)
           << "\n  flags:";
        if (head->issued)
            os << " issued";
        if (head->executed)
            os << " executed";
        if (head->completed)
            os << " completed";
        if (head->addrReady)
            os << " addrReady";
        if (head->resolved)
            os << " resolved";
        if (head->memIssued)
            os << " memIssued";
        if (head->dataArrived)
            os << " dataArrived";
        if (head->forwarded)
            os << " forwarded";
        if (head->domDelayed)
            os << " domDelayed";
        if (head->policyBlocked)
            os << " policyBlocked";
        os << "\n  dgState " << dgStateName(head->dgState) << ", shadowed "
           << (shadow_tracker_.isShadowed(head->seq) ? "yes" : "no")
           << ", operands tainted "
           << (operandsTainted(*head) ? "yes" : "no") << "\n";
    }
    flight_recorder_.dump(os, 64);
}

void
OooCore::panicDumpThunk(void *ctx)
{
    static_cast<OooCore *>(ctx)->dumpPipelineState(std::cerr);
}

void
OooCore::watchdogFire()
{
    flight_recorder_.record(FrEvent::WatchdogArm, cycle_,
                            rob_.empty() ? 0 : rob_.front()->seq);
    if (config_.watchdogThrows) {
        // Oracle mode: a wedged attacker program is a classifiable
        // outcome (`inconclusive`), not a process-fatal bug. No state
        // dump — the fuzzer may hit thousands of these.
        throw WatchdogError(
            "commit watchdog: no instruction committed for " +
            std::to_string(cycle_ - last_commit_cycle_) + " cycles (cycle " +
            std::to_string(cycle_) + ", " + program_.name + " / " +
            config_.label() + ")");
    }
    // The panic hook (panicDumpThunk) dumps the pipeline state and the
    // flight recorder to stderr before aborting.
    DGSIM_PANIC("commit watchdog: no instruction committed for " +
                std::to_string(cycle_ - last_commit_cycle_) +
                " cycles (cycle " + std::to_string(cycle_) + ", " +
                program_.name + " / " + config_.label() + ")");
}

void
OooCore::jobDeadlineFire()
{
    // Leave a trace in the flight recorder so a later panic dump of a
    // retried run shows the earlier deadline hit, then hand the
    // decision to the caller: the experiment runner treats this as a
    // transient host failure and retries with backoff.
    flight_recorder_.record(FrEvent::WatchdogArm, cycle_,
                            rob_.empty() ? 0 : rob_.front()->seq);
    throw JobTimeoutError(
        program_.name + " / " + config_.label() + ": wall-clock job "
        "timeout of " + std::to_string(config_.jobTimeoutMs) +
        "ms exceeded at cycle " + std::to_string(cycle_) + " (" +
        std::to_string(committed_count_) + " instructions committed)");
}

// ---------------------------------------------------------------------
// External coherence events (paper §4.5).
// ---------------------------------------------------------------------

void
OooCore::externalInvalidate(Addr byte_addr)
{
    hierarchy_->invalidate(byte_addr);
    ++wake_epoch_; // invalSnooped changes propagation outcomes.
    const Addr line = hierarchy_->lineAddr(byte_addr);
    for (const DynInstPtr &load : lq_) {
        if (load->squashed)
            continue;
        // A load that already propagated speculatively read data that
        // another core has now invalidated: squash it (conventional LQ
        // snooping).
        if (load->completed && load->addrReady &&
            hierarchy_->lineAddr(load->effAddr) == line &&
            shadow_tracker_.isShadowed(load->seq)) {
            ++snoopSquashes_;
            squashFrom(load->seq, load->pc, SquashReason::InvalidationSnoop);
            return;
        }
        // Doppelgangers are *not* squashed: the invalidation is noted
        // and takes effect at propagation; it is ignored if the
        // prediction turns out wrong (§4.5).
        if (load->dgAccessIssued &&
            hierarchy_->lineAddr(load->dgPredictedAddr) == line) {
            load->invalSnooped = true;
        }
        // Unpropagated conventional loads re-read the value at
        // propagation time, so no action is needed.
    }
}

} // namespace dgsim
