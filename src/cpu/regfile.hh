/**
 * @file
 * Physical register file, register alias table and free list.
 *
 * Besides value and ready state, each physical register carries the
 * STT taint root: the sequence number of the youngest unsafe load in
 * its dataflow ancestry (kInvalidSeq when untainted). Whether the root
 * is *still* unsafe is decided by the taint tracker in the core; the
 * regfile only stores the root.
 */

#ifndef DGSIM_CPU_REGFILE_HH
#define DGSIM_CPU_REGFILE_HH

#include <array>
#include <vector>

#include "common/log.hh"
#include "common/types.hh"

namespace dgsim
{

/** Physical register file with RAT and free list. */
class RegFile
{
  public:
    /**
     * @param num_phys_regs total physical registers; must exceed
     *        kNumArchRegs.
     */
    explicit RegFile(unsigned num_phys_regs)
        : values_(num_phys_regs, 0),
          ready_(num_phys_regs, 0),
          taint_root_(num_phys_regs, kInvalidSeq)
    {
        DGSIM_ASSERT(num_phys_regs > kNumArchRegs,
                     "need more physical than architectural registers");
        // Architectural register i starts mapped to physical register i.
        for (unsigned i = 0; i < kNumArchRegs; ++i) {
            rat_[i] = static_cast<PhysReg>(i);
            ready_[i] = 1;
        }
        for (unsigned i = kNumArchRegs; i < num_phys_regs; ++i)
            free_list_.push_back(static_cast<PhysReg>(i));
    }

    // --- RAT ------------------------------------------------------------
    PhysReg lookup(RegIndex arch) const { return rat_[arch]; }

    bool freeListEmpty() const { return free_list_.empty(); }

    /** Rename @p arch to a fresh physical register.
     * @return {new preg, previous preg} for rollback/commit bookkeeping.
     */
    std::pair<PhysReg, PhysReg>
    rename(RegIndex arch)
    {
        DGSIM_ASSERT(!free_list_.empty(), "rename with empty free list");
        const PhysReg fresh = free_list_.back();
        free_list_.pop_back();
        const PhysReg previous = rat_[arch];
        rat_[arch] = fresh;
        ready_[fresh] = 0;
        taint_root_[fresh] = kInvalidSeq;
        return {fresh, previous};
    }

    /** Undo a rename during squash (youngest-first order required). */
    void
    rollback(RegIndex arch, PhysReg fresh, PhysReg previous)
    {
        DGSIM_ASSERT(rat_[arch] == fresh, "rollback out of order");
        rat_[arch] = previous;
        free_list_.push_back(fresh);
    }

    /** Release the previous mapping when its overwriter commits. */
    void
    releaseAtCommit(PhysReg previous)
    {
        free_list_.push_back(previous);
    }

    // --- Values / readiness ------------------------------------------------
    RegValue value(PhysReg reg) const { return values_[reg]; }
    void setValue(PhysReg reg, RegValue v) { values_[reg] = v; }

    bool ready(PhysReg reg) const { return ready_[reg] != 0; }
    void setReady(PhysReg reg) { ready_[reg] = 1; }

    SeqNum taintRoot(PhysReg reg) const { return taint_root_[reg]; }
    void setTaintRoot(PhysReg reg, SeqNum root) { taint_root_[reg] = root; }

    /** Architectural value of @p arch via the current RAT (for checks). */
    RegValue archValue(RegIndex arch) const { return values_[rat_[arch]]; }

    unsigned numFree() const
    {
        return static_cast<unsigned>(free_list_.size());
    }

  private:
    std::array<PhysReg, kNumArchRegs> rat_{};
    std::vector<RegValue> values_;
    // Bytes, not vector<bool>: the issue wakeup loop polls readiness
    // for every IQ entry every cycle, and a byte load beats bit math.
    std::vector<std::uint8_t> ready_;
    std::vector<SeqNum> taint_root_;
    std::vector<PhysReg> free_list_;
};

} // namespace dgsim

#endif // DGSIM_CPU_REGFILE_HH
