/**
 * @file
 * The dgsim out-of-order core.
 *
 * A cycle-level model of a wide superscalar pipeline in the style of
 * the gem5 O3 CPU: fetch (with branch prediction) -> rename (RAT +
 * free list) -> dispatch (ROB/IQ/LQ/SQ) -> issue (oldest-first wakeup
 * and select) -> execute -> writeback/propagate -> in-order commit.
 * Wrong-path instructions genuinely execute (including their memory
 * accesses), which is what makes the Spectre-style security tests
 * meaningful.
 *
 * Secure-speculation behaviour is delegated to a SpeculationPolicy and
 * the Doppelganger Loads mechanism to a DoppelgangerUnit, so the
 * pipeline code reads as an unprotected core annotated with a small
 * number of policy decision points.
 */

#ifndef DGSIM_CPU_CORE_HH
#define DGSIM_CPU_CORE_HH

#include <algorithm>
#include <chrono>
#include <deque>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "common/config.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "core/doppelganger.hh"
#include "cpu/dyn_inst.hh"
#include "cpu/regfile.hh"
#include "cpu/shadow_tracker.hh"
#include "isa/functional.hh"
#include "isa/program.hh"
#include "common/log.hh"
#include "memory/hierarchy.hh"
#include "obs/flight_recorder.hh"
#include "obs/pipe_trace.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/stride_table.hh"
#include "secure/policy.hh"
#include "secure/taint_tracker.hh"

namespace dgsim
{

namespace ckpt
{
struct Checkpoint;
} // namespace ckpt

/** Why a squash happened (statistics). */
enum class SquashReason
{
    BranchMispredict,
    MemOrderViolation,
    InvalidationSnoop,
};

/** The out-of-order core. */
class OooCore
{
  public:
    OooCore(const Program &program, const SimConfig &config,
            StatRegistry &stats);
    /// The core keeps a reference; temporaries would dangle.
    OooCore(Program &&, const SimConfig &, StatRegistry &) = delete;
    ~OooCore();

    OooCore(const OooCore &) = delete;
    OooCore &operator=(const OooCore &) = delete;

    /** Advance the whole machine by one cycle. */
    void tick();

    /**
     * Run until HALT commits or a run-control limit is reached.
     * @return committed instructions.
     */
    std::uint64_t run();

    /** True once HALT has committed or a run limit was hit. */
    bool done() const { return done_; }

    /** True only if the program architecturally committed HALT (a run
     * that stopped on maxCycles/maxInstructions stays false). */
    bool halted() const { return halted_; }

    /**
     * Adopt a checkpoint's state before the first cycle: architectural
     * registers (through the identity-mapped reset RAT), data memory,
     * fetch PC and the warm cache/predictor contents. Must be called on
     * a fresh core (fatal once ticking has started) — mid-run state
     * cannot be replaced under in-flight instructions.
     */
    void restoreFromCheckpoint(const ckpt::Checkpoint &checkpoint);

    // --- Introspection ---------------------------------------------------
    Cycle cycle() const { return cycle_; }
    std::uint64_t committed() const { return committed_count_; }
    /** Idle cycles the time-warp layer jumped over (host-side stat). */
    std::uint64_t idleCyclesSkipped() const { return idleSkippedStat_.value(); }
    /** Cycle of the most recent commit (watchdog reference point). */
    Cycle lastCommitCycle() const { return last_commit_cycle_; }
    /** Number of time-warp advances taken (host-side stat). */
    std::uint64_t skipEvents() const { return skipEventsStat_.value(); }
    double
    ipc() const
    {
        return cycle_ == 0 ? 0.0
                           : static_cast<double>(committed_count_) /
                                 static_cast<double>(cycle_);
    }

    /** Architectural register value (through the committed RAT). */
    RegValue archReg(RegIndex arch) const { return regfile_.archValue(arch); }

    /** Committed data memory (compare against the functional oracle). */
    const MemoryImage &dataMemory() const { return data_mem_; }

    MemoryHierarchy &hierarchy() { return *hierarchy_; }
    const MemoryHierarchy &hierarchy() const { return *hierarchy_; }
    const DoppelgangerUnit &doppelganger() const { return *dg_unit_; }
    const StrideTable &strideTable() const { return *stride_table_; }
    const BranchPredictor &branchPredictor() const { return *branch_pred_; }

    /**
     * Model an invalidation arriving from another core (paper §4.5):
     * drops the line everywhere and snoops the load queue.
     */
    void externalInvalidate(Addr byte_addr);

    /** STT taint state (exposed for tests). */
    const TaintTracker &taints() const { return taint_tracker_; }
    const ShadowTracker &shadows() const { return shadow_tracker_; }

    // --- Observability ----------------------------------------------------
    /** Recent µarch events (dumped on panic/watchdog; tests inspect). */
    const FlightRecorder &flightRecorder() const { return flight_recorder_; }
    /** Pipeline-trace records emitted so far (0 when tracing is off). */
    std::uint64_t
    traceRecords() const
    {
        return tracer_ ? tracer_->records() : 0;
    }
    /**
     * One-shot dump of the pipeline's wedge-relevant state (ROB head,
     * queue occupancies, MSHRs, shadows/taints) plus the flight
     * recorder. Invoked by the panic hook and the commit watchdog;
     * public so `dgrun` and tests can trigger it on demand.
     */
    void dumpPipelineState(std::ostream &os);

    // --- DynInst pool introspection (leak/bound checks in tests) ---------
    /** In-flight pool entries right now (bounded by the ROB). */
    std::size_t dynInstPoolLive() const { return pool_.live(); }
    /** Total pool entries ever slab-allocated (must stay bounded). */
    std::size_t dynInstPoolCapacity() const { return pool_.capacity(); }

  private:
    // --- Pipeline stages (called in tick() order) -------------------------
    void commitStage();
    void writebackStage();
    void memoryIssueStage();
    void executeStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // --- Helpers -----------------------------------------------------------
    struct FetchSlot
    {
        Addr pc = 0;
        Instruction inst;
        Cycle readyAt = 0;
        bool predictedTaken = false;
        Addr predictedTarget = 0;
        std::uint64_t ghrBefore = 0;
    };

    /** Build the policy context for @p inst right now. */
    SpecContext contextFor(const DynInst &inst) const;

    /** Is the source-operand taint root of @p inst currently tainted? */
    bool operandsTainted(const DynInst &inst) const;

    /** Compute and latch the result of a just-issued instruction. */
    void startExecution(const DynInstPtr &inst);

    /** Value a load observes: SQ forwarding override or memory.
     * @return nullopt if a matching older store's data is not ready yet
     * (the caller retries next cycle). */
    std::optional<std::pair<RegValue, SeqNum>>
    loadValueNow(const DynInst &inst, Addr addr) const;

    /** Broadcast a load result: preg value/ready (+ STT taint). */
    void propagateLoad(const DynInstPtr &inst, RegValue value);

    /** Resolve an executed branch: release shadow, squash if needed. */
    void resolveBranch(const DynInstPtr &inst);

    /** Store address resolved: detect load-order violations. */
    void checkMemOrderViolation(const DynInstPtr &store);

    /** Squash every instruction with seq >= @p first_bad. */
    void squashFrom(SeqNum first_bad, Addr redirect_pc, SquashReason why);

    /** Per-instruction commit actions; true if it committed. */
    bool commitOne(const DynInstPtr &inst, unsigned &stores_this_cycle);

    // --- Idle-cycle skipping (DESIGN.md §5d) -------------------------------
    /**
     * Earliest future cycle at which any component can change state:
     * min over in-flight FU completions, LQ data arrivals, fetch-queue
     * readiness, the post-squash fetch stall and the memory system's
     * next fill. kInvalidCycle when nothing is pending (a genuinely
     * wedged machine). Spuriously-early horizons are safe (the landing
     * tick just finds nothing to do); late ones would change results,
     * so every contributor must be conservative.
     */
    Cycle nextEventCycle() const;

    /**
     * Warp the clock so the *next* tick() lands exactly on @p target:
     * accounts the skipped span in core.cycles and the sparse
     * occupancy samples per-cycle ticking would have taken (queue
     * sizes are constant across a quiescent span), then re-checks the
     * wall-clock job deadline the per-cycle `& 8191` poll would
     * otherwise miss.
     */
    void skipTo(Cycle target);

    /** Commit watchdog tripped: dump wedge state and panic. */
    [[noreturn]] void watchdogFire();

    /** Wall-clock deadline passed: throw JobTimeoutError (recoverable). */
    [[noreturn]] void jobDeadlineFire();

    /** DGSIM_PANIC hook: dump this core's state to stderr. */
    static void panicDumpThunk(void *ctx);

    /** Seq-ordered insertion into unresolved_branches_. */
    void insertUnresolved(const DynInstPtr &inst);

    /** Operand/FU/policy gates for issuing @p inst this cycle. */
    bool mayIssueNow(const DynInstPtr &inst, unsigned alu_used,
                     unsigned muldiv_used, unsigned agu_used) const;

    /** Drop one lazy-list reference; recycle if squashed and last. */
    void
    dropLazyRef(const DynInstPtr &inst)
    {
        if (--inst->lazyRefs == 0 && inst->squashed)
            pool_.release(inst);
    }

    /** First LQ entry at or past @p barrier (the LQ is seq-sorted). */
    std::deque<DynInstPtr>::iterator
    lqScanStart(SeqNum barrier)
    {
        return std::lower_bound(lq_.begin(), lq_.end(), barrier,
                                [](const DynInstPtr &load, SeqNum seq) {
                                    return load->seq < seq;
                                });
    }

    std::deque<DynInstPtr>::const_iterator
    lqScanStart(SeqNum barrier) const
    {
        return std::lower_bound(lq_.begin(), lq_.end(), barrier,
                                [](const DynInstPtr &load, SeqNum seq) {
                                    return load->seq < seq;
                                });
    }

    const Program &program_;
    const SimConfig config_;
    StatRegistry &stats_;

    // Subsystems.
    std::unique_ptr<SpeculationPolicy> policy_;
    std::unique_ptr<MemoryHierarchy> hierarchy_;
    std::unique_ptr<StrideTable> stride_table_;
    std::unique_ptr<BranchPredictor> branch_pred_;
    std::unique_ptr<DoppelgangerUnit> dg_unit_;
    RegFile regfile_;
    ShadowTracker shadow_tracker_;
    TaintTracker taint_tracker_;

    /// Recycling allocator for in-flight instruction state. Declared
    /// before the queues holding handles into it so it outlives them.
    DynInstPool pool_;

    // Committed architectural memory (stores write here at commit).
    MemoryImage data_mem_;

    // Optional lockstep oracle (config_.checkArchState).
    std::unique_ptr<FunctionalCore> oracle_;

    // Pipeline state.
    std::deque<FetchSlot> fetch_queue_;
    std::deque<DynInstPtr> rob_;
    std::vector<DynInstPtr> iq_;
    std::deque<DynInstPtr> lq_;
    std::deque<DynInstPtr> sq_;
    /// Issued instructions whose functional unit has not finished yet
    /// (avoids scanning the whole ROB every cycle).
    std::vector<DynInstPtr> exec_pending_;
    /// Executed branches awaiting resolution (policy-deferred).
    std::vector<DynInstPtr> unresolved_branches_;
    /// Loads carrying an address prediction whose doppelganger access
    /// is still outstanding (pass 2 of the memory-issue stage walks
    /// this short list instead of the whole LQ). Dispatch order == seq
    /// order; squashed/stale entries are filtered lazily.
    std::vector<DynInstPtr> dg_pending_;
    /// LQ entries that still need a demand issue (neither issued,
    /// forwarded nor completed). Lets the memory-issue stage skip its
    /// LQ scan on the many cycles where every load is already in
    /// flight or done.
    std::size_t lq_unissued_ = 0;
    /// LQ entries whose value has not propagated yet. Completed loads
    /// linger in the LQ until commit; counting the incomplete ones
    /// lets every LQ scan stop at the last entry that can still do
    /// work instead of walking the whole queue.
    std::size_t lq_incomplete_ = 0;
    /// Scan barriers: every LQ entry with seq below the barrier is
    /// known non-actionable (issued/forwarded/completed for the issue
    /// barrier, completed for the completion barrier), so scans
    /// binary-search to the barrier instead of walking the committed
    /// prefix. Both properties are sticky (a load never becomes
    /// unissued or incomplete again), which keeps the barriers valid
    /// across squashes and commits.
    SeqNum lq_issue_barrier_ = 0;
    SeqNum lq_complete_barrier_ = 0;
    /// Wake epoch: bumped by every event that can turn a previously
    /// blocked issue/propagate/resolve retry into a success (register
    /// becomes ready, shadow released, taint root cleared, squash,
    /// dispatch, external invalidation). Blocked work sleeps on the
    /// current epoch and is skipped until it changes, which turns the
    /// per-cycle retry scans into no-ops on quiescent (stalled) cycles.
    /// Starts at 1 so a default-initialised sleep stamp of 0 never
    /// matches.
    std::uint64_t wake_epoch_ = 1;
    /// Epoch at which a full IQ select pass issued nothing.
    std::uint64_t iq_sleep_epoch_ = 0;

    Addr fetch_pc_;
    Cycle fetch_stall_until_ = 0;
    bool fetch_halted_ = false;

    Cycle cycle_ = 0;
    SeqNum next_seq_ = 1;
    std::uint64_t committed_count_ = 0;
    bool done_ = false;
    bool halted_ = false;
    bool stats_reset_done_ = false;
    /// Did the current tick change any simulated state? Cleared at tick
    /// entry; set by every stage action (commit, data arrival, FU
    /// retirement, memory issue, select, dispatch, fetch) and by any
    /// wake-epoch bump. A tick that ends with this false is quiescent:
    /// re-ticking until nextEventCycle() is provably a no-op, which is
    /// what licenses the time warp in run().
    bool progress_ = false;

    // --- Observability ----------------------------------------------------
    /// Pipeline tracer (config_.tracePath); null when tracing is off.
    std::unique_ptr<PipeTracer> tracer_;
    /// Cached `tracer_ && tracer_->ok()`: the only tracing state the
    /// per-instruction dispatch path ever tests.
    bool tracing_ = false;
    /// Ring buffer of recent µarch events, dumped on panic/watchdog.
    FlightRecorder flight_recorder_;
    /// Cycle of the most recent commit (commit watchdog reference).
    Cycle last_commit_cycle_ = 0;
    /// Wall-clock deadline (config_.jobTimeoutMs); armed at run() start
    /// and polled at the watchdog site every 8192 cycles.
    bool job_deadline_armed_ = false;
    std::chrono::steady_clock::time_point job_deadline_;

    // Statistics.
    Counter &committedInstrs_;
    Counter &committedLoadsStat_;
    Counter &committedStores_;
    Counter &committedBranches_;
    Counter &branchSquashes_;
    Counter &memOrderSquashes_;
    Counter &snoopSquashes_;
    Counter &stlForwards_;
    Counter &domRetries_;
    Counter &prefetchesIssued_;
    Counter &cyclesStat_;

    // Host-side skip accounting (StatRegistry host counters: visible
    // through hostGet()/SimResult but never in the golden counter dump,
    // so skip-on and skip-off runs dump byte-identically).
    Counter &idleSkippedStat_;
    Counter &skipEventsStat_;

    // Distribution stats (separate dump section; never part of the
    // counter dump, so golden byte-compares are unaffected).
    Histogram &loadToUseDist_;
    Histogram &shadowReleaseDelayDist_;
    Histogram &robOccupancyDist_;
    Histogram &iqOccupancyDist_;
    Histogram &lqOccupancyDist_;

    /// Routes DGSIM_PANIC/DGSIM_ASSERT on this thread through
    /// dumpPipelineState. Declared last: it is constructed after (and
    /// destroyed before) every member the dump reads.
    PanicHookGuard panic_hook_;
};

} // namespace dgsim

#endif // DGSIM_CPU_CORE_HH
