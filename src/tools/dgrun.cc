/**
 * @file
 * dgrun — the experiment-runner CLI.
 *
 * Runs a (workload x scheme x AP) sweep of the evaluation suite across
 * N threads and serializes results to JSONL/CSV sinks. `--verify` runs
 * the same sweep single-threaded as well, byte-compares the serialized
 * results, and reports the parallel speedup — the determinism check the
 * runner's ordering guarantee is held to.
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/buildinfo.hh"
#include "common/signals.hh"
#include "fuzz/dgasm.hh"
#include "fuzz/fuzz.hh"
#include "obs/pipe_trace.hh"
#include "security/leak.hh"
#include "runner/campaign.hh"
#include "runner/coordinator.hh"
#include "runner/experiment_runner.hh"
#include "runner/journal.hh"
#include "runner/result_sink.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "sim/simulator.hh"
#include "telemetry/report.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace.hh"
#include "workloads/suite.hh"

namespace
{

using namespace dgsim;
using namespace dgsim::runner;

constexpr const char *kUsage = R"(usage: dgrun [options]

Run the evaluation suite over the scheme x AP matrix on a thread pool.

options:
  --suite NAMES       comma-separated workload names (default: all)
  --schemes NAMES     subset of unsafe,nda-p,stt,dom (default: all)
  --ap MODE           address prediction: on, off or both (default: both)
  --instructions N    per-run instruction budget (default: 100000)
  --threads N         worker threads (default: hardware concurrency)
  --jsonl FILE        write results as JSON lines
  --csv FILE          write results as CSV
  --verify            also run single-threaded; byte-compare results and
                      report the parallel speedup

fault tolerance:
  --journal FILE      append one JSONL record per completed job (flushed
                      immediately): the crash/resume journal
  --resume FILE       skip jobs recorded ok in FILE, re-run the rest and
                      merge; implies --journal FILE (appends to it)
  --retries N         extra attempts for transient host failures —
                      injected faults, job timeouts (default 2; sim
                      errors are never retried)
  --retry-base-ms N   first retry delay; doubles per retry, capped at
                      5000ms (default 100)
  --job-timeout SECS  per-job wall-clock timeout; expiry counts as a
                      transient failure (0 = off, default)
  --inject-fail R,S   fault injection: each attempt fails with
                      probability R (0..1) keyed by deterministic seed S
  --journal-sync      fsync the journal after every record (survives
                      power loss, not just SIGKILL; default off)
  --progress SECS     heartbeat: every SECS seconds print one line with
                      jobs done/total, jobs/sec and ETA (single atomic
                      fwrite, so lines never interleave)
  --no-host-metrics   omit the per-run "host" object from --jsonl output
                      (use when byte-comparing results across runs)

sharded campaigns (fleet-scale sweeps):
  --shard I/N         run only shard I of N (0-based). Membership is a
                      pure function of job identity (jobKey hash mod N),
                      so any two invocations of the same sweep agree on
                      it regardless of thread count or expansion order
  --list-jobs         print shard/workload/config/key for every selected
                      job and exit; with --campaign F the sweep and shard
                      count come from the manifest
  --campaign-init F   write a campaign manifest to F (sweep spec,
                      budgets, seed, shard count, expected job-key set)
                      and exit; combine with --shards and the usual
                      sweep/fault-tolerance flags
  --shards N          shard count recorded by --campaign-init (default 1)
  --campaign F        run the campaign in F: fork worker processes, each
                      drains its own shards then steals unclaimed jobs
                      from the slowest shard; journals merge by identity
                      and re-running an incomplete campaign resumes it
  --workers K         worker process count for --campaign (default: the
                      manifest's shard count)
  --merge J1 J2 ...   fold per-shard/worker journals by job identity into
                      the single-process result set for the sweep the
                      other flags select (or --campaign F's manifest);
                      write it with --jsonl/--csv, or --journal OUT for
                      a merged journal --resume accepts
  --campaign-bench    measure campaign jobs/sec at 1, 2, 4 and 8 workers
                      and write BENCH_campaign_scaling.json (warns below
                      3x at 4 workers; never fails on throughput)
  --campaign-bench-out F
                      JSON path for --campaign-bench

leak fuzzing (relational attacker-program oracle):
  --fuzz N            fuzzing campaign: synthesize N attacker-program
                      candidates and run each through the relational
                      leak oracle (every scheme x AP column, seeded
                      secret-pair list). Hits get a replayable .dgasm
                      repro + a minimized gadget; confirmed leaks under
                      a secure scheme exit with code 4. Composes with
                      --journal/--resume/--shard/--campaign-init/
                      --campaign/--merge: candidates are ordinary jobs
  --fuzz-seed S       campaign seed; every candidate is a pure function
                      of (seed, index), so one seed is one byte-for-byte
                      reproducible campaign (default 1)
  --fuzz-dir DIR      directory for .dgasm repro artifacts (default
                      fuzz_repros)
  --fuzz-findings F   findings JSONL path, one record per leaking
                      (candidate, config); deterministic and
                      byte-identical across re-runs and --workers
                      counts (default fuzz_findings.jsonl)
  --fuzz-minimize K   also minimize up to K *expected* Unsafe-scheme
                      hits (confirmed secure-scheme findings are always
                      all minimized; default 2)
  --fuzz-replay FILE  replay one .dgasm repro through the full oracle,
                      print the per-configuration verdict table and
                      exit (code 4 when a secure scheme leaks)

fleet telemetry (host-side only; results stay byte-identical):
  --telemetry FILE    span tracing: write one merged Chrome trace-event
                      JSON file (load it in https://ui.perfetto.dev or
                      chrome://tracing; one track per worker process).
                      Spans cover campaign, passes, workers, jobs and
                      phases (ffwd-warm, detailed-window, retry-backoff,
                      journal-append, steal)
  --metrics FILE[,SECS]
                      write a Prometheus-text metrics snapshot to FILE
                      every SECS seconds (default 5): jobs done/failed/
                      retried/stolen, instructions, KIPS, peak RSS,
                      per-workload throughput, queue depth
  --report J1 J2 ...  straggler/latency report from completion journals
                      (+ the --telemetry FILE trace when given): p50/p95/
                      p99 job wall-time per workload and per config,
                      retry storms, steal imbalance, worker coverage and
                      the recovery-pass timeline
  --validate-telemetry FILE
                      strict-parse and structurally validate a merged
                      trace-event file, then exit
  --perf              host-throughput mode: run the sweep on ONE thread,
                      time each config and write BENCH_host_throughput.json
                      (simulated KIPS per config and per workload,
                      idle-skip accounting, wall-clock, build type)
  --perf-out FILE     JSON path for --perf (default BENCH_host_throughput.json)
  --no-skip           disable event-driven idle-cycle skipping and tick
                      every cycle. Results are byte-identical either way
                      (enforced by golden_stats_test); this exists for
                      byte-compare experiments and skip-layer debugging
  --skip-bench        run one job (select it like --ffwd-bench) twice —
                      idle skip on, then off — verify identical results
                      and write BENCH_idle_skip.json (warns below the
                      1.5x speedup target; never fails on throughput)
  --skip-bench-out F  JSON path for --skip-bench (implies --skip-bench)
  --quiet             suppress the progress line
  --list              list available workloads and exit
  --help              show this message

sampled simulation (checkpoint / fast-forward):
  --ffwd N            fast-forward N instructions functionally (caches and
                      predictors warmed) before the detailed window;
                      --instructions then bounds the detailed window only
  --sample I,D        sampling: alternate functional skip with detailed
                      windows of D instructions every I, until
                      --instructions total (ffwd + detailed) executed
  --ckpt-save F@INST  snapshot the run at instruction INST (must land in a
                      fast-forward region) into checkpoint file F;
                      needs a one-job sweep
  --ckpt-restore F    resume from checkpoint file F instead of
                      re-executing the prefix; needs a one-job sweep
  --tier NAME         workload tier when --suite is not given: default
                      (the paper suite), long (>= 1M-instruction
                      fast-forward targets) or all
  --ffwd-bench        measure ffwd-vs-detailed end-to-end speedup for a
                      one-job sweep with --ffwd and write
                      BENCH_ffwd_throughput.json (warns below 10x)
  --ffwd-bench-out F  JSON path for --ffwd-bench (implies --ffwd-bench)

observability:
  --trace FILE        write an O3PipeView pipeline trace ("-" = stdout;
                      view with Konata or gem5's o3-pipeview.py). The
                      sweep must select exactly one workload x config.
  --trace-start N     start tracing after N committed instructions
  --trace-insts N     trace at most N instructions (0 = no limit)
  --validate-trace F  parse + validate an O3PipeView trace file and exit
  --watchdog N        commit-watchdog threshold in cycles; 0 disables
                      (default 100000)
  --wedge             debug: run under a never-resolving policy so the
                      pipeline wedges and the watchdog dumps the flight
                      recorder (the process aborts; expect a core dump)
  --dists             print each job's distribution stats after the
                      summary table
)";

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "dgrun: %s\n%s", msg.c_str(), kUsage);
    std::exit(2);
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::stringstream ss(text);
    std::string part;
    while (std::getline(ss, part, ','))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

std::uint64_t
parseCount(const std::string &text, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || *end != '\0' || errno == ERANGE || value == 0)
        usageError(std::string(flag) + " needs a positive integer, got '" +
                   text + "'");
    return value;
}

std::uint64_t
parseCountOrZero(const std::string &text, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || *end != '\0' || errno == ERANGE)
        usageError(std::string(flag) + " needs a non-negative integer, "
                                       "got '" + text + "'");
    return value;
}

Scheme
parseScheme(const std::string &name)
{
    if (name == "unsafe")
        return Scheme::Unsafe;
    if (name == "nda-p" || name == "ndap" || name == "nda")
        return Scheme::NdaP;
    if (name == "stt")
        return Scheme::Stt;
    if (name == "dom")
        return Scheme::Dom;
    usageError("unknown scheme '" + name + "'");
}

struct Options
{
    std::vector<std::string> workloadNames; // Empty = whole suite.
    std::vector<Scheme> schemes = {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt,
                                   Scheme::Dom};
    std::vector<bool> apModes = {false, true};
    std::uint64_t instructions = 100'000;
    unsigned threads = 0; // 0 = hardware concurrency.
    std::string jsonlPath;
    std::string csvPath;
    bool verify = false;
    bool perf = false;
    std::string perfOutPath = "BENCH_host_throughput.json";
    bool idleSkip = true;
    bool skipBench = false;
    std::string skipBenchOutPath = "BENCH_idle_skip.json";
    bool quiet = false;

    // Sampled simulation.
    std::uint64_t ffwdInstructions = 0;
    std::uint64_t sampleInterval = 0;
    std::uint64_t sampleDetail = 0;
    std::string ckptSavePath;
    std::uint64_t ckptSaveInst = 0;
    std::string ckptRestorePath;
    std::string tier = "default";
    bool ffwdBench = false;
    std::string ffwdBenchOutPath = "BENCH_ffwd_throughput.json";

    // Fault tolerance.
    std::string journalPath;
    std::string resumePath;
    unsigned retries = 2;
    std::uint64_t retryBaseMs = 100;
    std::uint64_t jobTimeoutSec = 0;
    double injectFailRate = 0.0;
    std::uint64_t injectFailSeed = 0;
    bool hostMetrics = true;
    bool journalSync = false;
    double heartbeatSec = 0.0;

    // Sharded campaigns.
    unsigned shardIndex = 0;
    unsigned shardCount = 0; // 0 = no shard filter.
    bool listJobs = false;
    std::string campaignInitPath;
    unsigned shards = 1;
    std::string campaignPath;
    unsigned workers = 0; // 0 = manifest shard count.
    std::vector<std::string> mergePaths;
    bool merge = false;
    bool campaignBench = false;
    std::string campaignBenchOutPath = "BENCH_campaign_scaling.json";

    // Leak fuzzing.
    std::uint64_t fuzzCount = 0; // 0 = not a fuzzing run.
    std::uint64_t fuzzSeed = 1;
    std::string fuzzDir = "fuzz_repros";
    std::string fuzzFindingsPath = "fuzz_findings.jsonl";
    unsigned fuzzMinimize = 2;
    std::string fuzzReplayPath;

    // Fleet telemetry.
    std::string telemetryPath;
    std::string metricsPath;
    double metricsPeriodSec = 5.0;
    bool report = false;
    std::vector<std::string> reportPaths;
    std::string validateTelemetryPath;

    // Observability.
    std::string tracePath;
    std::uint64_t traceStart = 0;
    std::uint64_t traceInsts = 0;
    std::string validateTracePath;
    std::uint64_t watchdogCycles = 100'000;
    bool wedge = false;
    bool dists = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options options;
    auto next = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs an argument");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (arg == "--list") {
            for (const auto &w : workloads::extendedSuite())
                std::printf("%-14s %-9s %-8s %s\n", w.name.c_str(),
                            w.suite.c_str(), w.tier.c_str(),
                            w.pattern.c_str());
            std::exit(0);
        } else if (arg == "--suite") {
            options.workloadNames = splitCommas(next(i, "--suite"));
            if (options.workloadNames.empty())
                usageError("--suite needs at least one workload name");
        } else if (arg == "--schemes") {
            options.schemes.clear();
            for (const std::string &name :
                 splitCommas(next(i, "--schemes")))
                options.schemes.push_back(parseScheme(name));
            if (options.schemes.empty())
                usageError("--schemes needs at least one scheme");
        } else if (arg == "--ap") {
            const std::string mode = next(i, "--ap");
            if (mode == "on")
                options.apModes = {true};
            else if (mode == "off")
                options.apModes = {false};
            else if (mode == "both")
                options.apModes = {false, true};
            else
                usageError("--ap must be on, off or both");
        } else if (arg == "--instructions") {
            options.instructions = parseCount(next(i, "--instructions"),
                                              "--instructions");
        } else if (arg == "--threads") {
            options.threads = static_cast<unsigned>(
                parseCount(next(i, "--threads"), "--threads"));
        } else if (arg == "--jsonl") {
            options.jsonlPath = next(i, "--jsonl");
        } else if (arg == "--csv") {
            options.csvPath = next(i, "--csv");
        } else if (arg == "--verify") {
            options.verify = true;
        } else if (arg == "--journal") {
            options.journalPath = next(i, "--journal");
        } else if (arg == "--resume") {
            options.resumePath = next(i, "--resume");
        } else if (arg == "--retries") {
            options.retries = static_cast<unsigned>(
                parseCountOrZero(next(i, "--retries"), "--retries"));
        } else if (arg == "--retry-base-ms") {
            options.retryBaseMs =
                parseCountOrZero(next(i, "--retry-base-ms"),
                                 "--retry-base-ms");
        } else if (arg == "--job-timeout") {
            options.jobTimeoutSec =
                parseCountOrZero(next(i, "--job-timeout"), "--job-timeout");
        } else if (arg == "--inject-fail") {
            const std::string spec = next(i, "--inject-fail");
            const std::size_t comma = spec.find(',');
            if (comma == std::string::npos)
                usageError("--inject-fail needs RATE,SEED (e.g. 0.3,42)");
            errno = 0;
            char *end = nullptr;
            options.injectFailRate =
                std::strtod(spec.substr(0, comma).c_str(), &end);
            if (*end != '\0' || errno == ERANGE ||
                options.injectFailRate < 0.0 || options.injectFailRate > 1.0)
                usageError("--inject-fail rate must be in [0, 1], got '" +
                           spec.substr(0, comma) + "'");
            options.injectFailSeed =
                parseCountOrZero(spec.substr(comma + 1), "--inject-fail seed");
        } else if (arg == "--no-host-metrics") {
            options.hostMetrics = false;
        } else if (arg == "--journal-sync") {
            options.journalSync = true;
        } else if (arg == "--progress") {
            const std::string spec = next(i, "--progress");
            errno = 0;
            char *end = nullptr;
            options.heartbeatSec = std::strtod(spec.c_str(), &end);
            if (spec.empty() || *end != '\0' || errno == ERANGE ||
                options.heartbeatSec <= 0.0)
                usageError("--progress needs a positive number of "
                           "seconds, got '" + spec + "'");
        } else if (arg == "--shard") {
            const std::string spec = next(i, "--shard");
            const std::size_t slash = spec.find('/');
            if (slash == std::string::npos)
                usageError("--shard needs I/N (e.g. 0/4)");
            options.shardIndex = static_cast<unsigned>(parseCountOrZero(
                spec.substr(0, slash), "--shard index"));
            options.shardCount = static_cast<unsigned>(
                parseCount(spec.substr(slash + 1), "--shard count"));
            if (options.shardIndex >= options.shardCount)
                usageError("--shard index must be below the shard count "
                           "(0-based), got '" + spec + "'");
        } else if (arg == "--list-jobs") {
            options.listJobs = true;
        } else if (arg == "--campaign-init") {
            options.campaignInitPath = next(i, "--campaign-init");
        } else if (arg == "--shards") {
            options.shards = static_cast<unsigned>(
                parseCount(next(i, "--shards"), "--shards"));
        } else if (arg == "--campaign") {
            options.campaignPath = next(i, "--campaign");
        } else if (arg == "--workers") {
            options.workers = static_cast<unsigned>(
                parseCount(next(i, "--workers"), "--workers"));
        } else if (arg == "--merge") {
            options.merge = true;
            while (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
                options.mergePaths.push_back(argv[++i]);
            if (options.mergePaths.empty())
                usageError("--merge needs at least one journal file");
        } else if (arg == "--fuzz") {
            options.fuzzCount = parseCount(next(i, "--fuzz"), "--fuzz");
        } else if (arg == "--fuzz-seed") {
            options.fuzzSeed =
                parseCountOrZero(next(i, "--fuzz-seed"), "--fuzz-seed");
        } else if (arg == "--fuzz-dir") {
            options.fuzzDir = next(i, "--fuzz-dir");
            if (options.fuzzDir.empty())
                usageError("--fuzz-dir needs a directory path");
        } else if (arg == "--fuzz-findings") {
            options.fuzzFindingsPath = next(i, "--fuzz-findings");
            if (options.fuzzFindingsPath.empty())
                usageError("--fuzz-findings needs a file path");
        } else if (arg == "--fuzz-minimize") {
            options.fuzzMinimize = static_cast<unsigned>(parseCountOrZero(
                next(i, "--fuzz-minimize"), "--fuzz-minimize"));
        } else if (arg == "--fuzz-replay") {
            options.fuzzReplayPath = next(i, "--fuzz-replay");
        } else if (arg == "--telemetry") {
            options.telemetryPath = next(i, "--telemetry");
        } else if (arg == "--metrics") {
            const std::string spec = next(i, "--metrics");
            const std::size_t comma = spec.rfind(',');
            options.metricsPath = spec.substr(0, comma);
            if (comma != std::string::npos) {
                errno = 0;
                char *end = nullptr;
                options.metricsPeriodSec =
                    std::strtod(spec.substr(comma + 1).c_str(), &end);
                if (*end != '\0' || errno == ERANGE ||
                    options.metricsPeriodSec <= 0.0)
                    usageError("--metrics needs FILE[,SECS] with positive "
                               "SECS, got '" + spec + "'");
            }
            if (options.metricsPath.empty())
                usageError("--metrics needs a file path");
        } else if (arg == "--report") {
            options.report = true;
            while (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0)
                options.reportPaths.push_back(argv[++i]);
            if (options.reportPaths.empty())
                usageError("--report needs at least one journal file");
        } else if (arg == "--validate-telemetry") {
            options.validateTelemetryPath =
                next(i, "--validate-telemetry");
        } else if (arg == "--campaign-bench") {
            options.campaignBench = true;
        } else if (arg == "--campaign-bench-out") {
            options.campaignBenchOutPath = next(i, "--campaign-bench-out");
            options.campaignBench = true;
        } else if (arg == "--perf") {
            options.perf = true;
        } else if (arg == "--perf-out") {
            options.perfOutPath = next(i, "--perf-out");
            options.perf = true;
        } else if (arg == "--no-skip") {
            options.idleSkip = false;
        } else if (arg == "--skip-bench") {
            options.skipBench = true;
        } else if (arg == "--skip-bench-out") {
            options.skipBenchOutPath = next(i, "--skip-bench-out");
            options.skipBench = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else if (arg == "--trace") {
            options.tracePath = next(i, "--trace");
        } else if (arg == "--trace-start") {
            options.traceStart =
                parseCountOrZero(next(i, "--trace-start"), "--trace-start");
        } else if (arg == "--trace-insts") {
            options.traceInsts =
                parseCountOrZero(next(i, "--trace-insts"), "--trace-insts");
        } else if (arg == "--validate-trace") {
            options.validateTracePath = next(i, "--validate-trace");
        } else if (arg == "--watchdog") {
            options.watchdogCycles =
                parseCountOrZero(next(i, "--watchdog"), "--watchdog");
        } else if (arg == "--ffwd") {
            options.ffwdInstructions = parseCount(next(i, "--ffwd"),
                                                  "--ffwd");
        } else if (arg == "--sample") {
            const std::string spec = next(i, "--sample");
            const std::size_t comma = spec.find(',');
            if (comma == std::string::npos)
                usageError("--sample needs INTERVAL,DETAIL "
                           "(e.g. 100000,10000)");
            options.sampleInterval =
                parseCount(spec.substr(0, comma), "--sample interval");
            options.sampleDetail =
                parseCount(spec.substr(comma + 1), "--sample detail");
            if (options.sampleDetail > options.sampleInterval)
                usageError("--sample DETAIL must not exceed INTERVAL");
        } else if (arg == "--ckpt-save") {
            const std::string spec = next(i, "--ckpt-save");
            const std::size_t at = spec.rfind('@');
            if (at == std::string::npos || at == 0)
                usageError("--ckpt-save needs FILE@INST "
                           "(e.g. run.ckpt@500000)");
            options.ckptSavePath = spec.substr(0, at);
            options.ckptSaveInst =
                parseCount(spec.substr(at + 1), "--ckpt-save instruction");
        } else if (arg == "--ckpt-restore") {
            options.ckptRestorePath = next(i, "--ckpt-restore");
        } else if (arg == "--tier") {
            options.tier = next(i, "--tier");
            if (options.tier != "default" && options.tier != "long" &&
                options.tier != "all")
                usageError("--tier must be default, long or all");
        } else if (arg == "--ffwd-bench") {
            options.ffwdBench = true;
        } else if (arg == "--ffwd-bench-out") {
            options.ffwdBenchOutPath = next(i, "--ffwd-bench-out");
            options.ffwdBench = true;
        } else if (arg == "--wedge") {
            options.wedge = true;
        } else if (arg == "--dists") {
            options.dists = true;
        } else {
            usageError("unknown option '" + arg + "'");
        }
    }
    return options;
}

SweepSpec
buildSpec(const Options &options)
{
    if (options.fuzzCount != 0) {
        if (!options.workloadNames.empty() || !options.tracePath.empty() ||
            !options.ckptSavePath.empty() ||
            !options.ckptRestorePath.empty() || options.wedge ||
            options.ffwdInstructions != 0 || options.sampleInterval != 0)
            usageError("--fuzz synthesizes its own jobs; it does not "
                       "combine with --suite/--trace/--ckpt-*/--wedge/"
                       "--ffwd/--sample");
        // Mirrors manifestSpec()'s fuzz branch exactly: job identity
        // must be byte-identical between `dgrun --fuzz` and a campaign
        // of the same (count, seed).
        SweepSpec spec;
        SimConfig base = fuzz::oracleBaseConfig();
        base.jobTimeoutMs = options.jobTimeoutSec * 1000;
        spec.configs = {base};
        spec.fuzzCount = options.fuzzCount;
        spec.fuzzSeed = options.fuzzSeed;
        return spec;
    }

    // The shared run-control derivation: campaign workers rebuild their
    // jobs from the manifest through the very same function, so a
    // campaign's jobs are byte-identical to a plain dgrun of the sweep.
    SimConfig base = campaignBaseConfig(
        options.instructions, options.ffwdInstructions,
        options.sampleInterval, options.sampleDetail);
    base.ckptSavePath = options.ckptSavePath;
    base.ckptSaveInst = options.ckptSaveInst;
    base.ckptRestorePath = options.ckptRestorePath;
    if (!base.ckptRestorePath.empty()) {
        // Functional warming replaces the warmup prefix: the detailed
        // window starts measured from its first committed instruction.
        base.warmupInstructions = 0;
    }
    base.tracePath = options.tracePath;
    base.traceStartInst = options.traceStart;
    base.traceMaxInsts = options.traceInsts;
    base.watchdogCycles = options.watchdogCycles;
    base.wedgeNeverResolve = options.wedge;
    base.jobTimeoutMs = options.jobTimeoutSec * 1000;
    // Host-level knob (like --threads): never part of job identity or
    // campaign manifests, so a --no-skip run byte-compares against a
    // skipping one.
    base.idleSkip = options.idleSkip;

    SweepSpec spec;
    if (options.workloadNames.empty()) {
        for (const auto &workload : workloads::extendedSuite())
            if (options.tier == "all" || workload.tier == options.tier)
                spec.workloads.push_back(workload);
    } else {
        for (const std::string &name : options.workloadNames)
            spec.workloads.push_back(workloads::findWorkload(name));
    }
    for (Scheme scheme : options.schemes) {
        for (bool ap : options.apModes) {
            SimConfig config = base;
            config.scheme = scheme;
            config.addressPrediction = ap;
            spec.configs.push_back(config);
        }
    }
    return spec;
}

/** Serialize every outcome as JSONL — the byte-comparison key. */
std::string
serializeAll(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream ss;
    JsonlSink sink(ss);
    for (const JobOutcome &outcome : outcomes)
        sink.consume(outcome);
    return ss.str();
}

/** RunnerOptions for this invocation's fault-tolerance flags. */
RunnerOptions
runnerOptions(const Options &options, unsigned threads)
{
    RunnerOptions ropts;
    ropts.threads = threads;
    ropts.progress = !options.quiet;
    ropts.heartbeatSec = options.heartbeatSec;
    ropts.maxAttempts = options.retries + 1;
    ropts.backoff.baseMs = options.retryBaseMs;
    ropts.injectFailRate = options.injectFailRate;
    ropts.injectFailSeed = options.injectFailSeed;
    ropts.journalPath = !options.resumePath.empty() ? options.resumePath
                                                    : options.journalPath;
    ropts.journalSync = options.journalSync;
    if (!options.resumePath.empty())
        ropts.resume = loadJournal(options.resumePath);
    ropts.cancel = &drainFlag();
    return ropts;
}

std::pair<std::vector<JobOutcome>, double>
timedRun(const std::vector<Job> &jobs, RunnerOptions ropts)
{
    ExperimentRunner runner(std::move(ropts));
    const auto start = std::chrono::steady_clock::now();
    std::vector<JobOutcome> outcomes = runner.run(jobs);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return {std::move(outcomes), elapsed.count()};
}

/** Compact per-job summary on stdout; returns 1 when any job failed. */
int
printSummaryTable(const std::vector<JobOutcome> &outcomes)
{
    int exitCode = 0;
    std::printf("%-14s %-9s %-10s %10s %12s %8s %10s\n", "workload", "suite",
                "config", "cycles", "instructions", "ipc", "status");
    for (const JobOutcome &outcome : outcomes) {
        if (outcome.ok) {
            std::printf("%-14s %-9s %-10s %10llu %12llu %8.3f %10s\n",
                        outcome.workload.c_str(), outcome.suite.c_str(),
                        outcome.configLabel.c_str(),
                        static_cast<unsigned long long>(outcome.result.cycles),
                        static_cast<unsigned long long>(
                            outcome.result.instructions),
                        outcome.result.ipc, "ok");
        } else {
            std::printf("%-14s %-9s %-10s %10s %12s %8s %10s  # %s\n",
                        outcome.workload.c_str(), outcome.suite.c_str(),
                        outcome.configLabel.c_str(), "-", "-", "-", "FAILED",
                        outcome.error.c_str());
            exitCode = 1;
        }
    }
    return exitCode;
}

/** Write the requested --jsonl/--csv files for @p outcomes. */
void
writeSinkFiles(const std::vector<JobOutcome> &outcomes,
               const Options &options)
{
    if (!options.jsonlPath.empty()) {
        std::ofstream file(options.jsonlPath);
        if (!file)
            usageError("cannot open " + options.jsonlPath);
        JsonlSink sink(file, /*host_metrics=*/options.hostMetrics);
        for (const JobOutcome &outcome : outcomes)
            sink.consume(outcome);
        sink.finish();
        std::fprintf(stderr, "[dgrun] wrote %s\n", options.jsonlPath.c_str());
    }
    if (!options.csvPath.empty()) {
        std::ofstream file(options.csvPath);
        if (!file)
            usageError("cannot open " + options.csvPath);
        CsvSink sink(file);
        for (const JobOutcome &outcome : outcomes)
            sink.consume(outcome);
        sink.finish();
        std::fprintf(stderr, "[dgrun] wrote %s\n", options.csvPath.c_str());
    }
}

/**
 * The fuzz post-pass (repros, minimization, findings JSONL) over
 * index-ordered outcomes. Returns 4 — the "confirmed secure-scheme
 * leak" exit code — when any finding survived, else 0.
 */
int
runFuzzPost(const std::vector<JobOutcome> &outcomes, std::uint64_t fuzzSeed,
            const Options &options)
{
    fuzz::PostOptions popts;
    popts.fuzzSeed = fuzzSeed;
    popts.reproDir = options.fuzzDir;
    popts.findingsPath = options.fuzzFindingsPath;
    popts.minimizeExpected = options.fuzzMinimize;
    popts.quiet = options.quiet;
    const fuzz::PostSummary summary =
        fuzz::postProcess(outcomes, popts, std::cerr);
    return summary.findings != 0 ? 4 : 0;
}

/** --fuzz-replay: one .dgasm repro through the full oracle. */
int
runFuzzReplay(const Options &options)
{
    const fuzz::AttackerIr ir = fuzz::loadDgasm(options.fuzzReplayPath);
    const std::vector<security::SecretPair> pairs =
        security::defaultSecretPairs(options.fuzzSeed);
    const std::vector<fuzz::ConfigVerdict> verdicts =
        fuzz::evaluateCandidate(ir, fuzz::oracleBaseConfig(), pairs);

    std::printf("replay %s: %s, %zu instruction(s), %zu secret pair(s)\n",
                options.fuzzReplayPath.c_str(), ir.name.c_str(),
                ir.instructionCount(), pairs.size());
    std::printf("%-10s %-13s %-9s %s\n", "config", "verdict", "class",
                "detail");
    int exitCode = 0;
    for (const fuzz::ConfigVerdict &verdict : verdicts) {
        const security::LeakCheck &check = verdict.check;
        const char *klass = verdict.finding()    ? "FINDING"
                            : verdict.expected   ? "expected"
                            : check.inconclusive() ? "incncl"
                                                   : "clean";
        std::string detail;
        if (check.leaked()) {
            char buf[160];
            std::snprintf(buf, sizeof(buf),
                          "secrets (%llu, %llu) -> digests %016llx vs "
                          "%016llx",
                          static_cast<unsigned long long>(check.secretA),
                          static_cast<unsigned long long>(check.secretB),
                          static_cast<unsigned long long>(check.digestA),
                          static_cast<unsigned long long>(check.digestB));
            detail = buf;
        } else if (check.inconclusive()) {
            detail = check.reason;
        }
        std::printf("%-10s %-13s %-9s %s\n", verdict.configLabel.c_str(),
                    security::verdictName(check.verdict), klass,
                    detail.c_str());
        if (verdict.finding())
            exitCode = 4;
    }
    return exitCode;
}

/** The campaign manifest this invocation's sweep flags describe. */
CampaignManifest
manifestFromOptions(const Options &options)
{
    if (!options.ckptSavePath.empty() || !options.ckptRestorePath.empty() ||
        !options.tracePath.empty() || options.wedge)
        usageError("campaigns do not capture --ckpt-save/--ckpt-restore/"
                   "--trace/--wedge; run those as single jobs");

    CampaignManifest manifest;
    std::string suite;
    for (const std::string &name : options.workloadNames) {
        if (!suite.empty())
            suite += ',';
        suite += name;
    }
    manifest.suite = suite;
    manifest.tier = options.tier;
    std::string schemes;
    for (Scheme scheme : options.schemes) {
        if (!schemes.empty())
            schemes += ',';
        schemes += schemeToken(scheme);
    }
    manifest.schemes = schemes;
    manifest.ap = options.apModes.size() == 2
                      ? "both"
                      : (options.apModes[0] ? "on" : "off");
    manifest.instructions = options.instructions;
    manifest.ffwdInstructions = options.ffwdInstructions;
    manifest.sampleInterval = options.sampleInterval;
    manifest.sampleDetail = options.sampleDetail;
    manifest.fuzzCount = options.fuzzCount;
    manifest.fuzzSeed = options.fuzzSeed;
    manifest.retries = options.retries;
    manifest.retryBaseMs = options.retryBaseMs;
    manifest.jobTimeoutSec = options.jobTimeoutSec;
    manifest.injectFailRate = options.injectFailRate;
    manifest.injectFailSeed = options.injectFailSeed;
    return manifest;
}

/** --campaign-init: pin the sweep into a manifest and exit. */
int
runCampaignInit(const Options &options)
{
    CampaignManifest manifest = manifestFromOptions(options);
    manifest.name = options.campaignInitPath;
    manifest.shards = options.shards;

    const SweepSpec spec = manifestSpec(manifest);
    const std::vector<Job> jobs = spec.expand();
    manifest.jobKeys.reserve(jobs.size());
    for (const Job &job : jobs)
        manifest.jobKeys.push_back(jobKey(job));
    writeManifest(options.campaignInitPath, manifest);

    std::vector<std::size_t> perShard(manifest.shards, 0);
    for (const std::string &key : manifest.jobKeys)
        ++perShard[shardOf(key, manifest.shards)];
    std::fprintf(stderr,
                 "[dgrun] campaign-init: %zu jobs over %u shard(s) -> %s\n",
                 jobs.size(), manifest.shards,
                 options.campaignInitPath.c_str());
    for (unsigned s = 0; s < manifest.shards; ++s)
        std::fprintf(stderr, "[dgrun]   shard %u: %zu job(s)\n", s,
                     perShard[s]);
    return 0;
}

/**
 * --list-jobs: shard membership of the selected sweep, then exit. With
 * --campaign F the sweep and shard count come from the manifest, so the
 * listing shows exactly what the campaign's workers will run.
 */
int
runListJobs(const Options &options)
{
    std::vector<Job> jobs;
    unsigned shards = options.shardCount != 0 ? options.shardCount : 1;
    if (!options.campaignPath.empty()) {
        const CampaignManifest manifest =
            loadManifest(options.campaignPath);
        jobs = manifestSpec(manifest).expand();
        const std::string err = validateManifest(manifest, jobs);
        if (!err.empty())
            usageError("manifest mismatch: " + err);
        if (options.shardCount == 0)
            shards = manifest.shards;
    } else {
        jobs = buildSpec(options).expand();
    }
    if (options.shardCount != 0)
        jobs = filterShard(std::move(jobs), options.shardIndex,
                           options.shardCount);
    std::printf("%-5s %-14s %-10s %s\n", "shard", "workload", "config",
                "key");
    for (const Job &job : jobs) {
        const std::string key = jobKey(job);
        std::printf("%-5u %-14s %-10s %s\n", shardOf(key, shards),
                    job.workload.c_str(), job.config.label().c_str(),
                    key.c_str());
    }
    std::fprintf(stderr, "[dgrun] %zu job(s)%s\n", jobs.size(),
                 options.shardCount != 0 ? " in this shard" : "");
    return 0;
}

/**
 * --merge: fold journals by job identity into the result set of the
 * sweep the other flags (or --campaign F's manifest) select.
 */
int
runMergeMode(const Options &options)
{
    std::vector<Job> jobs;
    std::uint64_t fuzzCount = options.fuzzCount;
    std::uint64_t fuzzSeed = options.fuzzSeed;
    if (!options.campaignPath.empty()) {
        const CampaignManifest manifest =
            loadManifest(options.campaignPath);
        jobs = manifestSpec(manifest).expand();
        const std::string err = validateManifest(manifest, jobs);
        if (!err.empty())
            usageError("manifest mismatch: " + err);
        fuzzCount = manifest.fuzzCount;
        fuzzSeed = manifest.fuzzSeed;
    } else {
        jobs = buildSpec(options).expand();
    }

    const JournalMap merged = mergeJournals(options.mergePaths);
    const std::vector<JobOutcome> outcomes = orderOutcomes(merged, jobs);

    std::size_t missing = 0;
    for (const JobOutcome &outcome : outcomes)
        missing += !outcome.ok && outcome.attempts == 0;
    std::fprintf(stderr,
                 "[dgrun] merge: %zu journal(s), %zu record(s), "
                 "%zu/%zu job(s) present\n",
                 options.mergePaths.size(), merged.size(),
                 outcomes.size() - missing, outcomes.size());

    // --journal OUT: a merged journal any future --resume can load.
    if (!options.journalPath.empty()) {
        std::remove(options.journalPath.c_str());
        JournalWriter writer(options.journalPath,
                             /*host_metrics=*/options.hostMetrics,
                             options.journalSync);
        for (std::size_t i = 0; i < outcomes.size(); ++i)
            if (outcomes[i].attempts != 0)
                writer.record(jobKey(jobs[i]), outcomes[i]);
        std::fprintf(stderr, "[dgrun] wrote merged journal %s\n",
                     options.journalPath.c_str());
    }

    writeSinkFiles(outcomes, options);
    int exitCode = printSummaryTable(outcomes);
    if (missing != 0)
        exitCode = 1;
    if (fuzzCount != 0) {
        // A confirmed secure-scheme leak dominates every other exit
        // condition: it is the one result the campaign exists to find.
        const int fuzzCode = runFuzzPost(outcomes, fuzzSeed, options);
        if (fuzzCode != 0)
            exitCode = fuzzCode;
    }
    return exitCode;
}

/** --campaign: the forked work-stealing coordinator. */
int
runCampaignMode(const Options &options)
{
    const CampaignManifest manifest = loadManifest(options.campaignPath);

    CoordinatorOptions copts;
    copts.workers = options.workers;
    copts.progress = !options.quiet;
    copts.heartbeatSec = options.heartbeatSec;
    copts.journalSync = options.journalSync;

    installDrainHandler();
    CampaignReport report;
    {
        // The top-level span every worker/pass/job span nests under;
        // --report measures coverage against its duration.
        telemetry::ScopedSpan span("campaign", "campaign");
        span.arg("manifest", options.campaignPath);
        report = runCampaign(options.campaignPath, manifest, copts);
    }

    std::fprintf(stderr,
                 "[dgrun] campaign: %zu/%zu ok, %zu failed, %zu missing "
                 "in %.2fs (%.2f jobs/s); %zu stolen, %zu duplicate "
                 "claim(s), %u pass(es), %u worker death(s)\n",
                 report.ok, report.total, report.failed, report.missing,
                 report.seconds,
                 report.seconds > 0.0 ? report.total / report.seconds : 0.0,
                 report.stolen, report.duplicates, report.passes,
                 report.workerDeaths);

    writeSinkFiles(report.outcomes, options);
    int exitCode = printSummaryTable(report.outcomes);
    if (report.missing != 0) {
        std::fprintf(stderr,
                     "[dgrun] campaign incomplete: re-run --campaign %s "
                     "to resume\n",
                     options.campaignPath.c_str());
        exitCode = 1;
    }
    if (manifest.fuzzCount != 0) {
        // A confirmed secure-scheme leak dominates every other exit
        // condition: it is the one result the campaign exists to find.
        const int fuzzCode =
            runFuzzPost(report.outcomes, manifest.fuzzSeed, options);
        if (fuzzCode != 0)
            exitCode = fuzzCode;
    }
    if (report.drained)
        return 130;
    return exitCode;
}

/**
 * --campaign-bench: the scaling curve of the campaign layer. Runs the
 * selected sweep as a fresh campaign at 1, 2, 4 and 8 workers (8
 * shards), timing each, and records jobs/sec per worker count. The
 * 4-worker point carries the >= 3x acceptance target; like every other
 * throughput bench it warns instead of failing — shared hosts are too
 * noisy to gate on.
 */
int
runCampaignBench(const Options &options)
{
    if (!buildinfo::isReleaseBuild())
        std::fprintf(stderr,
                     "[dgrun] warning: build type is '%s', not Release; "
                     "throughput numbers are not comparable\n",
                     buildinfo::kBuildType);

    constexpr unsigned kWorkerCounts[] = {1, 2, 4, 8};
    constexpr unsigned kShards = 8;

    CampaignManifest manifest = manifestFromOptions(options);
    manifest.name = "campaign-bench";
    manifest.shards = kShards;
    const SweepSpec spec = manifestSpec(manifest);
    const std::vector<Job> jobs = spec.expand();
    for (const Job &job : jobs)
        manifest.jobKeys.push_back(jobKey(job));

    const std::string manifestPath =
        options.campaignBenchOutPath + ".manifest";
    writeManifest(manifestPath, manifest);

    std::ofstream out(options.campaignBenchOutPath);
    if (!out)
        usageError("cannot open " + options.campaignBenchOutPath);

    const unsigned cores = std::thread::hardware_concurrency();
    std::fprintf(stderr,
                 "[dgrun] campaign-bench: %zu jobs x {1,2,4,8} workers, "
                 "%u shard(s), %u host core(s), %s build\n",
                 jobs.size(), kShards, cores, buildinfo::kBuildType);

    struct Point
    {
        unsigned workers;
        double seconds;
        double jobsPerSec;
    };
    std::vector<Point> points;
    for (unsigned workers : kWorkerCounts) {
        // Every measurement is a cold campaign: stale worker journals
        // would resume (and measure nothing).
        for (unsigned w = 0; w < kShards; ++w)
            std::remove(workerJournalPath(manifestPath, w).c_str());
        std::remove(claimsPath(manifestPath).c_str());

        CoordinatorOptions copts;
        copts.workers = workers;
        copts.progress = false;
        const CampaignReport report =
            runCampaign(manifestPath, manifest, copts);
        if (report.missing != 0 || report.failed != 0)
            std::fprintf(stderr,
                         "[dgrun] campaign-bench WARNING: %u-worker run "
                         "left %zu missing / %zu failed job(s)\n",
                         workers, report.missing, report.failed);
        const double jobsPerSec =
            report.seconds > 0.0 ? report.total / report.seconds : 0.0;
        points.push_back({workers, report.seconds, jobsPerSec});
        std::fprintf(stderr,
                     "[dgrun] campaign-bench: %u worker(s): %.2fs, "
                     "%.2f jobs/s\n",
                     workers, report.seconds, jobsPerSec);
    }

    const double base = points[0].jobsPerSec;
    double speedup4 = 0.0;
    out << "{\n"
        << "  \"benchmark\": \"campaign_scaling\",\n"
        << "  \"build_type\": \"" << buildinfo::kBuildType << "\",\n"
        << "  \"native_arch\": "
        << (buildinfo::kNativeArch ? "true" : "false") << ",\n"
        << "  \"host_cores\": " << cores << ",\n"
        << "  \"shards\": " << kShards << ",\n"
        << "  \"jobs\": " << jobs.size() << ",\n"
        << "  \"instructions_per_job\": " << options.instructions << ",\n"
        << "  \"points\": [\n";
    char buffer[256];
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double speedup =
            base > 0.0 ? points[i].jobsPerSec / base : 0.0;
        if (points[i].workers == 4)
            speedup4 = speedup;
        std::snprintf(buffer, sizeof(buffer),
                      "    {\"workers\": %u, \"wall_seconds\": %.6f, "
                      "\"jobs_per_sec\": %.3f, \"speedup_vs_1\": %.2f}%s\n",
                      points[i].workers, points[i].seconds,
                      points[i].jobsPerSec, speedup,
                      i + 1 < points.size() ? "," : "");
        out << buffer;
    }
    std::snprintf(buffer, sizeof(buffer),
                  "  ],\n  \"speedup_4_workers\": %.2f\n}\n", speedup4);
    out << buffer;

    std::fprintf(stderr,
                 "[dgrun] campaign-bench: 4-worker speedup %.2fx; wrote "
                 "%s\n",
                 speedup4, options.campaignBenchOutPath.c_str());
    if (speedup4 < 3.0)
        std::fprintf(stderr,
                     "[dgrun] campaign-bench WARNING: 4-worker speedup "
                     "%.2fx is below the 3x target (needs >= 4 host "
                     "cores; this host has %u)\n",
                     speedup4, cores);
    return 0;
}

/**
 * --perf: host-throughput mode. Runs every job of the sweep serially
 * on the calling thread, timing each run, so the numbers measure the
 * simulator's cycle loop rather than thread-pool scheduling. Warmup
 * stat resets are disabled so "simulated instructions" counts every
 * instruction the core committed. Results are aggregated per config
 * column and written as JSON for trend tracking in CI.
 */
int
runPerfMode(const Options &options)
{
    if (!buildinfo::isReleaseBuild())
        std::fprintf(stderr,
                     "[dgrun] warning: build type is '%s', not Release; "
                     "throughput numbers are not comparable\n",
                     buildinfo::kBuildType);

    SweepSpec spec = buildSpec(options);
    for (SimConfig &config : spec.configs)
        config.warmupInstructions = 0;
    const std::vector<Job> jobs = spec.expand();

    std::ofstream out(options.perfOutPath);
    if (!out)
        usageError("cannot open " + options.perfOutPath);

    std::fprintf(stderr,
                 "[dgrun] perf: %zu workloads x %zu configs, %llu "
                 "instructions each, 1 thread, %s build\n",
                 spec.workloads.size(), spec.configs.size(),
                 static_cast<unsigned long long>(options.instructions),
                 buildinfo::kBuildType);

    struct PerfTotals
    {
        std::string label;
        std::size_t runs = 0;
        double seconds = 0.0;
        std::uint64_t instructions = 0;
        std::uint64_t cycles = 0;
        std::uint64_t idleCyclesSkipped = 0;
        std::uint64_t skipEvents = 0;
    };
    std::vector<PerfTotals> totals(spec.configs.size());
    std::vector<PerfTotals> perWorkload(spec.workloads.size());

    for (const Job &job : jobs) {
        const auto start = std::chrono::steady_clock::now();
        const SimResult result = runProgram(*job.program, job.config);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        // Expansion order is workloads outer, configs inner.
        const auto account = [&](PerfTotals &bucket,
                                 const std::string &label) {
            bucket.label = label;
            ++bucket.runs;
            bucket.seconds += elapsed.count();
            bucket.instructions += result.instructions;
            bucket.cycles += result.cycles;
            bucket.idleCyclesSkipped += result.idleCyclesSkipped;
            bucket.skipEvents += result.skipEvents;
        };
        account(totals[job.index % spec.configs.size()],
                job.config.label());
        account(perWorkload[job.index / spec.configs.size()],
                job.workload);
    }

    const auto kips = [](std::uint64_t instructions, double seconds) {
        return seconds > 0.0
                   ? static_cast<double>(instructions) / seconds / 1000.0
                   : 0.0;
    };

    double total_seconds = 0.0;
    std::uint64_t total_instructions = 0;
    std::uint64_t total_skipped = 0;
    std::uint64_t total_skip_events = 0;
    std::size_t total_runs = 0;

    char buffer[512];
    const auto emitRows = [&](const std::vector<PerfTotals> &rows) {
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const PerfTotals &bucket = rows[i];
            std::snprintf(
                buffer, sizeof(buffer),
                "    {\"label\": \"%s\", \"runs\": %zu, "
                "\"wall_seconds\": %.6f, "
                "\"simulated_instructions\": %llu, "
                "\"simulated_cycles\": %llu, "
                "\"idleCyclesSkipped\": %llu, "
                "\"skipEvents\": %llu, "
                "\"kips\": %.1f}%s\n",
                bucket.label.c_str(), bucket.runs, bucket.seconds,
                static_cast<unsigned long long>(bucket.instructions),
                static_cast<unsigned long long>(bucket.cycles),
                static_cast<unsigned long long>(bucket.idleCyclesSkipped),
                static_cast<unsigned long long>(bucket.skipEvents),
                kips(bucket.instructions, bucket.seconds),
                i + 1 < rows.size() ? "," : "");
            out << buffer;
        }
    };

    out << "{\n"
        << "  \"benchmark\": \"host_throughput\",\n"
        << "  \"build_type\": \"" << buildinfo::kBuildType << "\",\n"
        << "  \"native_arch\": "
        << (buildinfo::kNativeArch ? "true" : "false") << ",\n"
        << "  \"threads\": 1,\n"
        << "  \"idle_skip\": " << (options.idleSkip ? "true" : "false")
        << ",\n"
        << "  \"instructions_per_run\": " << options.instructions << ",\n"
        << "  \"workloads\": " << spec.workloads.size() << ",\n"
        << "  \"configs\": [\n";
    for (const PerfTotals &bucket : totals) {
        total_seconds += bucket.seconds;
        total_instructions += bucket.instructions;
        total_skipped += bucket.idleCyclesSkipped;
        total_skip_events += bucket.skipEvents;
        total_runs += bucket.runs;
        std::fprintf(stderr, "[dgrun] perf: %-10s %8.2fs  %8.1f KIPS\n",
                     bucket.label.c_str(), bucket.seconds,
                     kips(bucket.instructions, bucket.seconds));
    }
    emitRows(totals);
    out << "  ],\n"
        << "  \"workload_rows\": [\n";
    emitRows(perWorkload);
    std::snprintf(buffer, sizeof(buffer),
                  "  ],\n"
                  "  \"total\": {\"runs\": %zu, \"wall_seconds\": %.6f, "
                  "\"simulated_instructions\": %llu, "
                  "\"idleCyclesSkipped\": %llu, \"skipEvents\": %llu, "
                  "\"kips\": %.1f}\n"
                  "}\n",
                  total_runs, total_seconds,
                  static_cast<unsigned long long>(total_instructions),
                  static_cast<unsigned long long>(total_skipped),
                  static_cast<unsigned long long>(total_skip_events),
                  kips(total_instructions, total_seconds));
    out << buffer;

    std::fprintf(stderr,
                 "[dgrun] perf: total %.2fs for %llu simulated "
                 "instructions -> %.1f KIPS (%llu idle cycles skipped in "
                 "%llu warps); wrote %s\n",
                 total_seconds,
                 static_cast<unsigned long long>(total_instructions),
                 kips(total_instructions, total_seconds),
                 static_cast<unsigned long long>(total_skipped),
                 static_cast<unsigned long long>(total_skip_events),
                 options.perfOutPath.c_str());
    return 0;
}

/**
 * --skip-bench: measure the host-time win of event-driven idle-cycle
 * skipping on one job by running it twice, skip on then skip off, and
 * verifying the two runs produced identical simulated results (the
 * whole point of the time-warp design). Memory-bound long-tier
 * workloads are the target population: the more stalled cycles, the
 * bigger the win. CI tracks it via BENCH_idle_skip.json.
 */
int
runSkipBench(const Options &options)
{
    if (!buildinfo::isReleaseBuild())
        std::fprintf(stderr,
                     "[dgrun] warning: build type is '%s', not Release; "
                     "throughput numbers are not comparable\n",
                     buildinfo::kBuildType);

    SweepSpec spec = buildSpec(options);
    const std::vector<Job> jobs = spec.expand();
    if (jobs.size() != 1)
        usageError("--skip-bench needs exactly one workload x config (use "
                   "--suite, --schemes and --ap to select one); the sweep "
                   "has " + std::to_string(jobs.size()) + " jobs");
    const Job &job = jobs[0];

    std::ofstream out(options.skipBenchOutPath);
    if (!out)
        usageError("cannot open " + options.skipBenchOutPath);

    auto timeRun = [&](bool skip) {
        SimConfig config = job.config;
        config.idleSkip = skip;
        std::string dump;
        const auto start = std::chrono::steady_clock::now();
        const SimResult result = runProgram(*job.program, config, &dump);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return std::make_tuple(result, std::move(dump), elapsed.count());
    };
    const auto [onResult, onDump, onSeconds] = timeRun(true);
    const auto [offResult, offDump, offSeconds] = timeRun(false);

    // The correctness tripwire: skipping must be invisible in every
    // simulated counter. golden_stats_test enforces this across the
    // full matrix; re-checking here costs nothing and makes a red
    // benchmark self-diagnosing.
    if (onDump != offDump) {
        std::fprintf(stderr,
                     "[dgrun] skip-bench ERROR: stats dumps differ "
                     "between skip-on and skip-off runs of %s/%s — the "
                     "idle-skip layer changed simulated results\n",
                     job.workload.c_str(), job.config.label().c_str());
        return 1;
    }

    const double speedup = onSeconds > 0.0 ? offSeconds / onSeconds : 0.0;
    const double skippedPct =
        onResult.cycles != 0
            ? 100.0 * static_cast<double>(onResult.idleCyclesSkipped) /
                  static_cast<double>(onResult.cycles)
            : 0.0;
    const auto kips = [](std::uint64_t instructions, double seconds) {
        return seconds > 0.0
                   ? static_cast<double>(instructions) / seconds / 1000.0
                   : 0.0;
    };

    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\n"
        "  \"benchmark\": \"idle_skip\",\n"
        "  \"build_type\": \"%s\",\n"
        "  \"native_arch\": %s,\n"
        "  \"workload\": \"%s\",\n"
        "  \"config\": \"%s\",\n"
        "  \"instructions\": %llu,\n"
        "  \"simulated_cycles\": %llu,\n"
        "  \"idleCyclesSkipped\": %llu,\n"
        "  \"skipEvents\": %llu,\n"
        "  \"skipped_pct\": %.2f,\n"
        "  \"results_identical\": true,\n"
        "  \"skip_on\": {\"wall_seconds\": %.6f, \"kips\": %.1f},\n"
        "  \"skip_off\": {\"wall_seconds\": %.6f, \"kips\": %.1f},\n"
        "  \"speedup\": %.2f\n"
        "}\n",
        buildinfo::kBuildType, buildinfo::kNativeArch ? "true" : "false",
        job.workload.c_str(), job.config.label().c_str(),
        static_cast<unsigned long long>(onResult.instructions),
        static_cast<unsigned long long>(onResult.cycles),
        static_cast<unsigned long long>(onResult.idleCyclesSkipped),
        static_cast<unsigned long long>(onResult.skipEvents),
        skippedPct, onSeconds, kips(onResult.instructions, onSeconds),
        offSeconds, kips(offResult.instructions, offSeconds), speedup);
    out << buffer;

    std::fprintf(stderr,
                 "[dgrun] skip-bench: %s/%s skip-off %.2fs vs skip-on "
                 "%.2fs -> %.2fx (%.1f%% of %llu cycles skipped in %llu "
                 "warps); wrote %s\n",
                 job.workload.c_str(), job.config.label().c_str(),
                 offSeconds, onSeconds, speedup, skippedPct,
                 static_cast<unsigned long long>(onResult.cycles),
                 static_cast<unsigned long long>(onResult.skipEvents),
                 options.skipBenchOutPath.c_str());
    if (speedup < 1.5)
        std::fprintf(stderr,
                     "[dgrun] skip-bench WARNING: speedup %.2fx is below "
                     "the 1.5x target (compute-bound workloads, tiny "
                     "budgets or debug builds blunt it)\n",
                     speedup);
    return 0;
}

/**
 * --ffwd-bench: measure the end-to-end host-time win of functional
 * fast-forward over full-detail simulation of the same instruction
 * span. Run A simulates all F+D instructions in the detailed core;
 * run B fast-forwards F functionally and simulates only the D-sized
 * window in detail. The speedup is what makes long-horizon workloads
 * tractable; CI tracks it via BENCH_ffwd_throughput.json.
 */
int
runFfwdBench(const Options &options)
{
    if (!buildinfo::isReleaseBuild())
        std::fprintf(stderr,
                     "[dgrun] warning: build type is '%s', not Release; "
                     "throughput numbers are not comparable\n",
                     buildinfo::kBuildType);
    if (options.ffwdInstructions == 0)
        usageError("--ffwd-bench needs --ffwd N (the span to fast-forward)");

    SweepSpec spec = buildSpec(options);
    const std::vector<Job> jobs = spec.expand();
    if (jobs.size() != 1)
        usageError("--ffwd-bench needs exactly one workload x config (use "
                   "--suite, --schemes and --ap to select one); the sweep "
                   "has " + std::to_string(jobs.size()) + " jobs");
    const Job &job = jobs[0];

    std::ofstream out(options.ffwdBenchOutPath);
    if (!out)
        usageError("cannot open " + options.ffwdBenchOutPath);

    const std::uint64_t ffwd_span = options.ffwdInstructions;
    const std::uint64_t detail_span = options.instructions;

    // Run B first (fast): F fast-forwarded + D detailed.
    SimConfig sampledConfig = job.config;
    auto timeRun = [&](const SimConfig &config) {
        const auto start = std::chrono::steady_clock::now();
        const SimResult result = runProgram(*job.program, config);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return std::make_pair(result, elapsed.count());
    };
    const auto [sampledResult, sampledSeconds] = timeRun(sampledConfig);

    // Run A: the same F+D span entirely in the detailed core.
    SimConfig detailedConfig = job.config;
    detailedConfig.ffwdInstructions = 0;
    detailedConfig.maxInstructions = ffwd_span + detail_span;
    detailedConfig.maxCycles = detailedConfig.maxInstructions * 200;
    detailedConfig.warmupInstructions = 0;
    const auto [detailedResult, detailedSeconds] = timeRun(detailedConfig);

    const double speedup =
        sampledSeconds > 0.0 ? detailedSeconds / sampledSeconds : 0.0;
    const auto kips = [](std::uint64_t instructions, double seconds) {
        return seconds > 0.0
                   ? static_cast<double>(instructions) / seconds / 1000.0
                   : 0.0;
    };

    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\n"
        "  \"benchmark\": \"ffwd_throughput\",\n"
        "  \"build_type\": \"%s\",\n"
        "  \"native_arch\": %s,\n"
        "  \"workload\": \"%s\",\n"
        "  \"config\": \"%s\",\n"
        "  \"ffwd_instructions\": %llu,\n"
        "  \"detail_instructions\": %llu,\n"
        "  \"detailed\": {\"wall_seconds\": %.6f, \"kips\": %.1f},\n"
        "  \"ffwd\": {\"wall_seconds\": %.6f, \"effective_kips\": %.1f},\n"
        "  \"speedup\": %.2f\n"
        "}\n",
        buildinfo::kBuildType, buildinfo::kNativeArch ? "true" : "false",
        job.workload.c_str(), job.config.label().c_str(),
        static_cast<unsigned long long>(ffwd_span),
        static_cast<unsigned long long>(detail_span),
        detailedSeconds, kips(detailedResult.instructions, detailedSeconds),
        sampledSeconds, kips(ffwd_span + sampledResult.instructions,
                             sampledSeconds),
        speedup);
    out << buffer;

    std::fprintf(stderr,
                 "[dgrun] ffwd-bench: %s/%s detailed %llu insts in %.2fs "
                 "vs ffwd %llu + detailed %llu in %.2fs -> %.2fx; wrote "
                 "%s\n",
                 job.workload.c_str(), job.config.label().c_str(),
                 static_cast<unsigned long long>(ffwd_span + detail_span),
                 detailedSeconds,
                 static_cast<unsigned long long>(ffwd_span),
                 static_cast<unsigned long long>(detail_span),
                 sampledSeconds, speedup, options.ffwdBenchOutPath.c_str());
    if (speedup < 10.0)
        std::fprintf(stderr,
                     "[dgrun] ffwd-bench WARNING: speedup %.2fx is below "
                     "the 10x target (short spans or debug builds blunt "
                     "it)\n",
                     speedup);
    return 0;
}

/** --validate-trace: parse + structurally validate an O3PipeView file. */
int
runValidateTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        usageError("cannot open " + path);
    const std::vector<TraceRecord> records = parseO3PipeView(in);
    const std::string violation = validateO3PipeView(records);
    if (!violation.empty()) {
        std::fprintf(stderr, "[dgrun] trace INVALID: %s\n",
                     violation.c_str());
        return 1;
    }
    std::size_t squashed = 0;
    for (const TraceRecord &record : records)
        squashed += record.squashed;
    std::fprintf(stderr,
                 "[dgrun] trace OK: %zu records (%zu retired, %zu "
                 "squashed)\n",
                 records.size(), records.size() - squashed, squashed);
    return 0;
}

/**
 * RAII around the telemetry lifetime in the parent process: enable on
 * entry when --telemetry/--metrics ask for it, merge the per-process
 * event part files and write the final metrics snapshot on any exit
 * path. Forked workers never run this destructor — they _exit — so
 * the merge happens exactly once, in the coordinator.
 */
struct TelemetrySession
{
    explicit TelemetrySession(const Options &options)
    {
        if (options.telemetryPath.empty() && options.metricsPath.empty())
            return;
        telemetry::TelemetryConfig config;
        config.tracePath = options.telemetryPath;
        config.metricsPath = options.metricsPath;
        config.metricsPeriodSec = options.metricsPeriodSec;
        telemetry::enable(config);
    }

    ~TelemetrySession()
    {
        telemetry::finalizeTrace();
        telemetry::shutdown();
    }
};

/** --validate-telemetry: strict parse + structural checks, then exit. */
int
runValidateTelemetry(const std::string &path)
{
    try {
        const std::vector<telemetry::TraceEvent> events =
            telemetry::loadMergedTrace(path);
        const std::string violation =
            telemetry::validateTraceEvents(events);
        if (!violation.empty()) {
            std::fprintf(stderr, "[dgrun] telemetry INVALID: %s\n",
                         violation.c_str());
            return 1;
        }
        std::fprintf(stderr, "[dgrun] telemetry OK: %zu event(s)\n",
                     events.size());
        return 0;
    } catch (const JsonParseError &e) {
        std::fprintf(stderr, "[dgrun] telemetry INVALID: %s\n", e.what());
        return 1;
    }
}

/** --report: journals (+ optional --telemetry trace) -> stdout. */
int
runReportMode(const Options &options)
{
    telemetry::ReportInputs inputs;
    inputs.journalPaths = options.reportPaths;
    inputs.tracePath = options.telemetryPath;
    const std::string report = telemetry::buildCampaignReport(inputs);
    std::fwrite(report.data(), 1, report.size(), stdout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parseArgs(argc, argv);
    // The telemetry *readers* run before the session below would
    // truncate the very files they read.
    if (!options.validateTelemetryPath.empty())
        return runValidateTelemetry(options.validateTelemetryPath);
    if (options.report)
        return runReportMode(options);
    if (!options.validateTracePath.empty())
        return runValidateTrace(options.validateTracePath);
    if (!options.fuzzReplayPath.empty())
        return runFuzzReplay(options);
    TelemetrySession telemetrySession(options);
    if (options.ffwdBench)
        return runFfwdBench(options);
    if (options.skipBench)
        return runSkipBench(options);
    if (options.perf)
        return runPerfMode(options);
    try {
        if (options.listJobs)
            return runListJobs(options);
        if (!options.campaignInitPath.empty())
            return runCampaignInit(options);
        if (options.campaignBench)
            return runCampaignBench(options);
        if (options.merge)
            return runMergeMode(options);
        if (!options.campaignPath.empty())
            return runCampaignMode(options);
    } catch (const CampaignError &e) {
        std::fprintf(stderr, "dgrun: %s\n", e.what());
        return 2;
    }
    const unsigned threads = options.threads == 0
                                 ? ThreadPool::hardwareThreads()
                                 : options.threads;

    // Open sink files before the sweep so a bad path fails fast
    // instead of discarding minutes of simulation.
    std::ofstream jsonlFile;
    if (!options.jsonlPath.empty()) {
        jsonlFile.open(options.jsonlPath);
        if (!jsonlFile)
            usageError("cannot open " + options.jsonlPath);
    }
    std::ofstream csvFile;
    if (!options.csvPath.empty()) {
        csvFile.open(options.csvPath);
        if (!csvFile)
            usageError("cannot open " + options.csvPath);
    }

    const SweepSpec spec = buildSpec(options);
    std::vector<Job> jobs;
    {
        telemetry::ScopedSpan span("expand", "phase");
        jobs = spec.expand();
    }
    if (options.shardCount != 0) {
        const std::size_t totalJobs = jobs.size();
        jobs = filterShard(std::move(jobs), options.shardIndex,
                           options.shardCount);
        std::fprintf(stderr, "[dgrun] shard %u/%u: %zu of %zu job(s)\n",
                     options.shardIndex, options.shardCount, jobs.size(),
                     totalJobs);
    }
    if (!options.tracePath.empty() && jobs.size() != 1)
        usageError("--trace needs exactly one workload x config (use "
                   "--suite, --schemes and --ap to select one); the sweep "
                   "has " + std::to_string(jobs.size()) + " jobs");
    // Checkpoint files name one run's state: a multi-job sweep would
    // race on --ckpt-save and misapply --ckpt-restore across workloads.
    if ((!options.ckptSavePath.empty() || !options.ckptRestorePath.empty()) &&
        jobs.size() != 1)
        usageError("--ckpt-save/--ckpt-restore need exactly one workload x "
                   "config; the sweep has " + std::to_string(jobs.size()) +
                   " jobs");
    if (spec.fuzzCount != 0)
        std::fprintf(stderr,
                     "[dgrun] fuzz: %llu candidate(s), seed %llu, "
                     "%u thread(s)\n",
                     static_cast<unsigned long long>(spec.fuzzCount),
                     static_cast<unsigned long long>(spec.fuzzSeed),
                     threads);
    else
        std::fprintf(stderr,
                     "[dgrun] %zu workloads x %zu configs = %zu jobs, "
                     "%llu instructions each, %u thread(s)\n",
                     spec.workloads.size(), spec.configs.size(), jobs.size(),
                     static_cast<unsigned long long>(options.instructions),
                     threads);

    // SIGINT/SIGTERM drain: stop dispatching, finish in-flight jobs,
    // flush sinks + journal, exit resumably (128+signo convention).
    installDrainHandler();

    auto [outcomes, seconds] = [&] {
        // The plain sweep is a one-process "campaign" for the trace's
        // purposes: the same top-level span --report keys on.
        telemetry::ScopedSpan span("campaign", "campaign");
        return timedRun(jobs, runnerOptions(options, threads));
    }();
    std::fprintf(stderr, "[dgrun] completed in %.2fs on %u thread(s)\n",
                 seconds, threads);

    int exitCode = 0;
    if (options.verify) {
        std::fprintf(stderr, "[dgrun] verify: re-running on 1 thread\n");
        // The verify run re-simulates everything: no journal appends,
        // no resume restores — determinism is only meaningful against
        // actually-executed jobs.
        RunnerOptions serialOptions = runnerOptions(options, 1);
        serialOptions.journalPath.clear();
        serialOptions.resume.clear();
        auto [serialOutcomes, serialSeconds] =
            timedRun(jobs, std::move(serialOptions));
        const bool identical =
            serializeAll(outcomes) == serializeAll(serialOutcomes);
        std::fprintf(stderr,
                     "[dgrun] verify: %u-thread %.2fs vs 1-thread %.2fs "
                     "-> %.2fx speedup, results %s\n",
                     threads, seconds, serialSeconds,
                     seconds > 0 ? serialSeconds / seconds : 0.0,
                     identical ? "byte-identical" : "DIFFER");
        if (!identical) {
            std::fprintf(stderr, "[dgrun] verify FAILED\n");
            exitCode = 1;
        }
    }

    if (jsonlFile.is_open()) {
        // File output carries host metrics (wall-time/KIPS, trace and
        // watchdog metadata) unless --no-host-metrics asked for the
        // byte-comparable form; the --verify comparison above always
        // uses the host-metrics-off serialization.
        JsonlSink sink(jsonlFile, /*host_metrics=*/options.hostMetrics);
        for (const JobOutcome &outcome : outcomes)
            sink.consume(outcome);
        sink.finish();
        std::fprintf(stderr, "[dgrun] wrote %s\n", options.jsonlPath.c_str());
    }
    if (csvFile.is_open()) {
        CsvSink sink(csvFile);
        for (const JobOutcome &outcome : outcomes)
            sink.consume(outcome);
        sink.finish();
        std::fprintf(stderr, "[dgrun] wrote %s\n", options.csvPath.c_str());
    }

    // Compact per-job summary on stdout (deterministic order).
    std::printf("%-14s %-9s %-10s %10s %12s %8s %10s\n", "workload", "suite",
                "config", "cycles", "instructions", "ipc", "status");
    for (const JobOutcome &outcome : outcomes) {
        if (outcome.ok) {
            std::printf("%-14s %-9s %-10s %10llu %12llu %8.3f %10s\n",
                        outcome.workload.c_str(), outcome.suite.c_str(),
                        outcome.configLabel.c_str(),
                        static_cast<unsigned long long>(outcome.result.cycles),
                        static_cast<unsigned long long>(
                            outcome.result.instructions),
                        outcome.result.ipc, "ok");
        } else {
            std::printf("%-14s %-9s %-10s %10s %12s %8s %10s  # %s\n",
                        outcome.workload.c_str(), outcome.suite.c_str(),
                        outcome.configLabel.c_str(), "-", "-", "-", "FAILED",
                        outcome.error.c_str());
            exitCode = 1;
        }
    }

    if (!options.tracePath.empty()) {
        std::uint64_t traceRecords = 0;
        for (const JobOutcome &outcome : outcomes)
            traceRecords += outcome.result.traceRecords;
        std::fprintf(stderr,
                     "[dgrun] wrote %llu trace records to %s\n",
                     static_cast<unsigned long long>(traceRecords),
                     options.tracePath.c_str());
    }
    if (options.dists) {
        for (const JobOutcome &outcome : outcomes) {
            if (outcome.result.distributions.empty())
                continue;
            std::printf("\n--- distributions: %s / %s ---\n%s",
                        outcome.workload.c_str(),
                        outcome.configLabel.c_str(),
                        outcome.result.distributions.c_str());
        }
    }

    if (spec.fuzzCount != 0) {
        // A confirmed secure-scheme leak dominates every other exit
        // condition: it is the one result the campaign exists to find.
        const int fuzzCode = runFuzzPost(outcomes, spec.fuzzSeed, options);
        if (fuzzCode != 0)
            exitCode = fuzzCode;
    }

    // Fault-tolerance accounting.
    std::size_t resumedCount = 0, retriedCount = 0, interruptedCount = 0;
    for (const JobOutcome &outcome : outcomes) {
        resumedCount += outcome.resumed;
        retriedCount += outcome.attempts > 1;
        interruptedCount += outcome.attempts == 0;
    }
    if (resumedCount || retriedCount)
        std::fprintf(stderr,
                     "[dgrun] fault tolerance: %zu resumed from journal, "
                     "%zu needed retries\n",
                     resumedCount, retriedCount);
    if (drainRequested()) {
        const std::string &journal = !options.resumePath.empty()
                                         ? options.resumePath
                                         : options.journalPath;
        std::fprintf(stderr,
                     "[dgrun] interrupted: %zu job(s) never started%s%s\n",
                     interruptedCount,
                     journal.empty()
                         ? "; re-run with --journal to make sweeps resumable"
                         : "; resume with --resume ",
                     journal.c_str());
        return 130;
    }
    return exitCode;
}
