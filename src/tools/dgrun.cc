/**
 * @file
 * dgrun — the experiment-runner CLI.
 *
 * Runs a (workload x scheme x AP) sweep of the evaluation suite across
 * N threads and serializes results to JSONL/CSV sinks. `--verify` runs
 * the same sweep single-threaded as well, byte-compares the serialized
 * results, and reports the parallel speedup — the determinism check the
 * runner's ordering guarantee is held to.
 */

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/experiment_runner.hh"
#include "runner/result_sink.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace
{

using namespace dgsim;
using namespace dgsim::runner;

constexpr const char *kUsage = R"(usage: dgrun [options]

Run the evaluation suite over the scheme x AP matrix on a thread pool.

options:
  --suite NAMES       comma-separated workload names (default: all)
  --schemes NAMES     subset of unsafe,nda-p,stt,dom (default: all)
  --ap MODE           address prediction: on, off or both (default: both)
  --instructions N    per-run instruction budget (default: 100000)
  --threads N         worker threads (default: hardware concurrency)
  --jsonl FILE        write results as JSON lines
  --csv FILE          write results as CSV
  --verify            also run single-threaded; byte-compare results and
                      report the parallel speedup
  --quiet             suppress the progress line
  --list              list available workloads and exit
  --help              show this message
)";

[[noreturn]] void
usageError(const std::string &msg)
{
    std::fprintf(stderr, "dgrun: %s\n%s", msg.c_str(), kUsage);
    std::exit(2);
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::stringstream ss(text);
    std::string part;
    while (std::getline(ss, part, ','))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

std::uint64_t
parseCount(const std::string &text, const char *flag)
{
    errno = 0;
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || *end != '\0' || errno == ERANGE || value == 0)
        usageError(std::string(flag) + " needs a positive integer, got '" +
                   text + "'");
    return value;
}

Scheme
parseScheme(const std::string &name)
{
    if (name == "unsafe")
        return Scheme::Unsafe;
    if (name == "nda-p" || name == "ndap" || name == "nda")
        return Scheme::NdaP;
    if (name == "stt")
        return Scheme::Stt;
    if (name == "dom")
        return Scheme::Dom;
    usageError("unknown scheme '" + name + "'");
}

struct Options
{
    std::vector<std::string> workloadNames; // Empty = whole suite.
    std::vector<Scheme> schemes = {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt,
                                   Scheme::Dom};
    std::vector<bool> apModes = {false, true};
    std::uint64_t instructions = 100'000;
    unsigned threads = 0; // 0 = hardware concurrency.
    std::string jsonlPath;
    std::string csvPath;
    bool verify = false;
    bool quiet = false;
};

Options
parseArgs(int argc, char **argv)
{
    Options options;
    auto next = [&](int &i, const char *flag) -> std::string {
        if (i + 1 >= argc)
            usageError(std::string(flag) + " needs an argument");
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (arg == "--list") {
            for (const auto &w : workloads::evaluationSuite())
                std::printf("%-14s %-9s %s\n", w.name.c_str(),
                            w.suite.c_str(), w.pattern.c_str());
            std::exit(0);
        } else if (arg == "--suite") {
            options.workloadNames = splitCommas(next(i, "--suite"));
            if (options.workloadNames.empty())
                usageError("--suite needs at least one workload name");
        } else if (arg == "--schemes") {
            options.schemes.clear();
            for (const std::string &name :
                 splitCommas(next(i, "--schemes")))
                options.schemes.push_back(parseScheme(name));
            if (options.schemes.empty())
                usageError("--schemes needs at least one scheme");
        } else if (arg == "--ap") {
            const std::string mode = next(i, "--ap");
            if (mode == "on")
                options.apModes = {true};
            else if (mode == "off")
                options.apModes = {false};
            else if (mode == "both")
                options.apModes = {false, true};
            else
                usageError("--ap must be on, off or both");
        } else if (arg == "--instructions") {
            options.instructions = parseCount(next(i, "--instructions"),
                                              "--instructions");
        } else if (arg == "--threads") {
            options.threads = static_cast<unsigned>(
                parseCount(next(i, "--threads"), "--threads"));
        } else if (arg == "--jsonl") {
            options.jsonlPath = next(i, "--jsonl");
        } else if (arg == "--csv") {
            options.csvPath = next(i, "--csv");
        } else if (arg == "--verify") {
            options.verify = true;
        } else if (arg == "--quiet") {
            options.quiet = true;
        } else {
            usageError("unknown option '" + arg + "'");
        }
    }
    return options;
}

SweepSpec
buildSpec(const Options &options)
{
    SimConfig base;
    base.maxInstructions = options.instructions;
    base.maxCycles = options.instructions * 200;
    base.warmupInstructions = options.instructions / 3;

    SweepSpec spec;
    if (options.workloadNames.empty()) {
        spec.workloads = workloads::evaluationSuite();
    } else {
        for (const std::string &name : options.workloadNames)
            spec.workloads.push_back(workloads::findWorkload(name));
    }
    for (Scheme scheme : options.schemes) {
        for (bool ap : options.apModes) {
            SimConfig config = base;
            config.scheme = scheme;
            config.addressPrediction = ap;
            spec.configs.push_back(config);
        }
    }
    return spec;
}

/** Serialize every outcome as JSONL — the byte-comparison key. */
std::string
serializeAll(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream ss;
    JsonlSink sink(ss);
    for (const JobOutcome &outcome : outcomes)
        sink.consume(outcome);
    return ss.str();
}

std::pair<std::vector<JobOutcome>, double>
timedRun(const std::vector<Job> &jobs, unsigned threads, bool progress)
{
    RunnerOptions ropts;
    ropts.threads = threads;
    ropts.progress = progress;
    ExperimentRunner runner(ropts);
    const auto start = std::chrono::steady_clock::now();
    std::vector<JobOutcome> outcomes = runner.run(jobs);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return {std::move(outcomes), elapsed.count()};
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parseArgs(argc, argv);
    const unsigned threads = options.threads == 0
                                 ? ThreadPool::hardwareThreads()
                                 : options.threads;

    // Open sink files before the sweep so a bad path fails fast
    // instead of discarding minutes of simulation.
    std::ofstream jsonlFile;
    if (!options.jsonlPath.empty()) {
        jsonlFile.open(options.jsonlPath);
        if (!jsonlFile)
            usageError("cannot open " + options.jsonlPath);
    }
    std::ofstream csvFile;
    if (!options.csvPath.empty()) {
        csvFile.open(options.csvPath);
        if (!csvFile)
            usageError("cannot open " + options.csvPath);
    }

    const SweepSpec spec = buildSpec(options);
    const std::vector<Job> jobs = spec.expand();
    std::fprintf(stderr,
                 "[dgrun] %zu workloads x %zu configs = %zu jobs, "
                 "%llu instructions each, %u thread(s)\n",
                 spec.workloads.size(), spec.configs.size(), jobs.size(),
                 static_cast<unsigned long long>(options.instructions),
                 threads);

    auto [outcomes, seconds] = timedRun(jobs, threads, !options.quiet);
    std::fprintf(stderr, "[dgrun] completed in %.2fs on %u thread(s)\n",
                 seconds, threads);

    int exitCode = 0;
    if (options.verify) {
        std::fprintf(stderr, "[dgrun] verify: re-running on 1 thread\n");
        auto [serialOutcomes, serialSeconds] =
            timedRun(jobs, 1, !options.quiet);
        const bool identical =
            serializeAll(outcomes) == serializeAll(serialOutcomes);
        std::fprintf(stderr,
                     "[dgrun] verify: %u-thread %.2fs vs 1-thread %.2fs "
                     "-> %.2fx speedup, results %s\n",
                     threads, seconds, serialSeconds,
                     seconds > 0 ? serialSeconds / seconds : 0.0,
                     identical ? "byte-identical" : "DIFFER");
        if (!identical) {
            std::fprintf(stderr, "[dgrun] verify FAILED\n");
            exitCode = 1;
        }
    }

    if (jsonlFile.is_open()) {
        JsonlSink sink(jsonlFile);
        for (const JobOutcome &outcome : outcomes)
            sink.consume(outcome);
        sink.finish();
        std::fprintf(stderr, "[dgrun] wrote %s\n", options.jsonlPath.c_str());
    }
    if (csvFile.is_open()) {
        CsvSink sink(csvFile);
        for (const JobOutcome &outcome : outcomes)
            sink.consume(outcome);
        sink.finish();
        std::fprintf(stderr, "[dgrun] wrote %s\n", options.csvPath.c_str());
    }

    // Compact per-job summary on stdout (deterministic order).
    std::printf("%-14s %-9s %-10s %10s %12s %8s %10s\n", "workload", "suite",
                "config", "cycles", "instructions", "ipc", "status");
    for (const JobOutcome &outcome : outcomes) {
        if (outcome.ok) {
            std::printf("%-14s %-9s %-10s %10llu %12llu %8.3f %10s\n",
                        outcome.workload.c_str(), outcome.suite.c_str(),
                        outcome.configLabel.c_str(),
                        static_cast<unsigned long long>(outcome.result.cycles),
                        static_cast<unsigned long long>(
                            outcome.result.instructions),
                        outcome.result.ipc, "ok");
        } else {
            std::printf("%-14s %-9s %-10s %10s %12s %8s %10s  # %s\n",
                        outcome.workload.c_str(), outcome.suite.c_str(),
                        outcome.configLabel.c_str(), "-", "-", "-", "FAILED",
                        outcome.error.c_str());
            exitCode = 1;
        }
    }
    return exitCode;
}
