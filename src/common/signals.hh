/**
 * @file
 * Cooperative SIGINT/SIGTERM drain support for long-running sweeps.
 *
 * A drained process stops *dispatching* new work but finishes what is
 * already in flight, flushes its sinks/journal and exits resumably —
 * the opposite of the default disposition, which throws away every
 * simulated cycle since the last completed job.
 *
 * The handler only sets an atomic flag (async-signal-safe); consumers
 * poll drainFlag(). A second SIGINT/SIGTERM hard-exits with the
 * conventional 128+signo status, so an impatient Ctrl-C Ctrl-C still
 * kills a wedged process.
 */

#ifndef DGSIM_COMMON_SIGNALS_HH
#define DGSIM_COMMON_SIGNALS_HH

#include <atomic>

namespace dgsim
{

/**
 * Install the SIGINT/SIGTERM drain handlers (idempotent). Call once,
 * from the main thread, before starting a sweep.
 */
void installDrainHandler();

/** The flag the handlers set; poll (or pass to RunnerOptions::cancel). */
const std::atomic<bool> &drainFlag();

/** True once a drain has been requested (signal or requestDrain()). */
bool drainRequested();

/** Programmatic drain request — what the tests use instead of signals. */
void requestDrain();

/** Reset the flag (tests only; real processes drain once and exit). */
void resetDrainFlagForTest();

} // namespace dgsim

#endif // DGSIM_COMMON_SIGNALS_HH
