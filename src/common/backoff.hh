/**
 * @file
 * Deterministic capped exponential backoff for transient-failure
 * retries. No jitter on purpose: every delay is a pure function of the
 * attempt number, so retry schedules (and therefore fault-injection
 * tests) are reproducible bit-for-bit.
 */

#ifndef DGSIM_COMMON_BACKOFF_HH
#define DGSIM_COMMON_BACKOFF_HH

#include <cstdint>

namespace dgsim
{

/** Capped exponential backoff: base * 2^(attempt-1), clamped to cap. */
struct Backoff
{
    std::uint64_t baseMs = 100;
    std::uint64_t capMs = 5'000;

    /**
     * Delay before retrying after failed attempt @p attempt (1-based:
     * attempt 1 failed -> wait delayMs(1) before attempt 2).
     */
    std::uint64_t
    delayMs(unsigned attempt) const
    {
        if (baseMs == 0)
            return 0;
        const unsigned shift = attempt == 0 ? 0 : attempt - 1;
        // Saturate instead of shifting into UB territory: any shift
        // that could overflow is already past every sane cap.
        if (shift >= 63 || baseMs > (capMs >> shift))
            return capMs;
        const std::uint64_t delay = baseMs << shift;
        return delay < capMs ? delay : capMs;
    }
};

} // namespace dgsim

#endif // DGSIM_COMMON_BACKOFF_HH
