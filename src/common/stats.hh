/**
 * @file
 * Lightweight named-statistics registry, loosely modelled on gem5's
 * stats package: counters registered under dotted names, dumpable as
 * sorted text, plus Histogram distribution stats (gem5's Distribution)
 * dumped as a *separate* section so counter-dump goldens stay stable.
 *
 * Names are interned at registration: `counter()` / `id()` resolve the
 * dotted string once and hand back a stable reference / dense integer
 * handle into flat storage. Components bind the reference (or handle)
 * at construction, so no string hashing or tree walk survives on the
 * simulation hot path.
 */

#ifndef DGSIM_COMMON_STATS_HH
#define DGSIM_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <limits>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace dgsim
{

/** A single monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A bucketed distribution stat (gem5's Distribution/Histogram).
 *
 * Fixed bucket width and count chosen at registration; samples beyond
 * the last bucket accumulate in it (an explicit overflow bucket).
 * Tracks min/max/sum alongside the buckets so derived scalars (mean)
 * are computed at dump time, not on the sample hot path.
 */
class Histogram
{
  public:
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
        : bucket_width_(bucket_width == 0 ? 1 : bucket_width),
          buckets_(num_buckets == 0 ? 1 : num_buckets, 0)
    {
    }

    void
    sample(std::uint64_t value)
    {
        ++count_;
        sum_ += value;
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
        std::size_t bucket =
            static_cast<std::size_t>(value / bucket_width_);
        if (bucket >= buckets_.size())
            bucket = buckets_.size() - 1;
        ++buckets_[bucket];
    }

    /**
     * Record @p weight identical samples of @p value in one call.
     * Exactly equivalent to calling `sample(value)` @p weight times;
     * used by the idle-skip path to account the sparse occupancy
     * samples that per-cycle ticking would have taken during a skipped
     * span (the sampled quantities are provably constant across it).
     */
    void
    sample(std::uint64_t value, std::uint64_t weight)
    {
        if (weight == 0)
            return;
        count_ += weight;
        sum_ += value * weight;
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
        std::size_t bucket =
            static_cast<std::size_t>(value / bucket_width_);
        if (bucket >= buckets_.size())
            bucket = buckets_.size() - 1;
        buckets_[bucket] += weight;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const { return max_; }

    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = 0;
        min_ = std::numeric_limits<std::uint64_t>::max();
        max_ = 0;
        std::fill(buckets_.begin(), buckets_.end(), 0);
    }

    /**
     * Text form: summary scalars then one line per *non-empty* bucket
     * ("name.bucket[lo,hi) count"; the last bucket is open-ended).
     * Deterministic for a deterministic run — it is part of the
     * distributions dump that `dgrun --verify` byte-compares.
     */
    void
    dump(std::ostream &os, const std::string &name) const
    {
        char buf[64];
        os << name << ".samples " << count_ << "\n";
        if (count_ == 0)
            return;
        os << name << ".min " << min() << "\n";
        os << name << ".max " << max_ << "\n";
        std::snprintf(buf, sizeof(buf), "%.4f", mean());
        os << name << ".mean " << buf << "\n";
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            if (buckets_[i] == 0)
                continue;
            const std::uint64_t lo = i * bucket_width_;
            os << name << ".bucket[" << lo << ",";
            if (i + 1 == buckets_.size())
                os << "inf";
            else
                os << lo + bucket_width_;
            os << ") " << buckets_[i] << "\n";
        }
    }

  private:
    std::uint64_t bucket_width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/**
 * Registry of named counters owned by a simulation run.
 *
 * Components hold references (or interned CounterId handles) to
 * counters they create; the registry owns storage and provides
 * dump/lookup. Names use dotted paths, e.g. "l1d.misses" or
 * "core.committedLoads".
 *
 * Histograms are registered beside the counters but dumped by
 * `dumpDistributions()` only: `dump()` / `forEach()` remain
 * counter-only so the byte-compare goldens and serialized counter maps
 * are unaffected by new distribution stats.
 */
class StatRegistry
{
  public:
    /** Dense interned handle for a registered counter. */
    using CounterId = std::uint32_t;

    /** Intern @p name, creating its counter on first use. */
    CounterId
    id(const std::string &name)
    {
        auto [it, fresh] = index_.try_emplace(
            name, static_cast<CounterId>(slots_.size()));
        if (fresh) {
            names_.push_back(name);
            slots_.emplace_back();
            sorted_ids_valid_ = false;
        }
        return it->second;
    }

    /** Counter behind an interned handle (no string lookup). */
    Counter &at(CounterId id) { return slots_[id]; }
    const Counter &at(CounterId id) const { return slots_[id]; }

    /** Create (or fetch) the counter with the given dotted name.
     * The reference stays valid for the registry's lifetime. */
    Counter &counter(const std::string &name) { return slots_[id(name)]; }

    /** Read a counter's value; zero if it was never created. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = index_.find(name);
        return it == index_.end() ? 0 : slots_[it->second].value();
    }

    /** True if a counter with this exact name exists. */
    bool
    has(const std::string &name) const
    {
        return index_.find(name) != index_.end();
    }

    /**
     * Create (or fetch) a *host-side* counter: same interning and
     * lifetime rules as `counter()`, but the value never appears in
     * `dump()` / `forEach()`. Host counters measure how the simulation
     * ran on this machine (e.g. idle cycles the time-warp layer
     * skipped), so including them in the golden counter dump would make
     * two result-identical runs compare unequal. Read them back with
     * `hostGet()`.
     */
    Counter &
    hostCounter(const std::string &name)
    {
        auto [it, fresh] = host_index_.try_emplace(name,
                                                   host_slots_.size());
        if (fresh)
            host_slots_.emplace_back();
        return host_slots_[it->second];
    }

    /** Read a host counter's value; zero if it was never created. */
    std::uint64_t
    hostGet(const std::string &name) const
    {
        auto it = host_index_.find(name);
        return it == host_index_.end() ? 0
                                       : host_slots_[it->second].value();
    }

    /**
     * Create (or fetch) the histogram with the given dotted name. The
     * width/bucket parameters apply on first registration only. The
     * reference stays valid for the registry's lifetime.
     */
    Histogram &
    histogram(const std::string &name, std::uint64_t bucket_width,
              std::size_t num_buckets)
    {
        auto [it, fresh] = histogram_index_.try_emplace(
            name, histograms_.size());
        if (fresh) {
            histogram_names_.push_back(name);
            histograms_.emplace_back(bucket_width, num_buckets);
        }
        return histograms_[it->second];
    }

    /** Histogram lookup without creation; null if never registered. */
    const Histogram *
    findHistogram(const std::string &name) const
    {
        auto it = histogram_index_.find(name);
        return it == histogram_index_.end() ? nullptr
                                            : &histograms_[it->second];
    }

    /** Reset every counter and histogram (e.g. after cache warm-up).
     * Host counters reset too: they describe the measured region, just
     * like `core.cycles`. */
    void
    resetAll()
    {
        for (Counter &counter : slots_)
            counter.reset();
        for (Counter &counter : host_slots_)
            counter.reset();
        for (Histogram &histogram : histograms_)
            histogram.reset();
    }

    /** Visit every counter as (name, value), sorted by name. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (CounterId id : sortedIds())
            fn(names_[id], slots_[id].value());
    }

    /** Dump all counters, sorted by name, one per line. */
    void
    dump(std::ostream &os) const
    {
        forEach([&os](const std::string &name, std::uint64_t value) {
            os << name << " " << value << "\n";
        });
    }

    /**
     * Dump every histogram, sorted by name, as its own section. Kept
     * out of `dump()` so the counter goldens never see distributions.
     */
    void
    dumpDistributions(std::ostream &os) const
    {
        std::vector<std::size_t> order(histograms_.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [this](std::size_t a, std::size_t b) {
                      return histogram_names_[a] < histogram_names_[b];
                  });
        for (std::size_t i : order)
            histograms_[i].dump(os, histogram_names_[i]);
    }

    std::size_t size() const { return slots_.size(); }
    std::size_t histogramCount() const { return histograms_.size(); }

  private:
    /**
     * Sorted-by-name id permutation, cached between dumps. Recomputing
     * it per dump() made every stats harvest O(n log n) string
     * compares; registration invalidates the cache instead (rare, and
     * only during construction/warm-up).
     */
    const std::vector<CounterId> &
    sortedIds() const
    {
        if (!sorted_ids_valid_) {
            sorted_ids_.resize(slots_.size());
            for (CounterId i = 0;
                 i < static_cast<CounterId>(sorted_ids_.size()); ++i)
                sorted_ids_[i] = i;
            std::sort(sorted_ids_.begin(), sorted_ids_.end(),
                      [this](CounterId a, CounterId b) {
                          return names_[a] < names_[b];
                      });
            sorted_ids_valid_ = true;
        }
        return sorted_ids_;
    }

    /// Deque: growth never moves existing counters, so references
    /// handed out by counter() stay valid as new counters register.
    std::deque<Counter> slots_;
    std::vector<std::string> names_;
    std::unordered_map<std::string, CounterId> index_;
    mutable std::vector<CounterId> sorted_ids_;
    mutable bool sorted_ids_valid_ = false;

    /// Host-side counters: never dumped, so the deque/index pair is
    /// deliberately separate from the golden counter storage.
    std::deque<Counter> host_slots_;
    std::unordered_map<std::string, std::size_t> host_index_;

    /// Same stability rule as counters: deque growth never moves them.
    std::deque<Histogram> histograms_;
    std::vector<std::string> histogram_names_;
    std::unordered_map<std::string, std::size_t> histogram_index_;
};

} // namespace dgsim

#endif // DGSIM_COMMON_STATS_HH
