/**
 * @file
 * Lightweight named-statistics registry, loosely modelled on gem5's
 * stats package: counters and scalar formulas registered under dotted
 * names, dumpable as text.
 */

#ifndef DGSIM_COMMON_STATS_HH
#define DGSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace dgsim
{

/** A single monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Registry of named counters owned by a simulation run.
 *
 * Components hold references to counters they create; the registry owns
 * storage and provides dump/lookup. Names use dotted paths, e.g.
 * "l1d.misses" or "core.committedLoads".
 */
class StatRegistry
{
  public:
    /** Create (or fetch) the counter with the given dotted name. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    /** Read a counter's value; zero if it was never created. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second.value();
    }

    /** True if a counter with this exact name exists. */
    bool
    has(const std::string &name) const
    {
        return counters_.find(name) != counters_.end();
    }

    /** Reset every counter to zero (e.g. after cache warm-up). */
    void
    resetAll()
    {
        for (auto &kv : counters_)
            kv.second.reset();
    }

    /** Dump all counters, sorted by name, one per line. */
    void
    dump(std::ostream &os) const
    {
        for (const auto &kv : counters_)
            os << kv.first << " " << kv.second.value() << "\n";
    }

    const std::map<std::string, Counter> &all() const { return counters_; }

  private:
    std::map<std::string, Counter> counters_;
};

} // namespace dgsim

#endif // DGSIM_COMMON_STATS_HH
