/**
 * @file
 * Lightweight named-statistics registry, loosely modelled on gem5's
 * stats package: counters registered under dotted names, dumpable as
 * sorted text.
 *
 * Names are interned at registration: `counter()` / `id()` resolve the
 * dotted string once and hand back a stable reference / dense integer
 * handle into flat storage. Components bind the reference (or handle)
 * at construction, so no string hashing or tree walk survives on the
 * simulation hot path.
 */

#ifndef DGSIM_COMMON_STATS_HH
#define DGSIM_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace dgsim
{

/** A single monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }

    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Registry of named counters owned by a simulation run.
 *
 * Components hold references (or interned CounterId handles) to
 * counters they create; the registry owns storage and provides
 * dump/lookup. Names use dotted paths, e.g. "l1d.misses" or
 * "core.committedLoads".
 */
class StatRegistry
{
  public:
    /** Dense interned handle for a registered counter. */
    using CounterId = std::uint32_t;

    /** Intern @p name, creating its counter on first use. */
    CounterId
    id(const std::string &name)
    {
        auto [it, fresh] = index_.try_emplace(
            name, static_cast<CounterId>(slots_.size()));
        if (fresh) {
            names_.push_back(name);
            slots_.emplace_back();
        }
        return it->second;
    }

    /** Counter behind an interned handle (no string lookup). */
    Counter &at(CounterId id) { return slots_[id]; }
    const Counter &at(CounterId id) const { return slots_[id]; }

    /** Create (or fetch) the counter with the given dotted name.
     * The reference stays valid for the registry's lifetime. */
    Counter &counter(const std::string &name) { return slots_[id(name)]; }

    /** Read a counter's value; zero if it was never created. */
    std::uint64_t
    get(const std::string &name) const
    {
        auto it = index_.find(name);
        return it == index_.end() ? 0 : slots_[it->second].value();
    }

    /** True if a counter with this exact name exists. */
    bool
    has(const std::string &name) const
    {
        return index_.find(name) != index_.end();
    }

    /** Reset every counter to zero (e.g. after cache warm-up). */
    void
    resetAll()
    {
        for (Counter &counter : slots_)
            counter.reset();
    }

    /** Visit every counter as (name, value), sorted by name. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (CounterId id : sortedIds())
            fn(names_[id], slots_[id].value());
    }

    /** Dump all counters, sorted by name, one per line. */
    void
    dump(std::ostream &os) const
    {
        forEach([&os](const std::string &name, std::uint64_t value) {
            os << name << " " << value << "\n";
        });
    }

    std::size_t size() const { return slots_.size(); }

  private:
    std::vector<CounterId>
    sortedIds() const
    {
        std::vector<CounterId> ids(slots_.size());
        for (CounterId i = 0; i < ids.size(); ++i)
            ids[i] = i;
        std::sort(ids.begin(), ids.end(),
                  [this](CounterId a, CounterId b) {
                      return names_[a] < names_[b];
                  });
        return ids;
    }

    /// Deque: growth never moves existing counters, so references
    /// handed out by counter() stay valid as new counters register.
    std::deque<Counter> slots_;
    std::vector<std::string> names_;
    std::unordered_map<std::string, CounterId> index_;
};

} // namespace dgsim

#endif // DGSIM_COMMON_STATS_HH
