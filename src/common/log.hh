/**
 * @file
 * Minimal gem5-style status/error reporting: panic for simulator bugs,
 * fatal for user/configuration errors, warn/inform for diagnostics.
 *
 * Each message is emitted with a single stdio call, so concurrent
 * runner jobs never interleave fragments of each other's lines on
 * stderr. Panic additionally invokes a per-thread dump hook before
 * aborting — the core registers its flight-recorder/pipeline dump
 * there, so every DGSIM_PANIC / failed DGSIM_ASSERT comes with the
 * microarchitectural context that led to it.
 */

#ifndef DGSIM_COMMON_LOG_HH
#define DGSIM_COMMON_LOG_HH

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dgsim
{

/**
 * Abort the simulation due to an internal simulator bug.
 * Mirrors gem5's panic(): this should never fire regardless of user input.
 */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/**
 * Terminate the simulation due to a user error (bad configuration,
 * malformed program, ...). Mirrors gem5's fatal().
 */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a non-fatal warning to stderr (one atomic write). */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr (one atomic write). */
void informImpl(const std::string &msg);

/**
 * RAII registration of a per-thread panic dump hook.
 *
 * While the guard lives, a panic on this thread calls @p fn(@p ctx)
 * after printing the panic message and before aborting. Guards nest:
 * the newest registration wins and the previous hook is restored on
 * destruction. The hook is cleared before it is invoked, so a panic
 * raised *inside* a dump cannot recurse.
 */
class PanicHookGuard
{
  public:
    using HookFn = void (*)(void *ctx);

    PanicHookGuard(HookFn fn, void *ctx);
    ~PanicHookGuard();

    PanicHookGuard(const PanicHookGuard &) = delete;
    PanicHookGuard &operator=(const PanicHookGuard &) = delete;

  private:
    HookFn prev_fn_;
    void *prev_ctx_;
};

} // namespace dgsim

#define DGSIM_PANIC(msg) ::dgsim::panicImpl(__FILE__, __LINE__, (msg))
#define DGSIM_FATAL(msg) ::dgsim::fatalImpl(__FILE__, __LINE__, (msg))
#define DGSIM_WARN(msg) ::dgsim::warnImpl((msg))
#define DGSIM_INFORM(msg) ::dgsim::informImpl((msg))

/**
 * Warn at most once per call site for the whole process. For
 * conditions every one of a sweep's jobs would otherwise repeat
 * (hundreds of identical lines from a parallel runner).
 */
#define DGSIM_WARN_ONCE(msg)                                                  \
    do {                                                                      \
        static std::atomic<bool> dgsim_warned_once_{false};                   \
        if (!dgsim_warned_once_.exchange(true, std::memory_order_relaxed))    \
            DGSIM_WARN(msg);                                                  \
    } while (0)

/** Assert a simulator invariant; always compiled in (cheap checks only). */
#define DGSIM_ASSERT(cond, msg)                                               \
    do {                                                                      \
        if (!(cond))                                                          \
            DGSIM_PANIC(std::string("assertion failed: ") + #cond + ": " +   \
                        (msg));                                               \
    } while (0)

#endif // DGSIM_COMMON_LOG_HH
