/**
 * @file
 * Minimal gem5-style status/error reporting: panic for simulator bugs,
 * fatal for user/configuration errors, warn/inform for diagnostics.
 */

#ifndef DGSIM_COMMON_LOG_HH
#define DGSIM_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dgsim
{

/**
 * Abort the simulation due to an internal simulator bug.
 * Mirrors gem5's panic(): this should never fire regardless of user input.
 */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/**
 * Terminate the simulation due to a user error (bad configuration,
 * malformed program, ...). Mirrors gem5's fatal().
 */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a non-fatal warning to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

} // namespace dgsim

#define DGSIM_PANIC(msg) ::dgsim::panicImpl(__FILE__, __LINE__, (msg))
#define DGSIM_FATAL(msg) ::dgsim::fatalImpl(__FILE__, __LINE__, (msg))
#define DGSIM_WARN(msg) ::dgsim::warnImpl((msg))
#define DGSIM_INFORM(msg) ::dgsim::informImpl((msg))

/** Assert a simulator invariant; always compiled in (cheap checks only). */
#define DGSIM_ASSERT(cond, msg)                                               \
    do {                                                                      \
        if (!(cond))                                                          \
            DGSIM_PANIC(std::string("assertion failed: ") + #cond + ": " +   \
                        (msg));                                               \
    } while (0)

#endif // DGSIM_COMMON_LOG_HH
