#include "common/log.hh"

#include <exception>

namespace dgsim
{
namespace
{

/**
 * One fully formatted line, one stdio call. stdio locks the stream per
 * call, so lines from concurrent runner threads never interleave
 * mid-message the way separate fprintf("%s", prefix)/fprintf(msg)
 * pairs (or multi-conversion format strings on some libcs) can.
 */
void
emitLine(const char *prefix, const std::string &msg, const char *suffix)
{
    std::string line;
    line.reserve(msg.size() + 64);
    line += prefix;
    line += msg;
    line += suffix;
    std::fwrite(line.data(), 1, line.size(), stderr);
}

/// Per-thread panic dump hook (see PanicHookGuard).
thread_local PanicHookGuard::HookFn t_panic_hook = nullptr;
thread_local void *t_panic_hook_ctx = nullptr;

} // namespace

PanicHookGuard::PanicHookGuard(HookFn fn, void *ctx)
    : prev_fn_(t_panic_hook), prev_ctx_(t_panic_hook_ctx)
{
    t_panic_hook = fn;
    t_panic_hook_ctx = ctx;
}

PanicHookGuard::~PanicHookGuard()
{
    t_panic_hook = prev_fn_;
    t_panic_hook_ctx = prev_ctx_;
}

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    emitLine("panic: ",
             msg + " (" + file + ":" + std::to_string(line) + ")", "\n");
    // Run the dump hook with the hook cleared: a panic raised while
    // dumping aborts immediately instead of recursing.
    if (PanicHookGuard::HookFn hook = t_panic_hook) {
        void *ctx = t_panic_hook_ctx;
        t_panic_hook = nullptr;
        t_panic_hook_ctx = nullptr;
        hook(ctx);
    }
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    emitLine("fatal: ",
             msg + " (" + file + ":" + std::to_string(line) + ")", "\n");
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    emitLine("warn: ", msg, "\n");
}

void
informImpl(const std::string &msg)
{
    emitLine("info: ", msg, "\n");
}

} // namespace dgsim
