/**
 * @file
 * Build configuration baked in at compile time. Host-throughput
 * numbers are meaningless without the build type attached, so every
 * perf-reporting surface (dgrun --perf, the bench targets) stamps its
 * output with these constants.
 */

#ifndef DGSIM_COMMON_BUILDINFO_HH
#define DGSIM_COMMON_BUILDINFO_HH

namespace dgsim::buildinfo
{

#ifndef DGSIM_BUILD_TYPE
#define DGSIM_BUILD_TYPE "unknown"
#endif

/// CMAKE_BUILD_TYPE at configure time ("Release", "RelWithDebInfo", ...).
inline constexpr const char *kBuildType = DGSIM_BUILD_TYPE;

/// True when configured with -DDGSIM_NATIVE=ON (-march=native).
#ifdef DGSIM_NATIVE_ARCH
inline constexpr bool kNativeArch = true;
#else
inline constexpr bool kNativeArch = false;
#endif

/// True for the build type throughput numbers should be quoted from.
inline constexpr bool
isReleaseBuild()
{
    constexpr const char *want = "Release";
    const char *have = kBuildType;
    for (int i = 0;; ++i) {
        if (want[i] != have[i])
            return false;
        if (want[i] == '\0')
            return true;
    }
}

} // namespace dgsim::buildinfo

#endif // DGSIM_COMMON_BUILDINFO_HH
