#include "common/signals.hh"

#include <csignal>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace dgsim
{
namespace
{

std::atomic<bool> g_drain{false};

#ifndef _WIN32

extern "C" void
drainSignalHandler(int signo)
{
    if (g_drain.exchange(true)) {
        // Second signal: the user really means it. _exit is
        // async-signal-safe; 128+signo is the shell convention.
        _exit(128 + signo);
    }
    // One short async-signal-safe notice; everything else is up to the
    // polling consumer.
    static const char msg[] =
        "\n[dgsim] signal received: draining (finishing in-flight jobs; "
        "repeat to kill)\n";
    const ssize_t ignored = write(2, msg, sizeof(msg) - 1);
    (void)ignored;
}

#endif // !_WIN32

} // namespace

void
installDrainHandler()
{
#ifndef _WIN32
    struct sigaction action = {};
    action.sa_handler = drainSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESTART;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);
#else
    // Windows has no sigaction; std::signal covers Ctrl-C well enough
    // for a dev box (no second-signal hard-kill escalation).
    std::signal(SIGINT, [](int) { g_drain.store(true); });
    std::signal(SIGTERM, [](int) { g_drain.store(true); });
#endif
}

const std::atomic<bool> &
drainFlag()
{
    return g_drain;
}

bool
drainRequested()
{
    return g_drain.load(std::memory_order_relaxed);
}

void
requestDrain()
{
    g_drain.store(true);
}

void
resetDrainFlagForTest()
{
    g_drain.store(false);
}

} // namespace dgsim
