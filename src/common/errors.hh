/**
 * @file
 * Error taxonomy for host-side failure handling.
 *
 * The experiment runner distinguishes two failure classes when a job
 * throws:
 *
 *  - TransientError (and subclasses): a *host* condition — an injected
 *    fault, an I/O hiccup, a wall-clock timeout under load. Re-running
 *    the job may well succeed, so the runner retries these with bounded
 *    exponential backoff.
 *
 *  - Every other exception: a *deterministic* simulation error (bad
 *    program, invariant violation surfaced as std::runtime_error, ...).
 *    Re-running would reproduce it bit-for-bit, so the runner reports
 *    it once and never retries.
 */

#ifndef DGSIM_COMMON_ERRORS_HH
#define DGSIM_COMMON_ERRORS_HH

#include <stdexcept>
#include <string>

namespace dgsim
{

/** Host-side failure worth retrying (see file comment). */
class TransientError : public std::runtime_error
{
  public:
    explicit TransientError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * The commit watchdog fired with SimConfig::watchdogThrows set: no
 * instruction committed for watchdogCycles cycles. Deliberately NOT a
 * TransientError — a wedge is a pure function of (program, config) and
 * would reproduce on every retry. Callers that opt in (the leak oracle)
 * catch it and classify the run instead of diffing partial state.
 */
class WatchdogError : public std::runtime_error
{
  public:
    explicit WatchdogError(const std::string &what) : std::runtime_error(what)
    {
    }
};

/**
 * A run exceeded its wall-clock budget (SimConfig::jobTimeoutMs).
 * Classified transient: host load can stretch a legitimate run past its
 * deadline, so a bounded retry is the right default. A job that
 * deterministically overruns simply exhausts its attempts and surfaces
 * this error.
 */
class JobTimeoutError : public TransientError
{
  public:
    explicit JobTimeoutError(const std::string &what) : TransientError(what)
    {
    }
};

} // namespace dgsim

#endif // DGSIM_COMMON_ERRORS_HH
