#include "common/config.hh"

#include "common/log.hh"

namespace dgsim
{

std::string
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Unsafe: return "Unsafe";
      case Scheme::NdaP: return "NDA-P";
      case Scheme::Stt: return "STT";
      case Scheme::Dom: return "DoM";
    }
    DGSIM_PANIC("unknown scheme");
}

std::string
SimConfig::label() const
{
    std::string name = schemeName(scheme);
    if (addressPrediction)
        name += "+AP";
    return name;
}

} // namespace dgsim
