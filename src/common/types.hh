/**
 * @file
 * Fundamental scalar types shared by every dgsim module.
 */

#ifndef DGSIM_COMMON_TYPES_HH
#define DGSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dgsim
{

/** Byte address in the simulated memory space. */
using Addr = std::uint64_t;

/** Simulation time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** Global dynamic-instruction sequence number (monotonic, never reused). */
using SeqNum = std::uint64_t;

/** Architectural register index. */
using RegIndex = std::uint8_t;

/** Physical register index. */
using PhysReg = std::uint16_t;

/** Register payload: all architectural state is 64-bit integers. */
using RegValue = std::uint64_t;

/** Sentinel for "no sequence number". */
constexpr SeqNum kInvalidSeq = std::numeric_limits<SeqNum>::max();

/** Sentinel for "no cycle scheduled". */
constexpr Cycle kInvalidCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no physical register". */
constexpr PhysReg kInvalidPhysReg = std::numeric_limits<PhysReg>::max();

/** Sentinel address, never a legal program address. */
constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Number of architectural integer registers (x0 is hard-wired zero). */
constexpr unsigned kNumArchRegs = 32;

/** All memory operations in the micro-ISA are 8-byte aligned words. */
constexpr unsigned kWordBytes = 8;

} // namespace dgsim

#endif // DGSIM_COMMON_TYPES_HH
