/**
 * @file
 * Simulation configuration.
 *
 * Defaults reproduce Table 1 of the Doppelganger Loads paper (ISCA'23):
 * an IceLake-like out-of-order core with a three-level cache hierarchy
 * and a 1024-entry, 8-way PC-based stride address predictor/prefetcher.
 */

#ifndef DGSIM_COMMON_CONFIG_HH
#define DGSIM_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dgsim
{

/** Which secure speculation scheme guards the core. */
enum class Scheme
{
    Unsafe, ///< Unprotected baseline out-of-order core.
    NdaP,   ///< Non-speculative Data Access, permissive propagation.
    Stt,    ///< Speculative Taint Tracking.
    Dom,    ///< Delay-on-Miss.
};

/** Human-readable scheme name, matching the paper's terminology. */
std::string schemeName(Scheme scheme);

/** Parameters of one cache level. */
struct CacheConfig
{
    std::string name;      ///< Stats prefix, e.g. "l1d".
    std::uint64_t sizeBytes = 0;
    unsigned assoc = 1;
    unsigned lineBytes = 64;
    unsigned latency = 1;  ///< Roundtrip hit latency in cycles.
    unsigned numMshrs = 16;

    unsigned numSets() const
    {
        return static_cast<unsigned>(sizeBytes / (assoc * lineBytes));
    }
};

/** Full system configuration (core + memory + predictors + scheme). */
struct SimConfig
{
    // --- Pipeline (Table 1, "Processor") -------------------------------
    unsigned fetchWidth = 5;     ///< "Decode width: 5 instructions".
    unsigned decodeWidth = 5;
    unsigned issueWidth = 8;     ///< "Issue / Commit width: 8".
    unsigned commitWidth = 8;
    unsigned iqEntries = 160;    ///< "Instruction queue: 160 entries".
    unsigned robEntries = 352;   ///< "Reorder buffer: 352 entries".
    unsigned lqEntries = 128;    ///< "Load queue: 128 entries".
    unsigned sqEntries = 72;     ///< "Store queue/buffer: 72 entries".
    unsigned numPhysRegs = 512;
    unsigned loadPorts = 2;      ///< Cache read ports per cycle.
    unsigned storePorts = 1;     ///< Cache write ports per cycle.
    unsigned numAlus = 6;
    unsigned numMulDivs = 2;
    unsigned numAgus = 3;
    unsigned frontendDelay = 4;  ///< Fetch-to-rename depth in cycles.
    unsigned mispredictPenalty = 6; ///< Extra redirect bubble on squash.

    // --- Memory hierarchy (Table 1, "Memory") --------------------------
    CacheConfig l1d{"l1d", 48 * 1024, 12, 64, 5, 16};
    CacheConfig l2{"l2", 2 * 1024 * 1024, 8, 64, 15, 32};
    CacheConfig l3{"l3", 16 * 1024 * 1024, 16, 64, 40, 64};
    /// "Memory access time: 13.5ns" at ~3.7GHz IceLake -> ~50 core cycles
    /// on top of the L3 roundtrip.
    unsigned dramLatency = 50;
    /// Bandwidth cap: minimum cycles between DRAM line transfers
    /// (3 cycles/64B line at ~3.7GHz is roughly dual-channel DDR4).
    unsigned dramIssueInterval = 3;

    // --- Address predictor / prefetcher (Table 1) ----------------------
    /// "Address predictor/prefetcher: 1024 entries, 8-way, 13.5 KiB".
    unsigned predictorEntries = 1024;
    unsigned predictorAssoc = 8;
    unsigned predictorConfidenceThreshold = 2; ///< Min confirmations.
    unsigned prefetchDegree = 12; ///< Instances ahead in prefetching mode.
    bool prefetcherEnabled = true;

    // --- Branch prediction ----------------------------------------------
    unsigned bpHistoryBits = 12;
    unsigned btbEntries = 4096;

    // --- Secure speculation ----------------------------------------------
    Scheme scheme = Scheme::Unsafe;
    /// Enable Doppelganger Loads (address prediction, "+AP" in the paper).
    bool addressPrediction = false;
    /**
     * Security ablation only: let DoM+AP resolve branches eagerly (out
     * of order) instead of in order as §4.6 requires. Demonstrates the
     * implicit-channel leak the in-order rule exists to close.
     */
    bool domEagerBranchResolution = false;

    // --- Run control ------------------------------------------------------
    std::uint64_t maxInstructions = 0; ///< 0 = run to HALT.
    std::uint64_t maxCycles = 0;       ///< 0 = unbounded (HALT required).
    std::uint64_t warmupInstructions = 0; ///< Stats reset after this many.
    bool checkArchState = false; ///< Cross-check against functional oracle.
    /**
     * Event-driven idle-cycle skipping: when a tick makes no forward
     * progress, run() warps the clock to the earliest future event
     * instead of re-ticking (DESIGN.md §5d). Result-neutral by
     * construction — every architectural counter is byte-identical
     * with it on or off — so it is a host-level knob like thread
     * count: not part of label() and never hashed into job identity.
     * `dgrun --no-skip` clears it (golden byte-compares, debugging).
     */
    bool idleSkip = true;

    // --- Checkpoint & fast-forward sampling (src/ckpt) --------------------
    /**
     * Execute this many instructions on the functional core (warming
     * caches and predictors) before handing off to the detailed core.
     * maxInstructions then bounds the *detailed* window only. 0 = run
     * fully detailed from instruction 0.
     */
    std::uint64_t ffwdInstructions = 0;
    /**
     * Sampled simulation: of every interval of this many instructions,
     * the first (interval - sampleDetail) run fast-forwarded and the
     * last sampleDetail run detailed, until maxInstructions total
     * instructions (functional + detailed) have executed. 0 = single
     * fast-forward + single detailed window (see ffwdInstructions).
     */
    std::uint64_t sampleInterval = 0;
    /** Detailed-window length per sampling interval (see above). */
    std::uint64_t sampleDetail = 0;
    /** Write a checkpoint here when ckptSaveInst is reached ("" = off). */
    std::string ckptSavePath;
    /**
     * Functional instruction count at which to save the checkpoint. The
     * point must fall inside a fast-forward phase (the architectural
     * state is only well-defined between instructions there).
     */
    std::uint64_t ckptSaveInst = 0;
    /** Start from this checkpoint instead of instruction 0 ("" = off). */
    std::string ckptRestorePath;

    // --- Observability ----------------------------------------------------
    /// O3PipeView/Konata pipeline trace output file; empty = tracing
    /// off (the only state the cycle loop ever checks is one cached
    /// bool).
    std::string tracePath;
    /// Arm tracing only after this many instructions have committed.
    std::uint64_t traceStartInst = 0;
    /// Trace at most this many instructions (0 = no limit).
    std::uint64_t traceMaxInsts = 0;
    /**
     * Commit watchdog: if no instruction commits for this many cycles
     * the core dumps its pipeline state + flight recorder and panics
     * instead of spinning until maxCycles. 0 disables. The default is
     * far beyond any legitimate stall (worst DRAM/policy chains are a
     * few hundred cycles per commit).
     */
    std::uint64_t watchdogCycles = 100'000;
    /**
     * When set, the commit watchdog throws WatchdogError instead of
     * panicking. The leak oracle runs thousands of machine-generated
     * attacker programs, some of which legitimately wedge; those runs
     * must classify as `inconclusive`, not kill the fuzzing process.
     * WatchdogError is deterministic, so the runner never retries it.
     */
    bool watchdogThrows = false;
    /**
     * Test/debug ablation: the policy never resolves branches, so
     * shadows never lift and the pipeline wedges at the first branch.
     * Exists to exercise the commit watchdog and flight recorder.
     */
    bool wedgeNeverResolve = false;
    /**
     * Per-run wall-clock budget in milliseconds; 0 disables. Checked at
     * the commit-watchdog site every 8192 cycles; on expiry the run
     * throws JobTimeoutError (a *recoverable* host error the experiment
     * runner retries with backoff) instead of panicking like the
     * cycle-domain watchdog, because a slow host is not a wedged core.
     */
    std::uint64_t jobTimeoutMs = 0;

    /** Short configuration label, e.g. "STT+AP". */
    std::string label() const;
};

} // namespace dgsim

#endif // DGSIM_COMMON_CONFIG_HH
