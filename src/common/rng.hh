/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Everything in dgsim must be reproducible bit-for-bit across runs, so
 * workload generators use this self-contained xoshiro256** implementation
 * instead of std::mt19937 (whose distributions are not portable).
 */

#ifndef DGSIM_COMMON_RNG_HH
#define DGSIM_COMMON_RNG_HH

#include <cstdint>

#include "common/log.hh"

namespace dgsim
{

/** Deterministic xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // splitmix64 to expand the seed into the full state.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // bound == 0 would be a division by zero (UB, typically SIGFPE
        // with no message); fail loudly instead.
        DGSIM_ASSERT(bound != 0, "Rng::below needs a nonzero bound");
        // Simple modulo; bias is irrelevant for workload synthesis.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        DGSIM_ASSERT(lo <= hi, "Rng::range needs lo <= hi");
        // hi - lo + 1 wraps to 0 for the full-uint64 span, which used
        // to feed below(0); the full span is just a raw draw.
        const std::uint64_t span = hi - lo + 1;
        return span == 0 ? next() : lo + next() % span;
    }

    /** Bernoulli draw with probability num/den. */
    bool
    chance(std::uint64_t num, std::uint64_t den)
    {
        return below(den) < num;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace dgsim

#endif // DGSIM_COMMON_RNG_HH
