/**
 * @file
 * A complete simulated workload: instruction text plus an initial data
 * image and an entry point.
 */

#ifndef DGSIM_ISA_PROGRAM_HH
#define DGSIM_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"

namespace dgsim
{

/**
 * Sparse word-granular data memory image.
 *
 * Both the functional oracle and the timing core operate on copies of
 * the program's initial image, so a single Program can be run many
 * times under different configurations.
 */
class MemoryImage
{
  public:
    /** Read the 8-byte word at @p addr (must be word aligned). */
    RegValue
    read(Addr addr) const
    {
        auto it = words_.find(addr);
        return it == words_.end() ? 0 : it->second;
    }

    /** Write the 8-byte word at @p addr. */
    void write(Addr addr, RegValue value) { words_[addr] = value; }

    std::size_t footprintWords() const { return words_.size(); }

    const std::unordered_map<Addr, RegValue> &words() const
    {
        return words_;
    }

  private:
    std::unordered_map<Addr, RegValue> words_;
};

/** An executable program for the dgsim micro-ISA. */
struct Program
{
    std::string name;                ///< Workload label (used in benches).
    std::vector<Instruction> text;   ///< One instruction per PC.
    MemoryImage initialData;         ///< Data image at simulation start.
    Addr entry = 0;                  ///< Starting PC.

    /** Fetch the instruction at @p pc; out-of-range PCs decode as Nop.
     *
     * Wrong-path fetch may run past the end of the text (e.g. after a
     * mispredicted indirect jump); those instructions are squashed
     * before committing, so a Nop placeholder is sufficient. */
    Instruction
    fetch(Addr pc) const
    {
        if (pc < text.size())
            return text[pc];
        return Instruction{Opcode::Nop, 0, 0, 0, 0};
    }

    bool validPc(Addr pc) const { return pc < text.size(); }
};

} // namespace dgsim

#endif // DGSIM_ISA_PROGRAM_HH
