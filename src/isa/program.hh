/**
 * @file
 * A complete simulated workload: instruction text plus an initial data
 * image and an entry point.
 */

#ifndef DGSIM_ISA_PROGRAM_HH
#define DGSIM_ISA_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"
#include "memory/memory_image.hh"

namespace dgsim
{

/** An executable program for the dgsim micro-ISA. */
struct Program
{
    std::string name;                ///< Workload label (used in benches).
    std::vector<Instruction> text;   ///< One instruction per PC.
    MemoryImage initialData;         ///< Data image at simulation start.
    Addr entry = 0;                  ///< Starting PC.

    /** Fetch the instruction at @p pc; out-of-range PCs decode as Nop.
     *
     * Wrong-path fetch may run past the end of the text (e.g. after a
     * mispredicted indirect jump); those instructions are squashed
     * before committing, so a Nop placeholder is sufficient. */
    Instruction
    fetch(Addr pc) const
    {
        if (pc < text.size())
            return text[pc];
        return Instruction{Opcode::Nop, 0, 0, 0, 0};
    }

    bool validPc(Addr pc) const { return pc < text.size(); }
};

} // namespace dgsim

#endif // DGSIM_ISA_PROGRAM_HH
