#include "isa/functional.hh"

#include "common/log.hh"

namespace dgsim
{

RegValue
evalAlu(const Instruction &inst, RegValue a, RegValue b)
{
    const auto imm = static_cast<RegValue>(inst.imm);
    switch (inst.op) {
      case Opcode::Add: return a + b;
      case Opcode::Sub: return a - b;
      case Opcode::Mul: return a * b;
      // Division by zero is architecturally defined as zero so that no
      // exception machinery is needed (shadows track only control flow
      // and store addresses, as in the paper's implementation, Sec. 5).
      case Opcode::Div: return b == 0 ? 0 : a / b;
      case Opcode::And: return a & b;
      case Opcode::Or: return a | b;
      case Opcode::Xor: return a ^ b;
      case Opcode::Sll: return a << (b & 63);
      case Opcode::Srl: return a >> (b & 63);
      case Opcode::Slt:
        return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)
                   ? 1 : 0;
      case Opcode::Addi: return a + imm;
      case Opcode::Andi: return a & imm;
      case Opcode::Ori: return a | imm;
      case Opcode::Xori: return a ^ imm;
      case Opcode::Slli: return a << (imm & 63);
      case Opcode::Srli: return a >> (imm & 63);
      case Opcode::Slti:
        return static_cast<std::int64_t>(a) < inst.imm ? 1 : 0;
      case Opcode::Lui: return imm;
      default:
        DGSIM_PANIC("evalAlu on non-ALU opcode " + mnemonic(inst.op));
    }
}

bool
evalBranchTaken(const Instruction &inst, RegValue a, RegValue b)
{
    switch (inst.op) {
      case Opcode::Beq: return a == b;
      case Opcode::Bne: return a != b;
      case Opcode::Blt:
        return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
      case Opcode::Bge:
        return static_cast<std::int64_t>(a) >= static_cast<std::int64_t>(b);
      case Opcode::Jal:
      case Opcode::Jalr:
        return true;
      default:
        DGSIM_PANIC("evalBranchTaken on non-branch " + mnemonic(inst.op));
    }
}

FunctionalCore::FunctionalCore(const Program &program)
    : program_(program), memory_(program.initialData), pc_(program.entry)
{
}

void
FunctionalCore::restoreArchState(
    const std::array<RegValue, kNumArchRegs> &regs, const MemoryImage &memory,
    Addr pc, bool halted, std::uint64_t instructions_executed)
{
    regs_ = regs;
    regs_[0] = 0;
    memory_ = memory;
    pc_ = pc;
    halted_ = halted;
    count_ = instructions_executed;
}

StepResult
FunctionalCore::step()
{
    StepResult result;
    if (halted_) {
        result.halted = true;
        result.nextPc = pc_;
        return result;
    }
    DGSIM_ASSERT(program_.validPc(pc_),
                 "functional core ran off the end of the program");
    const Instruction inst = program_.text[pc_];
    const RegValue a = regs_[inst.rs1];
    const RegValue b = regs_[inst.rs2];
    Addr next_pc = pc_ + 1;

    switch (opClass(inst.op)) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::IntDiv:
        if (inst.rd != 0)
            regs_[inst.rd] = evalAlu(inst, a, b);
        break;
      case OpClass::MemRead: {
        const Addr ea = a + static_cast<Addr>(inst.imm);
        DGSIM_ASSERT(ea % kWordBytes == 0, "unaligned load");
        result.effAddr = ea;
        if (inst.rd != 0)
            regs_[inst.rd] = memory_.read(ea);
        break;
      }
      case OpClass::MemWrite: {
        const Addr ea = a + static_cast<Addr>(inst.imm);
        DGSIM_ASSERT(ea % kWordBytes == 0, "unaligned store");
        result.effAddr = ea;
        memory_.write(ea, b);
        break;
      }
      case OpClass::Branch: {
        result.isBranch = true;
        result.taken = evalBranchTaken(inst, a, b);
        if (inst.op == Opcode::Jal) {
            if (inst.rd != 0)
                regs_[inst.rd] = pc_ + 1;
            next_pc = static_cast<Addr>(inst.imm);
        } else if (inst.op == Opcode::Jalr) {
            if (inst.rd != 0)
                regs_[inst.rd] = pc_ + 1;
            next_pc = a + static_cast<Addr>(inst.imm);
        } else if (result.taken) {
            next_pc = static_cast<Addr>(inst.imm);
        }
        break;
      }
      case OpClass::No_OpClass:
        if (inst.op == Opcode::Halt) {
            halted_ = true;
            next_pc = pc_;
        }
        break;
    }

    regs_[0] = 0;
    pc_ = next_pc;
    ++count_;
    result.halted = halted_;
    result.nextPc = next_pc;
    return result;
}

std::uint64_t
FunctionalCore::run(std::uint64_t max_instructions)
{
    const std::uint64_t start = count_;
    while (!halted_ &&
           (max_instructions == 0 || count_ - start < max_instructions)) {
        step();
    }
    return count_ - start;
}

} // namespace dgsim
