/**
 * @file
 * A small in-memory assembler for the dgsim micro-ISA.
 *
 * Workload generators and tests build programs through this fluent
 * builder, which resolves symbolic labels to absolute instruction
 * addresses at finalization:
 *
 * @code
 *   Assembler a("loop-demo");
 *   a.li(1, 0);
 *   a.label("loop");
 *   a.addi(1, 1, 1);
 *   a.blt(1, 2, "loop");
 *   a.halt();
 *   Program p = a.finish();
 * @endcode
 */

#ifndef DGSIM_ISA_ASSEMBLER_HH
#define DGSIM_ISA_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/program.hh"

namespace dgsim
{

/** Label-resolving program builder. */
class Assembler
{
  public:
    explicit Assembler(std::string name);

    // --- Labels ---------------------------------------------------------
    /** Bind @p name to the address of the next emitted instruction. */
    Assembler &label(const std::string &name);

    // --- ALU register-register -----------------------------------------
    Assembler &add(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &sub(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &mul(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &div(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &and_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &or_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &xor_(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &sll(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &srl(RegIndex rd, RegIndex rs1, RegIndex rs2);
    Assembler &slt(RegIndex rd, RegIndex rs1, RegIndex rs2);

    // --- ALU register-immediate -----------------------------------------
    Assembler &addi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &andi(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &ori(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &xori(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &slli(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &srli(RegIndex rd, RegIndex rs1, std::int64_t imm);
    Assembler &slti(RegIndex rd, RegIndex rs1, std::int64_t imm);

    /** Load (full 64-bit) immediate into rd. */
    Assembler &li(RegIndex rd, std::uint64_t imm);
    /** Register move (addi rd, rs, 0). */
    Assembler &mv(RegIndex rd, RegIndex rs);

    // --- Memory -----------------------------------------------------------
    /** Ld rd, disp(rs1). */
    Assembler &ld(RegIndex rd, RegIndex rs1, std::int64_t disp = 0);
    /** St rs2, disp(rs1): store value of rs2 at rs1+disp. */
    Assembler &st(RegIndex rs2, RegIndex rs1, std::int64_t disp = 0);

    // --- Control flow -------------------------------------------------------
    Assembler &beq(RegIndex rs1, RegIndex rs2, const std::string &target);
    Assembler &bne(RegIndex rs1, RegIndex rs2, const std::string &target);
    Assembler &blt(RegIndex rs1, RegIndex rs2, const std::string &target);
    Assembler &bge(RegIndex rs1, RegIndex rs2, const std::string &target);
    Assembler &jal(RegIndex rd, const std::string &target);
    /** Unconditional jump (jal x0, target). */
    Assembler &jmp(const std::string &target);
    /** Indirect jump through rs1+imm. */
    Assembler &jalr(RegIndex rd, RegIndex rs1, std::int64_t imm = 0);

    // --- Misc ----------------------------------------------------------------
    Assembler &nop();
    Assembler &halt();

    // --- Data image -------------------------------------------------------
    /** Write one word into the initial data image. */
    Assembler &data(Addr addr, RegValue value);

    /** Current instruction address (next emitted instruction's PC). */
    Addr here() const { return program_.text.size(); }

    /** Resolve labels and return the finished program. */
    Program finish();

  private:
    Assembler &emit(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2,
                    std::int64_t imm);
    Assembler &emitBranch(Opcode op, RegIndex rs1, RegIndex rs2,
                          const std::string &target);

    Program program_;
    std::unordered_map<std::string, Addr> labels_;
    /// PC -> unresolved label for fixup at finish().
    std::vector<std::pair<Addr, std::string>> fixups_;
    bool finished_ = false;
};

} // namespace dgsim

#endif // DGSIM_ISA_ASSEMBLER_HH
