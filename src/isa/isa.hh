/**
 * @file
 * The dgsim micro-ISA.
 *
 * A small 64-bit RISC-like instruction set that is rich enough to express
 * the SPEC-proxy kernels and the Spectre-style attack gadgets while
 * keeping decode trivial. 32 integer registers, x0 hard-wired to zero,
 * 8-byte word-aligned memory operations.
 */

#ifndef DGSIM_ISA_ISA_HH
#define DGSIM_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/log.hh"
#include "common/types.hh"

namespace dgsim
{

/** Micro-ISA opcodes. */
enum class Opcode : std::uint8_t
{
    // Register-register ALU.
    Add, Sub, Mul, Div, And, Or, Xor, Sll, Srl, Slt,
    // Register-immediate ALU.
    Addi, Andi, Ori, Xori, Slli, Srli, Slti,
    // Load upper immediate (writes imm directly, used as "li").
    Lui,
    // Memory: Ld rd, imm(rs1); St rs2, imm(rs1).
    Ld, St,
    // Control: conditional branches compare rs1, rs2; target = imm (abs).
    Beq, Bne, Blt, Bge,
    // Unconditional jumps. Jal: rd = pc+1, pc = imm. Jalr: pc = rs1+imm.
    Jal, Jalr,
    // Misc.
    Nop, Halt,
};

/** Functional-unit class an opcode executes on. */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< 1-cycle integer ops.
    IntMul,   ///< Pipelined multiplier.
    IntDiv,   ///< Unpipelined divider.
    MemRead,  ///< Loads (AGU + cache access).
    MemWrite, ///< Stores (AGU; data written at commit).
    Branch,   ///< Conditional and unconditional control flow.
    No_OpClass, ///< Nop/Halt.
};

/** One static instruction. PCs index the program text (one word per PC). */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegIndex rd = 0;   ///< Destination register (0 = discard).
    RegIndex rs1 = 0;  ///< First source.
    RegIndex rs2 = 0;  ///< Second source (store data for St).
    std::int64_t imm = 0; ///< Immediate / branch target / displacement.
};

// The decode predicates below run on the cycle loop's hottest paths
// (issue wakeup, execute, rename), so they are defined inline here —
// each compiles to a jump table or bit test instead of a call.

/** @return the functional-unit class of @p op. */
inline OpClass
opClass(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Slt:
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Slti:
      case Opcode::Lui:
        return OpClass::IntAlu;
      case Opcode::Mul:
        return OpClass::IntMul;
      case Opcode::Div:
        return OpClass::IntDiv;
      case Opcode::Ld:
        return OpClass::MemRead;
      case Opcode::St:
        return OpClass::MemWrite;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jal:
      case Opcode::Jalr:
        return OpClass::Branch;
      case Opcode::Nop:
      case Opcode::Halt:
        return OpClass::No_OpClass;
    }
    DGSIM_PANIC("unknown opcode");
}

/** @return true for Ld. */
inline bool
isLoad(Opcode op)
{
    return op == Opcode::Ld;
}

/** @return true for St. */
inline bool
isStore(Opcode op)
{
    return op == Opcode::St;
}

/** @return true for any control-flow instruction. */
inline bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jal:
      case Opcode::Jalr:
        return true;
      default:
        return false;
    }
}

/** @return true for conditional branches only. */
inline bool
isCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

/** @return true if the instruction writes rd. */
inline bool
writesDest(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::St:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Nop:
      case Opcode::Halt:
        return false;
      default:
        return inst.rd != 0;
    }
}

/** @return true if rs1 is a live source operand. */
inline bool
readsRs1(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Lui:
      case Opcode::Jal:
      case Opcode::Nop:
      case Opcode::Halt:
        return false;
      default:
        return true;
    }
}

/** @return true if rs2 is a live source operand. */
inline bool
readsRs2(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Slt:
      case Opcode::St: // rs2 carries the store data.
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

/** Execution latency, in cycles, of @p op on its functional unit. */
inline unsigned
execLatency(Opcode op)
{
    switch (opClass(op)) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMul: return 3;
      case OpClass::IntDiv: return 12;
      // AGU only (register read + address add); the cache adds the
      // rest. Two cycles keeps a realistic window between dispatch and
      // address resolution, during which a doppelganger can claim an
      // idle memory port (paper Figure 5: predictions are available
      // from decode, well before the AGU result).
      case OpClass::MemRead: return 2;
      case OpClass::MemWrite: return 2;
      case OpClass::Branch: return 1;
      case OpClass::No_OpClass: return 1;
    }
    DGSIM_PANIC("unknown op class");
}

/** Textual opcode mnemonic. */
std::string mnemonic(Opcode op);

/** Disassemble one instruction (for traces and test failure messages). */
std::string disassemble(const Instruction &inst);

} // namespace dgsim

#endif // DGSIM_ISA_ISA_HH
