/**
 * @file
 * The dgsim micro-ISA.
 *
 * A small 64-bit RISC-like instruction set that is rich enough to express
 * the SPEC-proxy kernels and the Spectre-style attack gadgets while
 * keeping decode trivial. 32 integer registers, x0 hard-wired to zero,
 * 8-byte word-aligned memory operations.
 */

#ifndef DGSIM_ISA_ISA_HH
#define DGSIM_ISA_ISA_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace dgsim
{

/** Micro-ISA opcodes. */
enum class Opcode : std::uint8_t
{
    // Register-register ALU.
    Add, Sub, Mul, Div, And, Or, Xor, Sll, Srl, Slt,
    // Register-immediate ALU.
    Addi, Andi, Ori, Xori, Slli, Srli, Slti,
    // Load upper immediate (writes imm directly, used as "li").
    Lui,
    // Memory: Ld rd, imm(rs1); St rs2, imm(rs1).
    Ld, St,
    // Control: conditional branches compare rs1, rs2; target = imm (abs).
    Beq, Bne, Blt, Bge,
    // Unconditional jumps. Jal: rd = pc+1, pc = imm. Jalr: pc = rs1+imm.
    Jal, Jalr,
    // Misc.
    Nop, Halt,
};

/** Functional-unit class an opcode executes on. */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< 1-cycle integer ops.
    IntMul,   ///< Pipelined multiplier.
    IntDiv,   ///< Unpipelined divider.
    MemRead,  ///< Loads (AGU + cache access).
    MemWrite, ///< Stores (AGU; data written at commit).
    Branch,   ///< Conditional and unconditional control flow.
    No_OpClass, ///< Nop/Halt.
};

/** One static instruction. PCs index the program text (one word per PC). */
struct Instruction
{
    Opcode op = Opcode::Nop;
    RegIndex rd = 0;   ///< Destination register (0 = discard).
    RegIndex rs1 = 0;  ///< First source.
    RegIndex rs2 = 0;  ///< Second source (store data for St).
    std::int64_t imm = 0; ///< Immediate / branch target / displacement.
};

/** @return the functional-unit class of @p op. */
OpClass opClass(Opcode op);

/** @return true for Ld. */
bool isLoad(Opcode op);

/** @return true for St. */
bool isStore(Opcode op);

/** @return true for any control-flow instruction. */
bool isControl(Opcode op);

/** @return true for conditional branches only. */
bool isCondBranch(Opcode op);

/** @return true if the instruction writes rd. */
bool writesDest(const Instruction &inst);

/** @return true if rs1 is a live source operand. */
bool readsRs1(const Instruction &inst);

/** @return true if rs2 is a live source operand. */
bool readsRs2(const Instruction &inst);

/** Execution latency, in cycles, of @p op on its functional unit. */
unsigned execLatency(Opcode op);

/** Textual opcode mnemonic. */
std::string mnemonic(Opcode op);

/** Disassemble one instruction (for traces and test failure messages). */
std::string disassemble(const Instruction &inst);

} // namespace dgsim

#endif // DGSIM_ISA_ISA_HH
