/**
 * @file
 * Functional (architectural) simulator for the micro-ISA.
 *
 * Executes programs in-order with no timing. It serves three roles:
 *   - oracle for cross-checking the out-of-order core's committed state;
 *   - ground truth for branch outcomes in unit tests;
 *   - quick functional smoke-runs of workload generators.
 */

#ifndef DGSIM_ISA_FUNCTIONAL_HH
#define DGSIM_ISA_FUNCTIONAL_HH

#include <array>
#include <cstdint>

#include "common/types.hh"
#include "isa/program.hh"

namespace dgsim
{

/** Result of a single functional step. */
struct StepResult
{
    bool halted = false;
    Addr nextPc = 0;
    /// For loads/stores: the effective address touched this step.
    Addr effAddr = kInvalidAddr;
    /// For control instructions: taken direction and target.
    bool isBranch = false;
    bool taken = false;
};

/** ALU semantics shared by the functional core and the OoO core. */
RegValue evalAlu(const Instruction &inst, RegValue a, RegValue b);

/** Branch predicate semantics shared by both cores. */
bool evalBranchTaken(const Instruction &inst, RegValue a, RegValue b);

/** In-order architectural simulator. */
class FunctionalCore
{
  public:
    explicit FunctionalCore(const Program &program);
    /// The core keeps a reference; temporaries would dangle.
    explicit FunctionalCore(Program &&) = delete;

    /** Execute one instruction; returns what happened. */
    StepResult step();

    /**
     * Run until HALT or @p max_instructions executed (0 = unbounded).
     * @return number of instructions executed.
     */
    std::uint64_t run(std::uint64_t max_instructions = 0);

    bool halted() const { return halted_; }
    Addr pc() const { return pc_; }
    RegValue reg(RegIndex index) const { return regs_[index]; }
    const MemoryImage &memory() const { return memory_; }
    std::uint64_t instructionsExecuted() const { return count_; }

    /**
     * Jump the core to a checkpointed architectural state: registers,
     * memory image, PC, halt flag and retired-instruction count. The
     * program itself is not part of the state — the caller must restore
     * into a core built over the same Program the checkpoint came from.
     */
    void restoreArchState(const std::array<RegValue, kNumArchRegs> &regs,
                          const MemoryImage &memory, Addr pc, bool halted,
                          std::uint64_t instructions_executed);

  private:
    const Program &program_;
    MemoryImage memory_;
    std::array<RegValue, kNumArchRegs> regs_{};
    Addr pc_;
    bool halted_ = false;
    std::uint64_t count_ = 0;
};

} // namespace dgsim

#endif // DGSIM_ISA_FUNCTIONAL_HH
