#include "isa/assembler.hh"

#include <utility>

#include "common/log.hh"

namespace dgsim
{

Assembler::Assembler(std::string name)
{
    program_.name = std::move(name);
}

Assembler &
Assembler::label(const std::string &name)
{
    auto [it, inserted] = labels_.emplace(name, here());
    if (!inserted)
        DGSIM_FATAL("duplicate label: " + name);
    return *this;
}

Assembler &
Assembler::emit(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2,
                std::int64_t imm)
{
    DGSIM_ASSERT(!finished_, "emit after finish()");
    DGSIM_ASSERT(rd < kNumArchRegs && rs1 < kNumArchRegs &&
                 rs2 < kNumArchRegs, "register index out of range");
    program_.text.push_back(Instruction{op, rd, rs1, rs2, imm});
    return *this;
}

Assembler &
Assembler::emitBranch(Opcode op, RegIndex rs1, RegIndex rs2,
                      const std::string &target)
{
    fixups_.emplace_back(here(), target);
    return emit(op, 0, rs1, rs2, 0);
}

Assembler &Assembler::add(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emit(Opcode::Add, rd, rs1, rs2, 0); }
Assembler &Assembler::sub(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emit(Opcode::Sub, rd, rs1, rs2, 0); }
Assembler &Assembler::mul(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emit(Opcode::Mul, rd, rs1, rs2, 0); }
Assembler &Assembler::div(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emit(Opcode::Div, rd, rs1, rs2, 0); }
Assembler &Assembler::and_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emit(Opcode::And, rd, rs1, rs2, 0); }
Assembler &Assembler::or_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emit(Opcode::Or, rd, rs1, rs2, 0); }
Assembler &Assembler::xor_(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emit(Opcode::Xor, rd, rs1, rs2, 0); }
Assembler &Assembler::sll(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emit(Opcode::Sll, rd, rs1, rs2, 0); }
Assembler &Assembler::srl(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emit(Opcode::Srl, rd, rs1, rs2, 0); }
Assembler &Assembler::slt(RegIndex rd, RegIndex rs1, RegIndex rs2)
{ return emit(Opcode::Slt, rd, rs1, rs2, 0); }

Assembler &Assembler::addi(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emit(Opcode::Addi, rd, rs1, 0, imm); }
Assembler &Assembler::andi(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emit(Opcode::Andi, rd, rs1, 0, imm); }
Assembler &Assembler::ori(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emit(Opcode::Ori, rd, rs1, 0, imm); }
Assembler &Assembler::xori(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emit(Opcode::Xori, rd, rs1, 0, imm); }
Assembler &Assembler::slli(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emit(Opcode::Slli, rd, rs1, 0, imm); }
Assembler &Assembler::srli(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emit(Opcode::Srli, rd, rs1, 0, imm); }
Assembler &Assembler::slti(RegIndex rd, RegIndex rs1, std::int64_t imm)
{ return emit(Opcode::Slti, rd, rs1, 0, imm); }

Assembler &
Assembler::li(RegIndex rd, std::uint64_t imm)
{
    return emit(Opcode::Lui, rd, 0, 0, static_cast<std::int64_t>(imm));
}

Assembler &
Assembler::mv(RegIndex rd, RegIndex rs)
{
    return addi(rd, rs, 0);
}

Assembler &
Assembler::ld(RegIndex rd, RegIndex rs1, std::int64_t disp)
{
    return emit(Opcode::Ld, rd, rs1, 0, disp);
}

Assembler &
Assembler::st(RegIndex rs2, RegIndex rs1, std::int64_t disp)
{
    return emit(Opcode::St, 0, rs1, rs2, disp);
}

Assembler &Assembler::beq(RegIndex rs1, RegIndex rs2,
                          const std::string &target)
{ return emitBranch(Opcode::Beq, rs1, rs2, target); }
Assembler &Assembler::bne(RegIndex rs1, RegIndex rs2,
                          const std::string &target)
{ return emitBranch(Opcode::Bne, rs1, rs2, target); }
Assembler &Assembler::blt(RegIndex rs1, RegIndex rs2,
                          const std::string &target)
{ return emitBranch(Opcode::Blt, rs1, rs2, target); }
Assembler &Assembler::bge(RegIndex rs1, RegIndex rs2,
                          const std::string &target)
{ return emitBranch(Opcode::Bge, rs1, rs2, target); }

Assembler &
Assembler::jal(RegIndex rd, const std::string &target)
{
    fixups_.emplace_back(here(), target);
    return emit(Opcode::Jal, rd, 0, 0, 0);
}

Assembler &
Assembler::jmp(const std::string &target)
{
    return jal(0, target);
}

Assembler &
Assembler::jalr(RegIndex rd, RegIndex rs1, std::int64_t imm)
{
    return emit(Opcode::Jalr, rd, rs1, 0, imm);
}

Assembler &
Assembler::nop()
{
    return emit(Opcode::Nop, 0, 0, 0, 0);
}

Assembler &
Assembler::halt()
{
    return emit(Opcode::Halt, 0, 0, 0, 0);
}

Assembler &
Assembler::data(Addr addr, RegValue value)
{
    DGSIM_ASSERT(addr % kWordBytes == 0, "unaligned data word");
    program_.initialData.write(addr, value);
    return *this;
}

Program
Assembler::finish()
{
    DGSIM_ASSERT(!finished_, "finish() called twice");
    finished_ = true;
    for (const auto &[pc, name] : fixups_) {
        auto it = labels_.find(name);
        if (it == labels_.end())
            DGSIM_FATAL("undefined label: " + name);
        program_.text[pc].imm = static_cast<std::int64_t>(it->second);
    }
    return std::move(program_);
}

} // namespace dgsim
