#include "isa/isa.hh"

#include <sstream>

#include "common/log.hh"

namespace dgsim
{

OpClass
opClass(Opcode op)
{
    switch (op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Slt:
      case Opcode::Addi:
      case Opcode::Andi:
      case Opcode::Ori:
      case Opcode::Xori:
      case Opcode::Slli:
      case Opcode::Srli:
      case Opcode::Slti:
      case Opcode::Lui:
        return OpClass::IntAlu;
      case Opcode::Mul:
        return OpClass::IntMul;
      case Opcode::Div:
        return OpClass::IntDiv;
      case Opcode::Ld:
        return OpClass::MemRead;
      case Opcode::St:
        return OpClass::MemWrite;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jal:
      case Opcode::Jalr:
        return OpClass::Branch;
      case Opcode::Nop:
      case Opcode::Halt:
        return OpClass::No_OpClass;
    }
    DGSIM_PANIC("unknown opcode");
}

bool
isLoad(Opcode op)
{
    return op == Opcode::Ld;
}

bool
isStore(Opcode op)
{
    return op == Opcode::St;
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Jal:
      case Opcode::Jalr:
        return true;
      default:
        return false;
    }
}

bool
isCondBranch(Opcode op)
{
    switch (op) {
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

bool
writesDest(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::St:
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
      case Opcode::Nop:
      case Opcode::Halt:
        return false;
      default:
        return inst.rd != 0;
    }
}

bool
readsRs1(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Lui:
      case Opcode::Jal:
      case Opcode::Nop:
      case Opcode::Halt:
        return false;
      default:
        return true;
    }
}

bool
readsRs2(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Sll:
      case Opcode::Srl:
      case Opcode::Slt:
      case Opcode::St: // rs2 carries the store data.
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        return true;
      default:
        return false;
    }
}

unsigned
execLatency(Opcode op)
{
    switch (opClass(op)) {
      case OpClass::IntAlu: return 1;
      case OpClass::IntMul: return 3;
      case OpClass::IntDiv: return 12;
      // AGU only (register read + address add); the cache adds the
      // rest. Two cycles keeps a realistic window between dispatch and
      // address resolution, during which a doppelganger can claim an
      // idle memory port (paper Figure 5: predictions are available
      // from decode, well before the AGU result).
      case OpClass::MemRead: return 2;
      case OpClass::MemWrite: return 2;
      case OpClass::Branch: return 1;
      case OpClass::No_OpClass: return 1;
    }
    DGSIM_PANIC("unknown op class");
}

std::string
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Slt: return "slt";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Slti: return "slti";
      case Opcode::Lui: return "lui";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jal: return "jal";
      case Opcode::Jalr: return "jalr";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
    }
    DGSIM_PANIC("unknown opcode");
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << mnemonic(inst.op);
    auto reg = [](RegIndex r) { return "x" + std::to_string(r); };
    switch (inst.op) {
      case Opcode::Ld:
        os << " " << reg(inst.rd) << ", " << inst.imm << "("
           << reg(inst.rs1) << ")";
        break;
      case Opcode::St:
        os << " " << reg(inst.rs2) << ", " << inst.imm << "("
           << reg(inst.rs1) << ")";
        break;
      case Opcode::Lui:
        os << " " << reg(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Jal:
        os << " " << reg(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Jalr:
        os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
           << inst.imm;
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        os << " " << reg(inst.rs1) << ", " << reg(inst.rs2) << ", "
           << inst.imm;
        break;
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      default:
        if (readsRs2(inst)) {
            os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
               << reg(inst.rs2);
        } else {
            os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
               << inst.imm;
        }
        break;
    }
    return os.str();
}

} // namespace dgsim
