#include "isa/isa.hh"

#include <sstream>

#include "common/log.hh"

namespace dgsim
{

std::string
mnemonic(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Sll: return "sll";
      case Opcode::Srl: return "srl";
      case Opcode::Slt: return "slt";
      case Opcode::Addi: return "addi";
      case Opcode::Andi: return "andi";
      case Opcode::Ori: return "ori";
      case Opcode::Xori: return "xori";
      case Opcode::Slli: return "slli";
      case Opcode::Srli: return "srli";
      case Opcode::Slti: return "slti";
      case Opcode::Lui: return "lui";
      case Opcode::Ld: return "ld";
      case Opcode::St: return "st";
      case Opcode::Beq: return "beq";
      case Opcode::Bne: return "bne";
      case Opcode::Blt: return "blt";
      case Opcode::Bge: return "bge";
      case Opcode::Jal: return "jal";
      case Opcode::Jalr: return "jalr";
      case Opcode::Nop: return "nop";
      case Opcode::Halt: return "halt";
    }
    DGSIM_PANIC("unknown opcode");
}

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << mnemonic(inst.op);
    auto reg = [](RegIndex r) { return "x" + std::to_string(r); };
    switch (inst.op) {
      case Opcode::Ld:
        os << " " << reg(inst.rd) << ", " << inst.imm << "("
           << reg(inst.rs1) << ")";
        break;
      case Opcode::St:
        os << " " << reg(inst.rs2) << ", " << inst.imm << "("
           << reg(inst.rs1) << ")";
        break;
      case Opcode::Lui:
        os << " " << reg(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Jal:
        os << " " << reg(inst.rd) << ", " << inst.imm;
        break;
      case Opcode::Jalr:
        os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
           << inst.imm;
        break;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Bge:
        os << " " << reg(inst.rs1) << ", " << reg(inst.rs2) << ", "
           << inst.imm;
        break;
      case Opcode::Nop:
      case Opcode::Halt:
        break;
      default:
        if (readsRs2(inst)) {
            os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
               << reg(inst.rs2);
        } else {
            os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
               << inst.imm;
        }
        break;
    }
    return os.str();
}

} // namespace dgsim
