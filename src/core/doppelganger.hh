/**
 * @file
 * The Doppelganger Loads mechanism (paper §4, §5).
 *
 * A doppelganger is the address-predicted counterpart of a load:
 *  (i)   at dispatch, the stride predictor (trained only on committed
 *        addresses) may attach a predicted address to the LQ entry;
 *  (ii)  the doppelganger issues into otherwise-idle memory ports and
 *        preloads the load's destination register without propagating;
 *  (iii) when the AGU resolves the real address, the prediction is
 *        verified: on a match the preloaded value may propagate as soon
 *        as the host scheme allows; on a mismatch the preload is
 *        discarded and the load replays (no squash needed, since the
 *        preload never propagated).
 *
 * The unit shares its table with the conventional stride prefetcher
 * (paper §5.1): "address prediction mode" here, "prefetching mode" at
 * commit in the core.
 */

#ifndef DGSIM_CORE_DOPPELGANGER_HH
#define DGSIM_CORE_DOPPELGANGER_HH

#include "common/config.hh"
#include "common/stats.hh"
#include "cpu/dyn_inst.hh"
#include "predictor/stride_table.hh"

namespace dgsim
{

/** Dispatch/verify/train bookkeeping for Doppelganger Loads. */
class DoppelgangerUnit
{
  public:
    DoppelgangerUnit(const SimConfig &config, StrideTable &table,
                     StatRegistry &stats);

    /** Address prediction enabled in this configuration ("+AP"). */
    bool enabled() const { return enabled_; }

    /**
     * Dispatch-time hook: try to attach a predicted address to @p inst
     * (must be a load). Sets dgState to Predicted on success.
     */
    void attachPrediction(DynInst &inst);

    /**
     * AGU-resolution hook: verify the prediction against the resolved
     * address. Transitions Issued -> Verified/Mispredicted; a
     * prediction that never issued is dropped (the load proceeds
     * normally and the attempt is not counted against accuracy).
     */
    void verify(DynInst &inst);

    /**
     * Commit-time hook for every committed load: trains the predictor
     * with the non-speculative address (the security invariant of the
     * whole design) and accounts coverage/accuracy.
     */
    void commitLoad(const DynInst &inst);

    /** Squash hook for any load holding predictor state. */
    void squashLoad(const DynInst &inst);

    // --- Derived metrics (paper Figure 7) ------------------------------
    /** Correctly predicted committed loads / all committed loads. */
    double coverage() const;
    /** Correct verifications / all verifications. */
    double accuracy() const;

    Counter &attached;       ///< Predictions attached at dispatch.
    Counter &issuedDg;       ///< Doppelganger accesses sent to memory.
    Counter &verifiedOk;     ///< Verifications that matched.
    Counter &verifiedBad;    ///< Verifications that mismatched (replay).
    Counter &droppedUnissued;///< Predictions dropped before issuing.
    Counter &committedLoads; ///< All committed loads.
    Counter &committedCovered; ///< Committed loads with correct dg.

  private:
    bool enabled_;
    StrideTable &table_;
    /// Predictor confidence at the moment a prediction is attached
    /// (distribution stat; separate dump section).
    Histogram &confidenceDist_;
};

} // namespace dgsim

#endif // DGSIM_CORE_DOPPELGANGER_HH
