#include "core/doppelganger.hh"

#include "common/log.hh"

namespace dgsim
{

DoppelgangerUnit::DoppelgangerUnit(const SimConfig &config, StrideTable &table,
                                   StatRegistry &stats)
    : attached(stats.counter("dg.attached")),
      issuedDg(stats.counter("dg.issued")),
      verifiedOk(stats.counter("dg.verifiedOk")),
      verifiedBad(stats.counter("dg.verifiedBad")),
      droppedUnissued(stats.counter("dg.droppedUnissued")),
      committedLoads(stats.counter("dg.committedLoads")),
      committedCovered(stats.counter("dg.committedCovered")),
      enabled_(config.addressPrediction),
      table_(table),
      confidenceDist_(stats.histogram("dg.confidenceDist", 1, 16))
{
}

void
DoppelgangerUnit::attachPrediction(DynInst &inst)
{
    DGSIM_ASSERT(inst.isLoad(), "doppelganger on non-load");
    if (!enabled_)
        return;
    auto predicted = table_.predictCurrent(inst.pc);
    if (!predicted)
        return;
    inst.dgState = DgState::Predicted;
    // Predicted addresses are word-aligned by construction (the table
    // is trained with committed, aligned addresses); mask defensively.
    inst.dgPredictedAddr = *predicted & ~static_cast<Addr>(kWordBytes - 1);
    ++attached;
    if (const StrideEntry *entry = table_.peek(inst.pc))
        confidenceDist_.sample(entry->confidence);
}

void
DoppelgangerUnit::verify(DynInst &inst)
{
    DGSIM_ASSERT(inst.addrReady, "verify before AGU resolution");
    switch (inst.dgState) {
      case DgState::None:
      case DgState::Verified:
      case DgState::Mispredicted:
        return;
      case DgState::Predicted:
        if (inst.dgPredictedAddr == inst.effAddr) {
            // A verified prediction stays usable even if the access has
            // not issued yet: the predicted address remains
            // secret-independent, so the doppelganger may still claim
            // an idle port later (relevant under DoM, where the demand
            // access of a shadowed miss is delayed but its doppelganger
            // is not, §4.6).
            inst.dgState = DgState::Verified;
            ++verifiedOk;
        } else if (inst.dgAccessIssued) {
            // §5: clear executed/predicted, discard any response to the
            // wrong-address request, and replay the load. No squash is
            // needed because the preload never propagated.
            inst.dgState = DgState::Mispredicted;
            ++verifiedBad;
        } else {
            // Wrong and never issued: drop it; the load proceeds as a
            // normal (non-predicted) load. Not counted against
            // accuracy: the access never happened.
            inst.dgState = DgState::None;
            table_.release(inst.pc);
            ++droppedUnissued;
        }
        return;
    }
}

void
DoppelgangerUnit::commitLoad(const DynInst &inst)
{
    ++committedLoads;
    if (inst.dgState == DgState::Verified)
        ++committedCovered;
    if (inst.hasDoppelganger())
        table_.release(inst.pc);
    // The single place the predictor learns: committed, non-speculative
    // addresses only (paper §5: "trained (updated) strictly by
    // non-speculative loads when they commit").
    table_.train(inst.pc, inst.effAddr);
}

void
DoppelgangerUnit::squashLoad(const DynInst &inst)
{
    if (inst.hasDoppelganger())
        table_.release(inst.pc);
}

double
DoppelgangerUnit::coverage() const
{
    const auto total = committedLoads.value();
    return total == 0 ? 0.0
                      : static_cast<double>(committedCovered.value()) /
                            static_cast<double>(total);
}

double
DoppelgangerUnit::accuracy() const
{
    const auto verified = verifiedOk.value() + verifiedBad.value();
    return verified == 0 ? 0.0
                         : static_cast<double>(verifiedOk.value()) /
                               static_cast<double>(verified);
}

} // namespace dgsim
