/**
 * @file
 * Parameterized kernel generators used as SPEC-benchmark proxies.
 *
 * SPEC CPU2006/2017 binaries are proprietary, so the evaluation runs on
 * synthetic kernels that reproduce the microarchitectural behaviour the
 * paper's results hinge on. Four axes are controlled per kernel:
 *   - dependent-load fraction (loads whose address needs a loaded value),
 *   - address regularity (stride-predictability of those loads),
 *   - working-set size (which cache level the kernel lives in),
 *   - branch behaviour (frequency + entropy of loaded-data-dependent
 *     branches, which determine speculation-shadow lifetimes).
 *
 * Every generator can emit either a finite kernel (ends in HALT, usable
 * against the functional oracle) or an endless loop (bounded by
 * SimConfig::maxInstructions, giving equal-length measurement runs).
 */

#ifndef DGSIM_WORKLOADS_GENERATORS_HH
#define DGSIM_WORKLOADS_GENERATORS_HH

#include <cstdint>
#include <string>

#include "isa/program.hh"

namespace dgsim::workloads
{

/** Iteration bound: 0 = endless loop (bound the run with maxInstructions). */
using Iterations = std::uint64_t;

/**
 * Sequential sweep over a large array with an accumulate
 * (streaming, independent loads; libquantum-like inner loop).
 * @param array_words circular footprint in 8-byte words.
 */
Program genStream(const std::string &name, std::uint64_t array_words,
                  Iterations iterations);

/**
 * Indirect gather: idx = B[i] (strided load), v = A[idx] (dependent
 * load), occasional branch on v. The classic pattern whose MLP secure
 * schemes destroy and doppelgangers recover.
 * @param table_words footprint of A in words (power of two).
 * @param idx_stride_words B[i+1]-B[i] in words of A (A-address stride).
 * @param branch_every a branch on the *loaded value* executes every
 *        this many iterations (power of two; 0 = never). Such branches
 *        keep speculation shadows open until the dependent load's data
 *        returns — the main cost driver of the secure schemes.
 */
Program genGather(const std::string &name, std::uint64_t table_words,
                  std::uint64_t idx_stride_words, unsigned branch_every,
                  Iterations iterations);

/**
 * Linked-list pointer chase (fully dependent loads).
 * @param nodes number of 2-word nodes.
 * @param randomized random cycle order (unpredictable addresses) vs
 *        sequential ring (stride-predictable chase).
 * @param work_per_hop extra ALU ops per hop (ILP available to STT).
 * @param chains parallel independent chases (1..4): the memory-level
 *        parallelism the secure schemes destroy.
 * @param payload_branch_every branch on a loaded payload every N
 *        iterations (power of two, 0 = never).
 */
Program genPointerChase(const std::string &name, std::uint64_t nodes,
                        bool randomized, unsigned work_per_hop,
                        unsigned chains, unsigned payload_branch_every,
                        Iterations iterations);

/**
 * Three-point stencil over a large array (strided loads with reuse;
 * GemsFDTD/wrf-like).
 */
/**
 * @param step_words words advanced per iteration (8 = one cache line
 *        per step, maximizing leading-edge misses).
 */
Program genStencil(const std::string &name, std::uint64_t array_words,
                   std::uint64_t step_words, unsigned branch_every,
                   Iterations iterations);

/**
 * Branch-heavy kernel: small-table random loads feeding poorly
 * predictable branches (sjeng/gobmk-like); memory pressure negligible.
 * @param table_words table footprint (keep L1/L2 resident).
 * @param taken_percent average taken rate of the data-dependent branch.
 */
Program genBranchy(const std::string &name, std::uint64_t table_words,
                   unsigned taken_percent, unsigned value_branch_every,
                   Iterations iterations);

/**
 * Hash-style probing: addresses computed from a register LCG
 * (independent but unpredictable loads over a large table;
 * omnetpp-like). Address prediction attaches rarely and mispredicts,
 * adding cache traffic.
 */
/**
 * @param indirect add a second, dependent probe U[T[idx] & mask]
 *        (pointer-dense heap behaviour; NDA/STT lose its MLP).
 */
Program genHashProbe(const std::string &name, std::uint64_t table_words,
                     unsigned branch_every, bool indirect,
                     Iterations iterations);

/**
 * Strided access that wraps around a small window every @p wrap_every
 * elements: trains the stride predictor, then breaks it at each wrap.
 * Produces decent coverage with low accuracy (xalancbmk-like).
 */
Program genWrapStride(const std::string &name, std::uint64_t window_words,
                      std::uint64_t wrap_every, Iterations iterations);

/**
 * Multi-array strided kernel with compare/select reduction
 * (hmmer-like; very high predictor coverage).
 */
Program genMultiStrided(const std::string &name, std::uint64_t array_words,
                        bool indirect, unsigned branch_every,
                        Iterations iterations);

/**
 * Register-dominated compute with rare loads (exchange2/gromacs-like;
 * secure schemes nearly free here).
 * @param loads_every one load per this many ALU blocks.
 */
Program genComputeHeavy(const std::string &name, unsigned loads_every,
                        Iterations iterations);

/**
 * A mixed kernel interleaving gather, chase and branchy segments
 * (perlbench/gcc-like).
 */
Program genMixed(const std::string &name, std::uint64_t table_words,
                 std::uint64_t chase_nodes, Iterations iterations);

/**
 * Phase-alternating kernel: blocks of @p phase_iterations iterations
 * switch between a cache-friendly streaming sweep and an unpredictable
 * hash-probe phase over the same table. Long-horizon behaviour whose
 * aggregate stats only converge when sampling windows land in both
 * phases — the canary workload for the sampled-simulation driver.
 * @param table_words table footprint in words (power of two).
 * @param phase_iterations iterations per phase (power of two).
 */
Program genPhased(const std::string &name, std::uint64_t table_words,
                  std::uint64_t phase_iterations, Iterations iterations);

} // namespace dgsim::workloads

#endif // DGSIM_WORKLOADS_GENERATORS_HH
