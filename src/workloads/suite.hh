/**
 * @file
 * The SPEC-proxy evaluation suite.
 *
 * Each entry names the SPEC CPU2006/2017 benchmark whose
 * microarchitectural behaviour class it imitates (see generators.hh for
 * the axes) and knows how to build the corresponding Program. Figures
 * 6-8 of the paper are regenerated over this suite.
 */

#ifndef DGSIM_WORKLOADS_SUITE_HH
#define DGSIM_WORKLOADS_SUITE_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "workloads/generators.hh"

namespace dgsim::workloads
{

/** One benchmark proxy in the evaluation suite. */
struct WorkloadDef
{
    std::string name;    ///< e.g. "libquantum" (proxy of that benchmark).
    std::string suite;   ///< "SPEC2006", "SPEC2017" or "LONG".
    std::string pattern; ///< Behaviour class, for documentation.
    /** Build the kernel; iterations==0 emits an endless loop. */
    std::function<Program(Iterations)> build;
    /**
     * Test/run tier: "default" rides in every sweep and the tier-1
     * tests; "long" marks long-horizon (>= 1M instruction) workloads
     * meant for fast-forward/sampling runs, opted into with
     * `dgrun --tier long|all`.
     */
    std::string tier = "default";
};

/** The full evaluation suite in presentation order (2006 then 2017).
 * Default tier only — exactly the set the paper figures run on. */
const std::vector<WorkloadDef> &evaluationSuite();

/** Every workload including the long-horizon tier. */
const std::vector<WorkloadDef> &extendedSuite();

/** Look up one workload by name, any tier (fatal if unknown). */
const WorkloadDef &findWorkload(const std::string &name);

} // namespace dgsim::workloads

#endif // DGSIM_WORKLOADS_SUITE_HH
