/**
 * @file
 * The SPEC-proxy evaluation suite.
 *
 * Each entry names the SPEC CPU2006/2017 benchmark whose
 * microarchitectural behaviour class it imitates (see generators.hh for
 * the axes) and knows how to build the corresponding Program. Figures
 * 6-8 of the paper are regenerated over this suite.
 */

#ifndef DGSIM_WORKLOADS_SUITE_HH
#define DGSIM_WORKLOADS_SUITE_HH

#include <functional>
#include <string>
#include <vector>

#include "isa/program.hh"
#include "workloads/generators.hh"

namespace dgsim::workloads
{

/** One benchmark proxy in the evaluation suite. */
struct WorkloadDef
{
    std::string name;    ///< e.g. "libquantum" (proxy of that benchmark).
    std::string suite;   ///< "SPEC2006" or "SPEC2017".
    std::string pattern; ///< Behaviour class, for documentation.
    /** Build the kernel; iterations==0 emits an endless loop. */
    std::function<Program(Iterations)> build;
};

/** The full evaluation suite in presentation order (2006 then 2017). */
const std::vector<WorkloadDef> &evaluationSuite();

/** Look up one workload by name (fatal if unknown). */
const WorkloadDef &findWorkload(const std::string &name);

} // namespace dgsim::workloads

#endif // DGSIM_WORKLOADS_SUITE_HH
