#include "workloads/suite.hh"

#include "common/log.hh"

namespace dgsim::workloads
{
namespace
{

// Footprints in 8-byte words relative to the Table 1 hierarchy:
// L1D 48 KiB = 6Ki words, L2 2 MiB = 256Ki words, L3 16 MiB = 2Mi words.
constexpr std::uint64_t kL1Words = 4 * 1024;         // comfortably L1.
constexpr std::uint64_t kL2Words = 128 * 1024;       // L2-resident, 1 MiB.
constexpr std::uint64_t kL3Words = 1024 * 1024;      // L3-resident, 8 MiB.
constexpr std::uint64_t kDramWords = 4 * 1024 * 1024; // 32 MiB, beyond L3.

std::vector<WorkloadDef>
buildSuite()
{
    std::vector<WorkloadDef> suite;

    // ---- SPEC CPU2006 proxies -----------------------------------------
    suite.push_back({"bzip2", "SPEC2006", "strided gather + value branch",
                     [](Iterations n) {
                         return genGather("bzip2", kL2Words, 7, 4, n);
                     }});
    suite.push_back({"gcc", "SPEC2006", "strided gather, large table",
                     [](Iterations n) {
                         return genGather("gcc", kL3Words, 5, 8, n);
                     }});
    suite.push_back({"mcf", "SPEC2006", "randomized pointer chase, L3",
                     [](Iterations n) {
                         return genPointerChase("mcf", 512 * 1024, true, 1,
                                                4, 1, n);
                     }});
    suite.push_back({"gobmk", "SPEC2006", "branchy, small table",
                     [](Iterations n) {
                         return genBranchy("gobmk", 2 * kL1Words, 8, 2, n);
                     }});
    suite.push_back({"gromacs", "SPEC2006", "compute-heavy, rare loads",
                     [](Iterations n) {
                         return genComputeHeavy("gromacs", 8, n);
                     }});
    suite.push_back({"hmmer", "SPEC2006", "multi-array strided reduction",
                     [](Iterations n) {
                         return genMultiStrided("hmmer", kL2Words, true, 8, n);
                     }});
    suite.push_back({"sjeng", "SPEC2006", "branchy, unpredictable",
                     [](Iterations n) {
                         return genBranchy("sjeng", 2 * kL1Words, 6, 2, n);
                     }});
    suite.push_back({"libquantum", "SPEC2006",
                     "strided gather over DRAM-sized table",
                     [](Iterations n) {
                         return genGather("libquantum", kDramWords, 11, 1,
                                          n);
                     }});
    suite.push_back({"h264ref", "SPEC2006", "blocked strided kernel",
                     [](Iterations n) {
                         return genMultiStrided("h264ref", kL1Words * 2, false,
                                                8, n);
                     }});
    suite.push_back({"omnetpp", "SPEC2006", "hash probing, L3 table",
                     [](Iterations n) {
                         return genHashProbe("omnetpp", kL3Words / 2, 32, true, n);
                     }});
    suite.push_back({"astar", "SPEC2006", "sequential pointer chase",
                     [](Iterations n) {
                         return genPointerChase("astar", 256 * 1024, false,
                                                2, 2, 4, n);
                     }});
    suite.push_back({"xalancbmk", "SPEC2006",
                     "wrapping stride (low accuracy)",
                     [](Iterations n) {
                         return genWrapStride("xalancbmk", kL2Words, 64, n);
                     }});
    suite.push_back({"GemsFDTD", "SPEC2006", "stencil beyond the L3",
                     [](Iterations n) {
                         return genStencil("GemsFDTD", kDramWords, 8, 2, n);
                     }});

    // ---- SPEC CPU2017 proxies ---------------------------------------------
    suite.push_back({"perlbench_s", "SPEC2017", "mixed gather/chase/branch",
                     [](Iterations n) {
                         return genMixed("perlbench_s", kL2Words, 4096, n);
                     }});
    suite.push_back({"gcc_s", "SPEC2017", "strided gather, L2 table",
                     [](Iterations n) {
                         return genGather("gcc_s", kL2Words, 3, 8, n);
                     }});
    suite.push_back({"mcf_s", "SPEC2017", "randomized pointer chase, L2",
                     [](Iterations n) {
                         return genPointerChase("mcf_s", 128 * 1024, true, 2,
                                                2, 2, n);
                     }});
    suite.push_back({"omnetpp_s", "SPEC2017", "hash probing with stores",
                     [](Iterations n) {
                         return genHashProbe("omnetpp_s", kL3Words / 4, 32, true,
                                              n);
                     }});
    suite.push_back({"xalancbmk_s", "SPEC2017",
                     "wrapping stride (very low accuracy)",
                     [](Iterations n) {
                         return genWrapStride("xalancbmk_s", kL2Words / 2, 64,
                                               n);
                     }});
    suite.push_back({"x264_s", "SPEC2017", "blocked strided kernel",
                     [](Iterations n) {
                         return genMultiStrided("x264_s", kL1Words, false, 8, n);
                     }});
    suite.push_back({"deepsjeng_s", "SPEC2017", "branchy, medium table",
                     [](Iterations n) {
                         return genBranchy("deepsjeng_s", 2 * kL1Words, 8,
                                           4, n);
                     }});
    suite.push_back({"leela_s", "SPEC2017", "branchy + small chase",
                     [](Iterations n) {
                         return genMixed("leela_s", kL1Words, 1024, n);
                     }});
    suite.push_back({"exchange2_s", "SPEC2017", "compute-dominated",
                     [](Iterations n) {
                         return genComputeHeavy("exchange2_s", 16, n);
                     }});
    suite.push_back({"xz_s", "SPEC2017", "gather with moderate stride",
                     [](Iterations n) {
                         return genGather("xz_s", kL3Words / 2, 13, 8, n);
                     }});
    suite.push_back({"wrf_s", "SPEC2017", "stencil, L2-resident",
                     [](Iterations n) {
                         return genStencil("wrf_s", kL2Words, 1, 0, n);
                     }});
    suite.push_back({"fotonik3d_s", "SPEC2017", "stencil, L3-resident",
                     [](Iterations n) {
                         return genStencil("fotonik3d_s", kL3Words, 8, 16, n);
                     }});

    // ---- Long-horizon tier (fast-forward / sampling targets) ----------
    // Meant to run for >= 1M instructions: a plain detailed sweep over
    // them is slow on purpose, which is what --ffwd/--sample amortize.
    suite.push_back({"stream_long", "LONG", "DRAM-footprint streaming sweep",
                     [](Iterations n) {
                         return genStream("stream_long", kDramWords, n);
                     },
                     "long"});
    suite.push_back({"chase_long", "LONG",
                     "randomized pointer chase, 1M nodes",
                     [](Iterations n) {
                         return genPointerChase("chase_long", 1024 * 1024,
                                                true, 1, 4, 2, n);
                     },
                     "long"});
    suite.push_back({"phased_long", "LONG",
                     "alternating stream/probe phases, L3 table",
                     [](Iterations n) {
                         return genPhased("phased_long", kL3Words, 65536, n);
                     },
                     "long"});

    return suite;
}

} // namespace

const std::vector<WorkloadDef> &
evaluationSuite()
{
    static const std::vector<WorkloadDef> suite = [] {
        std::vector<WorkloadDef> defaults;
        for (const WorkloadDef &workload : extendedSuite())
            if (workload.tier == "default")
                defaults.push_back(workload);
        return defaults;
    }();
    return suite;
}

const std::vector<WorkloadDef> &
extendedSuite()
{
    static const std::vector<WorkloadDef> suite = buildSuite();
    return suite;
}

const WorkloadDef &
findWorkload(const std::string &name)
{
    for (const WorkloadDef &workload : extendedSuite()) {
        if (workload.name == name)
            return workload;
    }
    DGSIM_FATAL("unknown workload: " + name);
}

} // namespace dgsim::workloads
