#include "workloads/generators.hh"

#include <vector>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"

namespace dgsim::workloads
{
namespace
{

// Register conventions inside generated kernels.
constexpr RegIndex rIter = 1;   ///< Loop counter.
constexpr RegIndex rBound = 2;  ///< Iteration bound (finite kernels).
constexpr RegIndex rBaseA = 3;
constexpr RegIndex rBaseB = 4;
constexpr RegIndex rSum = 5;
constexpr RegIndex rT0 = 6;
constexpr RegIndex rT1 = 7;
constexpr RegIndex rT2 = 8;
constexpr RegIndex rT3 = 9;
constexpr RegIndex rT4 = 10;
constexpr RegIndex rCursor = 11;
constexpr RegIndex rWrap = 12;
constexpr RegIndex rAux = 13;
constexpr RegIndex rScratch = 14;
// x20..x23: parallel chase cursors.
constexpr RegIndex rChain0 = 20;
// x24: base of the indirect table in genHashProbe (must not alias
// rScratch, which emitValueBranch clobbers).
constexpr RegIndex rBaseU = 24;

// Array base addresses, spaced far apart so footprints never overlap.
constexpr Addr kBaseA = 0x0100'0000;
constexpr Addr kBaseB = 0x0800'0000;
constexpr Addr kBaseC = 0x0c00'0000;
constexpr Addr kBaseD = 0x1800'0000;
constexpr Addr kBaseOut = 0x1000'0000;

/**
 * Emit the loop trailer: a bounded loop (blt counter, bound + HALT), or
 * an always-taken *conditional* back-edge for endless kernels — real
 * code always runs under control speculation, so even the endless
 * variants must cast a control shadow per iteration.
 */
void
loopTrailer(Assembler &assembler, Iterations iterations,
            const std::string &label)
{
    if (iterations == 0) {
        // rIter is incremented every iteration, so it is never zero
        // here; the branch is trivially predictable yet still a shadow
        // caster until it resolves.
        assembler.bne(rIter, 0, label);
        assembler.halt(); // Unreachable.
    } else {
        assembler.blt(rIter, rBound, label);
        assembler.halt();
    }
}

/** Emit the loop header shared by all kernels. */
void
loopHeader(Assembler &assembler, Iterations iterations)
{
    assembler.li(rIter, 0);
    if (iterations != 0)
        assembler.li(rBound, iterations);
}

/**
 * Emit a branch on a *loaded value*, gated to fire every @p every
 * iterations (power of two; 0 = never). This is the pattern that makes
 * secure speculation expensive: the branch cannot resolve before the
 * (possibly missing) load returns, so everything younger stays under a
 * control shadow for the whole memory latency.
 */
void
emitValueBranch(Assembler &assembler, RegIndex value_reg, unsigned every,
                const std::string &suffix)
{
    if (every == 0)
        return;
    DGSIM_ASSERT((every & (every - 1)) == 0, "every must be a power of 2");
    const std::string skip = "vb_skip_" + suffix;
    if (every > 1) {
        // Induction-based gate: predictable and fast to resolve.
        assembler.andi(rScratch, rIter, every - 1);
        assembler.bne(rScratch, 0, skip);
    }
    assembler.andi(rScratch, value_reg, 31);
    assembler.bne(rScratch, 0, skip); // data-dependent, ~97% taken
    assembler.addi(rSum, rSum, 3);
    assembler.label(skip);
}

} // namespace

Program
genStream(const std::string &name, std::uint64_t array_words,
          Iterations iterations)
{
    Assembler assembler(name);
    // Streamed array contents are irrelevant (zero-filled by default),
    // so no data image is needed even for very large footprints.
    assembler.li(rBaseA, kBaseA);
    assembler.li(rCursor, kBaseA);
    assembler.li(rWrap, kBaseA + array_words * kWordBytes);
    assembler.li(rSum, 0);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    assembler.ld(rT0, rCursor);
    assembler.add(rSum, rSum, rT0);
    assembler.ld(rT1, rCursor, 8);
    assembler.xor_(rSum, rSum, rT1);
    assembler.addi(rCursor, rCursor, 16);
    assembler.blt(rCursor, rWrap, "no_wrap");
    assembler.mv(rCursor, rBaseA);
    assembler.label("no_wrap");
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

Program
genGather(const std::string &name, std::uint64_t table_words,
          std::uint64_t idx_stride_words, unsigned branch_every,
          Iterations iterations)
{
    Assembler assembler(name);
    Rng rng(0xdead0000 + table_words);

    // Index array B: B[i] = byte offset of the i-th gathered element of
    // A. Strided so that the *dependent* load A[B[i]] has a predictable
    // address. The index array itself wraps over a modest footprint.
    constexpr std::uint64_t kIdxEntries = 16384;
    for (std::uint64_t i = 0; i < kIdxEntries; ++i) {
        const std::uint64_t word = (i * idx_stride_words) % table_words;
        assembler.data(kBaseB + i * kWordBytes, word * kWordBytes);
        // Seed only the touched A elements with pseudo-random payloads
        // so the value-dependent branch has real entropy.
        const std::uint64_t payload = rng.below(1000);
        assembler.data(kBaseA + word * kWordBytes, payload);
    }

    assembler.li(rBaseA, kBaseA);
    assembler.li(rBaseB, kBaseB);
    assembler.li(rCursor, kBaseB);
    assembler.li(rWrap, kBaseB + kIdxEntries * kWordBytes);
    assembler.li(rSum, 0);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    assembler.ld(rT0, rCursor);        // idx = B[i] (strided)
    assembler.add(rT1, rBaseA, rT0);   // &A[idx]
    assembler.ld(rT2, rT1);            // v = A[idx] (dependent load)
    assembler.add(rSum, rSum, rT2);
    emitValueBranch(assembler, rT2, branch_every, "g");
    assembler.addi(rCursor, rCursor, 8);
    assembler.blt(rCursor, rWrap, "no_wrap");
    assembler.mv(rCursor, rBaseB);
    assembler.label("no_wrap");
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

Program
genPointerChase(const std::string &name, std::uint64_t nodes,
                bool randomized, unsigned work_per_hop, unsigned chains,
                unsigned payload_branch_every, Iterations iterations)
{
    DGSIM_ASSERT(chains >= 1 && chains <= 4, "1..4 chase chains");
    Assembler assembler(name);
    Rng rng(0xbeef0000 + nodes);

    // Nodes are 2 words: [next, payload]. Build one Hamiltonian cycle;
    // parallel chains start at spaced positions on the same cycle.
    constexpr std::uint64_t kNodeBytes = 2 * kWordBytes;
    std::vector<std::uint32_t> order(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    if (randomized) {
        for (std::uint64_t i = nodes - 1; i > 0; --i) {
            const std::uint64_t j = rng.below(i + 1);
            std::swap(order[i], order[j]);
        }
    }
    for (std::uint64_t i = 0; i < nodes; ++i) {
        const Addr node = kBaseA + order[i] * kNodeBytes;
        const Addr next = kBaseA + order[(i + 1) % nodes] * kNodeBytes;
        assembler.data(node, next);
        assembler.data(node + kWordBytes, rng.below(256));
    }

    for (unsigned c = 0; c < chains; ++c) {
        const std::uint64_t start = (nodes / chains) * c;
        assembler.li(static_cast<RegIndex>(rChain0 + c),
                     kBaseA + order[start] * kNodeBytes);
    }
    assembler.li(rSum, 0);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    for (unsigned c = 0; c < chains; ++c) {
        const auto cursor = static_cast<RegIndex>(rChain0 + c);
        assembler.ld(rT0, cursor, 8); // payload
        assembler.add(rSum, rSum, rT0);
        if (c == 0) {
            emitValueBranch(assembler, rT0, payload_branch_every, "p");
        }
        for (unsigned w = 0; w < work_per_hop; ++w) {
            // Independent ALU work: ILP STT can exploit but NDA cannot.
            assembler.xori(rT1, rSum, 0x55);
            assembler.add(rSum, rSum, rT1);
        }
        assembler.ld(cursor, cursor); // dependent load: next pointer
    }
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

Program
genStencil(const std::string &name, std::uint64_t array_words,
           std::uint64_t step_words, unsigned branch_every,
           Iterations iterations)
{
    Assembler assembler(name);
    Rng rng(0x57e4c100 + array_words);
    // Seed a sparse sample of the array so the value branch sees
    // entropy without paying for a full-footprint data image.
    for (unsigned i = 0; i < 4096; ++i) {
        const std::uint64_t word = rng.below(array_words);
        assembler.data(kBaseA + word * kWordBytes, rng.below(1000));
    }

    assembler.li(rBaseA, kBaseA);
    assembler.li(rCursor, kBaseA + kWordBytes);
    assembler.li(rWrap, kBaseA + (array_words - 1) * kWordBytes);
    assembler.li(rBaseB, kBaseOut);
    assembler.li(rSum, 0);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    assembler.ld(rT0, rCursor, -8);
    assembler.ld(rT1, rCursor, 0);
    assembler.ld(rT2, rCursor, 8);
    assembler.add(rT3, rT0, rT1);
    assembler.add(rT3, rT3, rT2);
    assembler.srli(rT3, rT3, 1);
    assembler.st(rT3, rBaseB);
    assembler.addi(rBaseB, rBaseB, 8);
    assembler.add(rSum, rSum, rT3);
    emitValueBranch(assembler, rT1, branch_every, "s");
    assembler.addi(rCursor, rCursor,
                   static_cast<std::int64_t>(step_words * kWordBytes));
    assembler.blt(rCursor, rWrap, "no_wrap");
    assembler.li(rCursor, kBaseA + kWordBytes);
    assembler.li(rBaseB, kBaseOut);
    assembler.label("no_wrap");
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

Program
genBranchy(const std::string &name, std::uint64_t table_words,
           unsigned taken_percent, unsigned value_branch_every,
           Iterations iterations)
{
    Assembler assembler(name);
    Rng rng(0xabc00000 + table_words);
    for (std::uint64_t i = 0; i < table_words; ++i) {
        // Values below taken_percent (mod 100) steer the branch.
        assembler.data(kBaseA + i * kWordBytes, rng.below(100));
    }

    assembler.li(rBaseA, kBaseA);
    assembler.li(rAux, taken_percent);
    assembler.li(rT4, 0x9e3779b9);
    assembler.li(rSum, 0);
    assembler.li(rCursor, 12345);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    // LCG-style index: register-computed, so the load is *independent*
    // but its address is unpredictable (stride predictor stays cold).
    // table_words must be a power of two (mask-based modulo).
    assembler.mul(rCursor, rCursor, rT4);
    assembler.addi(rCursor, rCursor, 12345);
    assembler.srli(rT0, rCursor, 16);
    assembler.andi(rT0, rT0,
                   static_cast<std::int64_t>(table_words - 1));
    assembler.slli(rT0, rT0, 3);
    assembler.add(rT0, rT0, rBaseA);
    assembler.ld(rT2, rT0);            // v = T[idx]
    if (value_branch_every <= 1) {
        assembler.blt(rT2, rAux, "taken"); // data-dependent direction
        assembler.addi(rSum, rSum, 1);
        assembler.jmp("join");
        assembler.label("taken");
        assembler.addi(rSum, rSum, 2);
        assembler.xori(rSum, rSum, 0x3);
        assembler.label("join");
    } else {
        assembler.add(rSum, rSum, rT2);
        assembler.andi(rScratch, rIter, value_branch_every - 1);
        assembler.bne(rScratch, 0, "join");
        assembler.blt(rT2, rAux, "taken");
        assembler.addi(rSum, rSum, 1);
        assembler.jmp("join");
        assembler.label("taken");
        assembler.addi(rSum, rSum, 2);
        assembler.label("join");
    }
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

Program
genHashProbe(const std::string &name, std::uint64_t table_words,
             unsigned branch_every, bool indirect, Iterations iterations)
{
    Assembler assembler(name);
    Rng rng(0x0a5b0000 + table_words);
    // Seed the table: loaded values steer the value branch and, in
    // indirect mode, the address of the dependent second probe.
    for (std::uint64_t i = 0; i < table_words; ++i)
        assembler.data(kBaseA + i * kWordBytes, rng.next() >> 16);
    assembler.li(rBaseA, kBaseA);
    assembler.li(rT4, 2654435761ULL);
    assembler.li(rBaseU, kBaseD); // base of the indirect table U
    assembler.li(rSum, 0);
    assembler.li(rCursor, 7);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    // Hash of the iteration counter: independent, unpredictable address
    // over a large table (power-of-two words). High natural MLP;
    // address prediction attaches occasionally and is wrong, adding
    // traffic (omnetpp behaviour).
    assembler.mul(rT0, rCursor, rT4);
    assembler.xor_(rT0, rT0, rCursor);
    assembler.srli(rT0, rT0, 9);
    assembler.andi(rT0, rT0,
                   static_cast<std::int64_t>(table_words - 1));
    assembler.slli(rT0, rT0, 3);
    assembler.add(rT0, rT0, rBaseA);
    assembler.ld(rT2, rT0);
    assembler.add(rSum, rSum, rT2);
    if (indirect) {
        // Dependent probe: the address needs the loaded value, so the
        // secure schemes serialize it behind the first probe.
        assembler.andi(rT1, rT2,
                       static_cast<std::int64_t>(table_words - 1));
        assembler.slli(rT1, rT1, 3);
        assembler.add(rT1, rT1, rBaseU);
        assembler.ld(rT2, rT1);        // U[T[idx] & mask]
        assembler.add(rSum, rSum, rT2);
    }
    // A diluted branch on the loaded value (hash-table "found?" test).
    emitValueBranch(assembler, rT2, branch_every, "h");
    // Occasional store makes the kernel exercise data shadows too.
    assembler.andi(rT3, rCursor, 7);
    assembler.bne(rT3, 0, "no_store");
    assembler.st(rSum, rT0);
    assembler.label("no_store");
    assembler.addi(rCursor, rCursor, 1);
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

Program
genWrapStride(const std::string &name, std::uint64_t window_words,
              std::uint64_t wrap_every, Iterations iterations)
{
    Assembler assembler(name);
    Rng rng(0x33aa0000 + window_words);
    // Window contents feed a dependent probe and the value branch.
    for (std::uint64_t i = 0; i < window_words; ++i)
        assembler.data(kBaseA + i * kWordBytes, rng.next() >> 16);
    assembler.li(rBaseA, kBaseA);
    assembler.li(rBaseU, kBaseD);
    assembler.li(rCursor, kBaseA);
    assembler.li(rWrap, wrap_every);
    assembler.li(rAux, 0); // step counter within window
    assembler.li(rT4, window_words * kWordBytes);
    assembler.li(rSum, 0);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    assembler.ld(rT0, rCursor);
    assembler.add(rSum, rSum, rT0);
    // Dependent probe with an unpredictable (value-derived) address.
    assembler.andi(rT2, rT0,
                   static_cast<std::int64_t>(window_words - 1));
    assembler.slli(rT2, rT2, 3);
    assembler.add(rT2, rT2, rBaseU);
    assembler.ld(rT3, rT2);
    assembler.add(rSum, rSum, rT3);
    emitValueBranch(assembler, rT3, 4, "w");
    assembler.addi(rCursor, rCursor, 8);
    assembler.addi(rAux, rAux, 1);
    assembler.blt(rAux, rWrap, "no_jump");
    // Break the stride: jump to a new window position derived from the
    // iteration count (deterministic but stride-hostile).
    assembler.li(rAux, 0);
    assembler.mul(rT1, rIter, rT4);
    assembler.srli(rT1, rT1, 7);
    assembler.andi(rT1, rT1, (window_words - 1) * kWordBytes);
    assembler.andi(rT1, rT1, ~7LL);
    assembler.add(rCursor, rBaseA, rT1);
    assembler.label("no_jump");
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

Program
genMultiStrided(const std::string &name, std::uint64_t array_words,
                bool indirect, unsigned branch_every,
                Iterations iterations)
{
    Assembler assembler(name);
    if (indirect) {
        // C holds word offsets into D, themselves strided, so the
        // dependent load D[C[i]] is address-predictable (hmmer-like
        // high coverage).
        for (std::uint64_t i = 0; i < array_words; ++i) {
            const std::uint64_t word = (i * 17) % array_words;
            assembler.data(kBaseC + i * kWordBytes, word * kWordBytes);
        }
    }

    assembler.li(rBaseA, kBaseA);
    assembler.li(rBaseB, kBaseB);
    assembler.li(rT4, kBaseC);
    assembler.li(rAux, kBaseOut);
    // rBaseU, not rScratch: emitValueBranch clobbers rScratch.
    assembler.li(rBaseU, kBaseD);
    assembler.li(rWrap, array_words * kWordBytes);
    assembler.li(rCursor, 0); // byte offset
    assembler.li(rSum, 0);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    assembler.add(rT0, rBaseA, rCursor);
    assembler.ld(rT1, rT0);            // A[i]
    assembler.add(rT0, rBaseB, rCursor);
    assembler.ld(rT2, rT0);            // B[i]
    assembler.add(rT0, rT4, rCursor);
    assembler.ld(rT3, rT0);            // C[i]
    if (indirect) {
        assembler.add(rT0, rBaseU, rT3);
        assembler.ld(rT3, rT0);        // D[C[i]]: dependent load
    }
    // Branch-free select-style reduction (hmmer-ish).
    assembler.slt(rT0, rT1, rT2);
    assembler.mul(rT1, rT1, rT0);
    assembler.add(rT1, rT1, rT2);
    assembler.add(rT1, rT1, rT3);
    assembler.add(rSum, rSum, rT1);
    emitValueBranch(assembler, rT3, branch_every, "m");
    assembler.add(rT0, rAux, rCursor);
    assembler.st(rSum, rT0);           // Out[i]
    assembler.addi(rCursor, rCursor, 8);
    assembler.blt(rCursor, rWrap, "no_wrap");
    assembler.li(rCursor, 0);
    assembler.label("no_wrap");
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

Program
genComputeHeavy(const std::string &name, unsigned loads_every,
                Iterations iterations)
{
    Assembler assembler(name);
    assembler.li(rBaseA, kBaseA);
    assembler.li(rAux, loads_every);
    assembler.li(rSum, 1);
    assembler.li(rT4, 0x27d4eb2f);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    // Long register dependency chains with some parallelism.
    assembler.mul(rT0, rSum, rT4);
    assembler.xori(rT1, rT0, 0x7f);
    assembler.srli(rT2, rT0, 5);
    assembler.add(rT0, rT1, rT2);
    assembler.slli(rT3, rT0, 2);
    assembler.sub(rSum, rT3, rT0);
    assembler.ori(rSum, rSum, 1);
    // A rare, strided load.
    assembler.andi(rT1, rIter, loads_every - 1);
    assembler.bne(rT1, 0, "no_load");
    assembler.andi(rT2, rIter, 0xFFF8);
    assembler.add(rT2, rT2, rBaseA);
    assembler.ld(rT3, rT2);
    assembler.add(rSum, rSum, rT3);
    assembler.label("no_load");
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

Program
genMixed(const std::string &name, std::uint64_t table_words,
         std::uint64_t chase_nodes, Iterations iterations)
{
    Assembler assembler(name);
    Rng rng(0xfeed0000 + table_words);

    // Chase ring in shuffled order: heap-like pointer chasing whose
    // addresses the stride predictor cannot capture.
    constexpr std::uint64_t kNodeBytes = 2 * kWordBytes;
    std::vector<std::uint32_t> order(chase_nodes);
    for (std::uint64_t i = 0; i < chase_nodes; ++i)
        order[i] = static_cast<std::uint32_t>(i);
    for (std::uint64_t i = chase_nodes - 1; i > 0; --i) {
        const std::uint64_t j = rng.below(i + 1);
        std::swap(order[i], order[j]);
    }
    for (std::uint64_t i = 0; i < chase_nodes; ++i) {
        const Addr node = kBaseC + order[i] * kNodeBytes;
        const Addr next =
            kBaseC + order[(i + 1) % chase_nodes] * kNodeBytes;
        assembler.data(node, next);
        assembler.data(node + kWordBytes, rng.below(100));
    }
    // Gather index array.
    constexpr std::uint64_t kIdxEntries = 8192;
    for (std::uint64_t i = 0; i < kIdxEntries; ++i) {
        const std::uint64_t word = (i * 9) % table_words;
        assembler.data(kBaseB + i * kWordBytes, word * kWordBytes);
        assembler.data(kBaseA + word * kWordBytes, rng.below(100));
    }

    assembler.li(rBaseA, kBaseA);
    assembler.li(rBaseB, kBaseB);
    assembler.li(rCursor, kBaseB);
    assembler.li(rWrap, kBaseB + kIdxEntries * kWordBytes);
    assembler.li(rT4, kBaseC);
    assembler.li(rAux, 80);
    assembler.li(rSum, 0);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    // Gather segment.
    assembler.ld(rT0, rCursor);
    assembler.add(rT1, rBaseA, rT0);
    assembler.ld(rT2, rT1);
    assembler.add(rSum, rSum, rT2);
    // Branch on loaded data.
    assembler.blt(rT2, rAux, "low");
    assembler.addi(rSum, rSum, 5);
    assembler.jmp("join");
    assembler.label("low");
    assembler.addi(rSum, rSum, 1);
    assembler.label("join");
    // Chase segment: two hops.
    assembler.ld(rT3, rT4, 8);
    assembler.add(rSum, rSum, rT3);
    assembler.ld(rT4, rT4);
    assembler.ld(rT4, rT4);
    // Advance gather cursor.
    assembler.addi(rCursor, rCursor, 8);
    assembler.blt(rCursor, rWrap, "no_wrap");
    assembler.mv(rCursor, rBaseB);
    assembler.label("no_wrap");
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

Program
genPhased(const std::string &name, std::uint64_t table_words,
          std::uint64_t phase_iterations, Iterations iterations)
{
    DGSIM_ASSERT((table_words & (table_words - 1)) == 0,
                 "table_words must be a power of 2");
    DGSIM_ASSERT(phase_iterations != 0 &&
                     (phase_iterations & (phase_iterations - 1)) == 0,
                 "phase_iterations must be a power of 2");
    std::int64_t phase_shift = 0;
    while ((phase_iterations >> phase_shift) != 1)
        ++phase_shift;

    Assembler assembler(name);
    Rng rng(0x9e370000 + table_words);
    // Sparse non-zero seeding: probe values feed the accumulator only,
    // so a few thousand seeded words keep the data image small even for
    // L3-sized tables.
    for (std::uint64_t i = 0; i < 4096; ++i) {
        const std::uint64_t word = rng.below(table_words);
        assembler.data(kBaseA + word * kWordBytes, rng.below(100000) + 1);
    }
    assembler.li(rBaseA, kBaseA);
    assembler.li(rCursor, kBaseA);
    assembler.li(rWrap, kBaseA + table_words * kWordBytes);
    assembler.li(rT4, 2654435761ULL);
    assembler.li(rSum, 0);
    loopHeader(assembler, iterations);
    assembler.label("loop");
    // Phase selector: one bit of the induction variable above the
    // phase-length boundary, so behaviour flips every phase_iterations
    // iterations. Perfectly predictable — the phases differ in *memory*
    // behaviour, not branch behaviour.
    assembler.srli(rScratch, rIter, phase_shift);
    assembler.andi(rScratch, rScratch, 1);
    assembler.bne(rScratch, 0, "probe");
    // Phase A: streaming sweep — stride-predictable, prefetch-friendly,
    // high L1 locality once warm.
    assembler.ld(rT0, rCursor);
    assembler.add(rSum, rSum, rT0);
    assembler.addi(rCursor, rCursor, 8);
    assembler.blt(rCursor, rWrap, "stream_wrapped");
    assembler.mv(rCursor, rBaseA);
    assembler.label("stream_wrapped");
    assembler.jmp("join");
    // Phase B: hash probe — independent but unpredictable addresses
    // over the full table (omnetpp-style LCG of the iteration count).
    assembler.label("probe");
    assembler.mul(rT0, rIter, rT4);
    assembler.xor_(rT0, rT0, rIter);
    assembler.srli(rT0, rT0, 11);
    assembler.andi(rT0, rT0,
                   static_cast<std::int64_t>(table_words - 1));
    assembler.slli(rT0, rT0, 3);
    assembler.add(rT0, rT0, rBaseA);
    assembler.ld(rT1, rT0);
    assembler.add(rSum, rSum, rT1);
    assembler.label("join");
    assembler.addi(rIter, rIter, 1);
    loopTrailer(assembler, iterations, "loop");
    return assembler.finish();
}

} // namespace dgsim::workloads
