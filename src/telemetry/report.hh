/**
 * @file
 * `dgrun --report`: join completion journals (per-job host wall-time,
 * attempts) with a merged telemetry trace (spans per worker pid) into
 * a straggler/latency report — p50/p95/p99 job wall-time per workload
 * and per config, retry storms, steal imbalance, and the dead-worker
 * recovery timeline.
 */

#ifndef DGSIM_TELEMETRY_REPORT_HH
#define DGSIM_TELEMETRY_REPORT_HH

#include <string>
#include <vector>

namespace dgsim::telemetry
{

struct ReportInputs
{
    /** Journals to merge by job identity (worker journals, or any). */
    std::vector<std::string> journalPaths;
    /** Merged trace-event file ("" = skip the trace sections). */
    std::string tracePath;
};

/** Build the full report text (ends with a newline). */
std::string buildCampaignReport(const ReportInputs &inputs);

} // namespace dgsim::telemetry

#endif // DGSIM_TELEMETRY_REPORT_HH
