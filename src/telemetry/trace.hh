/**
 * @file
 * Chrome trace-event files: the JSONL part-file loader (tolerant of a
 * killed worker's truncated final line, like the journal loader), the
 * merger that folds per-process part files into one strict-JSON
 * trace-event document, and the strict loader + validator the tests
 * and `dgrun --report`/`--validate-telemetry` use.
 */

#ifndef DGSIM_TELEMETRY_TRACE_HH
#define DGSIM_TELEMETRY_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dgsim::telemetry
{

/** One trace event. ph "X" = complete span, "M" = metadata. */
struct TraceEvent
{
    std::string name;
    std::string cat;
    std::string ph;
    std::uint64_t ts = 0;  ///< Microseconds since the campaign epoch.
    std::uint64_t dur = 0; ///< Microseconds ("X" spans; 0 for "M").
    std::uint64_t pid = 0;
    std::uint64_t tid = 0;
    /** Args flattened to text: strings verbatim, numbers as raw text,
     * booleans as "true"/"false". */
    std::map<std::string, std::string> args;
};

/**
 * Load one JSONL event part file. A malformed *final* line is dropped
 * with a warning — the expected artifact of a worker killed mid-span
 * emission; a malformed interior line is fatal (corruption, not a
 * crash). A missing file yields an empty vector: a worker that died
 * before its first span, or a pass that never forked it.
 */
std::vector<TraceEvent> loadTraceEvents(const std::string &path);

/**
 * Merge @p partPaths (each loaded tolerantly, see above) into one
 * strict-JSON Chrome trace-event document at @p outPath, events
 * sorted by timestamp. Returns the merged event count.
 */
std::size_t mergeTraceFiles(const std::vector<std::string> &partPaths,
                            const std::string &outPath);

/**
 * Strictly parse a merged trace document (the whole file through the
 * runner JSON parser — trailing garbage, truncation or malformed
 * events all throw runner::JsonParseError).
 */
std::vector<TraceEvent> loadMergedTrace(const std::string &path);

/** Structural validation; returns "" when valid, else the violation. */
std::string validateTraceEvents(const std::vector<TraceEvent> &events);

} // namespace dgsim::telemetry

#endif // DGSIM_TELEMETRY_TRACE_HH
