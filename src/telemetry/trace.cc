#include "telemetry/trace.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/log.hh"
#include "runner/json.hh"

namespace dgsim::telemetry
{
namespace
{

using runner::JsonParseError;
using runner::JsonParser;
using runner::JsonValue;
using runner::jsonEscape;
using runner::jsonMember;

std::uint64_t
memberU64(const JsonValue &record, const char *name)
{
    const JsonValue &value = jsonMember(record, name);
    if (value.kind != JsonValue::Kind::Number)
        throw JsonParseError(std::string("event field '") + name +
                             "' is not a number");
    errno = 0;
    char *end = nullptr;
    const unsigned long long parsed =
        std::strtoull(value.number.c_str(), &end, 10);
    if (value.number.empty() || *end != '\0' || errno == ERANGE)
        throw JsonParseError(std::string("event field '") + name +
                             "' is not a u64: '" + value.number + "'");
    return parsed;
}

TraceEvent
eventFromJson(const JsonValue &record)
{
    TraceEvent event;
    event.name = jsonMember(record, "name").str;
    event.cat = jsonMember(record, "cat").str;
    event.ph = jsonMember(record, "ph").str;
    event.ts = memberU64(record, "ts");
    event.pid = memberU64(record, "pid");
    event.tid = memberU64(record, "tid");
    // "M" metadata events may omit dur.
    if (record.object.count("dur"))
        event.dur = memberU64(record, "dur");
    const auto args = record.object.find("args");
    if (args != record.object.end()) {
        if (args->second.kind != JsonValue::Kind::Object)
            throw JsonParseError("event 'args' is not an object");
        for (const auto &entry : args->second.object) {
            switch (entry.second.kind) {
              case JsonValue::Kind::String:
                event.args[entry.first] = entry.second.str;
                break;
              case JsonValue::Kind::Number:
                event.args[entry.first] = entry.second.number;
                break;
              case JsonValue::Kind::Boolean:
                event.args[entry.first] =
                    entry.second.boolean ? "true" : "false";
                break;
              default:
                throw JsonParseError("event arg '" + entry.first +
                                     "' is not a scalar");
            }
        }
    }
    return event;
}

std::string
eventToJsonLine(const TraceEvent &event)
{
    std::string line = "{\"name\":\"" + jsonEscape(event.name) +
                       "\",\"cat\":\"" + jsonEscape(event.cat) +
                       "\",\"ph\":\"" + jsonEscape(event.ph) +
                       "\",\"ts\":" + std::to_string(event.ts) +
                       ",\"dur\":" + std::to_string(event.dur) +
                       ",\"pid\":" + std::to_string(event.pid) +
                       ",\"tid\":" + std::to_string(event.tid) +
                       ",\"args\":{";
    bool first = true;
    for (const auto &entry : event.args) {
        if (!first)
            line += ',';
        first = false;
        // Args round-trip as strings: the report reads them as text
        // and Perfetto renders them either way.
        line += "\"" + jsonEscape(entry.first) + "\":\"" +
                jsonEscape(entry.second) + "\"";
    }
    line += "}}";
    return line;
}

} // namespace

std::vector<TraceEvent>
loadTraceEvents(const std::string &path)
{
    std::ifstream in(path);
    std::vector<TraceEvent> events;
    if (!in)
        return events;

    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);

    for (std::size_t i = 0; i < lines.size(); ++i) {
        try {
            events.push_back(
                eventFromJson(JsonParser(lines[i]).parse()));
        } catch (const JsonParseError &e) {
            // Same contract as the journal loader: the final line of a
            // killed worker's file is expected to be cut short; an
            // interior bad line is corruption.
            if (i + 1 == lines.size()) {
                DGSIM_WARN("telemetry events '" + path +
                           "': dropping truncated final event (" +
                           e.what() + ")");
                break;
            }
            DGSIM_FATAL("telemetry events '" + path + "' line " +
                        std::to_string(i + 1) + " is corrupt: " + e.what());
        }
    }
    return events;
}

std::size_t
mergeTraceFiles(const std::vector<std::string> &partPaths,
                const std::string &outPath)
{
    std::vector<TraceEvent> events;
    for (const std::string &part : partPaths) {
        std::vector<TraceEvent> loaded = loadTraceEvents(part);
        events.insert(events.end(),
                      std::make_move_iterator(loaded.begin()),
                      std::make_move_iterator(loaded.end()));
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         return a.tid < b.tid;
                     });

    std::ofstream out(outPath, std::ios::trunc);
    if (!out)
        DGSIM_FATAL("cannot write merged telemetry trace '" + outPath +
                    "'");
    // The JSON-object trace format Perfetto/chrome://tracing load
    // directly; one event per line keeps it greppable.
    out << "{\"dgsim_telemetry\":1,\"displayTimeUnit\":\"ms\","
        << "\"traceEvents\":[\n";
    for (std::size_t i = 0; i < events.size(); ++i)
        out << eventToJsonLine(events[i])
            << (i + 1 < events.size() ? ",\n" : "\n");
    out << "]}\n";
    return events.size();
}

std::vector<TraceEvent>
loadMergedTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw JsonParseError("cannot open telemetry trace '" + path + "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    const JsonValue document = JsonParser(text).parse();
    const JsonValue &list = jsonMember(document, "traceEvents");
    if (list.kind != JsonValue::Kind::Array)
        throw JsonParseError("'traceEvents' is not an array");
    std::vector<TraceEvent> events;
    events.reserve(list.array.size());
    for (const JsonValue &record : list.array)
        events.push_back(eventFromJson(record));
    return events;
}

std::string
validateTraceEvents(const std::vector<TraceEvent> &events)
{
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &event = events[i];
        const std::string where = "event " + std::to_string(i + 1) + " ('" +
                                  event.name + "')";
        if (event.name.empty())
            return "event " + std::to_string(i + 1) + " has an empty name";
        if (event.ph != "X" && event.ph != "M")
            return where + " has unknown phase '" + event.ph + "'";
        if (event.ph == "M" && event.name != "process_name")
            return where + " is unexpected metadata";
        if (event.pid == 0)
            return where + " has pid 0";
        if (i > 0 && event.ts < events[i - 1].ts)
            return where + " breaks timestamp ordering";
    }
    return "";
}

} // namespace dgsim::telemetry
