#include "telemetry/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>

#include "runner/campaign.hh"
#include "runner/json.hh"
#include "telemetry/trace.hh"

namespace dgsim::telemetry
{
namespace
{

using runner::JobOutcome;

/** Nearest-rank percentile of a sorted sample. */
double
percentile(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[std::min(rank == 0 ? 0 : rank - 1, sorted.size() - 1)];
}

void
appendPercentileTable(std::string &out, const char *heading,
                      std::map<std::string, std::vector<double>> &groups)
{
    char line[160];
    std::snprintf(line, sizeof(line), "%-22s %5s %9s %9s %9s %9s\n",
                  heading, "n", "p50", "p95", "p99", "max");
    out += line;
    for (auto &entry : groups) {
        std::vector<double> &sample = entry.second;
        std::sort(sample.begin(), sample.end());
        std::snprintf(line, sizeof(line),
                      "%-22s %5zu %8.3fs %8.3fs %8.3fs %8.3fs\n",
                      entry.first.c_str(), sample.size(),
                      percentile(sample, 50), percentile(sample, 95),
                      percentile(sample, 99), sample.back());
        out += line;
    }
}

/** Per-worker-pid span accounting pulled from the merged trace. */
struct WorkerTrack
{
    std::string name; ///< From the process_name metadata.
    std::uint64_t workerSpanUs = 0;
    std::uint64_t jobSpans = 0;
    std::uint64_t jobBusyUs = 0;
    std::uint64_t stolen = 0;
};

void
appendTraceSections(std::string &out, const std::string &tracePath)
{
    std::vector<TraceEvent> events;
    try {
        events = loadMergedTrace(tracePath);
    } catch (const runner::JsonParseError &e) {
        out += "\ntelemetry trace: " + tracePath + ": UNREADABLE (" +
               e.what() + ")\n";
        return;
    }
    out += "\ntelemetry trace: " + tracePath + ": " +
           std::to_string(events.size()) + " event(s)\n";

    std::uint64_t campaignUs = 0;
    std::map<std::uint64_t, WorkerTrack> tracks;
    std::vector<const TraceEvent *> passes;
    std::uint64_t epochTs = events.empty() ? 0 : events.front().ts;
    for (const TraceEvent &event : events) {
        if (event.ph == "M") {
            // Worker tracks are named "worker N"; the parent's track
            // ("dgrun") carries no job spans and is skipped below.
            if (event.args.count("name") &&
                event.args.at("name").rfind("worker", 0) == 0)
                tracks[event.pid].name = event.args.at("name");
            continue;
        }
        if (event.name == "campaign") {
            campaignUs = std::max(campaignUs, event.dur);
        } else if (event.name == "worker") {
            tracks[event.pid].workerSpanUs += event.dur;
        } else if (event.name == "job") {
            WorkerTrack &track = tracks[event.pid];
            ++track.jobSpans;
            track.jobBusyUs += event.dur;
        } else if (event.name == "steal") {
            // The wrapper span around a stolen job; its nested "job"
            // span carries the timing.
            ++tracks[event.pid].stolen;
        } else if (event.name == "pass") {
            passes.push_back(&event);
        }
    }

    char line[200];
    std::uint64_t minStolen = UINT64_MAX, maxStolen = 0;
    bool anyWorker = false;
    for (const auto &entry : tracks) {
        const WorkerTrack &track = entry.second;
        if (track.jobSpans == 0 && track.workerSpanUs == 0)
            continue; // The parent's own track.
        anyWorker = true;
        minStolen = std::min(minStolen, track.stolen);
        maxStolen = std::max(maxStolen, track.stolen);
        const double coverage =
            campaignUs != 0 ? 100.0 * static_cast<double>(track.workerSpanUs) /
                                  static_cast<double>(campaignUs)
                            : 0.0;
        std::snprintf(
            line, sizeof(line),
            "  pid %-8llu %-10s %4llu job span(s), %3llu stolen, "
            "busy %.3fs, coverage %5.1f%%%s\n",
            static_cast<unsigned long long>(entry.first),
            track.name.empty() ? "?" : track.name.c_str(),
            static_cast<unsigned long long>(track.jobSpans),
            static_cast<unsigned long long>(track.stolen),
            static_cast<double>(track.jobBusyUs) / 1e6, coverage,
            track.workerSpanUs == 0 && track.jobSpans != 0
                ? "  << no worker span: died mid-pass"
                : "");
        out += line;
    }
    if (!anyWorker)
        out += "  (no worker tracks — single-process trace)\n";
    if (anyWorker && maxStolen != 0) {
        std::snprintf(line, sizeof(line),
                      "steal imbalance: %llu..%llu stolen job(s) per "
                      "worker\n",
                      static_cast<unsigned long long>(minStolen),
                      static_cast<unsigned long long>(maxStolen));
        out += line;
    }
    if (!passes.empty()) {
        out += "pass timeline:\n";
        for (const TraceEvent *pass : passes) {
            const std::string passNo = pass->args.count("pass")
                                           ? pass->args.at("pass")
                                           : "?";
            std::snprintf(line, sizeof(line),
                          "  pass %s (%s) at +%.3fs for %.3fs\n",
                          passNo.c_str(), pass->cat.c_str(),
                          static_cast<double>(pass->ts - epochTs) / 1e6,
                          static_cast<double>(pass->dur) / 1e6);
            out += line;
        }
    }
}

} // namespace

std::string
buildCampaignReport(const ReportInputs &inputs)
{
    const runner::JournalMap merged =
        runner::mergeJournals(inputs.journalPaths);

    std::size_t ok = 0, failed = 0, retried = 0, extraAttempts = 0;
    std::size_t timed = 0;
    std::map<std::string, std::vector<double>> byWorkload;
    std::map<std::string, std::vector<double>> byConfig;
    std::vector<std::pair<unsigned, std::string>> storms;
    for (const auto &entry : merged) {
        const JobOutcome &outcome = entry.second;
        (outcome.ok ? ok : failed) += 1;
        if (outcome.attempts > 1) {
            ++retried;
            extraAttempts += outcome.attempts - 1;
            storms.emplace_back(outcome.attempts, entry.first);
        }
        // Per-job wall time rides in the journal's host-metrics object;
        // a --no-host-metrics journal has none to aggregate.
        if (outcome.ok && outcome.result.hostSeconds > 0.0) {
            ++timed;
            byWorkload[outcome.workload].push_back(
                outcome.result.hostSeconds);
            byConfig[outcome.configLabel].push_back(
                outcome.result.hostSeconds);
        }
    }

    std::string out = "== campaign report ==\n";
    char line[200];
    std::snprintf(line, sizeof(line),
                  "journals: %zu file(s), %zu record(s): %zu ok, %zu "
                  "failed; %zu retried (%zu extra attempt(s))\n",
                  inputs.journalPaths.size(), merged.size(), ok, failed,
                  retried, extraAttempts);
    out += line;

    if (timed != 0) {
        out += "\njob wall-time percentiles (host seconds):\n";
        appendPercentileTable(out, "workload", byWorkload);
        out += "\n";
        appendPercentileTable(out, "config", byConfig);
    } else {
        out += "\njob wall-time percentiles: no host metrics in these "
               "journals (recorded with --no-host-metrics?)\n";
    }

    out += "\nretry storms:\n";
    if (storms.empty()) {
        out += "  none\n";
    } else {
        std::sort(storms.begin(), storms.end(),
                  [](const auto &a, const auto &b) {
                      return a.first != b.first ? a.first > b.first
                                                : a.second < b.second;
                  });
        const std::size_t shown = std::min<std::size_t>(storms.size(), 10);
        for (std::size_t i = 0; i < shown; ++i) {
            std::snprintf(line, sizeof(line), "  %-40s %u attempt(s)\n",
                          storms[i].second.c_str(), storms[i].first);
            out += line;
        }
        if (shown < storms.size()) {
            std::snprintf(line, sizeof(line), "  ... and %zu more\n",
                          storms.size() - shown);
            out += line;
        }
    }

    if (!inputs.tracePath.empty())
        appendTraceSections(out, inputs.tracePath);
    return out;
}

} // namespace dgsim::telemetry
