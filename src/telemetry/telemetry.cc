#include "telemetry/telemetry.hh"

#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "common/log.hh"
#include "runner/json.hh"
#include "telemetry/metrics.hh"
#include "telemetry/trace.hh"

namespace dgsim::telemetry
{
namespace detail
{

/**
 * The whole enabled-telemetry world. Forked workers inherit a copy:
 * the epoch stays shared (so timestamps align across processes) while
 * reopenForWorker() swaps the process-local pieces (event fd, pid,
 * registry). The snapshot thread exists only in the process that
 * called enable(); fork does not duplicate threads.
 */
struct TelemetryState
{
    TelemetryConfig config;
    std::chrono::steady_clock::time_point epoch;

    int eventFd = -1;
    int pid = 0;
    unsigned workers = 0;
    bool finalized = false;

    MetricsRegistry *registry = nullptr;

    std::thread snapshotThread;
    std::mutex snapshotMutex;
    std::condition_variable snapshotCv;
    bool snapshotStop = false;
};

std::atomic<TelemetryState *> g_state{nullptr};

namespace
{

/** Per-thread Perfetto track id, assigned on first span. */
std::atomic<std::uint64_t> g_nextTid{1};
thread_local std::uint64_t t_tid = 0;

std::uint64_t
threadTid()
{
    if (t_tid == 0)
        t_tid = g_nextTid.fetch_add(1, std::memory_order_relaxed);
    return t_tid;
}

std::string
mainEventPath(const TelemetryConfig &config)
{
    return config.tracePath + ".main.events";
}

std::string
workerEventPath(const TelemetryConfig &config, unsigned worker)
{
    return config.tracePath + ".w" + std::to_string(worker) + ".events";
}

/** One whole line, one write(2): the claims-appender idiom. Events
 * are ~150 bytes, far below PIPE_BUF, so concurrent processes never
 * interleave and a kill loses at most the line being written. */
void
writeLine(int fd, const std::string &line)
{
    ssize_t written = 0;
    while (written < static_cast<ssize_t>(line.size())) {
        const ssize_t n =
            ::write(fd, line.data() + written, line.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            DGSIM_WARN_ONCE("telemetry event write failed: " +
                            std::string(std::strerror(errno)));
            return;
        }
        written += n;
    }
}

int
openEventFile(const std::string &path, bool truncate)
{
    const int flags =
        O_WRONLY | O_APPEND | O_CREAT | (truncate ? O_TRUNC : 0);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0)
        DGSIM_FATAL("cannot open telemetry event file '" + path + "': " +
                    std::strerror(errno));
    return fd;
}

/** Peak RSS in bytes: ru_maxrss is KiB on Linux. */
double
maxRssBytes()
{
    struct ::rusage self{};
    struct ::rusage children{};
    ::getrusage(RUSAGE_SELF, &self);
    ::getrusage(RUSAGE_CHILDREN, &children);
    const long kib = std::max(self.ru_maxrss, children.ru_maxrss);
    return static_cast<double>(kib) * 1024.0;
}

void
writeSnapshot(TelemetryState &state)
{
    if (state.config.metricsPath.empty() || !state.registry)
        return;
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      state.epoch)
            .count();
    state.registry->set("dgsim_uptime_seconds", uptime);
    state.registry->set("dgsim_maxrss_bytes", maxRssBytes());
    const double instructions =
        state.registry->value("dgsim_instructions_total");
    state.registry->set(
        "dgsim_kips", uptime > 0.0 ? instructions / uptime / 1000.0 : 0.0);
    writeFileAtomic(state.config.metricsPath,
                    state.registry->renderPrometheus());
}

} // namespace

std::uint64_t
nowMicros(TelemetryState &state)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - state.epoch)
            .count());
}

void
emitSpan(TelemetryState &state, const char *name, const char *cat,
         std::uint64_t start_us, std::uint64_t end_us,
         const std::string &args)
{
    if (state.eventFd < 0 || state.config.tracePath.empty())
        return;
    std::string line;
    line.reserve(160 + args.size());
    line += "{\"name\":\"";
    line += name;
    line += "\",\"cat\":\"";
    line += cat;
    line += "\",\"ph\":\"X\",\"ts\":" + std::to_string(start_us) +
            ",\"dur\":" +
            std::to_string(end_us >= start_us ? end_us - start_us : 0) +
            ",\"pid\":" + std::to_string(state.pid) +
            ",\"tid\":" + std::to_string(threadTid()) + ",\"args\":{" +
            args + "}}\n";
    writeLine(state.eventFd, line);
}

} // namespace detail

using detail::TelemetryState;

void
enable(const TelemetryConfig &config)
{
    if (enabled())
        DGSIM_FATAL("telemetry is already enabled in this process");
    auto *state = new TelemetryState;
    state->config = config;
    state->epoch = std::chrono::steady_clock::now();
    state->pid = static_cast<int>(::getpid());
    state->registry = new MetricsRegistry;
    if (!config.tracePath.empty())
        state->eventFd = detail::openEventFile(
            detail::mainEventPath(config), /*truncate=*/true);
    detail::g_state.store(state, std::memory_order_release);
    emitProcessName("dgrun");

    if (!config.metricsPath.empty() && config.metricsPeriodSec > 0.0) {
        state->snapshotThread = std::thread([state] {
            const auto period =
                std::chrono::duration<double>(state->config.metricsPeriodSec);
            std::unique_lock<std::mutex> lock(state->snapshotMutex);
            while (!state->snapshotCv.wait_for(
                lock, period, [state] { return state->snapshotStop; }))
                detail::writeSnapshot(*state);
        });
    }
}

void
shutdown()
{
    TelemetryState *state =
        detail::g_state.load(std::memory_order_acquire);
    if (!state)
        return;
    // Unpublish first so in-flight instrumentation sites (there are
    // none by the time dgrun shuts down, but cheap insurance) stop
    // observing the state being torn down.
    detail::g_state.store(nullptr, std::memory_order_release);
    if (state->snapshotThread.joinable()) {
        {
            std::lock_guard<std::mutex> lock(state->snapshotMutex);
            state->snapshotStop = true;
        }
        state->snapshotCv.notify_all();
        state->snapshotThread.join();
    }
    detail::writeSnapshot(*state);
    if (state->eventFd >= 0)
        ::close(state->eventFd);
    delete state->registry;
    delete state;
}

void
reopenForWorker(unsigned worker)
{
    TelemetryState *state =
        detail::g_state.load(std::memory_order_acquire);
    if (!state)
        return;
    state->pid = static_cast<int>(::getpid());
    if (state->eventFd >= 0)
        ::close(state->eventFd);
    if (!state->config.tracePath.empty())
        state->eventFd = detail::openEventFile(
            detail::workerEventPath(state->config, worker),
            /*truncate=*/false);
    // The inherited registry's mutex may have been held by a parent
    // thread at fork time; locking it here could deadlock forever.
    // Replace it wholesale and deliberately leak the old object (a few
    // hundred bytes, once per worker) — destroying a locked mutex is
    // undefined behavior.
    state->registry = new MetricsRegistry;
    // The snapshot thread did not survive the fork; make the handle
    // unjoinable state-wise by never touching it: workers _exit().
    emitProcessName("worker " + std::to_string(worker));
}

void
setWorkerCount(unsigned workers)
{
    TelemetryState *state =
        detail::g_state.load(std::memory_order_acquire);
    if (!state)
        return;
    state->workers = workers;
    if (state->config.tracePath.empty())
        return;
    // Stale part files from a previous incarnation of this campaign
    // carry timestamps from a dead epoch; a resumed campaign starts
    // its trace fresh, like the claims rotation.
    for (unsigned w = 0; w < workers; ++w)
        ::unlink(detail::workerEventPath(state->config, w).c_str());
}

std::string
finalizeTrace()
{
    TelemetryState *state =
        detail::g_state.load(std::memory_order_acquire);
    if (!state || state->config.tracePath.empty())
        return "";
    if (state->finalized)
        return state->config.tracePath;
    state->finalized = true;
    std::vector<std::string> parts;
    parts.push_back(detail::mainEventPath(state->config));
    for (unsigned w = 0; w < state->workers; ++w)
        parts.push_back(detail::workerEventPath(state->config, w));
    const std::size_t events =
        mergeTraceFiles(parts, state->config.tracePath);
    DGSIM_INFORM("telemetry: merged " + std::to_string(events) +
                 " event(s) from " + std::to_string(parts.size()) +
                 " part file(s) into " + state->config.tracePath);
    return state->config.tracePath;
}

void
emitProcessName(const std::string &name)
{
    TelemetryState *state =
        detail::g_state.load(std::memory_order_acquire);
    if (!state || state->eventFd < 0)
        return;
    const std::string line =
        "{\"name\":\"process_name\",\"cat\":\"__metadata\",\"ph\":\"M\","
        "\"ts\":0,\"dur\":0,\"pid\":" +
        std::to_string(state->pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
        runner::jsonEscape(name) + "\"}}\n";
    detail::writeLine(state->eventFd, line);
}

void
metricAdd(const std::string &name, double delta)
{
    TelemetryState *state =
        detail::g_state.load(std::memory_order_relaxed);
    if (state && state->registry)
        state->registry->add(name, delta);
}

void
metricSet(const std::string &name, double value)
{
    TelemetryState *state =
        detail::g_state.load(std::memory_order_relaxed);
    if (state && state->registry)
        state->registry->set(name, value);
}

double
metricValue(const std::string &name)
{
    TelemetryState *state =
        detail::g_state.load(std::memory_order_relaxed);
    return state && state->registry ? state->registry->value(name) : 0.0;
}

void
writeMetricsSnapshotNow()
{
    TelemetryState *state =
        detail::g_state.load(std::memory_order_acquire);
    if (state)
        detail::writeSnapshot(*state);
}

void
ScopedSpan::arg(const char *key, const std::string &value)
{
    if (!state_)
        return;
    if (!args_.empty())
        args_ += ',';
    args_ += std::string("\"") + key + "\":\"" + runner::jsonEscape(value) +
             "\"";
}

void
ScopedSpan::arg(const char *key, std::uint64_t value)
{
    if (!state_)
        return;
    if (!args_.empty())
        args_ += ',';
    args_ += std::string("\"") + key + "\":" + std::to_string(value);
}

} // namespace dgsim::telemetry
