/**
 * @file
 * Fleet telemetry: hierarchical span tracing + host metric counters
 * for the campaign/runner layer (DESIGN.md §11).
 *
 * Everything here is host-side observability: no simulated counter,
 * stats dump, journal or sink line ever changes with telemetry on or
 * off (golden dumps and journals stay byte-identical — enforced by
 * telemetry_test and the CI campaign smoke). The disabled path is one
 * relaxed atomic load per instrumentation site.
 *
 * Spans form the hierarchy campaign → worker → job → phase
 * (expand / ffwd-warm / detailed-window / retry-backoff /
 * journal-append / steal / recovery). Each closed span becomes one
 * Chrome trace-event "X" line appended to a per-process event file
 * with a single O_APPEND write(2) — the claims-file idiom — so spans
 * survive worker _exit and concurrent writers never interleave.
 * finalizeTrace() merges the per-process files into one strict-JSON
 * trace-event document Perfetto loads directly, exactly like worker
 * journals merge into one result set.
 */

#ifndef DGSIM_TELEMETRY_TELEMETRY_HH
#define DGSIM_TELEMETRY_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <string>

namespace dgsim::telemetry
{

/** What `dgrun --telemetry/--metrics` enables. */
struct TelemetryConfig
{
    /** Merged Chrome trace-event JSON output ("" = tracing off). */
    std::string tracePath;
    /** Prometheus-text snapshot file ("" = metrics off). */
    std::string metricsPath;
    /** Snapshot period in seconds (with metricsPath). */
    double metricsPeriodSec = 5.0;
};

namespace detail
{
struct TelemetryState;
/** Null when telemetry is off — the single disabled-path branch. */
extern std::atomic<TelemetryState *> g_state;
std::uint64_t nowMicros(TelemetryState &state);
void emitSpan(TelemetryState &state, const char *name, const char *cat,
              std::uint64_t start_us, std::uint64_t end_us,
              const std::string &args);
} // namespace detail

/** True while telemetry is enabled (one relaxed load). */
inline bool
enabled()
{
    return detail::g_state.load(std::memory_order_relaxed) != nullptr;
}

/**
 * Turn telemetry on for this process. Truncates this process's event
 * part file; captures the monotonic epoch all timestamps (including
 * forked workers', which inherit it) are measured from; starts the
 * metrics snapshot thread when the config asks for one. Fatal when
 * already enabled — nesting would corrupt the epoch.
 */
void enable(const TelemetryConfig &config);

/**
 * Final metrics snapshot, join the snapshot thread, close the event
 * file, disable. Safe to call when disabled (no-op).
 */
void shutdown();

/**
 * Post-fork worker setup: redirect span output to the worker's own
 * O_APPEND event part file (appends across recovery passes), refresh
 * the cached pid, replace the metrics registry wholesale (the
 * inherited one's mutex may have been mid-lock at fork), and emit the
 * Perfetto process-name metadata for this worker's track. No-op when
 * telemetry is off.
 */
void reopenForWorker(unsigned worker);

/**
 * Parent-side campaign setup: record how many worker part files
 * finalizeTrace() must merge and unlink stale ones from a previous
 * incarnation of the campaign (their timestamps belong to a dead
 * epoch). No-op when telemetry is off.
 */
void setWorkerCount(unsigned workers);

/**
 * Merge the per-process event part files into the configured trace
 * path as one strict-JSON Chrome trace-event document. Tolerates a
 * truncated final line per part file (a killed worker's artifact).
 * Returns the merged path, or "" when tracing is off. Idempotent —
 * only the first call merges.
 */
std::string finalizeTrace();

/** Emit Perfetto "process_name" metadata for this process's track. */
void emitProcessName(const std::string &name);

// --- Metric counters/gauges (no-ops when disabled) ---------------------

/** Add @p delta to counter @p name (Prometheus name, labels inline). */
void metricAdd(const std::string &name, double delta = 1.0);

/** Set gauge @p name to @p value. */
void metricSet(const std::string &name, double value);

/** Current value of @p name (0 when absent or disabled). */
double metricValue(const std::string &name);

/** Write a metrics snapshot now (temp file + rename). No-op unless
 * metrics output is configured. */
void writeMetricsSnapshotNow();

/**
 * RAII span. Construction stamps the start, destruction emits one
 * trace-event line; both are no-ops when telemetry is off. arg()
 * attaches key/value pairs shown in the Perfetto slice details.
 * A null @p name makes the span inert — the conditional-span idiom
 * (`ScopedSpan s(stolen ? "steal" : nullptr, "phase")`).
 */
class ScopedSpan
{
  public:
    ScopedSpan(const char *name, const char *cat)
        : state_(name ? detail::g_state.load(std::memory_order_relaxed)
                      : nullptr)
    {
        if (!state_)
            return;
        name_ = name;
        cat_ = cat;
        startUs_ = detail::nowMicros(*state_);
    }

    ~ScopedSpan()
    {
        if (state_)
            detail::emitSpan(*state_, name_, cat_, startUs_,
                             detail::nowMicros(*state_), args_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    void arg(const char *key, const std::string &value);
    void arg(const char *key, std::uint64_t value);

  private:
    detail::TelemetryState *state_;
    const char *name_ = nullptr;
    const char *cat_ = nullptr;
    std::uint64_t startUs_ = 0;
    std::string args_; ///< Pre-rendered `"k":"v"` members, comma-joined.
};

} // namespace dgsim::telemetry

#endif // DGSIM_TELEMETRY_TELEMETRY_HH
