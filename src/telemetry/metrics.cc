#include "telemetry/metrics.hh"

#include <cstdio>

#include <fstream>
#include <set>

#include "common/log.hh"

namespace dgsim::telemetry
{
namespace
{

/** Family = name up to the label block: `fam{l="v"}` -> `fam`. */
std::string
familyOf(const std::string &name)
{
    const std::size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
}

void
renderSection(std::string &out, const std::map<std::string, double> &metrics,
              const char *type, std::set<std::string> &typed)
{
    char buffer[64];
    for (const auto &entry : metrics) {
        const std::string family = familyOf(entry.first);
        if (typed.insert(family).second)
            out += "# TYPE " + family + " " + type + "\n";
        std::snprintf(buffer, sizeof(buffer), " %.17g\n", entry.second);
        out += entry.first + buffer;
    }
}

} // namespace

void
MetricsRegistry::add(const std::string &name, double delta)
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_[name] += delta;
}

void
MetricsRegistry::set(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mutex_);
    gauges_[name] = value;
}

double
MetricsRegistry::value(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto counter = counters_.find(name);
    if (counter != counters_.end())
        return counter->second;
    const auto gauge = gauges_.find(name);
    return gauge != gauges_.end() ? gauge->second : 0.0;
}

std::string
MetricsRegistry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out;
    std::set<std::string> typed;
    renderSection(out, counters_, "counter", typed);
    renderSection(out, gauges_, "gauge", typed);
    return out;
}

bool
writeFileAtomic(const std::string &path, const std::string &text)
{
    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::trunc);
        if (!out) {
            DGSIM_WARN_ONCE("cannot write metrics snapshot '" + temp + "'");
            return false;
        }
        out << text;
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        DGSIM_WARN_ONCE("cannot rename metrics snapshot into '" + path +
                        "'");
        return false;
    }
    return true;
}

} // namespace dgsim::telemetry
