/**
 * @file
 * Thread-safe metric registry + Prometheus text rendering for the
 * telemetry subsystem. Names use the Prometheus convention with
 * labels inline, e.g. `dgsim_jobs_done_total` or
 * `dgsim_shard_outstanding{shard="3"}`; the family (text before the
 * label block) gets one `# TYPE` line per render.
 */

#ifndef DGSIM_TELEMETRY_METRICS_HH
#define DGSIM_TELEMETRY_METRICS_HH

#include <map>
#include <mutex>
#include <string>

namespace dgsim::telemetry
{

/** Counters (monotonic) and gauges (set-to-value), mutex-protected.
 * Metric updates are per-job or per-heartbeat, never per-cycle, so a
 * mutex is noise. */
class MetricsRegistry
{
  public:
    void add(const std::string &name, double delta);
    void set(const std::string &name, double value);

    /** Current value (counter or gauge); 0 when absent. */
    double value(const std::string &name) const;

    /** Prometheus text exposition of every metric. */
    std::string renderPrometheus() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, double> counters_;
    std::map<std::string, double> gauges_;
};

/** Atomically replace @p path with @p text (temp file + rename), so a
 * scraper never reads a half-written snapshot. Returns false (with a
 * warning) on I/O failure. */
bool writeFileAtomic(const std::string &path, const std::string &text);

} // namespace dgsim::telemetry

#endif // DGSIM_TELEMETRY_METRICS_HH
