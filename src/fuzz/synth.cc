#include "fuzz/synth.hh"

#include <cstdio>

#include "common/rng.hh"

namespace dgsim::fuzz
{
namespace
{

// Register conventions (mirrors src/security/gadgets.cc, extended).
constexpr RegIndex rT = 1;     ///< Loop counter.
constexpr RegIndex rBound = 2;
constexpr RegIndex rIdx = 3;
constexpr RegIndex rSz = 4;
constexpr RegIndex rA = 5;
constexpr RegIndex rV = 6;     ///< Raw (possibly secret) loaded value.
constexpr RegIndex rJunk = 7;
constexpr RegIndex rP = 8;
constexpr RegIndex rEnd = 9;
constexpr RegIndex rMask = 10;
constexpr RegIndex rB = 12;
constexpr RegIndex rEnc = 13;  ///< Encoded transmit value.
constexpr RegIndex rEnc2 = 14; ///< Second (store-channel) encoding.
constexpr RegIndex rEnc3 = 15; ///< Third (nested-window) encoding.
constexpr RegIndex kScratchBase = 16; ///< 16..23: committed filler.
constexpr unsigned kScratchCount = 8;

// Memory layout (distinct regions; see gadgets.cc).
constexpr Addr kSizeWord = 0x1000;
constexpr Addr kArray1 = 0x2000;
constexpr Addr kX = 0x5000;
constexpr Addr kY = 0x6000;
constexpr Addr kDataZone = 0x10000;  ///< Committed-filler data.
constexpr Addr kProbe = 0x100000;    ///< Probe array (leak receiver).
constexpr Addr kStoreZone = 0x200000;
constexpr Addr kEvict = 0x4000000;   ///< Eviction streaming buffer.
constexpr unsigned kDataWords = 64;

/** Append a pinned label marker. */
void
emitLabel(AttackerIr &ir, const std::string &name)
{
    IrOp op;
    op.isLabel = true;
    op.label = name;
    op.pinned = true;
    ir.ops.push_back(op);
}

/** Append an instruction; @p target names a label for control flow. */
void
emitInst(AttackerIr &ir, Instruction inst, bool pinned,
         const std::string &target = std::string())
{
    IrOp op;
    op.inst = inst;
    op.pinned = pinned;
    op.label = target;
    ir.ops.push_back(op);
}

Instruction
makeInst(Opcode op, RegIndex rd, RegIndex rs1, RegIndex rs2,
         std::int64_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    inst.imm = imm;
    return inst;
}

/** li via Lui (which writes the full 64-bit immediate directly). */
Instruction
makeLi(RegIndex rd, std::uint64_t value)
{
    return makeInst(Opcode::Lui, rd, 0, 0,
                    static_cast<std::int64_t>(value));
}

/**
 * Emit one value encoding of @p src into @p dst: which secret bits
 * reach the probe address, and at what cache-line granularity. The
 * narrow variants (parity, MSB) are exactly the channels a low-bits
 * secret pair misses — the reason the oracle takes a pair *list*.
 */
void
emitEncode(AttackerIr &ir, Rng &rng, RegIndex dst, RegIndex src)
{
    const std::int64_t shift = 6 + 3 * static_cast<std::int64_t>(
                                         rng.below(3)); // 6, 9, 12
    switch (rng.below(4)) {
      case 0: // linear
        emitInst(ir, makeInst(Opcode::Slli, dst, src, 0, shift), false);
        break;
      case 1: // low bit only
        emitInst(ir, makeInst(Opcode::Andi, dst, src, 0, 1), false);
        emitInst(ir, makeInst(Opcode::Slli, dst, dst, 0, shift), false);
        break;
      case 2: // top byte
        emitInst(ir, makeInst(Opcode::Srli, dst, src, 0, 56), false);
        emitInst(ir, makeInst(Opcode::Slli, dst, dst, 0, shift), false);
        break;
      default: // MSB only
        emitInst(ir, makeInst(Opcode::Srli, dst, src, 0, 63), false);
        emitInst(ir, makeInst(Opcode::Slli, dst, dst, 0, shift), false);
        break;
    }
}

/** One random committed-filler instruction over the scratch registers
 * and the benign data zone. */
void
emitFiller(AttackerIr &ir, Rng &rng)
{
    const auto scratch = [&rng] {
        return static_cast<RegIndex>(kScratchBase + rng.below(kScratchCount));
    };
    switch (rng.below(6)) {
      case 0:
        emitInst(ir,
                 makeInst(Opcode::Add, scratch(), scratch(), scratch(), 0),
                 false);
        break;
      case 1:
        emitInst(ir,
                 makeInst(Opcode::Mul, scratch(), scratch(), scratch(), 0),
                 false);
        break;
      case 2:
        emitInst(ir,
                 makeInst(Opcode::Xori, scratch(), scratch(), 0,
                          static_cast<std::int64_t>(rng.below(4096))),
                 false);
        break;
      case 3:
        emitInst(ir,
                 makeInst(Opcode::Slli, scratch(), scratch(), 0,
                          static_cast<std::int64_t>(rng.below(8))),
                 false);
        break;
      case 4: // committed load: trains the stride table / warms lines
        emitInst(ir,
                 makeInst(Opcode::Ld, scratch(), 0, 0,
                          static_cast<std::int64_t>(
                              kDataZone + rng.below(kDataWords) * 8)),
                 false);
        break;
      default: // committed store with a secret-independent address
        emitInst(ir,
                 makeInst(Opcode::St, 0, 0, scratch(),
                          static_cast<std::int64_t>(
                              kDataZone + rng.below(kDataWords) * 8)),
                 false);
        break;
    }
}

} // namespace

std::string
candidateName(std::uint64_t key)
{
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "fuzz-%08llu",
                  static_cast<unsigned long long>(key));
    return buffer;
}

AttackerIr
synthesize(std::uint64_t fuzz_seed, std::uint64_t key)
{
    // FNV-combine the two halves of the identity into the RNG seed.
    std::uint64_t seed = 0xcbf29ce484222325ULL;
    seed = (seed ^ fuzz_seed) * 0x100000001b3ULL;
    seed = (seed ^ key) * 0x100000001b3ULL;
    Rng rng(seed);

    AttackerIr ir;
    ir.name = candidateName(key);

    // --- Geometry draws ----------------------------------------------
    const unsigned log2_elems = 3 + static_cast<unsigned>(rng.below(3));
    const std::uint64_t elems = 1ULL << log2_elems;       // 8/16/32
    const unsigned log2_rounds = 5 + static_cast<unsigned>(rng.below(2));
    const std::uint64_t rounds = 1ULL << log2_rounds;     // 32/64
    const bool with_evict = rng.chance(7, 8);
    const bool with_keep_hot = rng.chance(3, 4);
    const unsigned spacer = 20 + static_cast<unsigned>(rng.below(41));
    const unsigned filler = static_cast<unsigned>(rng.below(6));

    // --- Data image --------------------------------------------------
    ir.data.push_back({kSizeWord, elems, false, true}); // bounds word
    for (std::uint64_t i = 0; i < elems; ++i)
        ir.data.push_back({kArray1 + i * 8, 1 + (i & 1), false, false});
    // The secret lives just past the array: reachable only by the
    // transient out-of-bounds index.
    ir.data.push_back({kArray1 + elems * 8, 0, true, true});
    ir.data.push_back({kArray1 + (elems + 1) * 8, 0, false, false});
    for (unsigned i = 0; i < 8; ++i) {
        ir.data.push_back({kDataZone + rng.below(kDataWords) * 8,
                           rng.next() >> 32, false, false});
    }

    // --- Train/attack loop scaffold (pinned) -------------------------
    emitInst(ir, makeLi(rT, 0), true);
    emitInst(ir, makeLi(rBound, rounds + 1), true);
    emitLabel(ir, "loop");
    // idx = t & (elems-1) during training; elems (OOB) at t == rounds.
    emitInst(ir,
             makeInst(Opcode::Andi, rIdx, rT, 0,
                      static_cast<std::int64_t>(elems - 1)),
             true);
    emitInst(ir, makeInst(Opcode::Srli, rMask, rT, 0, log2_rounds), true);
    emitInst(ir, makeInst(Opcode::Andi, rMask, rMask, 0, 1), true);
    emitInst(ir, makeInst(Opcode::Slli, rMask, rMask, 0, log2_elems),
             true);
    emitInst(ir, makeInst(Opcode::Or, rIdx, rIdx, rMask, 0), true);
    // Evict the bounds word right before the attack round so the bounds
    // check resolves slowly (the transient window).
    emitInst(ir,
             makeInst(Opcode::Xori, rA, rT, 0,
                      static_cast<std::int64_t>(rounds)),
             true);
    emitInst(ir, makeInst(Opcode::Bne, 0, rA, 0, 0), true, "no_evict");
    if (with_evict) {
        const std::uint64_t evict_bytes =
            (64 + 32 * rng.below(3)) * 1024; // 64/96/128 KiB
        emitInst(ir, makeLi(rP, kEvict), false);
        emitInst(ir, makeLi(rEnd, kEvict + evict_bytes), false);
        emitLabel(ir, "evict");
        emitInst(ir, makeInst(Opcode::Ld, rJunk, rP, 0, 0), false);
        emitInst(ir, makeInst(Opcode::Addi, rP, rP, 0, 64), false);
        emitInst(ir, makeInst(Opcode::Blt, 0, rP, rEnd, 0), false,
                 "evict");
    }
    emitLabel(ir, "no_evict");

    // Keep the secret's line L1-hot via its benign neighbor, and give
    // the fill time to land before the victim runs.
    if (with_keep_hot) {
        emitInst(ir,
                 makeInst(Opcode::Ld, rJunk, 0, 0,
                          static_cast<std::int64_t>(kArray1 +
                                                    (elems + 1) * 8)),
                 false);
        emitInst(ir, makeLi(rP, 3), false);
        for (unsigned i = 0; i < spacer; ++i)
            emitInst(ir, makeInst(Opcode::Mul, rP, rP, rP, 0), false);
    }
    for (unsigned i = 0; i < filler; ++i)
        emitFiller(ir, rng);

    // --- Victim: the mistrained bounds check (pinned) ----------------
    emitInst(ir,
             makeInst(Opcode::Ld, rSz, 0, 0,
                      static_cast<std::int64_t>(kSizeWord)),
             true);
    emitInst(ir, makeInst(Opcode::Bge, 0, rIdx, rSz, 0), true,
             "bounds_ok");

    // --- Transient window: the primitive vocabulary (droppable) ------
    emitInst(ir, makeInst(Opcode::Slli, rA, rIdx, 0, 3), false);
    emitInst(ir,
             makeInst(Opcode::Ld, rV, rA, 0,
                      static_cast<std::int64_t>(kArray1)),
             false);
    if (rng.chance(3, 4)) { // secret-indexed probe-array load
        emitEncode(ir, rng, rEnc, rV);
        emitInst(ir,
                 makeInst(Opcode::Ld, rJunk, rEnc, 0,
                          static_cast<std::int64_t>(kProbe)),
                 false);
    }
    if (rng.chance(1, 4)) { // secret-dependent store address
        emitEncode(ir, rng, rEnc2, rV);
        emitInst(ir,
                 makeInst(Opcode::St, 0, rEnc2, rJunk,
                          static_cast<std::int64_t>(kStoreZone)),
                 false);
    }
    if (rng.chance(1, 4)) { // secret-steered branch: nested window
        emitInst(ir, makeInst(Opcode::Andi, rB, rV, 0, 1), false);
        emitInst(ir, makeInst(Opcode::Bne, 0, rB, 0, 0), false, "odd");
        emitInst(ir,
                 makeInst(Opcode::Ld, rJunk, 0, 0,
                          static_cast<std::int64_t>(kX)),
                 false);
        emitInst(ir, makeInst(Opcode::Jal, 0, 0, 0, 0), false, "join");
        emitLabel(ir, "odd");
        emitInst(ir,
                 makeInst(Opcode::Ld, rJunk, 0, 0,
                          static_cast<std::int64_t>(kY)),
                 false);
        emitLabel(ir, "join");
    }
    if (rng.chance(1, 8)) { // nested bounds check inside the window
        emitInst(ir, makeInst(Opcode::Bge, 0, rIdx, rSz, 0), false,
                 "inner_ok");
        emitEncode(ir, rng, rEnc3, rV);
        emitInst(ir,
                 makeInst(Opcode::Ld, rJunk, rEnc3, 0,
                          static_cast<std::int64_t>(kProbe)),
                 false);
        emitLabel(ir, "inner_ok");
    }
    emitLabel(ir, "bounds_ok");

    emitInst(ir, makeInst(Opcode::Addi, rT, rT, 0, 1), true);
    emitInst(ir, makeInst(Opcode::Blt, 0, rT, rBound, 0), true, "loop");
    emitInst(ir, makeInst(Opcode::Halt, 0, 0, 0, 0), true);
    return ir;
}

} // namespace dgsim::fuzz
