/**
 * @file
 * Relational candidate oracle: one fuzzing candidate, every
 * SpeculationPolicy x AP configuration, the seeded secret-pair list.
 *
 * Classification contract: a Leak under Unsafe is *expected* (the
 * machine has no defense — a synthesizer whose candidates never leak
 * there would be testing nothing); a Leak under STT/NDA/DoM, with or
 * without doppelganger address prediction, is a *finding* against the
 * paper's security claim. Inconclusive runs are reported as such, never
 * folded into "no leak".
 */

#ifndef DGSIM_FUZZ_ORACLE_HH
#define DGSIM_FUZZ_ORACLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hh"
#include "fuzz/ir.hh"
#include "security/leak.hh"

namespace dgsim::fuzz
{

/** The oracle's verdict for one candidate under one configuration. */
struct ConfigVerdict
{
    std::string configLabel;
    security::LeakCheck check;
    /** True for a Leak under the Unsafe scheme (no defense enabled). */
    bool expected = false;

    /** A confirmed leak under a secure scheme: the real findings. */
    bool finding() const { return check.leaked() && !expected; }
};

/**
 * The shared oracle run budget. Central so `dgrun --fuzz`, campaign
 * manifests and the tests all derive identical job identities:
 * candidates are small bounded loops, so the cycle budget is far above
 * any healthy run, and the commit watchdog throws (a wedged candidate
 * is a classifiable outcome).
 */
SimConfig oracleBaseConfig();

/**
 * Run the relational oracle: @p ir under every scheme x AP column of
 * evaluationConfigs(@p base), each column over the full @p pairs list
 * via security::checkLeakPairs. Verdict order follows
 * evaluationConfigs order (deterministic).
 */
std::vector<ConfigVerdict>
evaluateCandidate(const AttackerIr &ir, const SimConfig &base,
                  const std::vector<security::SecretPair> &pairs);

} // namespace dgsim::fuzz

#endif // DGSIM_FUZZ_ORACLE_HH
