#include "fuzz/dgasm.hh"

#include <fstream>
#include <map>
#include <sstream>

#include "common/log.hh"

namespace dgsim::fuzz
{
namespace
{

constexpr int kVersion = 1;

/** mnemonic -> opcode, built once from the ISA's own mnemonic table so
 * the two can never drift apart. */
const std::map<std::string, Opcode> &
opcodeTable()
{
    static const std::map<std::string, Opcode> table = [] {
        std::map<std::string, Opcode> t;
        for (int i = 0; i <= static_cast<int>(Opcode::Halt); ++i) {
            const Opcode op = static_cast<Opcode>(i);
            t.emplace(mnemonic(op), op);
        }
        return t;
    }();
    return table;
}

[[noreturn]] void
syntaxError(const std::string &origin, std::size_t line_no,
            const std::string &what)
{
    DGSIM_FATAL("dgasm parse error (" + origin + ", line " +
                std::to_string(line_no) + "): " + what);
}

std::uint64_t
parseU64(const std::string &token, const std::string &origin,
         std::size_t line_no)
{
    try {
        std::size_t used = 0;
        const std::uint64_t value = std::stoull(token, &used, 0);
        if (used != token.size())
            syntaxError(origin, line_no, "bad number '" + token + "'");
        return value;
    } catch (const std::exception &) {
        syntaxError(origin, line_no, "bad number '" + token + "'");
    }
}

std::int64_t
parseI64(const std::string &token, const std::string &origin,
         std::size_t line_no)
{
    // Negative immediates round-trip through the signed parse; large
    // unsigned ones (full-width addresses in Lui) through the unsigned.
    try {
        std::size_t used = 0;
        if (!token.empty() && token[0] == '-') {
            const std::int64_t value = std::stoll(token, &used, 0);
            if (used != token.size())
                syntaxError(origin, line_no, "bad number '" + token + "'");
            return value;
        }
        const std::uint64_t value = std::stoull(token, &used, 0);
        if (used != token.size())
            syntaxError(origin, line_no, "bad number '" + token + "'");
        return static_cast<std::int64_t>(value);
    } catch (const std::exception &) {
        syntaxError(origin, line_no, "bad number '" + token + "'");
    }
}

RegIndex
parseReg(const std::string &token, const std::string &origin,
         std::size_t line_no)
{
    if (token.size() < 2 || token[0] != 'x')
        syntaxError(origin, line_no, "bad register '" + token + "'");
    const std::uint64_t index =
        parseU64(token.substr(1), origin, line_no);
    if (index >= 32)
        syntaxError(origin, line_no, "bad register '" + token + "'");
    return static_cast<RegIndex>(index);
}

} // namespace

std::string
writeDgasm(const AttackerIr &ir)
{
    std::ostringstream os;
    os << "dgasm " << kVersion << "\n";
    os << "name " << ir.name << "\n";
    for (const IrData &word : ir.data) {
        os << "data 0x" << std::hex << word.addr << std::dec << " "
           << word.value;
        if (word.secret)
            os << " secret";
        if (word.pinned)
            os << " pin";
        os << "\n";
    }
    for (const IrOp &op : ir.ops) {
        if (op.isLabel) {
            os << "label " << op.label;
            if (op.pinned)
                os << " pin";
            os << "\n";
            continue;
        }
        os << "inst " << mnemonic(op.inst.op) << " x" << int(op.inst.rd)
           << " x" << int(op.inst.rs1) << " x" << int(op.inst.rs2) << " ";
        if (!op.label.empty())
            os << "@" << op.label;
        else
            os << op.inst.imm;
        if (op.pinned)
            os << " pin";
        os << "\n";
    }
    return os.str();
}

AttackerIr
parseDgasm(const std::string &text, const std::string &origin)
{
    AttackerIr ir;
    std::istringstream in(text);
    std::string line;
    std::size_t line_no = 0;
    bool saw_version = false;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t comment = line.find('#');
        if (comment != std::string::npos)
            line.resize(comment);
        std::istringstream ls(line);
        std::vector<std::string> tokens;
        for (std::string token; ls >> token;)
            tokens.push_back(token);
        if (tokens.empty())
            continue;

        if (!saw_version) {
            if (tokens.size() != 2 || tokens[0] != "dgasm" ||
                tokens[1] != std::to_string(kVersion)) {
                syntaxError(origin, line_no,
                            "expected header 'dgasm " +
                                std::to_string(kVersion) + "'");
            }
            saw_version = true;
            continue;
        }

        const std::string &directive = tokens[0];
        if (directive == "name") {
            if (tokens.size() != 2)
                syntaxError(origin, line_no, "name takes one token");
            ir.name = tokens[1];
        } else if (directive == "data") {
            if (tokens.size() < 3 || tokens.size() > 5)
                syntaxError(origin, line_no,
                            "data takes <addr> <value> [secret] [pin]");
            IrData word;
            word.addr = parseU64(tokens[1], origin, line_no);
            word.value = parseU64(tokens[2], origin, line_no);
            for (std::size_t i = 3; i < tokens.size(); ++i) {
                if (tokens[i] == "secret")
                    word.secret = true;
                else if (tokens[i] == "pin")
                    word.pinned = true;
                else
                    syntaxError(origin, line_no,
                                "unknown data flag '" + tokens[i] + "'");
            }
            ir.data.push_back(word);
        } else if (directive == "label") {
            if (tokens.size() < 2 || tokens.size() > 3 ||
                (tokens.size() == 3 && tokens[2] != "pin")) {
                syntaxError(origin, line_no, "label takes <name> [pin]");
            }
            IrOp op;
            op.isLabel = true;
            op.label = tokens[1];
            op.pinned = tokens.size() == 3;
            ir.ops.push_back(op);
        } else if (directive == "inst") {
            if (tokens.size() < 6 || tokens.size() > 7 ||
                (tokens.size() == 7 && tokens[6] != "pin")) {
                syntaxError(origin, line_no,
                            "inst takes <mn> <rd> <rs1> <rs2> <imm|@label> "
                            "[pin]");
            }
            const auto it = opcodeTable().find(tokens[1]);
            if (it == opcodeTable().end())
                syntaxError(origin, line_no,
                            "unknown mnemonic '" + tokens[1] + "'");
            IrOp op;
            op.inst.op = it->second;
            op.inst.rd = parseReg(tokens[2], origin, line_no);
            op.inst.rs1 = parseReg(tokens[3], origin, line_no);
            op.inst.rs2 = parseReg(tokens[4], origin, line_no);
            if (tokens[5].size() > 1 && tokens[5][0] == '@')
                op.label = tokens[5].substr(1);
            else
                op.inst.imm = parseI64(tokens[5], origin, line_no);
            op.pinned = tokens.size() == 7;
            ir.ops.push_back(op);
        } else {
            syntaxError(origin, line_no,
                        "unknown directive '" + directive + "'");
        }
    }
    if (!saw_version)
        syntaxError(origin, line_no, "empty file");
    if (ir.name.empty())
        syntaxError(origin, line_no, "missing 'name' directive");
    return ir;
}

void
saveDgasm(const AttackerIr &ir, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        DGSIM_FATAL("cannot open '" + path + "' for writing");
    out << writeDgasm(ir);
    out.flush();
    if (!out)
        DGSIM_FATAL("failed writing dgasm repro '" + path + "'");
}

AttackerIr
loadDgasm(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        DGSIM_FATAL("cannot open dgasm file '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseDgasm(buffer.str(), path);
}

} // namespace dgsim::fuzz
