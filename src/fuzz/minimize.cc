#include "fuzz/minimize.hh"

#include <algorithm>
#include <vector>

namespace dgsim::fuzz
{
namespace
{

/** Indices of ops the minimizer may delete. Labels are never deleted
 * (they occupy no space and a deleted label would dangle its branches);
 * pinned ops are the structural scaffold. */
std::vector<std::size_t>
droppableOps(const AttackerIr &ir)
{
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < ir.ops.size(); ++i) {
        if (!ir.ops[i].isLabel && !ir.ops[i].pinned)
            indices.push_back(i);
    }
    return indices;
}

std::vector<std::size_t>
droppableData(const AttackerIr &ir)
{
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < ir.data.size(); ++i) {
        if (!ir.data[i].pinned && !ir.data[i].secret)
            indices.push_back(i);
    }
    return indices;
}

AttackerIr
withoutOps(const AttackerIr &ir, const std::vector<std::size_t> &drop)
{
    // `drop` is sorted ascending; walk both in lockstep.
    AttackerIr out;
    out.name = ir.name;
    out.data = ir.data;
    std::size_t next = 0;
    for (std::size_t i = 0; i < ir.ops.size(); ++i) {
        if (next < drop.size() && drop[next] == i) {
            ++next;
            continue;
        }
        out.ops.push_back(ir.ops[i]);
    }
    return out;
}

AttackerIr
withoutData(const AttackerIr &ir, const std::vector<std::size_t> &drop)
{
    AttackerIr out;
    out.name = ir.name;
    out.ops = ir.ops;
    std::size_t next = 0;
    for (std::size_t i = 0; i < ir.data.size(); ++i) {
        if (next < drop.size() && drop[next] == i) {
            ++next;
            continue;
        }
        out.data.push_back(ir.data[i]);
    }
    return out;
}

} // namespace

MinimizeResult
minimizeLeak(const AttackerIr &ir, const SimConfig &config,
             security::SecretPair pair, unsigned max_tests)
{
    MinimizeResult result;
    result.ir = ir;

    // Baseline run: confirm the input actually leaks under this exact
    // (config, pair) and harvest its cycle count, which bounds every
    // probe below. A deletion that un-terminates the gadget (dropping
    // a loop increment but keeping its branch) then fails fast instead
    // of spinning to the oracle's full cycle limit — and quietly, since
    // breaking the candidate thousands of ways is the algorithm, not a
    // health event worth warning about.
    const auto check = [&](const AttackerIr &candidate,
                           const SimConfig &probe_config) {
        ++result.testsRun;
        const auto builder = [&candidate](std::uint64_t secret) {
            return candidate.lower(secret);
        };
        return security::checkLeakPairs(builder, probe_config, {pair},
                                        /*quiet=*/true);
    };
    const security::LeakCheck baseline = check(ir, config);
    if (!baseline.leaked())
        return result; // Nothing to preserve; input returned unchanged.
    SimConfig probe = config;
    probe.maxCycles = std::max<std::uint64_t>(8 * baseline.cycles, 100'000);
    if (config.maxCycles != 0)
        probe.maxCycles = std::min(probe.maxCycles, config.maxCycles);

    const auto leaks = [&](const AttackerIr &candidate) {
        return check(candidate, probe).leaked();
    };
    const auto budgetLeft = [&] {
        if (result.testsRun < max_tests)
            return true;
        result.converged = false;
        return false;
    };

    // One full reduction pass; returns true if anything was deleted.
    const auto onePass = [&] {
        bool changed = false;
        // Ops: chunked greedy deletion, chunk size n/2 -> 1.
        for (std::size_t chunk = std::max<std::size_t>(
                 droppableOps(result.ir).size() / 2, 1);
             ; chunk /= 2) {
            std::size_t at = 0;
            while (budgetLeft()) {
                const std::vector<std::size_t> droppable =
                    droppableOps(result.ir);
                if (at >= droppable.size())
                    break;
                const std::size_t take =
                    std::min(chunk, droppable.size() - at);
                const std::vector<std::size_t> drop(
                    droppable.begin() + static_cast<std::ptrdiff_t>(at),
                    droppable.begin() +
                        static_cast<std::ptrdiff_t>(at + take));
                AttackerIr candidate = withoutOps(result.ir, drop);
                if (leaks(candidate)) {
                    result.ir = std::move(candidate);
                    changed = true;
                    // Indices shifted; keep `at` — it now addresses the
                    // survivors after the deleted chunk.
                } else {
                    at += take;
                }
            }
            if (chunk == 1 || !budgetLeft())
                break;
        }
        // Data words: single-entry deletions (the list is short).
        std::size_t at = 0;
        while (budgetLeft()) {
            const std::vector<std::size_t> droppable =
                droppableData(result.ir);
            if (at >= droppable.size())
                break;
            AttackerIr candidate =
                withoutData(result.ir, {droppable[at]});
            if (leaks(candidate)) {
                result.ir = std::move(candidate);
                changed = true;
            } else {
                ++at;
            }
        }
        return changed;
    };

    // Repeat to a fixed point: a pass that deletes nothing proves a
    // rerun of the whole procedure would delete nothing either.
    while (budgetLeft() && onePass()) {
    }
    return result;
}

} // namespace dgsim::fuzz
