/**
 * @file
 * Counterexample minimizer: delta-debug a leaking candidate down to a
 * minimal leaking core.
 *
 * Greedy chunked reduction (ddmin-style): repeatedly try deleting
 * contiguous chunks of droppable (non-pinned, non-label) ops, halving
 * the chunk size down to one, then the droppable data words, adopting
 * any deletion after which the gadget *still leaks* under the same
 * (configuration, secret pair) that produced the hit. Whole passes
 * repeat until one completes with no change, so the procedure is a
 * closure: minimize(minimize(x)) == minimize(x), and the output leaks
 * by construction (only leak-preserving deletions are ever adopted)
 * and is never larger than the input (deletions only).
 */

#ifndef DGSIM_FUZZ_MINIMIZE_HH
#define DGSIM_FUZZ_MINIMIZE_HH

#include <cstdint>

#include "common/config.hh"
#include "fuzz/ir.hh"
#include "security/leak.hh"

namespace dgsim::fuzz
{

/** Outcome of one minimization. */
struct MinimizeResult
{
    AttackerIr ir;          ///< The minimal leaking core.
    unsigned testsRun = 0;  ///< Oracle invocations spent (2 runs each).
    bool converged = true;  ///< False if the test budget ran out first.
};

/**
 * Shrink @p ir down to a minimal gadget that still leaks under
 * @p config with @p pair. The first oracle run re-confirms the input
 * leaks (a non-leaking input returns unchanged after that single test)
 * and its cycle count bounds every probe run, so deletions that
 * un-terminate the gadget fail fast instead of spinning to the
 * oracle's full cycle limit.
 */
MinimizeResult minimizeLeak(const AttackerIr &ir, const SimConfig &config,
                            security::SecretPair pair,
                            unsigned max_tests = 4096);

} // namespace dgsim::fuzz

#endif // DGSIM_FUZZ_MINIMIZE_HH
