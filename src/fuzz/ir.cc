#include "fuzz/ir.hh"

#include <map>

#include "common/log.hh"

namespace dgsim::fuzz
{

std::size_t
AttackerIr::instructionCount() const
{
    std::size_t count = 0;
    for (const IrOp &op : ops) {
        if (!op.isLabel)
            ++count;
    }
    return count;
}

Program
AttackerIr::lower(std::uint64_t secret) const
{
    // Pass 1: assign PCs. Labels occupy no space; a label names the PC
    // of the next instruction (or one-past-the-end, which only a
    // candidate with no trailing pinned HALT could branch to).
    std::map<std::string, Addr> label_pc;
    Addr pc = 0;
    for (const IrOp &op : ops) {
        if (op.isLabel) {
            if (!label_pc.emplace(op.label, pc).second)
                DGSIM_FATAL("attacker IR '" + name + "': duplicate label '" +
                            op.label + "'");
        } else {
            ++pc;
        }
    }

    // Pass 2: emit, resolving symbolic targets.
    Program program;
    program.name = name;
    program.text.reserve(static_cast<std::size_t>(pc));
    for (const IrOp &op : ops) {
        if (op.isLabel)
            continue;
        Instruction inst = op.inst;
        if (!op.label.empty()) {
            const auto it = label_pc.find(op.label);
            if (it == label_pc.end())
                DGSIM_FATAL("attacker IR '" + name +
                            "': dangling branch target '" + op.label + "'");
            inst.imm = static_cast<std::int64_t>(it->second);
        }
        program.text.push_back(inst);
    }

    for (const IrData &word : data)
        program.initialData.write(word.addr, word.secret ? secret
                                                         : word.value);
    return program;
}

} // namespace dgsim::fuzz
