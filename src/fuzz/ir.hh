/**
 * @file
 * Attacker-program IR: the editable form of a fuzzing candidate.
 *
 * The synthesizer emits this instead of a raw Program so the
 * delta-debugging minimizer can drop instructions and data words
 * without recomputing branch targets by hand: targets are symbolic
 * labels, resolved at lowering time. Ops carry a `pinned` bit marking
 * the structural scaffold (the train/attack loop, the bounds check,
 * the final HALT) that the minimizer must never remove — dropping it
 * wouldn't produce a smaller gadget, just a broken program.
 */

#ifndef DGSIM_FUZZ_IR_HH
#define DGSIM_FUZZ_IR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/isa.hh"
#include "isa/program.hh"

namespace dgsim::fuzz
{

/** One op of a candidate: either a label marker or an instruction. */
struct IrOp
{
    bool isLabel = false;
    /** Label name when isLabel; symbolic branch/jump target otherwise
     * (empty = the instruction's immediate is used verbatim). */
    std::string label;
    /** The instruction (ignored for label markers). */
    Instruction inst;
    /** Structural scaffold: the minimizer must keep this op. */
    bool pinned = false;
};

/** One initial-data word of a candidate. */
struct IrData
{
    Addr addr = 0;
    std::uint64_t value = 0;
    /** Lowering replaces the value with the oracle's secret. */
    bool secret = false;
    /** The minimizer must keep this word (bounds word, secret). */
    bool pinned = false;
};

/** A fuzzing candidate in editable form. */
struct AttackerIr
{
    std::string name;
    std::vector<IrOp> ops;
    std::vector<IrData> data;

    /** Instructions (label markers excluded). */
    std::size_t instructionCount() const;

    /**
     * Resolve labels and materialize an executable Program with
     * @p secret patched into the secret data words. A pure function of
     * (ir, secret); fatal on a dangling label reference.
     */
    Program lower(std::uint64_t secret) const;
};

} // namespace dgsim::fuzz

#endif // DGSIM_FUZZ_IR_HH
