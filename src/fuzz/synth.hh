/**
 * @file
 * Attacker-program synthesizer: generates fuzzing candidates from a
 * speculation-primitive vocabulary.
 *
 * Every candidate is a *pure function* of (fuzzSeed, key) — no global
 * state, no clocks — so a campaign can shard candidates by key across
 * workers and any hit can be regenerated anywhere from its two
 * integers (the post-processing pass does exactly that).
 *
 * The generated shape generalizes the hand-written Spectre-v1 gadget
 * (src/security/gadgets.cc): a pinned train/attack loop whose bounds
 * check is mistrained for `trainRounds` rounds and bypassed once, with
 * a randomized transient window drawn from the vocabulary —
 * secret-indexed probe-array loads (with varied value encodings, so
 * different secret bits are transmitted), secret-dependent store
 * addresses, secret-steered branches (nested transient windows) and
 * nested bounds checks — plus randomized committed filler, eviction
 * and spacer geometry. Some draws intentionally produce gadgets that
 * leak under no scheme at all (no probe primitive, no eviction): a
 * useful oracle must prove clean candidates clean, not just find
 * planted leaks.
 */

#ifndef DGSIM_FUZZ_SYNTH_HH
#define DGSIM_FUZZ_SYNTH_HH

#include <cstdint>
#include <string>

#include "fuzz/ir.hh"

namespace dgsim::fuzz
{

/** Deterministic candidate name for @p key, e.g. "fuzz-00000042". */
std::string candidateName(std::uint64_t key);

/** Generate the candidate for (fuzz_seed, key). Pure and total: every
 * key yields a structurally valid, halting program. */
AttackerIr synthesize(std::uint64_t fuzz_seed, std::uint64_t key);

} // namespace dgsim::fuzz

#endif // DGSIM_FUZZ_SYNTH_HH
