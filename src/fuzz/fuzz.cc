#include "fuzz/fuzz.hh"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "common/log.hh"
#include "fuzz/dgasm.hh"
#include "fuzz/minimize.hh"
#include "fuzz/synth.hh"
#include "sim/simulator.hh"

namespace dgsim::fuzz
{
namespace
{

std::string
u64s(std::uint64_t value)
{
    return std::to_string(static_cast<unsigned long long>(value));
}

} // namespace

SimResult
runCandidateJob(const runner::Job &job)
{
    const AttackerIr ir = synthesize(job.fuzzSeed, job.fuzzKey);
    const std::vector<security::SecretPair> pairs =
        security::defaultSecretPairs(job.fuzzSeed);
    const std::vector<ConfigVerdict> verdicts =
        evaluateCandidate(ir, job.config, pairs);

    SimResult result;
    result.workload = job.workload;
    result.configLabel = job.config.label();
    // Static candidate size; gives fleet reports a meaningful column.
    result.instructions = ir.instructionCount();

    auto &counters = result.counters;
    counters["fuzz.key"] = job.fuzzKey;
    counters["fuzz.seed"] = job.fuzzSeed;
    std::uint64_t findings = 0, expected = 0, inconclusive = 0;
    for (const ConfigVerdict &verdict : verdicts) {
        const std::string &label = verdict.configLabel;
        counters["fuzz.verdict." + label] =
            static_cast<std::uint64_t>(verdict.check.verdict);
        counters["fuzz.expected." + label] = verdict.expected ? 1 : 0;
        counters["fuzz.secretA." + label] = verdict.check.secretA;
        counters["fuzz.secretB." + label] = verdict.check.secretB;
        counters["fuzz.digestA." + label] = verdict.check.digestA;
        counters["fuzz.digestB." + label] = verdict.check.digestB;
        if (verdict.finding())
            ++findings;
        else if (verdict.expected)
            ++expected;
        if (verdict.check.inconclusive())
            ++inconclusive;
    }
    counters[kCounterFindings] = findings;
    counters[kCounterExpected] = expected;
    counters[kCounterInconclusive] = inconclusive;
    return result;
}

std::vector<ConfigVerdict>
readVerdicts(const SimResult &result)
{
    const auto get = [&result](const std::string &key) -> std::uint64_t {
        const auto it = result.counters.find(key);
        return it == result.counters.end() ? 0 : it->second;
    };
    std::vector<ConfigVerdict> verdicts;
    for (const SimConfig &config : evaluationConfigs(oracleBaseConfig())) {
        const std::string label = config.label();
        ConfigVerdict verdict;
        verdict.configLabel = label;
        verdict.check.verdict = static_cast<security::LeakVerdict>(
            get("fuzz.verdict." + label));
        verdict.check.secretA = get("fuzz.secretA." + label);
        verdict.check.secretB = get("fuzz.secretB." + label);
        verdict.check.digestA = get("fuzz.digestA." + label);
        verdict.check.digestB = get("fuzz.digestB." + label);
        verdict.expected = get("fuzz.expected." + label) != 0;
        verdicts.push_back(std::move(verdict));
    }
    return verdicts;
}

PostSummary
postProcess(const std::vector<runner::JobOutcome> &outcomes,
            const PostOptions &options, std::ostream &log)
{
    PostSummary summary;
    std::filesystem::create_directories(options.reproDir);
    std::ofstream findings_out(options.findingsPath, std::ios::trunc);
    if (!findings_out)
        DGSIM_FATAL("cannot open findings file '" + options.findingsPath +
                    "' for writing");

    // Pre-resolve the oracle's configuration columns by label.
    const std::vector<SimConfig> configs =
        evaluationConfigs(oracleBaseConfig());
    const auto configByLabel = [&configs](const std::string &label) {
        for (const SimConfig &config : configs) {
            if (config.label() == label)
                return config;
        }
        DGSIM_FATAL("fuzz post-pass: unknown config label '" + label + "'");
    };

    unsigned expected_minimized = 0;
    for (const runner::JobOutcome &outcome : outcomes) {
        ++summary.candidates;
        if (!outcome.ok) {
            ++summary.failedJobs;
            DGSIM_WARN("fuzz candidate " + outcome.workload +
                       " failed: " + outcome.error);
            continue;
        }
        const auto &counters = outcome.result.counters;
        const auto count = [&counters](const char *key) -> std::uint64_t {
            const auto it = counters.find(key);
            return it == counters.end() ? 0 : it->second;
        };
        summary.expectedLeaks += count(kCounterExpected);
        summary.findings += count(kCounterFindings);
        summary.inconclusive += count(kCounterInconclusive);
        if (count(kCounterExpected) == 0 && count(kCounterFindings) == 0)
            continue;

        // A hit: regenerate the candidate from its identity and write
        // the replayable repro once.
        const std::uint64_t key = count("fuzz.key");
        const AttackerIr ir = synthesize(options.fuzzSeed, key);
        const std::string repro_path =
            options.reproDir + "/" + candidateName(key) + ".dgasm";
        saveDgasm(ir, repro_path);

        for (const ConfigVerdict &verdict : readVerdicts(outcome.result)) {
            if (verdict.check.verdict != security::LeakVerdict::Leak)
                continue;
            const security::SecretPair pair{verdict.check.secretA,
                                            verdict.check.secretB};
            const bool minimize =
                verdict.finding() ||
                expected_minimized < options.minimizeExpected;
            std::string min_path;
            MinimizeResult minimized;
            if (minimize) {
                if (!verdict.finding())
                    ++expected_minimized;
                minimized =
                    minimizeLeak(ir, configByLabel(verdict.configLabel),
                                 pair, options.minimizeBudget);
                min_path = options.reproDir + "/" + candidateName(key) +
                           "." + verdict.configLabel + ".min.dgasm";
                saveDgasm(minimized.ir, min_path);
            }

            findings_out
                << "{\"key\":" << u64s(key) << ",\"seed\":"
                << u64s(options.fuzzSeed) << ",\"name\":\"" << ir.name
                << "\",\"config\":\"" << verdict.configLabel
                << "\",\"expected\":"
                << (verdict.expected ? "true" : "false")
                << ",\"secretA\":" << u64s(pair.a) << ",\"secretB\":"
                << u64s(pair.b) << ",\"digestA\":"
                << u64s(verdict.check.digestA) << ",\"digestB\":"
                << u64s(verdict.check.digestB) << ",\"instructions\":"
                << ir.instructionCount() << ",\"repro\":\"" << repro_path
                << "\"";
            if (minimize) {
                findings_out << ",\"minimized\":true,\"minInstructions\":"
                             << minimized.ir.instructionCount()
                             << ",\"minRepro\":\"" << min_path
                             << "\",\"minTests\":" << minimized.testsRun
                             << ",\"minConverged\":"
                             << (minimized.converged ? "true" : "false");
            } else {
                findings_out << ",\"minimized\":false";
            }
            findings_out << "}\n";

            if (verdict.finding()) {
                log << "fuzz FINDING: " << ir.name << " leaks under "
                    << verdict.configLabel << " (secrets " << pair.a
                    << " vs " << pair.b << ") -- repro " << repro_path
                    << "\n";
            }
        }
    }
    findings_out.flush();
    if (!findings_out)
        DGSIM_FATAL("failed writing findings file '" +
                    options.findingsPath + "'");

    if (!options.quiet) {
        log << "fuzz: " << summary.candidates << " candidates, "
            << summary.expectedLeaks << " expected Unsafe leaks, "
            << summary.findings << " confirmed secure-scheme findings, "
            << summary.inconclusive << " inconclusive, "
            << summary.failedJobs << " failed jobs -> "
            << options.findingsPath << "\n";
    }
    return summary;
}

} // namespace dgsim::fuzz
