#include "fuzz/oracle.hh"

#include "sim/simulator.hh"

namespace dgsim::fuzz
{

SimConfig
oracleBaseConfig()
{
    SimConfig config;
    // Candidates are bounded train/attack loops (tens of thousands of
    // cycles when healthy); 2M cycles is an order-of-magnitude margin,
    // and anything that reaches it classifies as inconclusive rather
    // than stalling the campaign for the 50M-cycle default.
    config.maxCycles = 2'000'000;
    config.watchdogThrows = true;
    return config;
}

std::vector<ConfigVerdict>
evaluateCandidate(const AttackerIr &ir, const SimConfig &base,
                  const std::vector<security::SecretPair> &pairs)
{
    const auto builder = [&ir](std::uint64_t secret) {
        return ir.lower(secret);
    };
    std::vector<ConfigVerdict> verdicts;
    for (const SimConfig &config : evaluationConfigs(base)) {
        ConfigVerdict verdict;
        verdict.configLabel = config.label();
        verdict.check = security::checkLeakPairs(builder, config, pairs);
        verdict.expected =
            verdict.check.leaked() && config.scheme == Scheme::Unsafe;
        verdicts.push_back(std::move(verdict));
    }
    return verdicts;
}

} // namespace dgsim::fuzz
