/**
 * @file
 * Fuzzing as a first-class job source for the experiment runner.
 *
 * A fuzz campaign is an ordinary sweep whose jobs are candidates
 * instead of (workload, config) pairs: each job synthesizes its
 * candidate from (fuzzSeed, key), runs the full relational oracle, and
 * encodes the per-configuration verdicts into the SimResult counter
 * map — the one field that round-trips losslessly through journals, so
 * resume, sharding, work stealing and `--merge` all work on fuzz
 * campaigns unchanged.
 *
 * The post-processing pass runs in the parent, over outcomes in
 * job-index order: it regenerates each hit's IR (pure function of two
 * integers), writes the `.dgasm` repro, minimizes findings (and a
 * capped number of expected Unsafe hits), and appends one JSONL
 * finding record per leaking (candidate, configuration). Everything it
 * writes is a deterministic function of (fuzzSeed, candidate count),
 * byte-for-byte identical across reruns and worker counts.
 */

#ifndef DGSIM_FUZZ_FUZZ_HH
#define DGSIM_FUZZ_FUZZ_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/oracle.hh"
#include "runner/sweep.hh"

namespace dgsim::fuzz
{

/** Execute one fuzz-candidate job: synthesize, run the oracle, encode
 * the verdicts as counters (see kVerdictCounterPrefix). */
SimResult runCandidateJob(const runner::Job &job);

// Counter-key vocabulary used by runCandidateJob / readVerdicts.
inline const char *const kCounterFindings = "fuzz.findings";
inline const char *const kCounterExpected = "fuzz.expectedLeaks";
inline const char *const kCounterInconclusive = "fuzz.inconclusive";

/** Decode the per-configuration verdicts runCandidateJob encoded into
 * @p result's counters (digests, secrets and classification; the
 * inconclusive reason strings do not survive the journal round-trip). */
std::vector<ConfigVerdict> readVerdicts(const SimResult &result);

/** Post-processing knobs (dgrun flags). */
struct PostOptions
{
    std::uint64_t fuzzSeed = 1;
    std::string reproDir = "fuzz_repros";
    std::string findingsPath = "fuzz_findings.jsonl";
    /** Minimize at most this many *expected* (Unsafe) hits; confirmed
     * secure-scheme findings are always all minimized. */
    unsigned minimizeExpected = 2;
    unsigned minimizeBudget = 4096;
    bool quiet = false;
};

/** Campaign-level tallies (leaks counted per (candidate, config)). */
struct PostSummary
{
    std::size_t candidates = 0;
    std::size_t expectedLeaks = 0;
    std::size_t findings = 0; ///< Confirmed secure-scheme leaks.
    std::size_t inconclusive = 0;
    std::size_t failedJobs = 0;
};

/**
 * The deterministic post-pass over ordered fuzz outcomes: repro
 * emission, minimization, the findings JSONL, and a summary on
 * @p log (unless quiet). See the file comment.
 */
PostSummary postProcess(const std::vector<runner::JobOutcome> &outcomes,
                        const PostOptions &options, std::ostream &log);

} // namespace dgsim::fuzz

#endif // DGSIM_FUZZ_FUZZ_HH
