/**
 * @file
 * `.dgasm` — the replayable text form of an attacker-program candidate.
 *
 * A finding is only actionable if it can be replayed long after the
 * fuzzing campaign (and across synthesizer changes), so hits are
 * persisted in a versioned, human-readable format that round-trips the
 * full AttackerIr — including pin markers, so a replayed repro can be
 * re-minimized. Grammar (one directive per line, `#` starts a comment):
 *
 *     dgasm 1
 *     name fuzz-00000042
 *     data <addr> <value> [secret] [pin]
 *     label <name> [pin]
 *     inst <mnemonic> <rd> <rs1> <rs2> <imm|@label> [pin]
 */

#ifndef DGSIM_FUZZ_DGASM_HH
#define DGSIM_FUZZ_DGASM_HH

#include <string>

#include "fuzz/ir.hh"

namespace dgsim::fuzz
{

/** Serialize @p ir to dgasm text (always ends with a newline). */
std::string writeDgasm(const AttackerIr &ir);

/** Parse dgasm text; fatal (with @p origin in the message) on any
 * syntax error — a repro that silently half-parses is worse than none. */
AttackerIr parseDgasm(const std::string &text, const std::string &origin);

/** Write @p ir to @p path; fatal on I/O failure. */
void saveDgasm(const AttackerIr &ir, const std::string &path);

/** Load and parse the dgasm file at @p path; fatal on failure. */
AttackerIr loadDgasm(const std::string &path);

} // namespace dgsim::fuzz

#endif // DGSIM_FUZZ_DGASM_HH
