#include "predictor/branch_predictor.hh"

#include "common/log.hh"

namespace dgsim
{

BranchPredictor::BranchPredictor(unsigned history_bits, unsigned btb_entries,
                                 StatRegistry &stats)
    : lookups(stats.counter("bp.lookups")),
      condMispredicts(stats.counter("bp.condMispredicts")),
      history_bits_(history_bits),
      table_mask_((1ULL << history_bits) - 1),
      counters_(1ULL << history_bits, 1), // weakly not-taken
      btb_(btb_entries)
{
    DGSIM_ASSERT(history_bits_ >= 1 && history_bits_ <= 24,
                 "unreasonable gshare history length");
    DGSIM_ASSERT(btb_entries > 0, "BTB needs at least one entry");
}

BranchPredictor::State
BranchPredictor::exportState() const
{
    State state;
    state.counters = counters_;
    state.ghr = ghr_;
    state.btb.reserve(btb_.size());
    for (const BtbEntry &entry : btb_)
        state.btb.push_back(State::Btb{entry.pc, entry.target, entry.valid});
    return state;
}

void
BranchPredictor::restoreState(const State &state)
{
    if (state.counters.size() != counters_.size() ||
        state.btb.size() != btb_.size()) {
        DGSIM_FATAL("checkpoint branch-predictor geometry mismatch: " +
                    std::to_string(state.counters.size()) + " counters / " +
                    std::to_string(state.btb.size()) + " BTB entries in "
                    "the checkpoint vs " +
                    std::to_string(counters_.size()) + " / " +
                    std::to_string(btb_.size()) + " configured");
    }
    counters_ = state.counters;
    ghr_ = state.ghr;
    for (std::size_t i = 0; i < btb_.size(); ++i) {
        btb_[i].pc = state.btb[i].pc;
        btb_[i].target = state.btb[i].target;
        btb_[i].valid = state.btb[i].valid;
    }
}

BranchPrediction
BranchPredictor::predict(Addr pc, const Instruction &inst)
{
    ++lookups;
    BranchPrediction prediction;
    prediction.ghrBefore = ghr_;

    switch (inst.op) {
      case Opcode::Jal:
        prediction.taken = true;
        prediction.target = static_cast<Addr>(inst.imm);
        break;
      case Opcode::Jalr: {
        prediction.taken = true;
        const BtbEntry &entry = btb_[pc % btb_.size()];
        // On a BTB miss predict fall-through; the AGU-resolved target
        // redirects at resolution.
        prediction.target =
            (entry.valid && entry.pc == pc) ? entry.target : pc + 1;
        break;
      }
      default: {
        DGSIM_ASSERT(isCondBranch(inst.op), "predict on non-branch");
        prediction.taken = counters_[tableIndex(pc)] >= 2;
        prediction.target =
            prediction.taken ? static_cast<Addr>(inst.imm) : pc + 1;
        ghr_ = (ghr_ << 1) | (prediction.taken ? 1 : 0);
        break;
      }
    }
    return prediction;
}

std::uint64_t
BranchPredictor::digest() const
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    const auto mix = [&hash](std::uint64_t value) {
        hash ^= value;
        hash *= 0x100000001b3ULL;
    };
    for (std::uint8_t counter : counters_)
        mix(counter);
    mix(ghr_);
    for (const BtbEntry &entry : btb_) {
        mix(entry.valid ? 1 : 0);
        mix(entry.valid ? entry.pc : 0);
        mix(entry.valid ? entry.target : 0);
    }
    return hash;
}

void
BranchPredictor::update(Addr pc, const Instruction &inst, bool taken,
                        Addr target, std::uint64_t ghr_before)
{
    if (inst.op == Opcode::Jalr) {
        BtbEntry &entry = btb_[pc % btb_.size()];
        entry.pc = pc;
        entry.target = target;
        entry.valid = true;
        return;
    }
    if (!isCondBranch(inst.op))
        return;
    // Train the exact table slot the prediction read: the fetch-time
    // history snapshot travels with the instruction.
    const unsigned index =
        static_cast<unsigned>((pc ^ ghr_before) & table_mask_);
    std::uint8_t &counter = counters_[index];
    if (taken) {
        if (counter < 3)
            ++counter;
    } else if (counter > 0) {
        --counter;
    }
}

} // namespace dgsim
