/**
 * @file
 * PC-based stride table, usable both as a prefetcher and as the
 * Doppelganger address predictor.
 *
 * Table 1 of the paper: 1024 entries, 8-way set associative, full PC
 * tags (to prevent aliasing between loads, which would be a security
 * problem for address prediction — paper §5.1).
 *
 * The same structure serves two modes (paper §5.1):
 *  - "address prediction mode": predict the address of the *current*
 *    dynamic instance of a load from its history (lastAddr + stride);
 *  - "prefetching mode": predict *future* instances
 *    (resolvedAddr + stride * degree).
 *
 * Security invariant: train() must only ever be called with committed
 * (non-speculative) load addresses. The trainer is the commit stage.
 */

#ifndef DGSIM_PREDICTOR_STRIDE_TABLE_HH
#define DGSIM_PREDICTOR_STRIDE_TABLE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dgsim
{

/** One stride-table entry. */
struct StrideEntry
{
    Addr pc = 0;           ///< Full PC tag (no aliasing).
    Addr lastAddr = 0;     ///< Address of the last committed instance.
    std::int64_t stride = 0;
    unsigned confidence = 0; ///< Consecutive confirmations of the stride.
    /**
     * Dynamic instances predicted but not yet committed/squashed. With a
     * 352-entry ROB many instances of one loop load are in flight at
     * once; each prediction extrapolates one further stride step. The
     * count is a function of committed state and prior predictions only,
     * so predictions remain independent of speculative values.
     */
    unsigned inflight = 0;
    bool valid = false;
    std::uint64_t lruStamp = 0;
};

/** Set-associative, full-PC-tagged stride predictor/prefetcher table. */
class StrideTable
{
  public:
    /**
     * @param entries total entry count (e.g. 1024).
     * @param assoc set associativity (e.g. 8).
     * @param confidence_threshold confirmations required before the
     *        entry is allowed to predict.
     */
    StrideTable(unsigned entries, unsigned assoc,
                unsigned confidence_threshold, StatRegistry &stats);

    /**
     * Train with a committed load: @p pc accessed @p addr.
     * Must be called in commit order with non-speculative data only.
     */
    void train(Addr pc, Addr addr);

    /**
     * Address-prediction mode: predict the address of the upcoming
     * dynamic instance of the load at @p pc.
     * @return nullopt if the entry is missing or not confident.
     */
    std::optional<Addr> predictCurrent(Addr pc);

    /**
     * Release one in-flight prediction for @p pc (the predicted load
     * committed or was squashed). No-op if the entry was evicted.
     */
    void release(Addr pc);

    /**
     * Prefetching mode: given the resolved @p addr of the current
     * instance, predict the address @p degree instances ahead.
     */
    std::optional<Addr> predictAhead(Addr pc, Addr addr, unsigned degree);

    /** Entry lookup for tests/introspection (no state change). */
    const StrideEntry *peek(Addr pc) const;

    /** Drop all entries. */
    void reset();

    /**
     * Canonical serializable table state (checkpointing): per set, the
     * valid entries packed into the low ways, LRU-oldest first, with
     * LRU stamps dropped (restore assigns fresh ones in order) and
     * in-flight counts cleared — the pipeline is drained at every
     * checkpoint boundary, so no prediction is outstanding.
     */
    struct State
    {
        std::vector<StrideEntry> entries; ///< Set-major, like the table.
    };

    /** Snapshot the table in canonical form. */
    State exportState() const;

    /** Replace the table state; fatal on geometry mismatch. */
    void restoreState(const State &state);

    /**
     * FNV-1a hash of the canonical table state (exportState form:
     * valid entries packed per set in LRU order, raw LRU stamps and
     * in-flight counts excluded) for security digests — a prefetcher
     * entry trained on a secret-dependent address is a leak channel.
     */
    std::uint64_t digest() const;

    Counter &trained;
    Counter &predictions;

  private:
    StrideEntry *find(Addr pc);
    unsigned setIndex(Addr pc) const
    {
        // PCs are word indices; a simple modulo spreads loop bodies well.
        return static_cast<unsigned>(pc % num_sets_);
    }

    unsigned assoc_;
    unsigned num_sets_;
    unsigned confidence_threshold_;
    std::vector<StrideEntry> entries_;
    std::uint64_t lru_clock_ = 0;
};

} // namespace dgsim

#endif // DGSIM_PREDICTOR_STRIDE_TABLE_HH
