/**
 * @file
 * Gshare direction predictor with a tagged BTB for indirect targets.
 *
 * Security property shared by all schemes (paper §4.3): predictor
 * tables are updated only at commit, so speculative (potentially
 * secret-dependent) outcomes never reach predictor state. The global
 * history register is updated speculatively with *predicted* directions
 * (a function of predictor state only, hence secret-independent) and is
 * repaired from per-branch snapshots on squash.
 */

#ifndef DGSIM_PREDICTOR_BRANCH_PREDICTOR_HH
#define DGSIM_PREDICTOR_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "isa/isa.hh"

namespace dgsim
{

/** Prediction for one fetched control instruction. */
struct BranchPrediction
{
    bool taken = false;
    Addr target = 0;
    std::uint64_t ghrBefore = 0; ///< Snapshot for squash repair.
};

/** Gshare + BTB front-end predictor. */
class BranchPredictor
{
  public:
    /** Full serializable predictor state (checkpointing). */
    struct State
    {
        std::vector<std::uint8_t> counters; ///< 2-bit saturating table.
        std::uint64_t ghr = 0;
        struct Btb
        {
            Addr pc = 0;
            Addr target = 0;
            bool valid = false;
        };
        std::vector<Btb> btb;
    };

    BranchPredictor(unsigned history_bits, unsigned btb_entries,
                    StatRegistry &stats);

    /** Snapshot the full predictor state. */
    State exportState() const;

    /** Replace the predictor state; fatal on geometry mismatch. */
    void restoreState(const State &state);

    /**
     * Predict the fetched control instruction at @p pc.
     * Advances the speculative history for conditional branches.
     */
    BranchPrediction predict(Addr pc, const Instruction &inst);

    /**
     * Commit-time training with the architectural outcome.
     * @param ghr_before the history snapshot taken at prediction time,
     *        so the trained table index matches the predicted one.
     */
    void update(Addr pc, const Instruction &inst, bool taken, Addr target,
                std::uint64_t ghr_before);

    /**
     * Repair the speculative history after squashing a mispredicted
     * branch: history = snapshot + the branch's actual direction.
     */
    void
    repairHistory(std::uint64_t ghr_before, bool actual_taken)
    {
        ghr_ = (ghr_before << 1) | (actual_taken ? 1 : 0);
    }

    std::uint64_t history() const { return ghr_; }

    /**
     * FNV-1a hash of the persistent predictor state (counter table,
     * global history, BTB contents) for security digests: an adversary
     * who can time branches after the transient window observes exactly
     * this state. Invalid BTB ways hash position-only, so equal
     * predictor states always hash equal.
     */
    std::uint64_t digest() const;

    Counter &lookups;
    Counter &condMispredicts;

  private:
    unsigned tableIndex(Addr pc) const
    {
        return static_cast<unsigned>((pc ^ ghr_) & table_mask_);
    }

    unsigned history_bits_;
    std::uint64_t table_mask_;
    std::vector<std::uint8_t> counters_; ///< 2-bit saturating.
    std::uint64_t ghr_ = 0;

    struct BtbEntry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
    };
    std::vector<BtbEntry> btb_;
};

} // namespace dgsim

#endif // DGSIM_PREDICTOR_BRANCH_PREDICTOR_HH
