#include "predictor/stride_table.hh"

#include <algorithm>

#include "common/log.hh"

namespace dgsim
{

StrideTable::StrideTable(unsigned entries, unsigned assoc,
                         unsigned confidence_threshold, StatRegistry &stats)
    : trained(stats.counter("stride.trained")),
      predictions(stats.counter("stride.predictions")),
      assoc_(assoc),
      num_sets_(entries / assoc),
      confidence_threshold_(confidence_threshold)
{
    DGSIM_ASSERT(entries % assoc == 0, "entries must divide by assoc");
    DGSIM_ASSERT(num_sets_ > 0, "stride table needs at least one set");
    entries_.resize(entries);
}

StrideEntry *
StrideTable::find(Addr pc)
{
    const unsigned set = setIndex(pc);
    StrideEntry *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        if (base[way].valid && base[way].pc == pc)
            return &base[way];
    }
    return nullptr;
}

const StrideEntry *
StrideTable::peek(Addr pc) const
{
    return const_cast<StrideTable *>(this)->find(pc);
}

void
StrideTable::train(Addr pc, Addr addr)
{
    ++trained;
    StrideEntry *entry = find(pc);
    if (entry == nullptr) {
        // Allocate, evicting the LRU way of the set.
        const unsigned set = setIndex(pc);
        StrideEntry *base =
            &entries_[static_cast<std::size_t>(set) * assoc_];
        StrideEntry *victim = &base[0];
        for (unsigned way = 0; way < assoc_; ++way) {
            if (!base[way].valid) {
                victim = &base[way];
                break;
            }
            if (base[way].lruStamp < victim->lruStamp)
                victim = &base[way];
        }
        *victim = StrideEntry{pc, addr, 0, 0, 0, true, ++lru_clock_};
        return;
    }

    entry->lruStamp = ++lru_clock_;
    const auto observed =
        static_cast<std::int64_t>(addr) -
        static_cast<std::int64_t>(entry->lastAddr);
    if (observed == entry->stride) {
        if (entry->confidence < 16)
            ++entry->confidence;
    } else {
        entry->stride = observed;
        entry->confidence = 0;
    }
    entry->lastAddr = addr;
}

std::optional<Addr>
StrideTable::predictCurrent(Addr pc)
{
    StrideEntry *entry = find(pc);
    if (entry == nullptr || entry->confidence < confidence_threshold_)
        return std::nullopt;
    ++predictions;
    entry->lruStamp = ++lru_clock_;
    ++entry->inflight;
    return entry->lastAddr +
           static_cast<Addr>(entry->stride *
                             static_cast<std::int64_t>(entry->inflight));
}

void
StrideTable::release(Addr pc)
{
    StrideEntry *entry = find(pc);
    if (entry != nullptr && entry->inflight > 0)
        --entry->inflight;
}

std::optional<Addr>
StrideTable::predictAhead(Addr pc, Addr addr, unsigned degree)
{
    StrideEntry *entry = find(pc);
    if (entry == nullptr || entry->confidence < confidence_threshold_ ||
        entry->stride == 0) {
        return std::nullopt;
    }
    return addr + static_cast<Addr>(entry->stride *
                                    static_cast<std::int64_t>(degree));
}

void
StrideTable::reset()
{
    for (auto &entry : entries_)
        entry = StrideEntry{};
    lru_clock_ = 0;
}

StrideTable::State
StrideTable::exportState() const
{
    State state;
    state.entries.resize(entries_.size());
    std::vector<const StrideEntry *> valid;
    valid.reserve(assoc_);
    for (unsigned set = 0; set < num_sets_; ++set) {
        const StrideEntry *base =
            &entries_[static_cast<std::size_t>(set) * assoc_];
        valid.clear();
        for (unsigned way = 0; way < assoc_; ++way) {
            if (base[way].valid)
                valid.push_back(&base[way]);
        }
        std::sort(valid.begin(), valid.end(),
                  [](const StrideEntry *a, const StrideEntry *b) {
                      return a->lruStamp < b->lruStamp;
                  });
        for (std::size_t i = 0; i < valid.size(); ++i) {
            StrideEntry &out =
                state.entries[static_cast<std::size_t>(set) * assoc_ + i];
            out = *valid[i];
            out.lruStamp = 0;  // Canonical: order is positional.
            out.inflight = 0;  // Pipeline drained at the boundary.
        }
    }
    return state;
}

std::uint64_t
StrideTable::digest() const
{
    // Hash the canonical (checkpoint) form so equal tables always hash
    // equal: relative LRU order is positional there, and the raw
    // stamps/in-flight counts — host-visible bookkeeping, not
    // adversary-probeable state — are already dropped.
    const State state = exportState();
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    const auto mix = [&hash](std::uint64_t value) {
        hash ^= value;
        hash *= 0x100000001b3ULL;
    };
    for (const StrideEntry &entry : state.entries) {
        mix(entry.valid ? 1 : 0);
        if (!entry.valid)
            continue;
        mix(entry.pc);
        mix(entry.lastAddr);
        mix(static_cast<std::uint64_t>(entry.stride));
        mix(entry.confidence);
    }
    return hash;
}

void
StrideTable::restoreState(const State &state)
{
    if (state.entries.size() != entries_.size())
        DGSIM_FATAL("checkpoint stride-table geometry mismatch: " +
                    std::to_string(state.entries.size()) + " entries in "
                    "the checkpoint vs " +
                    std::to_string(entries_.size()) + " configured");
    lru_clock_ = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (state.entries[i].valid) {
            entries_[i] = state.entries[i];
            entries_[i].inflight = 0;
            entries_[i].lruStamp = ++lru_clock_;
        } else {
            entries_[i] = StrideEntry{};
        }
    }
}

} // namespace dgsim
