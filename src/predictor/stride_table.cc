#include "predictor/stride_table.hh"

#include "common/log.hh"

namespace dgsim
{

StrideTable::StrideTable(unsigned entries, unsigned assoc,
                         unsigned confidence_threshold, StatRegistry &stats)
    : trained(stats.counter("stride.trained")),
      predictions(stats.counter("stride.predictions")),
      assoc_(assoc),
      num_sets_(entries / assoc),
      confidence_threshold_(confidence_threshold)
{
    DGSIM_ASSERT(entries % assoc == 0, "entries must divide by assoc");
    DGSIM_ASSERT(num_sets_ > 0, "stride table needs at least one set");
    entries_.resize(entries);
}

StrideEntry *
StrideTable::find(Addr pc)
{
    const unsigned set = setIndex(pc);
    StrideEntry *base = &entries_[static_cast<std::size_t>(set) * assoc_];
    for (unsigned way = 0; way < assoc_; ++way) {
        if (base[way].valid && base[way].pc == pc)
            return &base[way];
    }
    return nullptr;
}

const StrideEntry *
StrideTable::peek(Addr pc) const
{
    return const_cast<StrideTable *>(this)->find(pc);
}

void
StrideTable::train(Addr pc, Addr addr)
{
    ++trained;
    StrideEntry *entry = find(pc);
    if (entry == nullptr) {
        // Allocate, evicting the LRU way of the set.
        const unsigned set = setIndex(pc);
        StrideEntry *base =
            &entries_[static_cast<std::size_t>(set) * assoc_];
        StrideEntry *victim = &base[0];
        for (unsigned way = 0; way < assoc_; ++way) {
            if (!base[way].valid) {
                victim = &base[way];
                break;
            }
            if (base[way].lruStamp < victim->lruStamp)
                victim = &base[way];
        }
        *victim = StrideEntry{pc, addr, 0, 0, 0, true, ++lru_clock_};
        return;
    }

    entry->lruStamp = ++lru_clock_;
    const auto observed =
        static_cast<std::int64_t>(addr) -
        static_cast<std::int64_t>(entry->lastAddr);
    if (observed == entry->stride) {
        if (entry->confidence < 16)
            ++entry->confidence;
    } else {
        entry->stride = observed;
        entry->confidence = 0;
    }
    entry->lastAddr = addr;
}

std::optional<Addr>
StrideTable::predictCurrent(Addr pc)
{
    StrideEntry *entry = find(pc);
    if (entry == nullptr || entry->confidence < confidence_threshold_)
        return std::nullopt;
    ++predictions;
    entry->lruStamp = ++lru_clock_;
    ++entry->inflight;
    return entry->lastAddr +
           static_cast<Addr>(entry->stride *
                             static_cast<std::int64_t>(entry->inflight));
}

void
StrideTable::release(Addr pc)
{
    StrideEntry *entry = find(pc);
    if (entry != nullptr && entry->inflight > 0)
        --entry->inflight;
}

std::optional<Addr>
StrideTable::predictAhead(Addr pc, Addr addr, unsigned degree)
{
    StrideEntry *entry = find(pc);
    if (entry == nullptr || entry->confidence < confidence_threshold_ ||
        entry->stride == 0) {
        return std::nullopt;
    }
    return addr + static_cast<Addr>(entry->stride *
                                    static_cast<std::int64_t>(degree));
}

void
StrideTable::reset()
{
    for (auto &entry : entries_)
        entry = StrideEntry{};
    lru_clock_ = 0;
}

} // namespace dgsim
