/**
 * @file
 * STT taint bookkeeping.
 *
 * Each physical register carries a taint *root*: the sequence number of
 * the youngest unsafe load among its dataflow ancestors (stored in the
 * RegFile). This tracker records which load roots are still unsafe. A
 * value is tainted iff its root is still in the unsafe set. Because
 * visibility points are reached in program order, untainting on the
 * youngest root alone is sufficient (Yu et al.'s YRoT argument): when
 * the youngest rooting load becomes bound to commit, every older root
 * has as well.
 */

#ifndef DGSIM_SECURE_TAINT_TRACKER_HH
#define DGSIM_SECURE_TAINT_TRACKER_HH

#include <set>

#include "common/types.hh"

namespace dgsim
{

/** Tracks which speculative loads still taint their outputs. */
class TaintTracker
{
  public:
    /** A speculative load produced a value: its seq becomes a root. */
    void addRoot(SeqNum seq) { roots_.insert(seq); }

    /** The load reached its visibility point; dependents untaint. */
    void clearRoot(SeqNum seq) { roots_.erase(seq); }

    /** Squash: drop roots younger than @p seq. */
    void
    squashYoungerThan(SeqNum seq)
    {
        roots_.erase(roots_.upper_bound(seq), roots_.end());
    }

    /** Is a value with taint root @p root currently tainted? */
    bool
    tainted(SeqNum root) const
    {
        return root != kInvalidSeq && roots_.count(root) > 0;
    }

    /**
     * Combine two source roots into the result's root: the youngest
     * still-unsafe one (kInvalidSeq when both are clean).
     */
    SeqNum
    combine(SeqNum a, SeqNum b) const
    {
        const bool ta = tainted(a);
        const bool tb = tainted(b);
        if (ta && tb)
            return a > b ? a : b;
        if (ta)
            return a;
        if (tb)
            return b;
        return kInvalidSeq;
    }

    bool empty() const { return roots_.empty(); }
    void clear() { roots_.clear(); }

    const std::set<SeqNum> &roots() const { return roots_; }

  private:
    std::set<SeqNum> roots_;
};

} // namespace dgsim

#endif // DGSIM_SECURE_TAINT_TRACKER_HH
