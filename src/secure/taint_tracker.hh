/**
 * @file
 * STT taint bookkeeping.
 *
 * Each physical register carries a taint *root*: the sequence number of
 * the youngest unsafe load among its dataflow ancestors (stored in the
 * RegFile). This tracker records which load roots are still unsafe. A
 * value is tainted iff its root is still in the unsafe set. Because
 * visibility points are reached in program order, untainting on the
 * youngest root alone is sufficient (Yu et al.'s YRoT argument): when
 * the youngest rooting load becomes bound to commit, every older root
 * has as well.
 *
 * Hot-path note: tainted() runs per source operand in the execute and
 * memory-issue paths, and roots are added/cleared once per speculative
 * load. The root set is therefore a flat sorted vector (bounded by the
 * in-flight load window) rather than a node-based std::set: lookups
 * are cache-friendly binary searches and steady state performs zero
 * allocations.
 */

#ifndef DGSIM_SECURE_TAINT_TRACKER_HH
#define DGSIM_SECURE_TAINT_TRACKER_HH

#include <algorithm>
#include <vector>

#include "common/types.hh"

namespace dgsim
{

/** Tracks which speculative loads still taint their outputs. */
class TaintTracker
{
  public:
    /** A speculative load produced a value: its seq becomes a root. */
    void
    addRoot(SeqNum seq)
    {
        const auto it =
            std::lower_bound(roots_.begin(), roots_.end(), seq);
        if (it == roots_.end() || *it != seq)
            roots_.insert(it, seq);
    }

    /** The load reached its visibility point; dependents untaint. */
    void
    clearRoot(SeqNum seq)
    {
        const auto it =
            std::lower_bound(roots_.begin(), roots_.end(), seq);
        if (it != roots_.end() && *it == seq)
            roots_.erase(it);
    }

    /** Clear every root older than @p bound (visibility sweep).
     * @return the number of roots cleared. */
    std::size_t
    clearRootsBelow(SeqNum bound)
    {
        const auto it =
            std::lower_bound(roots_.begin(), roots_.end(), bound);
        const std::size_t cleared =
            static_cast<std::size_t>(it - roots_.begin());
        roots_.erase(roots_.begin(), it);
        return cleared;
    }

    /** Squash: drop roots younger than @p seq. */
    void
    squashYoungerThan(SeqNum seq)
    {
        roots_.erase(std::upper_bound(roots_.begin(), roots_.end(), seq),
                     roots_.end());
    }

    /** Is a value with taint root @p root currently tainted? */
    bool
    tainted(SeqNum root) const
    {
        return root != kInvalidSeq &&
               std::binary_search(roots_.begin(), roots_.end(), root);
    }

    /**
     * Combine two source roots into the result's root: the youngest
     * still-unsafe one (kInvalidSeq when both are clean).
     */
    SeqNum
    combine(SeqNum a, SeqNum b) const
    {
        const bool ta = tainted(a);
        const bool tb = tainted(b);
        if (ta && tb)
            return a > b ? a : b;
        if (ta)
            return a;
        if (tb)
            return b;
        return kInvalidSeq;
    }

    bool empty() const { return roots_.empty(); }
    void clear() { roots_.clear(); }

    /** Live roots, oldest first. */
    const std::vector<SeqNum> &roots() const { return roots_; }

  private:
    std::vector<SeqNum> roots_; ///< Sorted; capacity is retained.
};

} // namespace dgsim

#endif // DGSIM_SECURE_TAINT_TRACKER_HH
