/**
 * @file
 * Delay-on-Miss (DoM).
 *
 * Paper §2.3 / Figure 1d: speculative loads issue to the L1 and
 * complete on a hit (with the replacement update deferred to commit),
 * but an L1 miss under speculation is rejected and the load re-issues
 * once non-speculative. DoM also protects secrets already residing in
 * registers, which is why, with address prediction enabled, branches
 * must resolve in order and mispredicted doppelgangers may only replay
 * once non-speculative (paper §4.6, §5.3).
 */

#ifndef DGSIM_SECURE_DOM_POLICY_HH
#define DGSIM_SECURE_DOM_POLICY_HH

#include "secure/policy.hh"

namespace dgsim
{

/** DoM: hide speculation by delaying speculative L1 misses. */
class DomPolicy : public SpeculationPolicy
{
  public:
    /**
     * @param eager_branch_resolution security ablation: skip the
     *        in-order branch-resolution rule of §4.6 under +AP.
     *        Intentionally insecure; used to demonstrate the leak.
     */
    explicit DomPolicy(bool eager_branch_resolution = false)
        : eager_branch_resolution_(eager_branch_resolution)
    {}

    Scheme scheme() const override { return Scheme::Dom; }

    bool
    loadMayIssue(const DynInst &, const SpecContext &) const override
    {
        // Any load may probe the L1; the hierarchy rejects speculative
        // misses (AccessStatus::DomDelayed).
        return true;
    }

    bool
    storeMayIssueAgu(const DynInst &, const SpecContext &) const override
    {
        return true;
    }

    MemAccessFlags
    loadAccessFlags(const DynInst &, const SpecContext &ctx) const override
    {
        MemAccessFlags flags;
        flags.speculative = ctx.shadowed;
        flags.domProtected = true;
        // Footnote 1: replacement state for speculative hits is updated
        // retroactively (at commit).
        flags.delayReplacementUpdate = ctx.shadowed;
        return flags;
    }

    bool
    loadMayPropagate(const DynInst &, const SpecContext &) const override
    {
        // A load that has data either hit in the L1 (propagation is
        // safe under the DoM threat model) or was re-issued
        // non-speculatively.
        return true;
    }

    bool
    branchMayResolve(const DynInst &, const SpecContext &ctx) const override
    {
        // Baseline DoM resolves at execute. With address prediction the
        // doppelgangers add observable speculative state, so branches
        // must resolve in order, i.e. only when no longer shadowed
        // (paper §4.6).
        if (ctx.addressPrediction && !eager_branch_resolution_)
            return !ctx.shadowed;
        return true;
    }

    bool
    dgMayPropagate(const DynInst &inst, const SpecContext &ctx) const override
    {
        // §5.3: doppelgangers that hit in the L1 behave as DoM hits
        // (propagate once the address is verified); doppelgangers that
        // missed behave as DoM misses (propagate only when the load is
        // non-speculative).
        if (inst.dgL1Hit)
            return true;
        return !ctx.shadowed;
    }

    bool
    dgReplayMayIssue(const DynInst &, const SpecContext &ctx) const override
    {
        // §5.3: the second load of a mispredicted doppelganger is only
        // issued once the load is non-speculative.
        return !ctx.shadowed;
    }

  private:
    bool eager_branch_resolution_;
};

} // namespace dgsim

#endif // DGSIM_SECURE_DOM_POLICY_HH
