/**
 * @file
 * Pluggable secure-speculation policy.
 *
 * The out-of-order core consults the active policy at each of the
 * decision points where the evaluated schemes differ (paper §2, §5):
 * load issue, memory-access flags, value propagation, branch
 * resolution, taint creation, and the doppelganger propagation rule.
 * The core computes the facts (shadowed? operands tainted? L1 hit?);
 * the policy only encodes the scheme's decision logic, which keeps
 * each scheme auditable in one small file.
 */

#ifndef DGSIM_SECURE_POLICY_HH
#define DGSIM_SECURE_POLICY_HH

#include <memory>

#include "common/config.hh"
#include "cpu/dyn_inst.hh"
#include "memory/access.hh"

namespace dgsim
{

/** Facts the core hands to the policy about one instruction. */
struct SpecContext
{
    /** Instruction currently covered by a speculation shadow. */
    bool shadowed = false;
    /** Any source operand is tainted (STT; always false elsewhere). */
    bool operandsTainted = false;
    /** Address prediction ("+AP") is enabled in this configuration. */
    bool addressPrediction = false;
};

/** Interface every secure speculation scheme implements. */
class SpeculationPolicy
{
  public:
    virtual ~SpeculationPolicy() = default;

    virtual Scheme scheme() const = 0;

    /** May this load issue its demand access to the memory hierarchy? */
    virtual bool loadMayIssue(const DynInst &inst,
                              const SpecContext &ctx) const = 0;

    /** May this store compute its address (issue to the AGU)? */
    virtual bool storeMayIssueAgu(const DynInst &inst,
                                  const SpecContext &ctx) const = 0;

    /** Flags for a demand load access. */
    virtual MemAccessFlags loadAccessFlags(const DynInst &inst,
                                           const SpecContext &ctx) const = 0;

    /** May the load's arrived value wake its dependents now? */
    virtual bool loadMayPropagate(const DynInst &inst,
                                  const SpecContext &ctx) const = 0;

    /** May this executed branch resolve (squash / release shadow)? */
    virtual bool branchMayResolve(const DynInst &inst,
                                  const SpecContext &ctx) const = 0;

    /** Does this scheme taint speculative load results (STT)? */
    virtual bool taintsLoads() const { return false; }

    /**
     * May a *verified* doppelganger propagate its preloaded value
     * (paper §5.1-§5.3)? The ctx reflects the load's current shadow
     * state; dgL1Hit tells DoM whether the doppelganger hit in the L1.
     */
    virtual bool dgMayPropagate(const DynInst &inst,
                                const SpecContext &ctx) const = 0;

    /**
     * May the replay (real-address re-issue) of a mispredicted
     * doppelganger access memory now? DoM+AP requires the load to be
     * non-speculative first (paper §5.3); others follow the normal
     * load path.
     */
    virtual bool dgReplayMayIssue(const DynInst &inst,
                                  const SpecContext &ctx) const = 0;
};

/** Factory: build the policy object for @p config. */
std::unique_ptr<SpeculationPolicy> makePolicy(const SimConfig &config);

} // namespace dgsim

#endif // DGSIM_SECURE_POLICY_HH
