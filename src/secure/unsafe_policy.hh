/**
 * @file
 * Unsafe baseline: a conventional out-of-order core with no speculative
 * side-channel protection (paper Figure 1a).
 */

#ifndef DGSIM_SECURE_UNSAFE_POLICY_HH
#define DGSIM_SECURE_UNSAFE_POLICY_HH

#include "secure/policy.hh"

namespace dgsim
{

/** No protection: everything issues, propagates and resolves eagerly. */
class UnsafePolicy : public SpeculationPolicy
{
  public:
    Scheme scheme() const override { return Scheme::Unsafe; }

    bool
    loadMayIssue(const DynInst &, const SpecContext &) const override
    {
        return true;
    }

    bool
    storeMayIssueAgu(const DynInst &, const SpecContext &) const override
    {
        return true;
    }

    MemAccessFlags
    loadAccessFlags(const DynInst &, const SpecContext &ctx) const override
    {
        MemAccessFlags flags;
        flags.speculative = ctx.shadowed;
        return flags;
    }

    bool
    loadMayPropagate(const DynInst &, const SpecContext &) const override
    {
        return true;
    }

    bool
    branchMayResolve(const DynInst &, const SpecContext &) const override
    {
        return true;
    }

    bool
    dgMayPropagate(const DynInst &, const SpecContext &) const override
    {
        // Verified doppelgangers release immediately; there is nothing
        // to protect on the unsafe baseline.
        return true;
    }

    bool
    dgReplayMayIssue(const DynInst &, const SpecContext &) const override
    {
        return true;
    }
};

} // namespace dgsim

#endif // DGSIM_SECURE_UNSAFE_POLICY_HH
