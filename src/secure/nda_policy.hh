/**
 * @file
 * Non-speculative Data Access with permissive propagation (NDA-P).
 *
 * Paper §2.1 / Figure 1b: speculative loads are allowed to access the
 * memory hierarchy, but their results are not propagated to dependents
 * until the load is non-speculative. Blocking the *origin* of secrets
 * closes every transmitter at once, at the cost of delaying all
 * dependents (no ILP or MLP behind a speculative load value).
 */

#ifndef DGSIM_SECURE_NDA_POLICY_HH
#define DGSIM_SECURE_NDA_POLICY_HH

#include "secure/policy.hh"

namespace dgsim
{

/** NDA-P: delay propagation of speculatively loaded values. */
class NdaPolicy : public SpeculationPolicy
{
  public:
    Scheme scheme() const override { return Scheme::NdaP; }

    bool
    loadMayIssue(const DynInst &, const SpecContext &) const override
    {
        // Loads whose address is ready may always access memory; the
        // protection is at the propagation point. (A dependent load's
        // address operands simply never become ready while the producer
        // is speculative.)
        return true;
    }

    bool
    storeMayIssueAgu(const DynInst &, const SpecContext &) const override
    {
        return true;
    }

    MemAccessFlags
    loadAccessFlags(const DynInst &, const SpecContext &ctx) const override
    {
        MemAccessFlags flags;
        flags.speculative = ctx.shadowed;
        return flags;
    }

    bool
    loadMayPropagate(const DynInst &, const SpecContext &ctx) const override
    {
        // The defining rule of NDA-P: propagate only when
        // non-speculative.
        return !ctx.shadowed;
    }

    bool
    branchMayResolve(const DynInst &, const SpecContext &) const override
    {
        // Branch inputs are only ever non-speculative values (their
        // producers' outputs were withheld otherwise), so resolving at
        // execute leaks nothing.
        return true;
    }

    bool
    dgMayPropagate(const DynInst &, const SpecContext &ctx) const override
    {
        // §5: "the register is not propagated as ready until both the
        // address is verified ... and the load is non-speculative".
        // Verification is checked by the caller; we add the NDA gate.
        return !ctx.shadowed;
    }

    bool
    dgReplayMayIssue(const DynInst &, const SpecContext &) const override
    {
        // The replay follows the normal NDA load path (its address
        // operands are non-speculative by the time they are ready).
        return true;
    }
};

} // namespace dgsim

#endif // DGSIM_SECURE_NDA_POLICY_HH
