#include "secure/policy.hh"

#include "common/log.hh"
#include "secure/dom_policy.hh"
#include "secure/nda_policy.hh"
#include "secure/stt_policy.hh"
#include "secure/unsafe_policy.hh"

namespace dgsim
{

std::unique_ptr<SpeculationPolicy>
makePolicy(const SimConfig &config)
{
    switch (config.scheme) {
      case Scheme::Unsafe:
        return std::make_unique<UnsafePolicy>();
      case Scheme::NdaP:
        return std::make_unique<NdaPolicy>();
      case Scheme::Stt:
        return std::make_unique<SttPolicy>();
      case Scheme::Dom:
        return std::make_unique<DomPolicy>(
            /*eager_branch_resolution=*/config.domEagerBranchResolution);
    }
    DGSIM_PANIC("unknown scheme");
}

} // namespace dgsim
