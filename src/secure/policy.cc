#include "secure/policy.hh"

#include "common/log.hh"
#include "secure/dom_policy.hh"
#include "secure/nda_policy.hh"
#include "secure/stt_policy.hh"
#include "secure/unsafe_policy.hh"

namespace dgsim
{
namespace
{

/**
 * Watchdog-test ablation (SimConfig::wedgeNeverResolve): NDA-P
 * semantics except branches never resolve, so every shadow cast by a
 * branch stays up forever and the pipeline wedges at the first
 * branch reaching the ROB head. Never a real scheme — it exists so
 * tests (and `dgrun --wedge`) can exercise the commit watchdog and
 * flight-recorder dump on demand.
 */
class WedgePolicy : public NdaPolicy
{
  public:
    bool
    branchMayResolve(const DynInst &, const SpecContext &) const override
    {
        return false;
    }
};

} // namespace

std::unique_ptr<SpeculationPolicy>
makePolicy(const SimConfig &config)
{
    if (config.wedgeNeverResolve)
        return std::make_unique<WedgePolicy>();
    switch (config.scheme) {
      case Scheme::Unsafe:
        return std::make_unique<UnsafePolicy>();
      case Scheme::NdaP:
        return std::make_unique<NdaPolicy>();
      case Scheme::Stt:
        return std::make_unique<SttPolicy>();
      case Scheme::Dom:
        return std::make_unique<DomPolicy>(
            /*eager_branch_resolution=*/config.domEagerBranchResolution);
    }
    DGSIM_PANIC("unknown scheme");
}

} // namespace dgsim
