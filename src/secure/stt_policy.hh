/**
 * @file
 * Speculative Taint Tracking (STT).
 *
 * Paper §2.2 / Figure 1c: outputs of speculative loads are tainted;
 * taint propagates through register dataflow. Non-transmitting
 * instructions execute on tainted data (ILP preserved); transmitters —
 * loads, store address generation, and branch *resolution* — are
 * delayed while their inputs are tainted. Values untaint when the
 * rooting load reaches its visibility point (becomes bound to commit),
 * which the core tracks with the shadow tracker (see TaintTracker).
 */

#ifndef DGSIM_SECURE_STT_POLICY_HH
#define DGSIM_SECURE_STT_POLICY_HH

#include "secure/policy.hh"

namespace dgsim
{

/** STT: delay transmitters with tainted operands. */
class SttPolicy : public SpeculationPolicy
{
  public:
    Scheme scheme() const override { return Scheme::Stt; }

    bool
    loadMayIssue(const DynInst &, const SpecContext &ctx) const override
    {
        // A load is an explicit transmitter: its address leaks through
        // the cache side channel, so it may not issue while the address
        // operands are tainted.
        return !ctx.operandsTainted;
    }

    bool
    storeMayIssueAgu(const DynInst &, const SpecContext &ctx) const override
    {
        // Store address resolution drives store-to-load forwarding, an
        // implicit channel; delay it while the address is tainted.
        return !ctx.operandsTainted;
    }

    MemAccessFlags
    loadAccessFlags(const DynInst &, const SpecContext &ctx) const override
    {
        MemAccessFlags flags;
        flags.speculative = ctx.shadowed;
        return flags;
    }

    bool
    loadMayPropagate(const DynInst &, const SpecContext &) const override
    {
        // Propagation is free; the value is tainted instead.
        return true;
    }

    bool
    branchMayResolve(const DynInst &, const SpecContext &ctx) const override
    {
        // Resolution-based implicit channel: delay resolution while the
        // predicate is tainted (whether or not it was mispredicted —
        // resolving correct branches early would itself leak).
        return !ctx.operandsTainted;
    }

    bool taintsLoads() const override { return true; }

    bool
    dgMayPropagate(const DynInst &, const SpecContext &) const override
    {
        // §5.2: a verified doppelganger propagates immediately, tainted
        // as a normal STT load value would be.
        return true;
    }

    bool
    dgReplayMayIssue(const DynInst &, const SpecContext &ctx) const override
    {
        // §5.2: "If the prediction is incorrect, a load is issued if
        // its operands are untainted, or whenever they become
        // untainted."
        return !ctx.operandsTainted;
    }
};

} // namespace dgsim

#endif // DGSIM_SECURE_STT_POLICY_HH
