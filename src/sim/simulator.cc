#include "sim/simulator.hh"

#include <chrono>
#include <sstream>

#include "ckpt/sampler.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "telemetry/telemetry.hh"

namespace dgsim
{

SimResult
runProgram(const Program &program, const SimConfig &config)
{
    return runProgram(program, config, nullptr);
}

SimResult
runProgram(const Program &program, const SimConfig &config,
           std::string *stats_dump)
{
    // Any fast-forward/checkpoint/sampling request routes through the
    // sampled-simulation driver; plain detailed runs stay on this path.
    if (ckpt::wantsSampledRun(config))
        return ckpt::runSampled(program, config, stats_dump);

    StatRegistry stats;
    OooCore core(program, config, stats);
    const auto host_start = std::chrono::steady_clock::now();
    {
        telemetry::ScopedSpan span("detailed-window", "phase");
        core.run();
    }
    const std::chrono::duration<double> host_elapsed =
        std::chrono::steady_clock::now() - host_start;

    if (stats_dump) {
        std::ostringstream ss;
        stats.dump(ss);
        *stats_dump = ss.str();
    }

    return harvestResult(program, config, stats, core,
                         host_elapsed.count());
}

SimResult
harvestResult(const Program &program, const SimConfig &config,
              const StatRegistry &stats, const OooCore &core,
              double host_seconds)
{
    SimResult result;
    result.workload = program.name;
    result.configLabel = config.label();
    // Use the stat counters, not the core totals: with
    // config.warmupInstructions set, counters reset at the warmup point
    // so IPC measures the warmed region only.
    result.cycles = stats.get("core.cycles");
    result.instructions = stats.get("core.committedInstrs");
    result.ipc = result.cycles == 0
                     ? 0.0
                     : static_cast<double>(result.instructions) /
                           static_cast<double>(result.cycles);

    result.l1Accesses = stats.get("l1d.accesses");
    result.l1Misses = stats.get("l1d.misses");
    result.l2Accesses = stats.get("l2.accesses");
    result.l2Misses = stats.get("l2.misses");
    result.l3Accesses = stats.get("l3.accesses");
    result.dramAccesses = stats.get("dram.accesses");

    result.dgCoverage = core.doppelganger().coverage();
    result.dgAccuracy = core.doppelganger().accuracy();
    result.dgAttached = stats.get("dg.attached");
    result.dgIssued = stats.get("dg.issued");
    result.dgVerifiedOk = stats.get("dg.verifiedOk");
    result.dgVerifiedBad = stats.get("dg.verifiedBad");

    result.committedLoads = stats.get("core.committedLoads");
    result.committedStores = stats.get("core.committedStores");
    result.committedBranches = stats.get("core.committedBranches");
    result.branchSquashes = stats.get("core.branchSquashes");
    result.memOrderSquashes = stats.get("core.memOrderSquashes");
    result.domDelayed = stats.get("mem.domDelayed");
    result.stlForwards = stats.get("core.stlForwards");

    result.cacheDigest = core.hierarchy().digest();
    {
        // FNV-combine the per-structure digests into the widened
        // security digest. cacheDigest itself stays cache-only.
        std::uint64_t hash = 0xcbf29ce484222325ULL;
        const auto mix = [&hash](std::uint64_t value) {
            hash ^= value;
            hash *= 0x100000001b3ULL;
        };
        mix(result.cacheDigest);
        mix(core.branchPredictor().digest());
        mix(core.strideTable().digest());
        result.uarchDigest = hash;
    }

    // Run health, from the core itself rather than the stat counters —
    // a warmup reset zeroes the counters but not these facts.
    result.halted = core.halted();
    result.hitMaxCycles = !core.halted() && config.maxCycles != 0 &&
                          core.cycle() >= config.maxCycles;

    stats.forEach([&result](const std::string &name, std::uint64_t value) {
        result.counters[name] = value;
    });

    result.hostSeconds = host_seconds;
    result.traceRecords = core.traceRecords();
    result.watchdogCycles = config.watchdogCycles;
    // Host counters, so a sampled run accumulates across all of its
    // detailed windows (they share this registry).
    result.idleCyclesSkipped = stats.hostGet("core.idleCyclesSkipped");
    result.skipEvents = stats.hostGet("core.skipEvents");
    if (stats.histogramCount() != 0) {
        std::ostringstream ss;
        stats.dumpDistributions(ss);
        result.distributions = ss.str();
    }
    return result;
}

std::vector<SimConfig>
evaluationConfigs(const SimConfig &base)
{
    std::vector<SimConfig> configs;
    for (Scheme scheme :
         {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt, Scheme::Dom}) {
        for (bool ap : {false, true}) {
            SimConfig config = base;
            config.scheme = scheme;
            config.addressPrediction = ap;
            configs.push_back(config);
        }
    }
    return configs;
}

} // namespace dgsim
