/**
 * @file
 * Top-level simulation facade: run a Program under a SimConfig and
 * collect the results every test, example and bench consumes.
 */

#ifndef DGSIM_SIM_SIMULATOR_HH
#define DGSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/config.hh"
#include "isa/program.hh"

namespace dgsim
{

class OooCore;
class StatRegistry;

/** Everything measured in one simulation run. */
struct SimResult
{
    std::string workload;
    std::string configLabel;

    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    // Memory hierarchy (paper Figure 8).
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t l3Accesses = 0;
    std::uint64_t dramAccesses = 0;

    // Doppelganger metrics (paper Figure 7).
    double dgCoverage = 0.0;
    double dgAccuracy = 0.0;
    std::uint64_t dgAttached = 0;
    std::uint64_t dgIssued = 0;
    std::uint64_t dgVerifiedOk = 0;
    std::uint64_t dgVerifiedBad = 0;

    // Core events.
    std::uint64_t committedLoads = 0;
    std::uint64_t committedStores = 0;
    std::uint64_t committedBranches = 0;
    std::uint64_t branchSquashes = 0;
    std::uint64_t memOrderSquashes = 0;
    std::uint64_t domDelayed = 0;
    std::uint64_t stlForwards = 0;

    /** Cache-hierarchy digest after the run. Kept cache-only so golden
     * stats and historical comparisons stay byte-identical; security
     * checks should prefer uarchDigest. */
    std::uint64_t cacheDigest = 0;

    /** Widened microarchitectural digest: caches + gshare/GHR/BTB +
     * stride prefetcher. This is what the leak oracle diffs — a
     * predictor- or prefetcher-channel leak is invisible to
     * cacheDigest. */
    std::uint64_t uarchDigest = 0;

    /** True iff the program architecturally committed HALT. */
    bool halted = false;
    /** True iff the run stopped on the maxCycles limit instead. */
    bool hitMaxCycles = false;

    /** Full raw counter dump for anything not surfaced above. */
    std::map<std::string, std::uint64_t> counters;

    // --- Observability (host-side / meta; never part of the golden
    // counter dump, and excluded from determinism comparisons) ---------
    /** Host wall-clock seconds spent inside the cycle loop. */
    double hostSeconds = 0.0;
    /** Simulated kilo-instructions per host second. */
    double
    kips() const
    {
        return hostSeconds <= 0.0 ? 0.0
                                  : static_cast<double>(instructions) /
                                        hostSeconds / 1000.0;
    }
    /** Pipeline-trace records written (0 when tracing was off). */
    std::uint64_t traceRecords = 0;
    /** Commit-watchdog threshold the run executed under (cycles). */
    std::uint64_t watchdogCycles = 0;
    /** Idle cycles the event-driven time warp jumped over (0 with
     * skipping off; host-side — the simulated results are identical
     * either way, which is why this lives outside `counters`). */
    std::uint64_t idleCyclesSkipped = 0;
    /** Number of time-warp advances taken. */
    std::uint64_t skipEvents = 0;
    /** Distribution-stats dump (separate section; "" when empty). */
    std::string distributions;
};

/**
 * Run @p program to completion (HALT or a config run limit) under
 * @p config and harvest statistics.
 */
SimResult runProgram(const Program &program, const SimConfig &config);

/**
 * Same, additionally capturing the full sorted `StatRegistry::dump()`
 * text into @p stats_dump (when non-null). The dump is the
 * golden-stats determinism key: hot-path refactors must keep it
 * byte-identical for every (workload, config).
 */
SimResult runProgram(const Program &program, const SimConfig &config,
                     std::string *stats_dump);

/**
 * Build a SimResult from a finished run's registry and core. Shared by
 * the plain path and the sampled-simulation driver (ckpt/sampler),
 * which accumulates several detailed windows into one registry and
 * harvests from the last core.
 */
SimResult harvestResult(const Program &program, const SimConfig &config,
                        const StatRegistry &stats, const OooCore &core,
                        double host_seconds);

/** Scheme x AP matrix used throughout the evaluation (8 columns). */
std::vector<SimConfig> evaluationConfigs(const SimConfig &base);

} // namespace dgsim

#endif // DGSIM_SIM_SIMULATOR_HH
