#include "runner/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dgsim::runner
{

JsonValue
JsonParser::parse()
{
    JsonValue value = parseValue();
    skipWs();
    if (pos_ != text_.size())
        fail("trailing characters");
    return value;
}

void
JsonParser::fail(const std::string &why)
{
    throw JsonParseError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + why);
}

void
JsonParser::skipWs()
{
    // Newlines count as whitespace so multi-line documents (the merged
    // telemetry trace) parse; JSONL callers never see them — they feed
    // one getline()'d line at a time.
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
        ++pos_;
}

char
JsonParser::peek()
{
    if (pos_ >= text_.size())
        fail("unexpected end of input");
    return text_[pos_];
}

void
JsonParser::expect(char c)
{
    if (peek() != c)
        fail(std::string("expected '") + c + "'");
    ++pos_;
}

JsonValue
JsonParser::parseValue()
{
    skipWs();
    const char c = peek();
    if (c == '{')
        return parseObject();
    if (c == '[')
        return parseArray();
    if (c == '"')
        return parseString();
    if (c == 't' || c == 'f')
        return parseBoolean();
    return parseNumber();
}

JsonValue
JsonParser::parseObject()
{
    expect('{');
    JsonValue value;
    value.kind = JsonValue::Kind::Object;
    skipWs();
    if (peek() == '}') {
        ++pos_;
        return value;
    }
    for (;;) {
        skipWs();
        JsonValue key = parseString();
        skipWs();
        expect(':');
        value.object[key.str] = parseValue();
        skipWs();
        if (peek() == ',') {
            ++pos_;
            continue;
        }
        expect('}');
        return value;
    }
}

JsonValue
JsonParser::parseArray()
{
    expect('[');
    JsonValue value;
    value.kind = JsonValue::Kind::Array;
    skipWs();
    if (peek() == ']') {
        ++pos_;
        return value;
    }
    for (;;) {
        value.array.push_back(parseValue());
        skipWs();
        if (peek() == ',') {
            ++pos_;
            continue;
        }
        expect(']');
        return value;
    }
}

JsonValue
JsonParser::parseString()
{
    expect('"');
    JsonValue value;
    value.kind = JsonValue::Kind::String;
    for (;;) {
        const char c = peek();
        ++pos_;
        if (c == '"')
            return value;
        if (c != '\\') {
            value.str += c;
            continue;
        }
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': value.str += '"'; break;
          case '\\': value.str += '\\'; break;
          case '/': value.str += '/'; break;
          case 'n': value.str += '\n'; break;
          case 'r': value.str += '\r'; break;
          case 't': value.str += '\t'; break;
          case 'b': value.str += '\b'; break;
          case 'f': value.str += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size())
                fail("truncated \\u escape");
            const unsigned long code =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            if (code > 0x7f)
                fail("non-ASCII \\u escape unsupported");
            value.str += static_cast<char>(code);
            break;
          }
          default: fail("bad escape");
        }
    }
}

JsonValue
JsonParser::parseBoolean()
{
    JsonValue value;
    value.kind = JsonValue::Kind::Boolean;
    if (text_.compare(pos_, 4, "true") == 0) {
        value.boolean = true;
        pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
        value.boolean = false;
        pos_ += 5;
    } else {
        fail("bad literal");
    }
    return value;
}

JsonValue
JsonParser::parseNumber()
{
    JsonValue value;
    value.kind = JsonValue::Kind::Number;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
        ++pos_;
    if (pos_ == start)
        fail("expected a value");
    value.number = text_.substr(start, pos_ - start);
    return value;
}

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    for (unsigned char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

const JsonValue &
jsonMember(const JsonValue &object, const char *name)
{
    auto it = object.object.find(name);
    if (it == object.object.end())
        throw JsonParseError(std::string("record missing field '") + name +
                             "'");
    return it->second;
}

} // namespace dgsim::runner
