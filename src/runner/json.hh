/**
 * @file
 * The minimal JSON subset the runner serializes: objects of strings,
 * numbers (kept as raw text so uint64 values survive untruncated),
 * booleans, arrays and nested objects. Shared by the result-sink
 * readers, the completion journal and the telemetry trace readers so
 * they can never drift apart.
 *
 * The parser reports malformed input by throwing JsonParseError rather
 * than calling DGSIM_FATAL: the sink readers convert it to a fatal
 * (malformed results are unrecoverable), while the journal reader
 * *recovers* from a truncated final line — the expected artifact of a
 * killed sweep.
 */

#ifndef DGSIM_RUNNER_JSON_HH
#define DGSIM_RUNNER_JSON_HH

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace dgsim::runner
{

/** Malformed JSON (or a missing member lookup). */
class JsonParseError : public std::runtime_error
{
  public:
    explicit JsonParseError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** One parsed value of the runner's JSON subset. */
struct JsonValue
{
    enum class Kind { Boolean, Number, String, Object, Array };

    Kind kind = Kind::Boolean;
    bool boolean = false;
    std::string number; ///< Raw text, e.g. "18446744073709551615".
    std::string str;
    std::map<std::string, JsonValue> object;
    std::vector<JsonValue> array;
};

/** Single-line (well, single-string) parser for the subset above. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    /** Parse the full string; throws JsonParseError on malformed input. */
    JsonValue parse();

  private:
    [[noreturn]] void fail(const std::string &why);
    void skipWs();
    char peek();
    void expect(char c);
    JsonValue parseValue();
    JsonValue parseObject();
    JsonValue parseArray();
    JsonValue parseString();
    JsonValue parseBoolean();
    JsonValue parseNumber();

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Escape @p raw for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string &raw);

/** Member lookup; throws JsonParseError when @p name is absent. */
const JsonValue &jsonMember(const JsonValue &object, const char *name);

} // namespace dgsim::runner

#endif // DGSIM_RUNNER_JSON_HH
