#include "runner/sweep.hh"

#include "common/log.hh"
#include "fuzz/synth.hh"
#include "sim/simulator.hh"

namespace dgsim::runner
{

SweepSpec
SweepSpec::evaluationMatrix(const SimConfig &base)
{
    SweepSpec spec;
    spec.workloads = workloads::evaluationSuite();
    spec.configs = evaluationConfigs(base);
    return spec;
}

std::vector<Job>
SweepSpec::expand() const
{
    std::vector<Job> jobs;
    jobs.reserve(jobCount());
    if (fuzzCount != 0) {
        DGSIM_ASSERT(!configs.empty(),
                     "fuzz sweep needs the oracle base config");
        for (std::uint64_t key = 0; key < fuzzCount; ++key) {
            Job job;
            job.index = jobs.size();
            job.workload = fuzz::candidateName(key);
            job.suite = "fuzz";
            job.config = configs.front();
            job.kind = JobKind::FuzzCandidate;
            job.fuzzKey = key;
            job.fuzzSeed = fuzzSeed;
            jobs.push_back(std::move(job));
        }
        return jobs;
    }
    for (const workloads::WorkloadDef &workload : workloads) {
        const auto program =
            std::make_shared<const Program>(workload.build(iterations));
        for (const SimConfig &config : configs) {
            Job job;
            job.index = jobs.size();
            job.workload = workload.name;
            job.suite = workload.suite;
            job.program = program;
            job.config = config;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

} // namespace dgsim::runner
