#include "runner/sweep.hh"

#include "sim/simulator.hh"

namespace dgsim::runner
{

SweepSpec
SweepSpec::evaluationMatrix(const SimConfig &base)
{
    SweepSpec spec;
    spec.workloads = workloads::evaluationSuite();
    spec.configs = evaluationConfigs(base);
    return spec;
}

std::vector<Job>
SweepSpec::expand() const
{
    std::vector<Job> jobs;
    jobs.reserve(jobCount());
    for (const workloads::WorkloadDef &workload : workloads) {
        const auto program =
            std::make_shared<const Program>(workload.build(iterations));
        for (const SimConfig &config : configs) {
            Job job;
            job.index = jobs.size();
            job.workload = workload.name;
            job.suite = workload.suite;
            job.program = program;
            job.config = config;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

} // namespace dgsim::runner
