#include "runner/campaign.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "fuzz/oracle.hh"
#include "runner/json.hh"
#include "workloads/suite.hh"

namespace dgsim::runner
{
namespace
{

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : text) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> parts;
    std::stringstream ss(text);
    std::string part;
    while (std::getline(ss, part, ','))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

std::string
joinCommas(const std::vector<std::string> &parts)
{
    std::string out;
    for (const std::string &part : parts) {
        if (!out.empty())
            out += ',';
        out += part;
    }
    return out;
}

/** %.17g: shortest text strtod restores bit-exactly (rates are finite). */
std::string
doubleText(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::uint64_t
memberU64(const JsonValue &object, const char *name)
{
    const std::string &text = jsonMember(object, name).number;
    errno = 0;
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || *end != '\0' || errno == ERANGE)
        throw CampaignError(std::string("manifest: bad integer for ") +
                            name + ": '" + text + "'");
    return value;
}

double
memberDouble(const JsonValue &object, const char *name)
{
    const std::string &text = jsonMember(object, name).number;
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || *end != '\0')
        throw CampaignError(std::string("manifest: bad number for ") +
                            name + ": '" + text + "'");
    return value;
}

} // namespace

unsigned
shardOf(const std::string &key, unsigned shards)
{
    if (shards == 0)
        throw CampaignError("shard count must be positive");
    return static_cast<unsigned>(fnv1a(key) % shards);
}

std::string
schemeToken(Scheme scheme)
{
    switch (scheme) {
      case Scheme::Unsafe:
        return "unsafe";
      case Scheme::NdaP:
        return "nda-p";
      case Scheme::Stt:
        return "stt";
      case Scheme::Dom:
        return "dom";
    }
    throw CampaignError("unknown scheme enum value");
}

Scheme
schemeFromToken(const std::string &token)
{
    if (token == "unsafe")
        return Scheme::Unsafe;
    if (token == "nda-p")
        return Scheme::NdaP;
    if (token == "stt")
        return Scheme::Stt;
    if (token == "dom")
        return Scheme::Dom;
    throw CampaignError("manifest: unknown scheme '" + token + "'");
}

SimConfig
campaignBaseConfig(std::uint64_t instructions, std::uint64_t ffwdInstructions,
                   std::uint64_t sampleInterval, std::uint64_t sampleDetail)
{
    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 200;
    base.warmupInstructions = instructions / 3;
    base.ffwdInstructions = ffwdInstructions;
    base.sampleInterval = sampleInterval;
    base.sampleDetail = sampleDetail;
    if (base.ffwdInstructions != 0 || base.sampleInterval != 0) {
        // Functional warming replaces the warmup prefix: the detailed
        // window starts measured from its first committed instruction.
        base.warmupInstructions = 0;
    }
    return base;
}

SweepSpec
manifestSpec(const CampaignManifest &manifest)
{
    if (manifest.fuzzCount != 0) {
        // Fuzzing campaign: the oracle's run budget is centralized in
        // fuzz::oracleBaseConfig() so a campaign worker's job keys are
        // byte-identical to a single-process `dgrun --fuzz` of the
        // same (count, seed).
        SweepSpec spec;
        SimConfig base = fuzz::oracleBaseConfig();
        base.jobTimeoutMs = manifest.jobTimeoutSec * 1000;
        spec.configs = {base};
        spec.fuzzCount = manifest.fuzzCount;
        spec.fuzzSeed = manifest.fuzzSeed;
        return spec;
    }

    SimConfig base = campaignBaseConfig(
        manifest.instructions, manifest.ffwdInstructions,
        manifest.sampleInterval, manifest.sampleDetail);
    base.jobTimeoutMs = manifest.jobTimeoutSec * 1000;

    SweepSpec spec;
    if (manifest.suite.empty()) {
        for (const auto &workload : workloads::extendedSuite())
            if (manifest.tier == "all" || workload.tier == manifest.tier)
                spec.workloads.push_back(workload);
    } else {
        for (const std::string &name : splitCommas(manifest.suite))
            spec.workloads.push_back(workloads::findWorkload(name));
    }

    std::vector<bool> apModes;
    if (manifest.ap == "on")
        apModes = {true};
    else if (manifest.ap == "off")
        apModes = {false};
    else if (manifest.ap == "both")
        apModes = {false, true};
    else
        throw CampaignError("manifest: ap must be on, off or both, got '" +
                            manifest.ap + "'");

    const std::vector<std::string> schemeTokens =
        splitCommas(manifest.schemes);
    if (schemeTokens.empty())
        throw CampaignError("manifest: needs at least one scheme");
    for (const std::string &token : schemeTokens) {
        for (bool ap : apModes) {
            SimConfig config = base;
            config.scheme = schemeFromToken(token);
            config.addressPrediction = ap;
            spec.configs.push_back(config);
        }
    }
    return spec;
}

std::vector<Job>
filterShard(std::vector<Job> jobs, unsigned shard, unsigned shards)
{
    if (shard >= shards)
        throw CampaignError("shard index " + std::to_string(shard) +
                            " out of range for " + std::to_string(shards) +
                            " shards");
    std::vector<Job> mine;
    for (Job &job : jobs) {
        if (shardOf(jobKey(job), shards) != shard)
            continue;
        job.index = mine.size();
        mine.push_back(std::move(job));
    }
    return mine;
}

void
writeManifest(const std::string &path, const CampaignManifest &manifest)
{
    std::ofstream out(path);
    if (!out)
        throw CampaignError("cannot open manifest '" + path +
                            "' for writing");
    out << "{\"dgsim_campaign\":1"
        << ",\"name\":\"" << jsonEscape(manifest.name) << "\""
        << ",\"shards\":" << manifest.shards
        << ",\"jobs\":" << manifest.jobKeys.size()
        << ",\"suite\":\"" << jsonEscape(manifest.suite) << "\""
        << ",\"tier\":\"" << jsonEscape(manifest.tier) << "\""
        << ",\"schemes\":\"" << jsonEscape(manifest.schemes) << "\""
        << ",\"ap\":\"" << jsonEscape(manifest.ap) << "\""
        << ",\"instructions\":" << manifest.instructions
        << ",\"ffwd\":" << manifest.ffwdInstructions
        << ",\"sampleInterval\":" << manifest.sampleInterval
        << ",\"sampleDetail\":" << manifest.sampleDetail
        << ",\"fuzzCount\":" << manifest.fuzzCount
        << ",\"fuzzSeed\":" << manifest.fuzzSeed
        << ",\"retries\":" << manifest.retries
        << ",\"retryBaseMs\":" << manifest.retryBaseMs
        << ",\"jobTimeoutSec\":" << manifest.jobTimeoutSec
        << ",\"injectFailRate\":" << doubleText(manifest.injectFailRate)
        << ",\"injectFailSeed\":" << manifest.injectFailSeed
        << "}\n";
    for (const std::string &key : manifest.jobKeys)
        out << "{\"job\":\"" << jsonEscape(key) << "\",\"shard\":"
            << shardOf(key, manifest.shards) << "}\n";
    out.flush();
    if (!out)
        throw CampaignError("failed writing manifest '" + path + "'");
}

CampaignManifest
loadManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw CampaignError("cannot open manifest '" + path + "'");

    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);
    if (lines.empty())
        throw CampaignError("manifest '" + path + "' is empty");

    CampaignManifest manifest;
    std::uint64_t expectedJobs = 0;
    try {
        const JsonValue header = JsonParser(lines[0]).parse();
        if (memberU64(header, "dgsim_campaign") != 1)
            throw CampaignError("manifest '" + path +
                                "': unsupported version");
        manifest.name = jsonMember(header, "name").str;
        manifest.shards = static_cast<unsigned>(memberU64(header, "shards"));
        expectedJobs = memberU64(header, "jobs");
        manifest.suite = jsonMember(header, "suite").str;
        manifest.tier = jsonMember(header, "tier").str;
        manifest.schemes = jsonMember(header, "schemes").str;
        manifest.ap = jsonMember(header, "ap").str;
        manifest.instructions = memberU64(header, "instructions");
        manifest.ffwdInstructions = memberU64(header, "ffwd");
        manifest.sampleInterval = memberU64(header, "sampleInterval");
        manifest.sampleDetail = memberU64(header, "sampleDetail");
        manifest.fuzzCount = memberU64(header, "fuzzCount");
        manifest.fuzzSeed = memberU64(header, "fuzzSeed");
        manifest.retries =
            static_cast<unsigned>(memberU64(header, "retries"));
        manifest.retryBaseMs = memberU64(header, "retryBaseMs");
        manifest.jobTimeoutSec = memberU64(header, "jobTimeoutSec");
        manifest.injectFailRate = memberDouble(header, "injectFailRate");
        manifest.injectFailSeed = memberU64(header, "injectFailSeed");
    } catch (const JsonParseError &e) {
        throw CampaignError("manifest '" + path + "' header: " + e.what());
    }
    if (manifest.shards == 0)
        throw CampaignError("manifest '" + path + "': zero shards");

    manifest.jobKeys.reserve(lines.size() - 1);
    for (std::size_t i = 1; i < lines.size(); ++i) {
        try {
            const JsonValue record = JsonParser(lines[i]).parse();
            const std::string key = jsonMember(record, "job").str;
            const std::uint64_t shard = memberU64(record, "shard");
            if (shard != shardOf(key, manifest.shards))
                throw CampaignError(
                    "manifest '" + path + "' line " + std::to_string(i + 1) +
                    ": recorded shard " + std::to_string(shard) +
                    " disagrees with shardOf('" + key + "', " +
                    std::to_string(manifest.shards) + ")");
            manifest.jobKeys.push_back(key);
        } catch (const JsonParseError &e) {
            throw CampaignError("manifest '" + path + "' line " +
                                std::to_string(i + 1) + ": " + e.what());
        }
    }
    if (manifest.jobKeys.size() != expectedJobs)
        throw CampaignError(
            "manifest '" + path + "': header promises " +
            std::to_string(expectedJobs) + " jobs but " +
            std::to_string(manifest.jobKeys.size()) + " are listed");
    return manifest;
}

std::string
validateManifest(const CampaignManifest &manifest,
                 const std::vector<Job> &expanded)
{
    if (expanded.size() != manifest.jobKeys.size())
        return "sweep expands to " + std::to_string(expanded.size()) +
               " jobs but the manifest expects " +
               std::to_string(manifest.jobKeys.size());
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        const std::string key = jobKey(expanded[i]);
        if (key != manifest.jobKeys[i])
            return "job " + std::to_string(i) + " expands to key '" + key +
                   "' but the manifest expects '" + manifest.jobKeys[i] +
                   "' — the sweep spec drifted since --campaign-init";
    }
    return "";
}

JournalMap
mergeJournals(const std::vector<std::string> &paths)
{
    JournalMap merged;
    for (const std::string &path : paths)
        for (auto &entry : loadJournal(path))
            merged[entry.first] = std::move(entry.second); // Last wins.
    return merged;
}

std::vector<JobOutcome>
orderOutcomes(const JournalMap &merged, const std::vector<Job> &jobs)
{
    std::vector<JobOutcome> outcomes;
    outcomes.reserve(jobs.size());
    for (const Job &job : jobs) {
        const std::string key = jobKey(job);
        const auto it = merged.find(key);
        JobOutcome outcome;
        if (it != merged.end()) {
            outcome = it->second;
        } else {
            outcome.workload = job.workload;
            outcome.suite = job.suite;
            outcome.configLabel = job.config.label();
            outcome.ok = false;
            outcome.attempts = 0;
            outcome.error = "missing from merged journals (never completed)";
        }
        outcome.index = job.index; // Shard journals carry local indices.
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

std::string
workerJournalPath(const std::string &manifestPath, unsigned worker)
{
    return manifestPath + ".w" + std::to_string(worker) + ".journal";
}

std::string
claimsPath(const std::string &manifestPath)
{
    return manifestPath + ".claims";
}

} // namespace dgsim::runner
