/**
 * @file
 * Sharded campaign support: deterministic job partitioning, the
 * campaign manifest, and identity-keyed journal merging.
 *
 * The substrate is PR 4's content-hashed job identity (jobKey()): a
 * job's key is a pure function of what the job computes, never of its
 * position in the expansion or of the process that ran it. Sharding is
 * therefore a pure function too — shardOf(key, N) — so any two
 * invocations of the same sweep agree on shard membership regardless
 * of thread count, worker count or expansion order, and per-shard
 * journals merge back into the single-process result set by identity
 * alone.
 *
 * The manifest pins a campaign's ground truth: the sweep spec (in the
 * canonical dgrun vocabulary), the per-worker budgets/seed, the shard
 * count and the full expected job-key set in expansion order. Every
 * worker re-expands the spec and validates it against the manifest
 * before touching a journal, so two invocations with drifted specs
 * fail loudly instead of merging garbage.
 */

#ifndef DGSIM_RUNNER_CAMPAIGN_HH
#define DGSIM_RUNNER_CAMPAIGN_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "runner/journal.hh"
#include "runner/sweep.hh"

namespace dgsim::runner
{

/** Malformed, unreadable or mismatched campaign state. */
class CampaignError : public std::runtime_error
{
  public:
    explicit CampaignError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/**
 * The durable specification of one campaign: sweep spec + budgets +
 * seed + shard count + the expected job-key set, serialized as JSONL
 * (one header object, then one line per expected job). Written once by
 * `dgrun --campaign-init` and validated by every worker.
 */
struct CampaignManifest
{
    std::string name = "campaign";
    unsigned shards = 1;

    // --- Sweep spec (canonical dgrun vocabulary) ------------------------
    std::string suite;              ///< Comma-joined names; "" = by tier.
    std::string tier = "default";   ///< default | long | all.
    std::string schemes = "unsafe,nda-p,stt,dom";
    std::string ap = "both";        ///< on | off | both.
    std::uint64_t instructions = 100'000;
    std::uint64_t ffwdInstructions = 0;
    std::uint64_t sampleInterval = 0;
    std::uint64_t sampleDetail = 0;
    /** Nonzero = a fuzzing campaign of this many candidates (the
     * suite/scheme/instruction fields above are ignored; the oracle's
     * run budget is fuzz::oracleBaseConfig()). */
    std::uint64_t fuzzCount = 0;
    std::uint64_t fuzzSeed = 1;

    // --- Budgets and seed shared by every worker ------------------------
    unsigned retries = 2;
    std::uint64_t retryBaseMs = 100;
    std::uint64_t jobTimeoutSec = 0;
    double injectFailRate = 0.0;
    std::uint64_t injectFailSeed = 0;

    /** Expected job keys, in expansion order. */
    std::vector<std::string> jobKeys;
};

/**
 * Which of @p shards a job belongs to: FNV-1a of the content-derived
 * key, mod N. Pure function of job identity — two processes expanding
 * the same sweep always agree, and shards are disjoint and covering by
 * construction.
 */
unsigned shardOf(const std::string &key, unsigned shards);

/** Canonical CLI token of a scheme ("unsafe", "nda-p", "stt", "dom"). */
std::string schemeToken(Scheme scheme);

/** Inverse of schemeToken(); throws CampaignError on unknown names. */
Scheme schemeFromToken(const std::string &token);

/**
 * The base SimConfig a campaign run control implies — the exact
 * derivation dgrun's normal path uses (cycle budget, warmup third,
 * warmup suppression under functional warming) so a campaign worker's
 * jobs are byte-identical to a single-process `dgrun` of the same
 * sweep.
 */
SimConfig campaignBaseConfig(std::uint64_t instructions,
                             std::uint64_t ffwdInstructions,
                             std::uint64_t sampleInterval,
                             std::uint64_t sampleDetail);

/** Rebuild the sweep a manifest pins. Throws CampaignError. */
SweepSpec manifestSpec(const CampaignManifest &manifest);

/**
 * Keep only @p shard of @p shards, re-indexed 0..n-1 (the runner
 * requires dense indices). Original expansion indices are recovered at
 * merge time by re-expanding and matching keys.
 */
std::vector<Job> filterShard(std::vector<Job> jobs, unsigned shard,
                             unsigned shards);

/** Serialize @p manifest to @p path. Throws CampaignError. */
void writeManifest(const std::string &path, const CampaignManifest &manifest);

/** Parse a manifest written by writeManifest(). Throws CampaignError. */
CampaignManifest loadManifest(const std::string &path);

/**
 * Check @p expanded against the manifest's expected key sequence.
 * Returns "" when they agree, else a human-readable description of the
 * first mismatch — the caller fails loudly with it.
 */
std::string validateManifest(const CampaignManifest &manifest,
                             const std::vector<Job> &expanded);

/**
 * Fold journals by job identity, in path order, last record per key
 * winning. Missing files load empty (a shard that never started is
 * just an empty contribution); corrupt interior lines stay fatal, as
 * in loadJournal().
 */
JournalMap mergeJournals(const std::vector<std::string> &paths);

/**
 * Arrange merged outcomes in @p jobs' expansion order, rewriting each
 * outcome's index to the full-sweep index (shard runs journal
 * shard-local indices). A job with no record yields a failed outcome
 * with attempts == 0 and a "missing" error, so an incomplete merge is
 * visible instead of silently short.
 */
std::vector<JobOutcome> orderOutcomes(const JournalMap &merged,
                                      const std::vector<Job> &jobs);

/** Per-worker journal path derived from the manifest path. */
std::string workerJournalPath(const std::string &manifestPath,
                              unsigned worker);

/** The campaign's shared append-only claims file. */
std::string claimsPath(const std::string &manifestPath);

} // namespace dgsim::runner

#endif // DGSIM_RUNNER_CAMPAIGN_HH
