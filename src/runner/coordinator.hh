/**
 * @file
 * Multi-process work-stealing campaign coordinator.
 *
 * `runCampaign` forks K worker processes over a validated campaign
 * manifest. Worker w first drains the remaining jobs of its own shards
 * ({ s : s mod K == w }), then steals unclaimed jobs from the slowest
 * shard (the one with the most jobs still outstanding) until nothing
 * unclaimed remains. All coordination flows through two append-only
 * artifacts:
 *
 *  - per-worker completion journals (the PR 4 format, one per worker
 *    process, merged by job identity afterwards), and
 *  - a shared claims file, one JSON line per execution attempt,
 *    appended with a single O_APPEND write(2) so concurrent claims
 *    never interleave.
 *
 * Claims are advisory, not locks: a claim races with another worker's
 * claim at worst into a duplicate execution, which the identity-keyed
 * merge makes harmless (the same job produces byte-identical results
 * by construction — at-least-once semantics, idempotent merge). A
 * worker that dies leaves claimed-but-unjournaled jobs behind; the
 * coordinator notices the incomplete merge (or the abnormal exit),
 * rotates the claims file and re-forks workers for another pass, which
 * resumes from the journals and re-runs only the missing jobs. The
 * merged result set is therefore byte-identical (under
 * --no-host-metrics) to an uninterrupted single-process run of the
 * same sweep, no matter which workers died along the way.
 */

#ifndef DGSIM_RUNNER_COORDINATOR_HH
#define DGSIM_RUNNER_COORDINATOR_HH

#include <functional>
#include <string>
#include <vector>

#include "runner/campaign.hh"
#include "runner/sweep.hh"

namespace dgsim::runner
{

/** Knobs of one runCampaign() invocation. */
struct CoordinatorOptions
{
    /** Worker process count; 0 = the manifest's shard count. */
    unsigned workers = 0;

    /** Pass/merge status lines on stderr. */
    bool progress = true;

    /** Parent-side heartbeat period in seconds (0 = off): counts
        journaled completions across all workers while they run. */
    double heartbeatSec = 0.0;

    /** fsync worker journals after every record. */
    bool journalSync = false;

    /**
     * Recovery passes: after all workers exit, any job with no journal
     * record (a dead worker's in-flight claims) triggers a fresh pass
     * — claims rotated, workers re-forked, journals resumed — up to
     * this many passes total.
     */
    unsigned maxPasses = 3;

    /** Test override for job execution (inherited across fork). */
    std::function<SimResult(const Job &)> execute;

    // --- Deterministic worker-death injection (tests / CI) --------------
    /** Worker index that kills itself (-1 = none)... */
    int killWorker = -1;
    /** ...after completing this many jobs — dying with a job claimed
        but not journaled, the nastiest point. */
    std::size_t killAfterJobs = 0;
    /** Marker file making the kill once-only: the worker dies only if
        the file does not exist yet, and creates it as it dies. */
    std::string killOnceMarker;
};

/** What one campaign invocation did. */
struct CampaignReport
{
    /** Merged outcomes in full-sweep expansion order. */
    std::vector<JobOutcome> outcomes;

    std::size_t total = 0;      ///< Expected jobs.
    std::size_t ok = 0;         ///< Jobs with a successful record.
    std::size_t failed = 0;     ///< Jobs with a final failure record.
    std::size_t missing = 0;    ///< Jobs with no record at all.
    std::size_t stolen = 0;     ///< Executions by a non-owner worker.
    std::size_t duplicates = 0; ///< Keys claimed more than once.
    unsigned passes = 0;
    unsigned workerDeaths = 0;  ///< Abnormal worker exits observed.
    bool drained = false;       ///< SIGINT/SIGTERM stopped the campaign.
    double seconds = 0.0;
};

/**
 * Run @p manifest (loaded from @p manifestPath, which also anchors the
 * per-worker journal and claims paths) with forked worker processes.
 * Throws CampaignError when the manifest does not match its own
 * re-expanded sweep. Worker journals persist across invocations:
 * re-running an incomplete campaign resumes it.
 */
CampaignReport runCampaign(const std::string &manifestPath,
                           const CampaignManifest &manifest,
                           const CoordinatorOptions &options);

} // namespace dgsim::runner

#endif // DGSIM_RUNNER_COORDINATOR_HH
