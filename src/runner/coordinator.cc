#include "runner/coordinator.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/log.hh"
#include "common/signals.hh"
#include "runner/experiment_runner.hh"
#include "runner/json.hh"
#include "telemetry/telemetry.hh"

namespace dgsim::runner
{
namespace
{

/** One execution claim: appended before a worker starts a job. */
struct Claim
{
    std::string key;
    unsigned shard = 0;
    unsigned worker = 0;
};

/**
 * Append-only claims writer. Each claim is one short JSON line written
 * with a single O_APPEND write(2): atomic for writes below PIPE_BUF
 * (claims are ~100 bytes), so concurrent workers never interleave.
 */
class ClaimsAppender
{
  public:
    explicit ClaimsAppender(const std::string &path)
        : fd_(::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644))
    {
        if (fd_ < 0)
            DGSIM_FATAL("cannot open claims file '" + path + "': " +
                        std::strerror(errno));
    }

    ~ClaimsAppender()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    append(const std::string &key, unsigned shard, unsigned worker)
    {
        const std::string line = "{\"key\":\"" + jsonEscape(key) +
                                 "\",\"shard\":" + std::to_string(shard) +
                                 ",\"worker\":" + std::to_string(worker) +
                                 "}\n";
        ssize_t written = 0;
        while (written < static_cast<ssize_t>(line.size())) {
            const ssize_t n = ::write(fd_, line.data() + written,
                                      line.size() - written);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                DGSIM_FATAL("claims append failed: " +
                            std::string(std::strerror(errno)));
            }
            written += n;
        }
    }

  private:
    int fd_;
};

/** Parse the claims file; tolerates a truncated final line. */
std::vector<Claim>
loadClaims(const std::string &path)
{
    std::ifstream in(path);
    std::vector<Claim> claims;
    if (!in)
        return claims;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        try {
            const JsonValue record = JsonParser(line).parse();
            Claim claim;
            claim.key = jsonMember(record, "key").str;
            claim.shard = static_cast<unsigned>(
                std::stoul(jsonMember(record, "shard").number));
            claim.worker = static_cast<unsigned>(
                std::stoul(jsonMember(record, "worker").number));
            claims.push_back(std::move(claim));
        } catch (const JsonParseError &) {
            // A claim cut short by a kill: ignore — claims are advisory.
            continue;
        }
    }
    return claims;
}

std::vector<std::string>
allWorkerJournals(const std::string &manifestPath, unsigned workers)
{
    std::vector<std::string> paths;
    paths.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        paths.push_back(workerJournalPath(manifestPath, w));
    return paths;
}

/** Keys with any journal record (ok or final failure): settled work. */
std::unordered_set<std::string>
settledKeys(const std::vector<std::string> &journalPaths)
{
    std::unordered_set<std::string> settled;
    for (const auto &entry : mergeJournals(journalPaths))
        settled.insert(entry.first);
    return settled;
}

/** The per-job state one worker pass operates on. */
struct WorkerContext
{
    const CampaignManifest *manifest = nullptr;
    std::string manifestPath;
    unsigned worker = 0;
    unsigned workers = 1;
    const CoordinatorOptions *options = nullptr;

    std::vector<Job> jobs;           ///< Full expansion, original indices.
    std::vector<std::string> keys;   ///< keys[i] = jobKey(jobs[i]).
    std::vector<unsigned> shards;    ///< shards[i] = shardOf(keys[i]).
};

/** RunnerOptions a worker derives from the manifest budgets. */
RunnerOptions
workerRunnerOptions(const WorkerContext &ctx)
{
    RunnerOptions options;
    options.threads = 1;
    options.progress = false;
    options.maxAttempts = ctx.manifest->retries + 1;
    options.backoff.baseMs = ctx.manifest->retryBaseMs;
    options.injectFailRate = ctx.manifest->injectFailRate;
    options.injectFailSeed = ctx.manifest->injectFailSeed;
    options.execute = ctx.options->execute;
    options.cancel = &drainFlag();
    return options;
}

/**
 * Execute jobs[i]: claim, honor the death injection, run with the
 * manifest's retry budget, journal the final outcome.
 */
void
runClaimedJob(const WorkerContext &ctx, std::size_t i,
              ClaimsAppender &claims, JournalWriter &journal,
              const RunnerOptions &ropts, std::size_t &completed)
{
    // A "steal" span wraps jobs this worker takes from another shard;
    // the nested "job" span (emitted by the runner) carries the timing.
    const bool stolen = ctx.shards[i] % ctx.workers != ctx.worker;
    telemetry::ScopedSpan steal(stolen ? "steal" : nullptr, "phase");
    if (stolen) {
        steal.arg("key", ctx.keys[i]);
        steal.arg("shard", std::uint64_t{ctx.shards[i]});
    }

    claims.append(ctx.keys[i], ctx.shards[i], ctx.worker);

    // Death injection lands after the claim and before the journal
    // record — the worst possible moment, exactly what a real SIGKILL
    // mid-job produces.
    if (ctx.options->killWorker >= 0 &&
        static_cast<unsigned>(ctx.options->killWorker) == ctx.worker &&
        completed == ctx.options->killAfterJobs) {
        struct ::stat st;
        if (ctx.options->killOnceMarker.empty() ||
            ::stat(ctx.options->killOnceMarker.c_str(), &st) != 0) {
            if (!ctx.options->killOnceMarker.empty()) {
                const int fd = ::open(ctx.options->killOnceMarker.c_str(),
                                      O_WRONLY | O_CREAT, 0644);
                if (fd >= 0)
                    ::close(fd);
            }
            _exit(9);
        }
    }

    const JobOutcome outcome = runSingleJob(ctx.jobs[i], ctx.keys[i], ropts);
    {
        telemetry::ScopedSpan append("journal-append", "phase");
        journal.record(ctx.keys[i], outcome);
    }
    ++completed;
}

/**
 * The body of one forked worker process. Returns its exit status:
 * 0 = clean (its view of the campaign is drained of unclaimed work),
 * 130 = drain signal, 3 = manifest validation failure.
 */
int
workerMain(WorkerContext ctx)
{
    // Redirect spans to this worker's own part file before anything
    // else; the "worker" span then covers the whole pass and closes on
    // a clean return (the _exit(workerMain(...)) call site evaluates
    // us fully). Only a kill loses it — which the report flags.
    telemetry::reopenForWorker(ctx.worker);
    telemetry::ScopedSpan span("worker", "worker");
    span.arg("worker", std::uint64_t{ctx.worker});

    const std::string err = validateManifest(*ctx.manifest, ctx.jobs);
    if (!err.empty()) {
        std::fprintf(stderr, "[campaign] worker %u: manifest mismatch: %s\n",
                     ctx.worker, err.c_str());
        return 3;
    }

    const std::vector<std::string> journalPaths =
        allWorkerJournals(ctx.manifestPath, ctx.workers);
    ClaimsAppender claims(claimsPath(ctx.manifestPath));
    JournalWriter journal(workerJournalPath(ctx.manifestPath, ctx.worker),
                          /*host_metrics=*/true, ctx.options->journalSync);
    const RunnerOptions ropts = workerRunnerOptions(ctx);

    std::size_t completed = 0;

    // Phase 1: drain this worker's own shards in expansion order.
    // Settled work (any journal record, ok or failed) is final; a
    // failure re-run here would grant more attempts than a single-
    // process run and break byte-identity. Claims by other workers
    // (thieves, or a previous incarnation's survivors) are skipped.
    std::unordered_set<std::string> settled =
        settledKeys(journalPaths);
    for (std::size_t i = 0; i < ctx.jobs.size(); ++i) {
        if (ctx.shards[i] % ctx.workers != ctx.worker)
            continue;
        if (settled.count(ctx.keys[i]))
            continue;
        if (drainRequested())
            return 130;
        bool claimedElsewhere = false;
        for (const Claim &claim : loadClaims(claimsPath(ctx.manifestPath)))
            if (claim.key == ctx.keys[i] && claim.worker != ctx.worker) {
                claimedElsewhere = true;
                break;
            }
        if (claimedElsewhere)
            continue;
        runClaimedJob(ctx, i, claims, journal, ropts, completed);
    }

    // Phase 2: steal. Refresh the global picture, find the slowest
    // shard (most jobs outstanding), take its first unclaimed job.
    // Exit when nothing unclaimed remains — jobs still in flight on
    // live workers will be finished by their claimants, and a dead
    // worker's claims surface as missing records for the coordinator.
    for (;;) {
        if (drainRequested())
            return 130;
        settled = settledKeys(journalPaths);
        std::unordered_set<std::string> claimed;
        for (const Claim &claim :
             loadClaims(claimsPath(ctx.manifestPath)))
            claimed.insert(claim.key);

        std::map<unsigned, std::vector<std::size_t>> outstanding;
        for (std::size_t i = 0; i < ctx.jobs.size(); ++i)
            if (!settled.count(ctx.keys[i]) &&
                !claimed.count(ctx.keys[i]))
                outstanding[ctx.shards[i]].push_back(i);
        if (outstanding.empty())
            break;
        auto slowest = outstanding.begin();
        for (auto it = outstanding.begin(); it != outstanding.end(); ++it)
            if (it->second.size() > slowest->second.size())
                slowest = it;
        runClaimedJob(ctx, slowest->second.front(), claims, journal, ropts,
                      completed);
    }
    return 0;
}

} // namespace

CampaignReport
runCampaign(const std::string &manifestPath,
            const CampaignManifest &manifest,
            const CoordinatorOptions &options)
{
    const auto start = std::chrono::steady_clock::now();

    WorkerContext ctx;
    ctx.manifest = &manifest;
    ctx.manifestPath = manifestPath;
    ctx.workers = options.workers != 0 ? options.workers : manifest.shards;
    ctx.options = &options;

    const SweepSpec spec = manifestSpec(manifest);
    {
        telemetry::ScopedSpan span("expand", "phase");
        ctx.jobs = spec.expand();
    }
    const std::string err = validateManifest(manifest, ctx.jobs);
    if (!err.empty())
        throw CampaignError("manifest '" + manifestPath +
                            "' does not match its sweep: " + err);
    ctx.keys.reserve(ctx.jobs.size());
    ctx.shards.reserve(ctx.jobs.size());
    for (const Job &job : ctx.jobs) {
        ctx.keys.push_back(jobKey(job));
        ctx.shards.push_back(shardOf(ctx.keys.back(), manifest.shards));
    }

    const std::vector<std::string> journalPaths =
        allWorkerJournals(manifestPath, ctx.workers);
    const std::string claims = claimsPath(manifestPath);

    CampaignReport report;
    report.total = ctx.jobs.size();

    telemetry::setWorkerCount(ctx.workers);

    JournalMap merged;
    for (unsigned pass = 1; pass <= options.maxPasses; ++pass) {
        report.passes = pass;

        // Pass 1 is the campaign proper; later passes exist only to
        // recover work lost to dead workers.
        telemetry::ScopedSpan passSpan("pass",
                                       pass == 1 ? "campaign" : "recovery");
        passSpan.arg("pass", std::uint64_t{pass});

        // Rotate the claims file: claims only dedupe within one pass.
        // (A dead worker's stale claims must not block its jobs.)
        ::unlink(claims.c_str());

        if (options.progress)
            std::fprintf(stderr,
                         "[campaign] pass %u: forking %u worker(s) over "
                         "%u shard(s), %zu job(s)\n",
                         pass, ctx.workers, manifest.shards,
                         ctx.jobs.size());

        // Flush stdio before forking so buffered output is not emitted
        // twice (once per process image).
        std::fflush(stdout);
        std::fflush(stderr);

        std::vector<pid_t> pids;
        pids.reserve(ctx.workers);
        for (unsigned w = 0; w < ctx.workers; ++w) {
            const pid_t pid = ::fork();
            if (pid < 0) {
                for (pid_t p : pids)
                    ::kill(p, SIGTERM);
                throw CampaignError("fork failed: " +
                                    std::string(std::strerror(errno)));
            }
            if (pid == 0) {
                WorkerContext mine = ctx;
                mine.worker = w;
                // _exit: a forked worker must not run the parent's
                // atexit/static-destructor machinery.
                _exit(workerMain(std::move(mine)));
            }
            pids.push_back(pid);
        }

        // Reap workers, emitting the parent-side heartbeat meanwhile.
        unsigned deathsThisPass = 0;
        bool drainedWorker = false;
        auto lastBeat = std::chrono::steady_clock::now();
        auto lastGauges = lastBeat;
        std::vector<bool> reaped(pids.size(), false);
        std::size_t alive = pids.size();
        while (alive > 0) {
            bool progressed = false;
            for (std::size_t i = 0; i < pids.size(); ++i) {
                if (reaped[i])
                    continue;
                int status = 0;
                const pid_t p = ::waitpid(pids[i], &status, WNOHANG);
                if (p == 0)
                    continue;
                reaped[i] = true;
                --alive;
                progressed = true;
                if (p < 0)
                    continue;
                if (WIFSIGNALED(status)) {
                    ++deathsThisPass;
                } else if (WIFEXITED(status)) {
                    const int code = WEXITSTATUS(status);
                    if (code == 130)
                        drainedWorker = true;
                    else if (code == 3)
                        throw CampaignError(
                            "worker " + std::to_string(i) +
                            " rejected manifest '" + manifestPath + "'");
                    else if (code != 0)
                        ++deathsThisPass;
                }
            }
            if (alive == 0)
                break;
            // A short poll keeps the tail latency after the last worker
            // exits small relative to the campaign span — the trace's
            // coverage figure is measured against that span.
            if (!progressed)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            const auto now = std::chrono::steady_clock::now();
            const bool beatDue =
                options.heartbeatSec > 0.0 &&
                std::chrono::duration<double>(now - lastBeat).count() >=
                    options.heartbeatSec;
            // Campaign gauges refresh on their own clock so metrics
            // stay live even when the heartbeat is off or slow.
            const bool gaugesDue =
                telemetry::enabled() &&
                std::chrono::duration<double>(now - lastGauges).count() >=
                    std::min(options.heartbeatSec > 0.0
                                 ? options.heartbeatSec
                                 : 2.0,
                             2.0);
            if (beatDue || gaugesDue) {
                if (beatDue)
                    lastBeat = now;
                lastGauges = now;
                // The richer probe: journals give done/failed/retried,
                // claims give steals. Both loaders tolerate the torn
                // final line a live writer can leave behind.
                const JournalMap probe = mergeJournals(journalPaths);
                std::size_t done = 0, failed = 0, retries = 0;
                for (const auto &entry : probe) {
                    ++done;
                    failed += !entry.second.ok;
                    retries += entry.second.attempts > 1;
                }
                std::size_t stolen = 0;
                for (const Claim &claim : loadClaims(claims))
                    stolen += claim.shard % ctx.workers != claim.worker;
                const double elapsed =
                    std::chrono::duration<double>(now - start).count();
                const double rate = elapsed > 0.0 ? done / elapsed : 0.0;
                const double eta =
                    rate > 0.0 ? (report.total - std::min(done, report.total)) /
                                     rate
                               : 0.0;
                if (telemetry::enabled()) {
                    telemetry::metricSet("dgsim_campaign_jobs_done",
                                         static_cast<double>(done));
                    telemetry::metricSet("dgsim_campaign_jobs_failed",
                                         static_cast<double>(failed));
                    telemetry::metricSet("dgsim_campaign_jobs_retried",
                                         static_cast<double>(retries));
                    telemetry::metricSet("dgsim_campaign_jobs_stolen",
                                         static_cast<double>(stolen));
                    telemetry::metricSet("dgsim_campaign_workers_alive",
                                         static_cast<double>(alive));
                    std::map<unsigned, std::size_t> outstanding;
                    for (std::size_t i = 0; i < ctx.keys.size(); ++i)
                        if (probe.find(ctx.keys[i]) == probe.end())
                            ++outstanding[ctx.shards[i]];
                    for (const auto &entry : outstanding)
                        telemetry::metricSet(
                            "dgsim_shard_outstanding{shard=\"" +
                                std::to_string(entry.first) + "\"}",
                            static_cast<double>(entry.second));
                }
                if (beatDue) {
                    // Still one wholly formatted line, one fwrite: the
                    // single-writer contract the runner heartbeat keeps.
                    char line[200];
                    const int len = std::snprintf(
                        line, sizeof(line),
                        "[campaign] heartbeat %zu/%zu jobs, "
                        "%.2f jobs/s, ETA %.0fs, %zu stolen, "
                        "%zu retried, %u worker(s) alive\n",
                        std::min(done, report.total), report.total, rate,
                        eta, stolen, retries,
                        static_cast<unsigned>(alive));
                    if (len > 0)
                        std::fwrite(line, 1,
                                    static_cast<std::size_t>(len), stderr);
                }
            }
        }

        report.workerDeaths += deathsThisPass;
        report.drained = report.drained || drainedWorker ||
                         drainRequested();

        // Account claims before the next pass rotates them away.
        std::unordered_map<std::string, unsigned> claimCounts;
        for (const Claim &claim : loadClaims(claims)) {
            ++claimCounts[claim.key];
            if (claim.shard % ctx.workers != claim.worker)
                ++report.stolen;
        }
        for (const auto &entry : claimCounts)
            report.duplicates += entry.second > 1;

        merged = mergeJournals(journalPaths);
        std::size_t missing = 0;
        for (const std::string &key : ctx.keys)
            missing += merged.find(key) == merged.end();

        if (options.progress)
            std::fprintf(stderr,
                         "[campaign] pass %u: %zu/%zu job(s) journaled, "
                         "%u abnormal worker exit(s)\n",
                         pass, report.total - missing, report.total,
                         deathsThisPass);

        if (missing == 0 || report.drained)
            break;
        if (pass == options.maxPasses && options.progress)
            std::fprintf(stderr,
                         "[campaign] %zu job(s) still missing after %u "
                         "pass(es); re-run --campaign to resume\n",
                         missing, pass);
    }

    report.outcomes = orderOutcomes(merged, ctx.jobs);
    for (const JobOutcome &outcome : report.outcomes) {
        if (outcome.ok)
            ++report.ok;
        else if (outcome.attempts == 0)
            ++report.missing;
        else
            ++report.failed;
    }
    report.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    if (telemetry::enabled()) {
        // Final gauge values: campaigns shorter than the in-flight
        // refresh period would otherwise snapshot all-zero gauges.
        std::size_t retries = 0;
        for (const JobOutcome &outcome : report.outcomes)
            retries += outcome.attempts > 1;
        telemetry::metricSet("dgsim_campaign_jobs_done",
                             static_cast<double>(report.ok +
                                                 report.failed));
        telemetry::metricSet("dgsim_campaign_jobs_failed",
                             static_cast<double>(report.failed));
        telemetry::metricSet("dgsim_campaign_jobs_retried",
                             static_cast<double>(retries));
        telemetry::metricSet("dgsim_campaign_jobs_stolen",
                             static_cast<double>(report.stolen));
        telemetry::metricSet("dgsim_campaign_workers_alive", 0.0);
        telemetry::metricSet("dgsim_campaign_worker_deaths",
                             static_cast<double>(report.workerDeaths));
        telemetry::metricSet("dgsim_campaign_passes",
                             static_cast<double>(report.passes));
    }
    return report;
}

} // namespace dgsim::runner
