/**
 * @file
 * Append-only completion journal: the crash-tolerance substrate of the
 * experiment runner.
 *
 * As each job reaches a final outcome (success, deterministic error or
 * exhausted retries) one JSONL record is appended and flushed, in
 * *completion* order — a kill loses at most the line being written.
 * Each record is the exact toJsonLine() serialization of the outcome
 * prefixed with two wrapper fields:
 *
 *   {"key":"<stable job key>","attempts":N, ...outcome fields...}
 *
 * The key is content-derived (suite/workload/config label + run-control
 * budgets hashed in), so a journal survives re-expansion: a resumed
 * sweep matches jobs by key, never by index, and a journal recorded
 * with `--threads 16` resumes correctly under `--threads 1`.
 *
 * Resume semantics: jobs whose journaled outcome is ok are restored
 * without re-execution; journaled *failures* are attempted again (a
 * deterministic error just reproduces, which keeps merged output
 * byte-identical to an uninterrupted run; a transient one gets the
 * fresh chance the user asked for by resuming).
 */

#ifndef DGSIM_RUNNER_JOURNAL_HH
#define DGSIM_RUNNER_JOURNAL_HH

#include <fstream>
#include <map>
#include <mutex>
#include <string>

#include "runner/sweep.hh"

namespace dgsim::runner
{

/** Outcomes from a prior run's journal, keyed by jobKey(). */
using JournalMap = std::map<std::string, JobOutcome>;

/**
 * Stable identity of one job: workload and config label plus a 64-bit
 * FNV-1a hash of the fields that change what the job computes (suite,
 * workload, config label, instruction/cycle budgets, warmup). Two jobs
 * with the same key produce byte-identical results by construction.
 */
std::string jobKey(const Job &job);

/** Thread-safe append-only journal writer (one flushed line per job). */
class JournalWriter
{
  public:
    /**
     * Open @p path for appending; fatal when unwritable. Journal lines
     * carry host metrics iff @p host_metrics — they are restored on
     * resume for reporting, and never byte-compared across runs. With
     * @p sync every record is additionally fsync'd: a flushed-but-
     * unsynced record survives a process kill but not a power loss,
     * and long campaigns may want the stronger guarantee.
     */
    JournalWriter(const std::string &path, bool host_metrics = true,
                  bool sync = false);

    ~JournalWriter();

    /** Append one completed outcome under @p key (thread-safe). */
    void record(const std::string &key, const JobOutcome &outcome);

    const std::string &path() const { return path_; }

  private:
    std::string path_;
    bool host_metrics_;
    std::mutex mutex_;
    std::ofstream out_;
    int syncFd_ = -1; ///< Secondary fd for fsync; -1 when sync is off.
};

/**
 * Load a journal written by JournalWriter. A malformed *final* line is
 * dropped with a warning (the expected artifact of a killed process);
 * a malformed interior line is fatal — that is corruption, not a
 * crash. A missing file yields an empty map (the sweep died before
 * completing anything). Duplicate keys keep the last record.
 */
JournalMap loadJournal(const std::string &path);

} // namespace dgsim::runner

#endif // DGSIM_RUNNER_JOURNAL_HH
