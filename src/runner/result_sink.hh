/**
 * @file
 * Pluggable serialization sinks for experiment results.
 *
 * Sinks receive outcomes in deterministic job-index order, so the files
 * they produce are byte-identical regardless of the thread count that
 * executed the sweep. Matching readers are provided so downstream
 * tooling (and the round-trip tests) can load sink output back into
 * JobOutcome records without an external parser dependency.
 */

#ifndef DGSIM_RUNNER_RESULT_SINK_HH
#define DGSIM_RUNNER_RESULT_SINK_HH

#include <istream>
#include <ostream>
#include <vector>

#include "runner/json.hh"
#include "runner/sweep.hh"

namespace dgsim::runner
{

/** Consumer of a sweep's outcomes, fed in job-index order. */
class ResultSink
{
  public:
    virtual ~ResultSink() = default;

    /** Accept the next outcome (called sequentially, index order). */
    virtual void consume(const JobOutcome &outcome) = 0;

    /** Flush; called once after the last outcome. */
    virtual void finish() {}
};

/**
 * One JSON object per line: job metadata, every SimResult scalar, and
 * the full raw counters map as a nested object.
 *
 * With @p host_metrics the line additionally carries a nested "host"
 * object (wall-clock seconds, KIPS, trace/watchdog metadata). Host
 * metrics differ from run to run by construction, so they default to
 * off and MUST stay off wherever sink output is byte-compared for
 * determinism (`dgrun --verify`, the runner round-trip tests).
 */
class JsonlSink : public ResultSink
{
  public:
    explicit JsonlSink(std::ostream &os, bool host_metrics = false)
        : os_(os), host_metrics_(host_metrics)
    {
    }

    void consume(const JobOutcome &outcome) override;

  private:
    std::ostream &os_;
    bool host_metrics_;
};

/**
 * RFC-4180-style CSV. The counter columns are the sorted union of every
 * row's counter names ("counter:<name>"), so rows are buffered and the
 * file is written in finish(). A counter absent from a row serializes
 * as an empty cell, distinguishing "never registered" from zero.
 */
class CsvSink : public ResultSink
{
  public:
    explicit CsvSink(std::ostream &os) : os_(os) {}

    void consume(const JobOutcome &outcome) override;
    void finish() override;

  private:
    std::ostream &os_;
    std::vector<JobOutcome> rows_;
};

/** Serialize one outcome as a single JSON line (no trailing newline). */
std::string toJsonLine(const JobOutcome &outcome, bool host_metrics = false);

/**
 * Rebuild a JobOutcome from a parsed toJsonLine() record. Extra members
 * (the journal's "key"/"attempts" wrapper fields) are ignored; missing
 * ones raise JsonParseError. Malformed numerics are fatal.
 */
JobOutcome outcomeFromJson(const JsonValue &record);

/** Parse everything a JsonlSink wrote. Fatal on malformed input. */
std::vector<JobOutcome> readJsonl(std::istream &is);

/** Parse everything a CsvSink wrote. Fatal on malformed input. */
std::vector<JobOutcome> readCsv(std::istream &is);

} // namespace dgsim::runner

#endif // DGSIM_RUNNER_RESULT_SINK_HH
