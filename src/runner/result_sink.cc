#include "runner/result_sink.hh"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "common/log.hh"

namespace dgsim::runner
{
namespace
{

/**
 * The scalar SimResult fields, in serialization order. One table drives
 * the JSONL writer/reader and the CSV writer/reader so the four can
 * never drift apart.
 */
struct Field
{
    const char *name;
    std::uint64_t SimResult::*u64; ///< Null for double fields.
    double SimResult::*dbl;        ///< Null for integer fields.
};

const Field kFields[] = {
    {"cycles", &SimResult::cycles, nullptr},
    {"instructions", &SimResult::instructions, nullptr},
    {"ipc", nullptr, &SimResult::ipc},
    {"l1Accesses", &SimResult::l1Accesses, nullptr},
    {"l1Misses", &SimResult::l1Misses, nullptr},
    {"l2Accesses", &SimResult::l2Accesses, nullptr},
    {"l2Misses", &SimResult::l2Misses, nullptr},
    {"l3Accesses", &SimResult::l3Accesses, nullptr},
    {"dramAccesses", &SimResult::dramAccesses, nullptr},
    {"dgCoverage", nullptr, &SimResult::dgCoverage},
    {"dgAccuracy", nullptr, &SimResult::dgAccuracy},
    {"dgAttached", &SimResult::dgAttached, nullptr},
    {"dgIssued", &SimResult::dgIssued, nullptr},
    {"dgVerifiedOk", &SimResult::dgVerifiedOk, nullptr},
    {"dgVerifiedBad", &SimResult::dgVerifiedBad, nullptr},
    {"committedLoads", &SimResult::committedLoads, nullptr},
    {"committedStores", &SimResult::committedStores, nullptr},
    {"committedBranches", &SimResult::committedBranches, nullptr},
    {"branchSquashes", &SimResult::branchSquashes, nullptr},
    {"memOrderSquashes", &SimResult::memOrderSquashes, nullptr},
    {"domDelayed", &SimResult::domDelayed, nullptr},
    {"stlForwards", &SimResult::stlForwards, nullptr},
    {"cacheDigest", &SimResult::cacheDigest, nullptr},
    {"uarchDigest", &SimResult::uarchDigest, nullptr},
};

/**
 * Shortest representation that strtod restores bit-exactly. Non-finite
 * values (a zero-denominator job's ipc or dgAccuracy) get canonical
 * tokens instead of the locale-ish bare `nan`/`inf` %g would print —
 * which is not valid JSON and does not round-trip.
 */
std::string
doubleToString(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return std::signbit(value) ? "-Infinity" : "Infinity";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/**
 * A double as a JSON value: raw number when finite, quoted token when
 * not (JSON has no NaN/Infinity literals; a bare token would make the
 * whole line unparseable).
 */
std::string
jsonDouble(double value)
{
    if (!std::isfinite(value))
        return "\"" + doubleToString(value) + "\"";
    return doubleToString(value);
}

std::uint64_t
stringToU64(const std::string &text, const char *what)
{
    // strtoull silently accepts leading whitespace and a sign — and
    // wraps "-1" to 2^64-1 — so a corrupted row would round-trip as
    // garbage. The sinks only ever write bare digits; demand them.
    if (text.empty() || !std::isdigit(static_cast<unsigned char>(text[0])))
        DGSIM_FATAL(std::string("bad integer for ") + what + ": '" + text +
                    "'");
    errno = 0;
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (*end != '\0' || errno == ERANGE)
        DGSIM_FATAL(std::string("bad integer for ") + what + ": '" + text +
                    "'");
    return value;
}

double
stringToDouble(const std::string &text, const char *what)
{
    // Like the integer path, reject the whitespace/'+' prefixes strtod
    // would silently eat ('-' stays legal: -Infinity needs it).
    if (text.empty() ||
        std::isspace(static_cast<unsigned char>(text[0])) || text[0] == '+')
        DGSIM_FATAL(std::string("bad number for ") + what + ": '" + text +
                    "'");
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    // ERANGE covers two very different cases: overflow (+-HUGE_VAL, a
    // value we never wrote) and *underflow*, which the sink itself can
    // legitimately produce — %.17g of a subnormal parses back with
    // errno == ERANGE but a perfectly valid result. Only overflow is an
    // error.
    const bool overflow =
        errno == ERANGE && (value == HUGE_VAL || value == -HUGE_VAL);
    if (*end != '\0' || overflow)
        DGSIM_FATAL(std::string("bad number for ") + what + ": '" + text +
                    "'");
    return value;
}

/**
 * The raw text of a numeric member. Finite doubles arrive as JSON
 * numbers; NaN/Infinity arrive as the quoted tokens jsonDouble emits.
 */
const std::string &
numberText(const JsonValue &value)
{
    return value.kind == JsonValue::Kind::String ? value.str : value.number;
}

// --- CSV ----------------------------------------------------------------

std::string
csvEscape(const std::string &raw)
{
    if (raw.find_first_of(",\"\n\r") == std::string::npos)
        return raw;
    std::string out = "\"";
    for (char c : raw) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Parse an RFC-4180-ish stream into records (quotes may span lines). */
std::vector<std::vector<std::string>>
parseCsvRecords(std::istream &is)
{
    std::vector<std::vector<std::string>> records;
    std::vector<std::string> record;
    std::string field;
    bool quoted = false;
    bool fieldStarted = false;
    char c;
    while (is.get(c)) {
        if (quoted) {
            if (c == '"') {
                if (is.peek() == '"') {
                    is.get(c);
                    field += '"';
                } else {
                    quoted = false;
                }
            } else {
                field += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            quoted = true;
            fieldStarted = true;
            break;
          case ',':
            record.push_back(std::move(field));
            field.clear();
            fieldStarted = true; // A delimiter implies a following field.
            break;
          case '\r':
            break;
          case '\n':
            if (fieldStarted || !field.empty() || !record.empty()) {
                record.push_back(std::move(field));
                field.clear();
                records.push_back(std::move(record));
                record.clear();
                fieldStarted = false;
            }
            break;
          default:
            field += c;
            fieldStarted = true;
        }
    }
    if (fieldStarted || !field.empty() || !record.empty()) {
        record.push_back(std::move(field));
        records.push_back(std::move(record));
    }
    return records;
}

constexpr const char *kCounterPrefix = "counter:";

} // namespace

std::string
toJsonLine(const JobOutcome &outcome, bool host_metrics)
{
    std::string out = "{";
    out += "\"index\":" + std::to_string(outcome.index);
    out += ",\"workload\":\"" + jsonEscape(outcome.workload) + "\"";
    out += ",\"suite\":\"" + jsonEscape(outcome.suite) + "\"";
    out += ",\"config\":\"" + jsonEscape(outcome.configLabel) + "\"";
    out += std::string(",\"ok\":") + (outcome.ok ? "true" : "false");
    out += ",\"error\":\"" + jsonEscape(outcome.error) + "\"";
    for (const Field &field : kFields) {
        out += ",\"" + std::string(field.name) + "\":";
        out += field.u64 ? std::to_string(outcome.result.*field.u64)
                         : jsonDouble(outcome.result.*field.dbl);
    }
    out += ",\"counters\":{";
    bool first = true;
    for (const auto &kv : outcome.result.counters) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(kv.first) + "\":" + std::to_string(kv.second);
    }
    out += "}";
    if (host_metrics) {
        // Nested so readers looking fields up by name are unaffected;
        // never emitted on determinism-compared output (values are
        // host-dependent by nature).
        out += ",\"host\":{";
        out += "\"seconds\":" + jsonDouble(outcome.result.hostSeconds);
        out += ",\"kips\":" + jsonDouble(outcome.result.kips());
        out += ",\"traceRecords\":" +
               std::to_string(outcome.result.traceRecords);
        out += ",\"watchdogCycles\":" +
               std::to_string(outcome.result.watchdogCycles);
        out += ",\"idleCyclesSkipped\":" +
               std::to_string(outcome.result.idleCyclesSkipped);
        out += ",\"skipEvents\":" +
               std::to_string(outcome.result.skipEvents);
        out += "}";
    }
    out += "}";
    return out;
}

void
JsonlSink::consume(const JobOutcome &outcome)
{
    os_ << toJsonLine(outcome, host_metrics_) << "\n";
}

void
CsvSink::consume(const JobOutcome &outcome)
{
    rows_.push_back(outcome);
}

void
CsvSink::finish()
{
    // Counter columns are the sorted union across all rows: the header
    // cannot be known until every outcome has been seen.
    std::set<std::string> counterNames;
    for (const JobOutcome &row : rows_)
        for (const auto &kv : row.result.counters)
            counterNames.insert(kv.first);

    os_ << "index,workload,suite,config,ok,error";
    for (const Field &field : kFields)
        os_ << "," << field.name;
    for (const std::string &name : counterNames)
        os_ << "," << csvEscape(kCounterPrefix + name);
    os_ << "\n";

    for (const JobOutcome &row : rows_) {
        os_ << row.index << "," << csvEscape(row.workload) << ","
            << csvEscape(row.suite) << "," << csvEscape(row.configLabel)
            << "," << (row.ok ? "true" : "false") << ","
            << csvEscape(row.error);
        for (const Field &field : kFields) {
            os_ << ",";
            if (field.u64)
                os_ << row.result.*field.u64;
            else
                os_ << doubleToString(row.result.*field.dbl);
        }
        for (const std::string &name : counterNames) {
            os_ << ",";
            auto it = row.result.counters.find(name);
            if (it != row.result.counters.end())
                os_ << it->second; // Absent counters stay empty cells.
        }
        os_ << "\n";
    }
    os_.flush();
}

JobOutcome
outcomeFromJson(const JsonValue &record)
{
    JobOutcome outcome;
    outcome.index = stringToU64(jsonMember(record, "index").number, "index");
    outcome.workload = jsonMember(record, "workload").str;
    outcome.suite = jsonMember(record, "suite").str;
    outcome.configLabel = jsonMember(record, "config").str;
    outcome.ok = jsonMember(record, "ok").boolean;
    outcome.error = jsonMember(record, "error").str;
    for (const Field &field : kFields) {
        const std::string &raw = numberText(jsonMember(record, field.name));
        if (field.u64)
            outcome.result.*field.u64 = stringToU64(raw, field.name);
        else
            outcome.result.*field.dbl = stringToDouble(raw, field.name);
    }
    for (const auto &kv : jsonMember(record, "counters").object)
        outcome.result.counters[kv.first] =
            stringToU64(kv.second.number, kv.first.c_str());
    // Optional host-metrics object (JsonlSink host_metrics mode).
    const auto host = record.object.find("host");
    if (host != record.object.end()) {
        outcome.result.hostSeconds = stringToDouble(
            numberText(jsonMember(host->second, "seconds")), "host.seconds");
        outcome.result.traceRecords =
            stringToU64(jsonMember(host->second, "traceRecords").number,
                        "host.traceRecords");
        outcome.result.watchdogCycles =
            stringToU64(jsonMember(host->second, "watchdogCycles").number,
                        "host.watchdogCycles");
        // Skip accounting postdates the host-object format: read it
        // tolerantly so journals written before it still load.
        const auto skipped = host->second.object.find("idleCyclesSkipped");
        if (skipped != host->second.object.end()) {
            outcome.result.idleCyclesSkipped = stringToU64(
                skipped->second.number, "host.idleCyclesSkipped");
        }
        const auto skips = host->second.object.find("skipEvents");
        if (skips != host->second.object.end()) {
            outcome.result.skipEvents =
                stringToU64(skips->second.number, "host.skipEvents");
        }
    }
    outcome.result.workload = outcome.workload;
    outcome.result.configLabel = outcome.configLabel;
    return outcome;
}

std::vector<JobOutcome>
readJsonl(std::istream &is)
{
    std::vector<JobOutcome> outcomes;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty())
            continue;
        try {
            outcomes.push_back(outcomeFromJson(JsonParser(line).parse()));
        } catch (const JsonParseError &e) {
            DGSIM_FATAL("JSONL line " + std::to_string(lineno) + ": " +
                        e.what());
        }
    }
    return outcomes;
}

std::vector<JobOutcome>
readCsv(std::istream &is)
{
    const auto records = parseCsvRecords(is);
    if (records.empty())
        return {};

    const std::vector<std::string> &header = records.front();
    auto column = [&](const std::string &name) -> std::size_t {
        for (std::size_t i = 0; i < header.size(); ++i)
            if (header[i] == name)
                return i;
        DGSIM_FATAL("CSV header missing column '" + name + "'");
    };

    std::vector<JobOutcome> outcomes;
    for (std::size_t r = 1; r < records.size(); ++r) {
        const std::vector<std::string> &row = records[r];
        if (row.size() != header.size())
            DGSIM_FATAL("CSV row " + std::to_string(r) + " has " +
                        std::to_string(row.size()) + " fields, header has " +
                        std::to_string(header.size()));
        JobOutcome outcome;
        outcome.index = stringToU64(row[column("index")], "index");
        outcome.workload = row[column("workload")];
        outcome.suite = row[column("suite")];
        outcome.configLabel = row[column("config")];
        outcome.ok = row[column("ok")] == "true";
        outcome.error = row[column("error")];
        for (const Field &field : kFields) {
            const std::string &raw = row[column(field.name)];
            if (field.u64)
                outcome.result.*field.u64 = stringToU64(raw, field.name);
            else
                outcome.result.*field.dbl = stringToDouble(raw, field.name);
        }
        for (std::size_t i = 0; i < header.size(); ++i) {
            if (header[i].rfind(kCounterPrefix, 0) != 0 || row[i].empty())
                continue;
            const std::string name =
                header[i].substr(std::string(kCounterPrefix).size());
            outcome.result.counters[name] = stringToU64(row[i], name.c_str());
        }
        outcome.result.workload = outcome.workload;
        outcome.result.configLabel = outcome.configLabel;
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

} // namespace dgsim::runner
