#include "runner/result_sink.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>

#include "common/log.hh"

namespace dgsim::runner
{
namespace
{

/**
 * The scalar SimResult fields, in serialization order. One table drives
 * the JSONL writer/reader and the CSV writer/reader so the four can
 * never drift apart.
 */
struct Field
{
    const char *name;
    std::uint64_t SimResult::*u64; ///< Null for double fields.
    double SimResult::*dbl;        ///< Null for integer fields.
};

const Field kFields[] = {
    {"cycles", &SimResult::cycles, nullptr},
    {"instructions", &SimResult::instructions, nullptr},
    {"ipc", nullptr, &SimResult::ipc},
    {"l1Accesses", &SimResult::l1Accesses, nullptr},
    {"l1Misses", &SimResult::l1Misses, nullptr},
    {"l2Accesses", &SimResult::l2Accesses, nullptr},
    {"l2Misses", &SimResult::l2Misses, nullptr},
    {"l3Accesses", &SimResult::l3Accesses, nullptr},
    {"dramAccesses", &SimResult::dramAccesses, nullptr},
    {"dgCoverage", nullptr, &SimResult::dgCoverage},
    {"dgAccuracy", nullptr, &SimResult::dgAccuracy},
    {"dgAttached", &SimResult::dgAttached, nullptr},
    {"dgIssued", &SimResult::dgIssued, nullptr},
    {"dgVerifiedOk", &SimResult::dgVerifiedOk, nullptr},
    {"dgVerifiedBad", &SimResult::dgVerifiedBad, nullptr},
    {"committedLoads", &SimResult::committedLoads, nullptr},
    {"committedStores", &SimResult::committedStores, nullptr},
    {"committedBranches", &SimResult::committedBranches, nullptr},
    {"branchSquashes", &SimResult::branchSquashes, nullptr},
    {"memOrderSquashes", &SimResult::memOrderSquashes, nullptr},
    {"domDelayed", &SimResult::domDelayed, nullptr},
    {"stlForwards", &SimResult::stlForwards, nullptr},
    {"cacheDigest", &SimResult::cacheDigest, nullptr},
};

/** Shortest representation that strtod restores bit-exactly. */
std::string
doubleToString(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

std::uint64_t
stringToU64(const std::string &text, const char *what)
{
    errno = 0;
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, 10);
    if (text.empty() || *end != '\0' || errno == ERANGE)
        DGSIM_FATAL(std::string("bad integer for ") + what + ": '" + text +
                    "'");
    return value;
}

double
stringToDouble(const std::string &text, const char *what)
{
    errno = 0;
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (text.empty() || *end != '\0' || errno == ERANGE)
        DGSIM_FATAL(std::string("bad number for ") + what + ": '" + text +
                    "'");
    return value;
}

// --- JSON ---------------------------------------------------------------

std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    for (unsigned char c : raw) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/**
 * The subset of JSON the JsonlSink emits: objects of strings, numbers
 * (kept as raw text so uint64 values survive untruncated), booleans,
 * and one level of nested object for the counters map.
 */
struct JsonValue
{
    enum class Kind { Boolean, Number, String, Object };

    Kind kind = Kind::Boolean;
    bool boolean = false;
    std::string number; ///< Raw text, e.g. "18446744073709551615".
    std::string str;
    std::map<std::string, JsonValue> object;
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue value = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return value;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        DGSIM_FATAL("JSONL parse error at offset " + std::to_string(pos_) +
                    ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        const char c = peek();
        if (c == '{')
            return parseObject();
        if (c == '"')
            return parseString();
        if (c == 't' || c == 'f')
            return parseBoolean();
        return parseNumber();
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue value;
        value.kind = JsonValue::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return value;
        }
        for (;;) {
            skipWs();
            JsonValue key = parseString();
            skipWs();
            expect(':');
            value.object[key.str] = parseValue();
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return value;
        }
    }

    JsonValue
    parseString()
    {
        expect('"');
        JsonValue value;
        value.kind = JsonValue::Kind::String;
        for (;;) {
            const char c = peek();
            ++pos_;
            if (c == '"')
                return value;
            if (c != '\\') {
                value.str += c;
                continue;
            }
            const char esc = peek();
            ++pos_;
            switch (esc) {
              case '"': value.str += '"'; break;
              case '\\': value.str += '\\'; break;
              case '/': value.str += '/'; break;
              case 'n': value.str += '\n'; break;
              case 'r': value.str += '\r'; break;
              case 't': value.str += '\t'; break;
              case 'b': value.str += '\b'; break;
              case 'f': value.str += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("truncated \\u escape");
                const unsigned long code =
                    std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
                pos_ += 4;
                if (code > 0x7f)
                    fail("non-ASCII \\u escape unsupported");
                value.str += static_cast<char>(code);
                break;
              }
              default: fail("bad escape");
            }
        }
    }

    JsonValue
    parseBoolean()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Boolean;
        if (text_.compare(pos_, 4, "true") == 0) {
            value.boolean = true;
            pos_ += 4;
        } else if (text_.compare(pos_, 5, "false") == 0) {
            value.boolean = false;
            pos_ += 5;
        } else {
            fail("bad literal");
        }
        return value;
    }

    JsonValue
    parseNumber()
    {
        JsonValue value;
        value.kind = JsonValue::Kind::Number;
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        value.number = text_.substr(start, pos_ - start);
        return value;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

const JsonValue &
jsonMember(const JsonValue &object, const char *name)
{
    auto it = object.object.find(name);
    if (it == object.object.end())
        DGSIM_FATAL(std::string("JSONL record missing field '") + name + "'");
    return it->second;
}

// --- CSV ----------------------------------------------------------------

std::string
csvEscape(const std::string &raw)
{
    if (raw.find_first_of(",\"\n\r") == std::string::npos)
        return raw;
    std::string out = "\"";
    for (char c : raw) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** Parse an RFC-4180-ish stream into records (quotes may span lines). */
std::vector<std::vector<std::string>>
parseCsvRecords(std::istream &is)
{
    std::vector<std::vector<std::string>> records;
    std::vector<std::string> record;
    std::string field;
    bool quoted = false;
    bool fieldStarted = false;
    char c;
    while (is.get(c)) {
        if (quoted) {
            if (c == '"') {
                if (is.peek() == '"') {
                    is.get(c);
                    field += '"';
                } else {
                    quoted = false;
                }
            } else {
                field += c;
            }
            continue;
        }
        switch (c) {
          case '"':
            quoted = true;
            fieldStarted = true;
            break;
          case ',':
            record.push_back(std::move(field));
            field.clear();
            fieldStarted = true; // A delimiter implies a following field.
            break;
          case '\r':
            break;
          case '\n':
            if (fieldStarted || !field.empty() || !record.empty()) {
                record.push_back(std::move(field));
                field.clear();
                records.push_back(std::move(record));
                record.clear();
                fieldStarted = false;
            }
            break;
          default:
            field += c;
            fieldStarted = true;
        }
    }
    if (fieldStarted || !field.empty() || !record.empty()) {
        record.push_back(std::move(field));
        records.push_back(std::move(record));
    }
    return records;
}

constexpr const char *kCounterPrefix = "counter:";

} // namespace

std::string
toJsonLine(const JobOutcome &outcome, bool host_metrics)
{
    std::string out = "{";
    out += "\"index\":" + std::to_string(outcome.index);
    out += ",\"workload\":\"" + jsonEscape(outcome.workload) + "\"";
    out += ",\"suite\":\"" + jsonEscape(outcome.suite) + "\"";
    out += ",\"config\":\"" + jsonEscape(outcome.configLabel) + "\"";
    out += std::string(",\"ok\":") + (outcome.ok ? "true" : "false");
    out += ",\"error\":\"" + jsonEscape(outcome.error) + "\"";
    for (const Field &field : kFields) {
        out += ",\"" + std::string(field.name) + "\":";
        out += field.u64 ? std::to_string(outcome.result.*field.u64)
                         : doubleToString(outcome.result.*field.dbl);
    }
    out += ",\"counters\":{";
    bool first = true;
    for (const auto &kv : outcome.result.counters) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(kv.first) + "\":" + std::to_string(kv.second);
    }
    out += "}";
    if (host_metrics) {
        // Nested so readers looking fields up by name are unaffected;
        // never emitted on determinism-compared output (values are
        // host-dependent by nature).
        out += ",\"host\":{";
        out += "\"seconds\":" + doubleToString(outcome.result.hostSeconds);
        out += ",\"kips\":" + doubleToString(outcome.result.kips());
        out += ",\"traceRecords\":" +
               std::to_string(outcome.result.traceRecords);
        out += ",\"watchdogCycles\":" +
               std::to_string(outcome.result.watchdogCycles);
        out += "}";
    }
    out += "}";
    return out;
}

void
JsonlSink::consume(const JobOutcome &outcome)
{
    os_ << toJsonLine(outcome, host_metrics_) << "\n";
}

void
CsvSink::consume(const JobOutcome &outcome)
{
    rows_.push_back(outcome);
}

void
CsvSink::finish()
{
    // Counter columns are the sorted union across all rows: the header
    // cannot be known until every outcome has been seen.
    std::set<std::string> counterNames;
    for (const JobOutcome &row : rows_)
        for (const auto &kv : row.result.counters)
            counterNames.insert(kv.first);

    os_ << "index,workload,suite,config,ok,error";
    for (const Field &field : kFields)
        os_ << "," << field.name;
    for (const std::string &name : counterNames)
        os_ << "," << csvEscape(kCounterPrefix + name);
    os_ << "\n";

    for (const JobOutcome &row : rows_) {
        os_ << row.index << "," << csvEscape(row.workload) << ","
            << csvEscape(row.suite) << "," << csvEscape(row.configLabel)
            << "," << (row.ok ? "true" : "false") << ","
            << csvEscape(row.error);
        for (const Field &field : kFields) {
            os_ << ",";
            if (field.u64)
                os_ << row.result.*field.u64;
            else
                os_ << doubleToString(row.result.*field.dbl);
        }
        for (const std::string &name : counterNames) {
            os_ << ",";
            auto it = row.result.counters.find(name);
            if (it != row.result.counters.end())
                os_ << it->second; // Absent counters stay empty cells.
        }
        os_ << "\n";
    }
    os_.flush();
}

std::vector<JobOutcome>
readJsonl(std::istream &is)
{
    std::vector<JobOutcome> outcomes;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        const JsonValue record = JsonParser(line).parse();
        JobOutcome outcome;
        outcome.index =
            stringToU64(jsonMember(record, "index").number, "index");
        outcome.workload = jsonMember(record, "workload").str;
        outcome.suite = jsonMember(record, "suite").str;
        outcome.configLabel = jsonMember(record, "config").str;
        outcome.ok = jsonMember(record, "ok").boolean;
        outcome.error = jsonMember(record, "error").str;
        for (const Field &field : kFields) {
            const std::string &raw = jsonMember(record, field.name).number;
            if (field.u64)
                outcome.result.*field.u64 = stringToU64(raw, field.name);
            else
                outcome.result.*field.dbl = stringToDouble(raw, field.name);
        }
        for (const auto &kv : jsonMember(record, "counters").object)
            outcome.result.counters[kv.first] =
                stringToU64(kv.second.number, kv.first.c_str());
        // Optional host-metrics object (JsonlSink host_metrics mode).
        const auto host = record.object.find("host");
        if (host != record.object.end()) {
            outcome.result.hostSeconds = stringToDouble(
                jsonMember(host->second, "seconds").number, "host.seconds");
            outcome.result.traceRecords =
                stringToU64(jsonMember(host->second, "traceRecords").number,
                            "host.traceRecords");
            outcome.result.watchdogCycles = stringToU64(
                jsonMember(host->second, "watchdogCycles").number,
                "host.watchdogCycles");
        }
        outcome.result.workload = outcome.workload;
        outcome.result.configLabel = outcome.configLabel;
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

std::vector<JobOutcome>
readCsv(std::istream &is)
{
    const auto records = parseCsvRecords(is);
    if (records.empty())
        return {};

    const std::vector<std::string> &header = records.front();
    auto column = [&](const std::string &name) -> std::size_t {
        for (std::size_t i = 0; i < header.size(); ++i)
            if (header[i] == name)
                return i;
        DGSIM_FATAL("CSV header missing column '" + name + "'");
    };

    std::vector<JobOutcome> outcomes;
    for (std::size_t r = 1; r < records.size(); ++r) {
        const std::vector<std::string> &row = records[r];
        if (row.size() != header.size())
            DGSIM_FATAL("CSV row " + std::to_string(r) + " has " +
                        std::to_string(row.size()) + " fields, header has " +
                        std::to_string(header.size()));
        JobOutcome outcome;
        outcome.index = stringToU64(row[column("index")], "index");
        outcome.workload = row[column("workload")];
        outcome.suite = row[column("suite")];
        outcome.configLabel = row[column("config")];
        outcome.ok = row[column("ok")] == "true";
        outcome.error = row[column("error")];
        for (const Field &field : kFields) {
            const std::string &raw = row[column(field.name)];
            if (field.u64)
                outcome.result.*field.u64 = stringToU64(raw, field.name);
            else
                outcome.result.*field.dbl = stringToDouble(raw, field.name);
        }
        for (std::size_t i = 0; i < header.size(); ++i) {
            if (header[i].rfind(kCounterPrefix, 0) != 0 || row[i].empty())
                continue;
            const std::string name =
                header[i].substr(std::string(kCounterPrefix).size());
            outcome.result.counters[name] = stringToU64(row[i], name.c_str());
        }
        outcome.result.workload = outcome.workload;
        outcome.result.configLabel = outcome.configLabel;
        outcomes.push_back(std::move(outcome));
    }
    return outcomes;
}

} // namespace dgsim::runner
