#include "runner/experiment_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <thread>

#include "common/errors.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "runner/thread_pool.hh"
#include "sim/simulator.hh"

namespace dgsim::runner
{

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_(std::move(options)),
      threads_(options_.threads == 0 ? ThreadPool::hardwareThreads()
                                     : options_.threads)
{
    if (!options_.execute) {
        options_.execute = [](const Job &job) {
            return runProgram(*job.program, job.config);
        };
    }
    if (options_.maxAttempts == 0)
        options_.maxAttempts = 1;
}

std::vector<JobOutcome>
ExperimentRunner::run(const SweepSpec &spec)
{
    return run(spec.expand());
}

bool
ExperimentRunner::injectedFault(const std::string &key, unsigned attempt) const
{
    if (options_.injectFailRate <= 0.0)
        return false;
    // The draw is a pure function of (key, attempt, seed): the same
    // sweep under the same rate/seed fails the same attempts of the
    // same jobs no matter the thread count or dispatch order.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : key) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    Rng rng(hash ^ (options_.injectFailSeed +
                    attempt * 0x9e3779b97f4a7c15ULL));
    const double draw =
        static_cast<double>(rng.next() >> 11) * 0x1.0p-53; // [0, 1)
    return draw < options_.injectFailRate;
}

void
ExperimentRunner::executeJob(const Job &job, const std::string &key,
                             JobOutcome &outcome)
{
    unsigned attempt = 0;
    for (;;) {
        ++attempt;
        try {
            if (injectedFault(key, attempt))
                throw TransientError("injected transient fault (attempt " +
                                     std::to_string(attempt) + ", " + key +
                                     ")");
            outcome.result = options_.execute(job);
            outcome.ok = true;
            outcome.error.clear();
            break;
        } catch (const TransientError &e) {
            // Host-side failure: retry with backoff until the attempt
            // budget runs out, surfacing the original error then.
            outcome.ok = false;
            outcome.error = e.what();
            if (attempt >= options_.maxAttempts)
                break;
            if (options_.cancel &&
                options_.cancel->load(std::memory_order_relaxed)) {
                outcome.error += " [retries abandoned: drain requested]";
                break;
            }
            const std::uint64_t delay = options_.backoff.delayMs(attempt);
            if (delay != 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
        } catch (const std::exception &e) {
            // Deterministic sim error: re-running would reproduce it
            // bit-for-bit, so report once and never retry.
            outcome.ok = false;
            outcome.error = e.what();
            break;
        } catch (...) {
            outcome.ok = false;
            outcome.error = "unknown exception";
            break;
        }
    }
    outcome.attempts = attempt;
}

std::vector<JobOutcome>
ExperimentRunner::run(const std::vector<Job> &jobs)
{
    std::vector<JobOutcome> outcomes(jobs.size());
    std::atomic<std::size_t> completed{0};

    std::unique_ptr<JournalWriter> journal;
    if (!options_.journalPath.empty())
        journal = std::make_unique<JournalWriter>(
            options_.journalPath, options_.journalHostMetrics);

    {
        ThreadPool pool(threads_);
        std::size_t resumedCount = 0;
        for (const Job &job : jobs) {
            DGSIM_ASSERT(job.index < jobs.size(),
                         "job indices must form 0..N-1");
            JobOutcome &outcome = outcomes[job.index];
            std::string key = jobKey(job);

            // Resume: restore journaled successes without re-running.
            // Journaled failures fall through and execute again — a
            // deterministic error just reproduces, a transient one gets
            // a fresh chance.
            const auto it = options_.resume.find(key);
            if (it != options_.resume.end() && it->second.ok) {
                DGSIM_ASSERT(it->second.workload == job.workload &&
                                 it->second.configLabel == job.config.label(),
                             "journal key collision: " + key);
                outcome = it->second;
                outcome.index = job.index;
                outcome.resumed = true;
                completed.fetch_add(1);
                ++resumedCount;
                continue;
            }

            JournalWriter *journalPtr = journal.get();
            pool.submit([this, &job, &outcome, &outcomes, &completed,
                         key = std::move(key), journalPtr] {
                outcome.index = job.index;
                outcome.workload = job.workload;
                outcome.suite = job.suite;
                outcome.configLabel = job.config.label();
                const bool canceled =
                    options_.cancel &&
                    options_.cancel->load(std::memory_order_relaxed);
                if (canceled) {
                    // Drain: never started, so deliberately NOT
                    // journaled — a resume must run this job.
                    outcome.ok = false;
                    outcome.attempts = 0;
                    outcome.error = "interrupted: drained before start "
                                    "(resume to run)";
                } else {
                    executeJob(job, key, outcome);
                    if (journalPtr)
                        journalPtr->record(key, outcome);
                }
                const std::size_t done = completed.fetch_add(1) + 1;
                if (options_.progress) {
                    // Single atomic-ish fprintf per job; ordering between
                    // workers is irrelevant because `done` only grows.
                    std::fprintf(stderr, "\r[runner] %zu/%zu jobs", done,
                                 outcomes.size());
                    if (done == outcomes.size())
                        std::fprintf(stderr, "\n");
                }
            });
        }
        if (resumedCount != 0 && options_.progress)
            std::fprintf(stderr,
                         "[runner] resumed %zu/%zu jobs from journal\n",
                         resumedCount, outcomes.size());
        pool.wait();
    }

    // Sinks run on this thread, after the barrier, in index order:
    // serialized output is independent of the executing thread count.
    for (ResultSink *sink : sinks_) {
        for (const JobOutcome &outcome : outcomes)
            sink->consume(outcome);
        sink->finish();
    }
    return outcomes;
}

} // namespace dgsim::runner
