#include "runner/experiment_runner.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/errors.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "fuzz/fuzz.hh"
#include "runner/thread_pool.hh"
#include "sim/simulator.hh"
#include "telemetry/telemetry.hh"

namespace dgsim::runner
{
namespace
{

/** The default job executor: the real simulator, or the relational
 * leak oracle for fuzz-candidate jobs (which carry no program). */
SimResult
defaultExecute(const Job &job)
{
    if (job.kind == JobKind::FuzzCandidate)
        return fuzz::runCandidateJob(job);
    return runProgram(*job.program, job.config);
}

} // namespace

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_(std::move(options)),
      threads_(options_.threads == 0 ? ThreadPool::hardwareThreads()
                                     : options_.threads)
{
    if (!options_.execute)
        options_.execute = defaultExecute;
    if (options_.maxAttempts == 0)
        options_.maxAttempts = 1;
}

std::vector<JobOutcome>
ExperimentRunner::run(const SweepSpec &spec)
{
    return run(spec.expand());
}

namespace
{

bool
injectedFaultImpl(const RunnerOptions &options, const std::string &key,
                  unsigned attempt)
{
    if (options.injectFailRate <= 0.0)
        return false;
    // The draw is a pure function of (key, attempt, seed): the same
    // sweep under the same rate/seed fails the same attempts of the
    // same jobs no matter the thread count or dispatch order.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : key) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    Rng rng(hash ^ (options.injectFailSeed +
                    attempt * 0x9e3779b97f4a7c15ULL));
    const double draw =
        static_cast<double>(rng.next() >> 11) * 0x1.0p-53; // [0, 1)
    return draw < options.injectFailRate;
}

/** Host-side completion accounting; all no-ops when telemetry is off.
 * Purely observational — results, journals and sinks never change. */
void
accountJobMetrics(const Job &job, const JobOutcome &outcome)
{
    if (!telemetry::enabled())
        return;
    telemetry::metricAdd(outcome.ok ? "dgsim_jobs_done_total"
                                    : "dgsim_jobs_failed_total");
    if (outcome.attempts > 1)
        telemetry::metricAdd("dgsim_jobs_retried_total");
    if (!outcome.ok)
        return;
    const double instructions =
        static_cast<double>(outcome.result.instructions);
    telemetry::metricAdd("dgsim_instructions_total", instructions);
    telemetry::metricAdd("dgsim_skip_events_total",
                         static_cast<double>(outcome.result.skipEvents));
    telemetry::metricAdd(
        "dgsim_idle_cycles_skipped_total",
        static_cast<double>(outcome.result.idleCyclesSkipped));
    const std::string label = "{workload=\"" + job.workload + "\"}";
    telemetry::metricAdd("dgsim_workload_instructions_total" + label,
                         instructions);
    telemetry::metricAdd("dgsim_workload_host_seconds_total" + label,
                         outcome.result.hostSeconds);
    const double seconds = telemetry::metricValue(
        "dgsim_workload_host_seconds_total" + label);
    if (seconds > 0.0)
        telemetry::metricSet(
            "dgsim_workload_instr_per_sec" + label,
            telemetry::metricValue("dgsim_workload_instructions_total" +
                                   label) /
                seconds);
}

void
executeJobImpl(const RunnerOptions &options, const Job &job,
               const std::string &key, JobOutcome &outcome)
{
    // One span per job covering every attempt; closes even when the
    // worker's journal record never lands (tolerant readers drop the
    // torn line, not the span).
    telemetry::ScopedSpan span("job", "job");
    span.arg("key", key);
    span.arg("workload", job.workload);
    unsigned attempt = 0;
    for (;;) {
        ++attempt;
        try {
            if (injectedFaultImpl(options, key, attempt))
                throw TransientError("injected transient fault (attempt " +
                                     std::to_string(attempt) + ", " + key +
                                     ")");
            outcome.result = options.execute(job);
            outcome.ok = true;
            outcome.error.clear();
            break;
        } catch (const TransientError &e) {
            // Host-side failure: retry with backoff until the attempt
            // budget runs out, surfacing the original error then.
            outcome.ok = false;
            outcome.error = e.what();
            if (attempt >= options.maxAttempts)
                break;
            if (options.cancel &&
                options.cancel->load(std::memory_order_relaxed)) {
                outcome.error += " [retries abandoned: drain requested]";
                break;
            }
            const std::uint64_t delay = options.backoff.delayMs(attempt);
            if (delay != 0) {
                telemetry::ScopedSpan backoff("retry-backoff", "phase");
                backoff.arg("attempt", attempt);
                backoff.arg("delay_ms", delay);
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay));
            }
        } catch (const std::exception &e) {
            // Deterministic sim error: re-running would reproduce it
            // bit-for-bit, so report once and never retry.
            outcome.ok = false;
            outcome.error = e.what();
            break;
        } catch (...) {
            outcome.ok = false;
            outcome.error = "unknown exception";
            break;
        }
    }
    outcome.attempts = attempt;
    span.arg("attempts", attempt);
    span.arg("ok", outcome.ok ? std::uint64_t{1} : std::uint64_t{0});
    accountJobMetrics(job, outcome);
}

} // namespace

bool
ExperimentRunner::injectedFault(const std::string &key, unsigned attempt) const
{
    return injectedFaultImpl(options_, key, attempt);
}

void
ExperimentRunner::executeJob(const Job &job, const std::string &key,
                             JobOutcome &outcome)
{
    executeJobImpl(options_, job, key, outcome);
}

JobOutcome
runSingleJob(const Job &job, const std::string &key,
             const RunnerOptions &options)
{
    JobOutcome outcome;
    outcome.index = job.index;
    outcome.workload = job.workload;
    outcome.suite = job.suite;
    outcome.configLabel = job.config.label();
    if (options.execute) {
        executeJobImpl(options, job, key, outcome);
    } else {
        RunnerOptions defaulted = options;
        defaulted.execute = defaultExecute;
        executeJobImpl(defaulted, job, key, outcome);
    }
    return outcome;
}

std::vector<JobOutcome>
ExperimentRunner::run(const std::vector<Job> &jobs)
{
    std::vector<JobOutcome> outcomes(jobs.size());
    std::atomic<std::size_t> completed{0};
    std::atomic<std::size_t> retried{0};

    std::unique_ptr<JournalWriter> journal;
    if (!options_.journalPath.empty())
        journal = std::make_unique<JournalWriter>(
            options_.journalPath, options_.journalHostMetrics,
            options_.journalSync);

    // Opt-in heartbeat: one wholly formatted line per period, emitted
    // with a single fwrite so job progress/log output never interleaves
    // with it. The thread only reads the atomic counter — jobs never
    // block on the heartbeat.
    std::thread heartbeat;
    std::mutex heartbeatMutex;
    std::condition_variable heartbeatCv;
    bool heartbeatStop = false;
    if (options_.heartbeatSec > 0.0) {
        const auto start = std::chrono::steady_clock::now();
        const auto period = std::chrono::duration<double>(
            options_.heartbeatSec);
        heartbeat = std::thread([&, start, period] {
            std::FILE *out = options_.heartbeatStream
                                 ? options_.heartbeatStream
                                 : stderr;
            std::unique_lock<std::mutex> lock(heartbeatMutex);
            while (!heartbeatCv.wait_for(lock, period,
                                         [&] { return heartbeatStop; })) {
                const std::size_t done = completed.load();
                const std::size_t retries = retried.load();
                const double elapsed =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                const double rate = elapsed > 0.0 ? done / elapsed : 0.0;
                const double eta =
                    rate > 0.0 ? (outcomes.size() - done) / rate : 0.0;
                char line[200];
                const int len = std::snprintf(
                    line, sizeof(line),
                    "[runner] heartbeat %zu/%zu jobs (%.1f%%), "
                    "%.2f jobs/s, ETA %.0fs, %zu retried\n",
                    done, outcomes.size(),
                    outcomes.empty() ? 100.0
                                     : 100.0 * done / outcomes.size(),
                    rate, eta, retries);
                if (len > 0) {
                    std::fwrite(line, 1, static_cast<std::size_t>(len),
                                out);
                    std::fflush(out);
                }
            }
        });
    }

    {
        ThreadPool pool(threads_);
        std::size_t resumedCount = 0;
        for (const Job &job : jobs) {
            DGSIM_ASSERT(job.index < jobs.size(),
                         "job indices must form 0..N-1");
            JobOutcome &outcome = outcomes[job.index];
            std::string key = jobKey(job);

            // Resume: restore journaled successes without re-running.
            // Journaled failures fall through and execute again — a
            // deterministic error just reproduces, a transient one gets
            // a fresh chance.
            const auto it = options_.resume.find(key);
            if (it != options_.resume.end() && it->second.ok) {
                DGSIM_ASSERT(it->second.workload == job.workload &&
                                 it->second.configLabel == job.config.label(),
                             "journal key collision: " + key);
                outcome = it->second;
                outcome.index = job.index;
                outcome.resumed = true;
                completed.fetch_add(1);
                ++resumedCount;
                continue;
            }

            JournalWriter *journalPtr = journal.get();
            pool.submit([this, &job, &outcome, &outcomes, &completed,
                         &retried, key = std::move(key), journalPtr] {
                outcome.index = job.index;
                outcome.workload = job.workload;
                outcome.suite = job.suite;
                outcome.configLabel = job.config.label();
                const bool canceled =
                    options_.cancel &&
                    options_.cancel->load(std::memory_order_relaxed);
                if (canceled) {
                    // Drain: never started, so deliberately NOT
                    // journaled — a resume must run this job.
                    outcome.ok = false;
                    outcome.attempts = 0;
                    outcome.error = "interrupted: drained before start "
                                    "(resume to run)";
                } else {
                    executeJob(job, key, outcome);
                    if (outcome.attempts > 1)
                        retried.fetch_add(1);
                    if (journalPtr)
                        journalPtr->record(key, outcome);
                }
                const std::size_t done = completed.fetch_add(1) + 1;
                if (telemetry::enabled())
                    telemetry::metricSet(
                        "dgsim_runner_queue_depth",
                        static_cast<double>(outcomes.size() - done));
                if (options_.progress) {
                    // Single atomic-ish fprintf per job; ordering between
                    // workers is irrelevant because `done` only grows.
                    std::fprintf(stderr, "\r[runner] %zu/%zu jobs", done,
                                 outcomes.size());
                    if (done == outcomes.size())
                        std::fprintf(stderr, "\n");
                }
            });
        }
        if (resumedCount != 0 && options_.progress)
            std::fprintf(stderr,
                         "[runner] resumed %zu/%zu jobs from journal\n",
                         resumedCount, outcomes.size());
        pool.wait();
    }

    if (heartbeat.joinable()) {
        {
            std::lock_guard<std::mutex> lock(heartbeatMutex);
            heartbeatStop = true;
        }
        heartbeatCv.notify_all();
        heartbeat.join();
    }

    // Sinks run on this thread, after the barrier, in index order:
    // serialized output is independent of the executing thread count.
    for (ResultSink *sink : sinks_) {
        for (const JobOutcome &outcome : outcomes)
            sink->consume(outcome);
        sink->finish();
    }
    return outcomes;
}

} // namespace dgsim::runner
