#include "runner/experiment_runner.hh"

#include <atomic>
#include <cstdio>
#include <exception>

#include "common/log.hh"
#include "runner/thread_pool.hh"
#include "sim/simulator.hh"

namespace dgsim::runner
{

ExperimentRunner::ExperimentRunner(RunnerOptions options)
    : options_(std::move(options)),
      threads_(options_.threads == 0 ? ThreadPool::hardwareThreads()
                                     : options_.threads)
{
    if (!options_.execute) {
        options_.execute = [](const Job &job) {
            return runProgram(*job.program, job.config);
        };
    }
}

std::vector<JobOutcome>
ExperimentRunner::run(const SweepSpec &spec)
{
    return run(spec.expand());
}

std::vector<JobOutcome>
ExperimentRunner::run(const std::vector<Job> &jobs)
{
    std::vector<JobOutcome> outcomes(jobs.size());
    std::atomic<std::size_t> completed{0};

    {
        ThreadPool pool(threads_);
        for (const Job &job : jobs) {
            DGSIM_ASSERT(job.index < jobs.size(),
                         "job indices must form 0..N-1");
            JobOutcome &outcome = outcomes[job.index];
            pool.submit([this, &job, &outcome, &outcomes, &completed] {
                outcome.index = job.index;
                outcome.workload = job.workload;
                outcome.suite = job.suite;
                outcome.configLabel = job.config.label();
                try {
                    outcome.result = options_.execute(job);
                    outcome.ok = true;
                } catch (const std::exception &e) {
                    outcome.ok = false;
                    outcome.error = e.what();
                } catch (...) {
                    outcome.ok = false;
                    outcome.error = "unknown exception";
                }
                const std::size_t done = completed.fetch_add(1) + 1;
                if (options_.progress) {
                    // Single atomic-ish fprintf per job; ordering between
                    // workers is irrelevant because `done` only grows.
                    std::fprintf(stderr, "\r[runner] %zu/%zu jobs", done,
                                 outcomes.size());
                    if (done == outcomes.size())
                        std::fprintf(stderr, "\n");
                }
            });
        }
        pool.wait();
    }

    // Sinks run on this thread, after the barrier, in index order:
    // serialized output is independent of the executing thread count.
    for (ResultSink *sink : sinks_) {
        for (const JobOutcome &outcome : outcomes)
            sink->consume(outcome);
        sink->finish();
    }
    return outcomes;
}

} // namespace dgsim::runner
