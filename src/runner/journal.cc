#include "runner/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/log.hh"
#include "runner/result_sink.hh"

namespace dgsim::runner
{
namespace
{

/** 64-bit FNV-1a, chained across calls via @p hash. */
void
fnv1a(std::uint64_t &hash, const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
}

void
fnv1a(std::uint64_t &hash, const std::string &text)
{
    // Hash the terminator too so {"ab","c"} != {"a","bc"}.
    fnv1a(hash, text.c_str(), text.size() + 1);
}

void
fnv1a(std::uint64_t &hash, std::uint64_t value)
{
    fnv1a(hash, &value, sizeof(value));
}

} // namespace

std::string
jobKey(const Job &job)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    fnv1a(hash, job.suite);
    fnv1a(hash, job.workload);
    fnv1a(hash, job.config.label());
    if (job.kind == JobKind::FuzzCandidate) {
        // A fuzz job's identity is its candidate: two integers that the
        // synthesizer expands deterministically. Different seeds (or a
        // key/workload mismatch) must never satisfy each other's
        // journal records.
        fnv1a(hash, std::string("fuzz-candidate"));
        fnv1a(hash, job.fuzzKey);
        fnv1a(hash, job.fuzzSeed);
    }
    fnv1a(hash, job.config.maxInstructions);
    fnv1a(hash, job.config.maxCycles);
    fnv1a(hash, job.config.warmupInstructions);
    // Sampled-simulation shape: a resumed/sampled sweep must never be
    // satisfied by a journal record from a differently-shaped run.
    fnv1a(hash, job.config.ffwdInstructions);
    fnv1a(hash, job.config.sampleInterval);
    fnv1a(hash, job.config.sampleDetail);
    fnv1a(hash, job.config.ckptSavePath);
    fnv1a(hash, job.config.ckptSaveInst);
    fnv1a(hash, job.config.ckptRestorePath);
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(hash));
    return job.workload + "/" + job.config.label() + "#" + hex;
}

JournalWriter::JournalWriter(const std::string &path, bool host_metrics,
                             bool sync)
    : path_(path), host_metrics_(host_metrics),
      out_(path, std::ios::app)
{
    if (!out_)
        DGSIM_FATAL("cannot open journal '" + path + "' for appending");
    if (sync) {
        // fsync needs a file descriptor; std::ofstream hides its own,
        // so open a second, write-free handle on the same file —
        // fsync(2) synchronizes the file, not a descriptor's writes.
        syncFd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
        if (syncFd_ < 0)
            DGSIM_FATAL("cannot open journal '" + path + "' for fsync: " +
                        std::strerror(errno));
    }
}

JournalWriter::~JournalWriter()
{
    if (syncFd_ >= 0)
        ::close(syncFd_);
}

void
JournalWriter::record(const std::string &key, const JobOutcome &outcome)
{
    // The wrapper fields ride in front of the standard serialization;
    // outcomeFromJson() ignores them on the way back in.
    std::string line = "{\"key\":\"" + jsonEscape(key) + "\",\"attempts\":" +
                       std::to_string(outcome.attempts) + "," +
                       toJsonLine(outcome, host_metrics_).substr(1) + "\n";
    std::lock_guard<std::mutex> lock(mutex_);
    out_ << line;
    // Flush per record: crash tolerance is the whole point. Sweeps are
    // simulation-bound (seconds per job), so the write is noise.
    out_.flush();
    // Opt-in durability against power loss, not just process death.
    if (syncFd_ >= 0 && ::fsync(syncFd_) != 0)
        DGSIM_WARN("fsync of journal '" + path_ + "' failed: " +
                   std::strerror(errno));
}

JournalMap
loadJournal(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return {};

    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            lines.push_back(line);

    JournalMap map;
    for (std::size_t i = 0; i < lines.size(); ++i) {
        JsonValue record;
        try {
            record = JsonParser(lines[i]).parse();
        } catch (const JsonParseError &e) {
            if (i + 1 == lines.size()) {
                DGSIM_WARN("journal '" + path + "': dropping truncated "
                           "final record (" + e.what() + ")");
                break;
            }
            DGSIM_FATAL("journal '" + path + "' line " +
                        std::to_string(i + 1) + " is corrupt: " + e.what());
        }
        try {
            const std::string key = jsonMember(record, "key").str;
            JobOutcome outcome = outcomeFromJson(record);
            outcome.attempts = static_cast<unsigned>(
                std::stoul(jsonMember(record, "attempts").number));
            map[key] = std::move(outcome); // Last record wins.
        } catch (const JsonParseError &e) {
            DGSIM_FATAL("journal '" + path + "' line " +
                        std::to_string(i + 1) + ": " + e.what());
        }
    }
    return map;
}

} // namespace dgsim::runner
