/**
 * @file
 * Sweep specification: the (workload x SimConfig) matrix of an
 * experiment campaign, expandable into independent jobs.
 */

#ifndef DGSIM_RUNNER_SWEEP_HH
#define DGSIM_RUNNER_SWEEP_HH

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hh"
#include "isa/program.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace dgsim::runner
{

/** What a job executes: a prebuilt program, or a fuzzing candidate. */
enum class JobKind
{
    Simulate,      ///< Run `program` under `config`.
    FuzzCandidate, ///< Synthesize candidate (fuzzSeed, fuzzKey) and
                   ///< run the relational leak oracle on it.
};

/**
 * One unit of work: run one program under one configuration.
 *
 * The program is shared read-only between the jobs of a workload (the
 * timing core copies the initial data image on construction and only
 * reads the text), so expanding a workload into its eight configuration
 * columns does not duplicate multi-megabyte memory images.
 *
 * Fuzz jobs carry no program at all — a candidate is a pure function
 * of (fuzzSeed, fuzzKey), synthesized inside the executing worker, so
 * a million-candidate campaign manifest stays two integers per job.
 */
struct Job
{
    std::size_t index = 0; ///< Position in deterministic expansion order.
    std::string workload;
    std::string suite;
    std::shared_ptr<const Program> program; ///< Null for fuzz jobs.
    SimConfig config;
    JobKind kind = JobKind::Simulate;
    std::uint64_t fuzzKey = 0;  ///< Candidate index (fuzz jobs).
    std::uint64_t fuzzSeed = 0; ///< Campaign seed (fuzz jobs).
};

/**
 * What happened to one job: either a harvested SimResult or a captured
 * error string (the exception message of a failed run). Outcomes are
 * always reported in job-index order, so a sweep's serialized output is
 * identical no matter how many threads executed it.
 */
struct JobOutcome
{
    std::size_t index = 0;
    std::string workload;
    std::string suite;
    std::string configLabel;
    bool ok = false;
    std::string error; ///< Empty when ok.
    SimResult result;  ///< Default-initialized when !ok.

    // --- Fault-tolerance metadata (journal-only; deliberately absent
    // from toJsonLine()'s determinism-compared serialization) ----------
    /** Execution attempts consumed; 0 when a drain skipped the job. */
    unsigned attempts = 1;
    /** Restored from a resume journal instead of executed this run. */
    bool resumed = false;
};

/**
 * A declarative (workload x config) sweep.
 *
 * Expansion order is workloads outer, configs inner — the same order
 * the serial benches used — and is what result ordering is defined
 * against regardless of how many threads execute the jobs.
 */
struct SweepSpec
{
    std::vector<workloads::WorkloadDef> workloads;
    std::vector<SimConfig> configs;
    /** Kernel iteration count; 0 emits an endless loop (budget-bound). */
    workloads::Iterations iterations = 0;

    /**
     * Fuzzing campaign: when nonzero the spec expands to `fuzzCount`
     * leak-oracle candidate jobs (keys 0..fuzzCount-1) instead of the
     * workload x config matrix. configs[0] supplies the oracle's base
     * run budget (fuzz::oracleBaseConfig()).
     */
    std::uint64_t fuzzCount = 0;
    std::uint64_t fuzzSeed = 1;

    /**
     * The paper's full evaluation campaign: every suite workload under
     * the scheme x AP matrix derived from @p base (8 columns).
     */
    static SweepSpec evaluationMatrix(const SimConfig &base);

    /** Total number of jobs this spec expands to. */
    std::size_t
    jobCount() const
    {
        if (fuzzCount != 0)
            return static_cast<std::size_t>(fuzzCount);
        return workloads.size() * configs.size();
    }

    /**
     * Materialize the jobs. Programs are built here, on the calling
     * thread, once per workload; generator determinism makes the
     * expansion reproducible bit-for-bit.
     */
    std::vector<Job> expand() const;
};

} // namespace dgsim::runner

#endif // DGSIM_RUNNER_SWEEP_HH
