/**
 * @file
 * Fixed-size worker pool draining a shared FIFO work queue.
 *
 * Deliberately minimal: the experiment runner only needs "run these N
 * independent closures on K threads and tell me when they are all
 * done", so there is no futures machinery — tasks communicate through
 * whatever state they capture.
 */

#ifndef DGSIM_RUNNER_THREAD_POOL_HH
#define DGSIM_RUNNER_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dgsim::runner
{

/**
 * A pool of worker threads pulling tasks off a shared queue.
 *
 * Tasks must not throw: the experiment runner wraps every job in its
 * own try/catch so a failing job is recorded, not propagated. The pool
 * itself treats an escaping exception as a bug (std::terminate).
 */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (clamped to at least one). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task; any worker may pick it up. */
    void submit(std::function<void()> task);

    /** Block until the queue is empty and no task is executing. */
    void wait();

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Hardware concurrency with a sane fallback for unknown (0). */
    static unsigned hardwareThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable allIdle_;
    unsigned running_ = 0; ///< Tasks currently executing.
    bool stopping_ = false;
};

} // namespace dgsim::runner

#endif // DGSIM_RUNNER_THREAD_POOL_HH
