/**
 * @file
 * The experiment runner: executes a sweep's jobs across a thread pool
 * with per-job exception capture, deterministic result ordering, and
 * live progress reporting, then feeds the outcomes to result sinks.
 */

#ifndef DGSIM_RUNNER_EXPERIMENT_RUNNER_HH
#define DGSIM_RUNNER_EXPERIMENT_RUNNER_HH

#include <functional>
#include <vector>

#include "runner/result_sink.hh"
#include "runner/sweep.hh"

namespace dgsim::runner
{

/** Knobs of one ExperimentRunner. */
struct RunnerOptions
{
    /** Worker threads; 0 selects ThreadPool::hardwareThreads(). */
    unsigned threads = 1;

    /** Live "done/total" progress line on stderr. */
    bool progress = true;

    /**
     * How to execute one job. The default runs
     * runProgram(*job.program, job.config); tests substitute mocks and
     * future campaigns (e.g. fuzzing) can redirect jobs entirely.
     */
    std::function<SimResult(const Job &)> execute;
};

/**
 * Executes independent simulation jobs on N threads.
 *
 * Guarantees:
 *  - Outcomes are returned (and fed to sinks) in job-index order, so
 *    all output is byte-identical regardless of the thread count.
 *  - An exception escaping one job marks that outcome failed (with the
 *    exception message) without affecting other jobs or the pool.
 *  - Sinks are invoked sequentially on the calling thread, after every
 *    job has finished; they need no synchronization of their own.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions options = RunnerOptions{});

    /** Register a sink; not owned, must outlive run(). */
    void addSink(ResultSink *sink) { sinks_.push_back(sink); }

    /** Expand @p spec and run every job. */
    std::vector<JobOutcome> run(const SweepSpec &spec);

    /** Run pre-expanded jobs (indices must be 0..N-1 in order). */
    std::vector<JobOutcome> run(const std::vector<Job> &jobs);

    unsigned threads() const { return threads_; }

  private:
    RunnerOptions options_;
    unsigned threads_;
    std::vector<ResultSink *> sinks_;
};

} // namespace dgsim::runner

#endif // DGSIM_RUNNER_EXPERIMENT_RUNNER_HH
