/**
 * @file
 * The experiment runner: executes a sweep's jobs across a thread pool
 * with per-job exception capture, deterministic result ordering, and
 * live progress reporting, then feeds the outcomes to result sinks.
 *
 * Fault tolerance (all opt-in via RunnerOptions):
 *  - transient host failures (TransientError: injected faults, job
 *    timeouts) are retried with capped exponential backoff; any other
 *    exception is a deterministic sim error, reported once and never
 *    retried;
 *  - a completion journal records every final outcome as it happens, so
 *    a killed sweep resumes by skipping journaled successes;
 *  - a cooperative cancel flag (wired to SIGINT/SIGTERM by dgrun) stops
 *    dispatching queued jobs while in-flight ones finish and are
 *    journaled — the drained run stays resumable;
 *  - deterministic fault injection exercises the whole path in tests.
 */

#ifndef DGSIM_RUNNER_EXPERIMENT_RUNNER_HH
#define DGSIM_RUNNER_EXPERIMENT_RUNNER_HH

#include <atomic>
#include <cstdio>
#include <functional>
#include <vector>

#include "common/backoff.hh"
#include "runner/journal.hh"
#include "runner/result_sink.hh"
#include "runner/sweep.hh"

namespace dgsim::runner
{

/** Knobs of one ExperimentRunner. */
struct RunnerOptions
{
    /** Worker threads; 0 selects ThreadPool::hardwareThreads(). */
    unsigned threads = 1;

    /** Live "done/total" progress line on stderr. */
    bool progress = true;

    /**
     * Opt-in periodic heartbeat: every this many seconds one fully
     * formatted line (jobs done/total, jobs/sec, ETA) is emitted with a
     * single fwrite — the same atomicity discipline as the log path, so
     * concurrent job output never interleaves with it. 0 disables.
     */
    double heartbeatSec = 0.0;

    /** Heartbeat destination; null = stderr (tests inject a tmpfile). */
    std::FILE *heartbeatStream = nullptr;

    /**
     * How to execute one job. The default runs
     * runProgram(*job.program, job.config); tests substitute mocks and
     * future campaigns (e.g. fuzzing) can redirect jobs entirely.
     */
    std::function<SimResult(const Job &)> execute;

    // --- Fault tolerance ------------------------------------------------
    /**
     * Total attempts per job when it fails with a TransientError
     * (injected fault, wall-clock timeout). 1 = no retries.
     * Deterministic sim errors always get exactly one attempt.
     */
    unsigned maxAttempts = 3;

    /** Delay schedule between transient-failure attempts. */
    Backoff backoff;

    /**
     * Deterministic fault injection: each attempt of each job throws a
     * TransientError with this probability (0 disables). The draw is a
     * pure function of (job key, attempt, seed), so a given
     * rate/seed/sweep always fails the same attempts of the same jobs
     * — the whole retry path is testable bit-for-bit.
     */
    double injectFailRate = 0.0;
    std::uint64_t injectFailSeed = 0;

    /** Append-only completion journal path; empty = no journal. */
    std::string journalPath;
    /** Whether journal records carry the (non-deterministic) host
        metrics object; they are restored on resume, never compared. */
    bool journalHostMetrics = true;
    /**
     * fsync the journal after every appended record. Off by default: a
     * flush already survives a process kill, and per-record fsync costs
     * real time on the tier-1 sweeps. Turn on when completed work must
     * survive power loss, not just SIGKILL.
     */
    bool journalSync = false;

    /**
     * Outcomes of a previous run (loadJournal()). Jobs whose key maps
     * to an ok outcome are restored without re-execution; journaled
     * failures run again.
     */
    JournalMap resume;

    /**
     * Cooperative cancel: when *cancel becomes true the runner stops
     * starting queued jobs (they finish as `attempts == 0` failures),
     * completes in-flight ones, journals them and returns normally so
     * sinks still flush. Not owned; may be null.
     */
    const std::atomic<bool> *cancel = nullptr;
};

/**
 * Executes independent simulation jobs on N threads.
 *
 * Guarantees:
 *  - Outcomes are returned (and fed to sinks) in job-index order, so
 *    all output is byte-identical regardless of the thread count.
 *  - An exception escaping one job marks that outcome failed (with the
 *    exception message) without affecting other jobs or the pool.
 *  - Sinks are invoked sequentially on the calling thread, after every
 *    job has finished; they need no synchronization of their own.
 *  - With a journal + resume, a killed-and-resumed sweep's sink output
 *    is byte-identical to the same sweep run uninterrupted.
 */
class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunnerOptions options = RunnerOptions{});

    /** Register a sink; not owned, must outlive run(). */
    void addSink(ResultSink *sink) { sinks_.push_back(sink); }

    /** Expand @p spec and run every job. */
    std::vector<JobOutcome> run(const SweepSpec &spec);

    /** Run pre-expanded jobs (indices must be 0..N-1 in order). */
    std::vector<JobOutcome> run(const std::vector<Job> &jobs);

    unsigned threads() const { return threads_; }

  private:
    /** Run one job to its final outcome (retry loop + fault injection). */
    void executeJob(const Job &job, const std::string &key,
                    JobOutcome &outcome);

    /** True when this attempt should fail by injection. */
    bool injectedFault(const std::string &key, unsigned attempt) const;

    RunnerOptions options_;
    unsigned threads_;
    std::vector<ResultSink *> sinks_;
};

/**
 * Run one job to its final outcome — the exact retry/backoff/fault-
 * injection path the pool workers use, without a pool. The outcome
 * keeps @p job's index untouched (campaign workers run jobs that carry
 * their full-sweep expansion index). @p options supplies execute /
 * maxAttempts / backoff / inject / cancel; journal and resume fields
 * are ignored — the caller owns journaling.
 */
JobOutcome runSingleJob(const Job &job, const std::string &key,
                        const RunnerOptions &options);

} // namespace dgsim::runner

#endif // DGSIM_RUNNER_EXPERIMENT_RUNNER_HH
