/**
 * @file
 * Flight recorder: a fixed-size per-core ring buffer of recent
 * microarchitectural events.
 *
 * The speculation machinery (policy gates, shadow releases, untaints,
 * doppelganger transitions, squashes, structural rejects) drops a
 * 32-byte record into the ring as it acts; the ring is only ever read
 * when something goes wrong — a DGSIM_PANIC / failed DGSIM_ASSERT
 * (via the core's PanicHookGuard) or the commit watchdog — at which
 * point the last kCapacity events explain *why* the pipeline is in
 * the state it is in. Recording is a handful of stores with no
 * branches or allocation, cheap enough to stay on unconditionally.
 */

#ifndef DGSIM_OBS_FLIGHT_RECORDER_HH
#define DGSIM_OBS_FLIGHT_RECORDER_HH

#include <array>
#include <cstdint>
#include <ostream>

#include "common/types.hh"

namespace dgsim
{

/** What happened. Kept scheme-agnostic: the arg disambiguates. */
enum class FrEvent : std::uint8_t
{
    IssueBlocked,    ///< Policy refused a load's demand issue (arg: gate).
    PropBlocked,     ///< Policy refused a load-value propagation (arg: gate).
    ShadowRelease,   ///< A branch resolved / store address resolved.
    Untaint,         ///< STT untaint sweep cleared roots (arg: count).
    DgPredict,       ///< Doppelganger prediction attached at dispatch.
    DgIssue,         ///< Doppelganger access sent to the hierarchy.
    DgVerifyOk,      ///< AGU address matched the prediction.
    DgVerifyBad,     ///< Mismatch; preload discarded, load will replay.
    Squash,          ///< Pipeline squash (arg: SquashReason, addr: redirect).
    MshrReject,      ///< Hierarchy rejected an access (MSHRs full).
    DomDelay,        ///< DoM delayed a speculative miss.
    WatchdogArm,     ///< Commit watchdog noticed a long commit-free gap.
};

/** Why an Issue/PropBlocked event fired (FrRecord::arg). */
enum class FrGate : std::uint32_t
{
    Policy = 1,   ///< Scheme's loadMayIssue/loadMayPropagate said no.
    DomWait = 2,  ///< DoM-delayed load waiting to become non-speculative.
    DgReplay = 3, ///< Mispredicted-doppelganger replay gate.
    StoreData = 4,///< Older matching store's data not produced yet.
};

/** One recorded event. */
struct FrRecord
{
    Cycle cycle = 0;
    SeqNum seq = 0;
    Addr addr = 0;
    std::uint32_t arg = 0;
    FrEvent kind = FrEvent::IssueBlocked;
};

/** Short human-readable name of an event kind. */
const char *frEventName(FrEvent kind);

/** Fixed-size ring of the most recent FrRecords. */
class FlightRecorder
{
  public:
    /// Ring capacity (power of two). 256 x 32 B = 8 KiB per core:
    /// deep enough to span several thousand cycles of a stalled
    /// pipeline's (sparse) event stream, small enough to be free.
    static constexpr std::size_t kCapacity = 256;

    void
    record(FrEvent kind, Cycle cycle, SeqNum seq, Addr addr = 0,
           std::uint32_t arg = 0)
    {
        FrRecord &r = ring_[next_ & (kCapacity - 1)];
        r.cycle = cycle;
        r.seq = seq;
        r.addr = addr;
        r.arg = arg;
        r.kind = kind;
        ++next_;
    }

    /** Total events ever recorded (ring keeps the last kCapacity). */
    std::uint64_t recorded() const { return next_; }

    /**
     * Dump the retained events, oldest first, one per line. @p last
     * limits the output to the most recent N events (0 = all
     * retained).
     */
    void dump(std::ostream &os, std::size_t last = 0) const;

    void
    clear()
    {
        next_ = 0;
    }

  private:
    std::array<FrRecord, kCapacity> ring_{};
    std::uint64_t next_ = 0;
};

} // namespace dgsim

#endif // DGSIM_OBS_FLIGHT_RECORDER_HH
