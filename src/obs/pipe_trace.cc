#include "obs/pipe_trace.hh"

#include <cerrno>
#include <cinttypes>
#include <cstring>

#include "common/log.hh"
#include "isa/isa.hh"

namespace dgsim
{
namespace
{

std::uint64_t
toTick(Cycle cycle)
{
    return cycle * kTicksPerCycle;
}

/** Bracketed speculation annotations appended to the disassembly. */
std::string
annotations(const DynInst &inst, bool squashed)
{
    std::string out;
    switch (inst.dgState) {
      case DgState::None: break;
      case DgState::Predicted: out += " [dg:pred]"; break;
      case DgState::Verified: out += " [dg:ok]"; break;
      case DgState::Mispredicted: out += " [dg:bad]"; break;
    }
    if (inst.forwarded)
        out += " [stl-fwd]";
    if (inst.domDelayed)
        out += " [dom-delayed]";
    if (inst.policyBlocked)
        out += " [policy-blocked]";
    if (inst.resultTainted)
        out += " [tainted]";
    if (squashed)
        out += " [squashed]";
    return out;
}

} // namespace

PipeTracer::PipeTracer(const std::string &path, std::uint64_t start_inst,
                       std::uint64_t max_insts)
    : start_inst_(start_inst), max_insts_(max_insts)
{
    if (path == "-") {
        file_ = stdout;
    } else {
        file_ = std::fopen(path.c_str(), "w");
        owns_file_ = file_ != nullptr;
        if (!file_)
            DGSIM_WARN("cannot open trace file " + path + ": " +
                       std::strerror(errno) + "; tracing disabled");
    }
}

PipeTracer::~PipeTracer()
{
    if (file_ && owns_file_)
        std::fclose(file_);
}

void
PipeTracer::flush(const DynInst &inst, Cycle retire_cycle)
{
    if (!file_)
        return;
    const bool squashed = retire_cycle == 0;
    const std::string disasm =
        disassemble(inst.inst) + annotations(inst, squashed);
    const std::uint64_t retire_tick = toTick(retire_cycle);
    // Stage stamps an instruction never reached stay 0 (gem5's own
    // convention for squashed instructions).
    const std::uint64_t issue_tick =
        inst.issuedAt == kInvalidCycle ? 0 : toTick(inst.issuedAt);
    const std::uint64_t complete_tick =
        inst.completedAt == kInvalidCycle ? 0 : toTick(inst.completedAt);
    std::fprintf(file_,
                 "O3PipeView:fetch:%" PRIu64 ":0x%08" PRIx64 ":0:%" PRIu64
                 ":%s\n"
                 "O3PipeView:decode:%" PRIu64 "\n"
                 "O3PipeView:rename:%" PRIu64 "\n"
                 "O3PipeView:dispatch:%" PRIu64 "\n"
                 "O3PipeView:issue:%" PRIu64 "\n"
                 "O3PipeView:complete:%" PRIu64 "\n"
                 "O3PipeView:retire:%" PRIu64 ":store:%" PRIu64 "\n",
                 toTick(inst.tsFetch), inst.pc, inst.seq, disasm.c_str(),
                 toTick(inst.tsDecode), toTick(inst.dispatchedAt),
                 toTick(inst.dispatchedAt), issue_tick, complete_tick,
                 retire_tick,
                 inst.isStore() && !squashed ? retire_tick : 0);
    ++records_;
}

// ---------------------------------------------------------------------
// Parser + validator (shared by trace_test and dgrun --validate-trace).
// ---------------------------------------------------------------------

namespace
{

/** Parse "<num>" strictly. */
std::uint64_t
parseNum(const std::string &text, int base, const std::string &line)
{
    errno = 0;
    char *end = nullptr;
    const std::uint64_t value = std::strtoull(text.c_str(), &end, base);
    if (text.empty() || *end != '\0' || errno == ERANGE)
        DGSIM_FATAL("bad number '" + text + "' in trace line: " + line);
    return value;
}

/** Split off the next ':'-delimited field starting at @p pos. */
std::string
nextField(const std::string &line, std::size_t &pos)
{
    const std::size_t colon = line.find(':', pos);
    if (colon == std::string::npos)
        DGSIM_FATAL("truncated trace line: " + line);
    std::string field = line.substr(pos, colon - pos);
    pos = colon + 1;
    return field;
}

/** Expect "O3PipeView:<stage>:<tick>" and return the tick. */
std::uint64_t
parseStageLine(const std::string &line, const char *stage)
{
    std::size_t pos = 0;
    if (nextField(line, pos) != "O3PipeView" ||
        nextField(line, pos) != stage) {
        DGSIM_FATAL(std::string("expected O3PipeView:") + stage +
                    " line, got: " + line);
    }
    return parseNum(line.substr(pos), 10, line);
}

} // namespace

std::vector<TraceRecord>
parseO3PipeView(std::istream &is)
{
    std::vector<TraceRecord> records;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        TraceRecord record;
        // O3PipeView:fetch:<tick>:0x<pc>:0:<seq>:<disasm>
        std::size_t pos = 0;
        if (nextField(line, pos) != "O3PipeView" ||
            nextField(line, pos) != "fetch")
            DGSIM_FATAL("expected O3PipeView:fetch line, got: " + line);
        record.fetch = parseNum(nextField(line, pos), 10, line);
        record.pc = parseNum(nextField(line, pos), 16, line);
        nextField(line, pos); // Context id, always 0.
        record.seq = parseNum(nextField(line, pos), 10, line);
        record.disasm = line.substr(pos);

        auto stage = [&is, &line](const char *name) {
            if (!std::getline(is, line))
                DGSIM_FATAL(std::string("trace truncated before ") + name +
                            " line");
            return parseStageLine(line, name);
        };
        record.decode = stage("decode");
        record.rename = stage("rename");
        record.dispatch = stage("dispatch");
        record.issue = stage("issue");
        record.complete = stage("complete");
        // O3PipeView:retire:<tick>:store:<tick>
        if (!std::getline(is, line))
            DGSIM_FATAL("trace truncated before retire line");
        pos = 0;
        if (nextField(line, pos) != "O3PipeView" ||
            nextField(line, pos) != "retire")
            DGSIM_FATAL("expected O3PipeView:retire line, got: " + line);
        record.retire = parseNum(nextField(line, pos), 10, line);
        if (nextField(line, pos) != "store")
            DGSIM_FATAL("malformed retire line: " + line);
        record.storeTick = parseNum(line.substr(pos), 10, line);
        record.squashed = record.retire == 0;
        records.push_back(std::move(record));
    }
    return records;
}

std::string
validateO3PipeView(const std::vector<TraceRecord> &records)
{
    SeqNum last_retired_seq = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const TraceRecord &r = records[i];
        const auto fail = [&](const std::string &why) {
            return "record " + std::to_string(i) + " (seq " +
                   std::to_string(r.seq) + "): " + why;
        };
        if (r.fetch == 0)
            return fail("missing fetch stamp");
        // Non-decreasing stamps over the stages actually reached.
        const std::uint64_t stamps[] = {r.fetch,    r.decode,   r.rename,
                                        r.dispatch, r.issue,    r.complete,
                                        r.retire};
        std::uint64_t prev = 0;
        for (std::uint64_t stamp : stamps) {
            if (stamp == 0)
                continue; // Stage never reached (squash / no-op class).
            if (stamp < prev)
                return fail("stage stamps not monotonic: " +
                            std::to_string(stamp) + " after " +
                            std::to_string(prev));
            prev = stamp;
        }
        const bool flagged =
            r.disasm.find("[squashed]") != std::string::npos;
        if (r.squashed != flagged)
            return fail(r.squashed ? "squashed record lacks [squashed] flag"
                                   : "retired record carries [squashed]");
        if (!r.squashed) {
            if (r.complete == 0)
                return fail("retired without a complete stamp");
            if (r.seq <= last_retired_seq)
                return fail("retired out of sequence order");
            last_retired_seq = r.seq;
        }
    }
    return "";
}

} // namespace dgsim
