#include "obs/flight_recorder.hh"

#include <algorithm>
#include <cstdio>

namespace dgsim
{

const char *
frEventName(FrEvent kind)
{
    switch (kind) {
      case FrEvent::IssueBlocked: return "issue-blocked";
      case FrEvent::PropBlocked: return "prop-blocked";
      case FrEvent::ShadowRelease: return "shadow-release";
      case FrEvent::Untaint: return "untaint";
      case FrEvent::DgPredict: return "dg-predict";
      case FrEvent::DgIssue: return "dg-issue";
      case FrEvent::DgVerifyOk: return "dg-verify-ok";
      case FrEvent::DgVerifyBad: return "dg-verify-bad";
      case FrEvent::Squash: return "squash";
      case FrEvent::MshrReject: return "mshr-reject";
      case FrEvent::DomDelay: return "dom-delay";
      case FrEvent::WatchdogArm: return "watchdog-arm";
    }
    return "?";
}

void
FlightRecorder::dump(std::ostream &os, std::size_t last) const
{
    const std::uint64_t retained = std::min<std::uint64_t>(next_, kCapacity);
    std::uint64_t count = retained;
    if (last != 0)
        count = std::min<std::uint64_t>(count, last);
    os << "flight recorder: " << next_ << " events recorded, showing last "
       << count << "\n";
    char line[160];
    for (std::uint64_t i = next_ - count; i < next_; ++i) {
        const FrRecord &r = ring_[i & (kCapacity - 1)];
        std::snprintf(line, sizeof(line),
                      "  cycle %12llu  %-14s seq %10llu  addr 0x%llx  arg %u\n",
                      static_cast<unsigned long long>(r.cycle),
                      frEventName(r.kind),
                      static_cast<unsigned long long>(r.seq),
                      static_cast<unsigned long long>(r.addr), r.arg);
        os << line;
    }
}

} // namespace dgsim
