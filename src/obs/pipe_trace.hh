/**
 * @file
 * O3PipeView-compatible pipeline trace writer + parser.
 *
 * The writer emits the gem5 O3 "O3PipeView:" line format that Konata
 * and gem5's util/o3-pipeview.py consume directly: for every traced
 * instruction, seven contiguous lines carrying the fetch / decode /
 * rename / dispatch / issue / complete / retire tick stamps. dgsim
 * runs on cycles; ticks are cycles x kTicksPerCycle (1000), matching
 * the viewers' default tick-per-cycle assumption.
 *
 * dgsim-specific speculation state is appended to the disassembly
 * field in square brackets ("[dg:ok]", "[policy-blocked]",
 * "[tainted]", "[squashed]", ...), where both viewers display it as
 * part of the instruction text.
 *
 * Tracing is window-gated: instructions are armed for tracing at
 * dispatch once `traceStartInst` instructions have committed, and at
 * most `traceMaxInsts` instructions are armed. Records are written
 * when an armed instruction leaves the machine (commit or squash;
 * squashed instructions carry retire tick 0, the gem5 convention).
 */

#ifndef DGSIM_OBS_PIPE_TRACE_HH
#define DGSIM_OBS_PIPE_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <istream>
#include <string>
#include <vector>

#include "common/types.hh"
#include "cpu/dyn_inst.hh"

namespace dgsim
{

/** Ticks per core cycle in the emitted trace. */
constexpr std::uint64_t kTicksPerCycle = 1000;

/** Window-gated O3PipeView trace writer. */
class PipeTracer
{
  public:
    /**
     * @param path output file ("-" for stdout).
     * @param start_inst arm instructions only after this many commits.
     * @param max_insts arm at most this many instructions (0 = all).
     */
    PipeTracer(const std::string &path, std::uint64_t start_inst,
               std::uint64_t max_insts);
    ~PipeTracer();

    PipeTracer(const PipeTracer &) = delete;
    PipeTracer &operator=(const PipeTracer &) = delete;

    /** File opened successfully (constructor warns otherwise). */
    bool ok() const { return file_ != nullptr; }

    /**
     * Called at dispatch: should this instruction be traced? Counts
     * armed instructions against the window.
     */
    bool
    shouldArm(std::uint64_t committed_so_far)
    {
        if (!file_ || committed_so_far < start_inst_)
            return false;
        if (max_insts_ != 0 && armed_ >= max_insts_)
            return false;
        ++armed_;
        return true;
    }

    /**
     * Write the record of a traced instruction leaving the machine.
     * @p retire_cycle is 0 for squashed instructions.
     */
    void flush(const DynInst &inst, Cycle retire_cycle);

    /** Records written so far (committed + squashed). */
    std::uint64_t records() const { return records_; }

  private:
    std::FILE *file_ = nullptr;
    bool owns_file_ = false;
    std::uint64_t start_inst_;
    std::uint64_t max_insts_;
    std::uint64_t armed_ = 0;
    std::uint64_t records_ = 0;
};

/** One parsed O3PipeView record (ticks; 0 = stage never reached). */
struct TraceRecord
{
    SeqNum seq = 0;
    Addr pc = 0;
    std::string disasm; ///< Includes the bracketed annotations.
    std::uint64_t fetch = 0;
    std::uint64_t decode = 0;
    std::uint64_t rename = 0;
    std::uint64_t dispatch = 0;
    std::uint64_t issue = 0;
    std::uint64_t complete = 0;
    std::uint64_t retire = 0;
    std::uint64_t storeTick = 0;
    bool squashed = false; ///< retire == 0.
};

/**
 * Parse a stream of O3PipeView lines into records. Unknown lines are
 * rejected (DGSIM_FATAL): a dgsim trace contains nothing else.
 */
std::vector<TraceRecord> parseO3PipeView(std::istream &is);

/**
 * Structural validation of a parsed trace: per-record stage stamps
 * must be monotonically non-decreasing (over the stages actually
 * reached), retired records must have completed, squash flags must
 * match the annotation, and retired sequence numbers must be strictly
 * increasing (commit order).
 * @return empty string if valid, else a description of the first
 * violation.
 */
std::string validateO3PipeView(const std::vector<TraceRecord> &records);

} // namespace dgsim

#endif // DGSIM_OBS_PIPE_TRACE_HH
