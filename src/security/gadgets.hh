/**
 * @file
 * Speculative side-channel attack gadgets, written in the dgsim
 * micro-ISA.
 *
 * Each builder returns a complete program parameterized by a secret
 * value. The leak checker (leak.hh) runs the same gadget with two
 * different secrets and compares the persistent microarchitectural
 * state (cache digest) after both runs: a difference means the secret
 * leaked into the memory hierarchy.
 *
 * The gadgets mirror the paper's discussion:
 *  - spectreV1Gadget: the classic bounds-check-bypass universal read
 *    gadget (paper Fig. 1a) that NDA-P/STT/DoM all block;
 *  - domSpeculativeSecretGadget: Figure 4a — a secret loaded
 *    speculatively (hitting in the L1) steers a branch with
 *    address-predicted loads on both sides;
 *  - registerSecretGadget: Figure 4b — a secret residing in a register
 *    non-speculatively steers a transient branch (DoM protects this;
 *    NDA-P/STT's threat models do not).
 */

#ifndef DGSIM_SECURITY_GADGETS_HH
#define DGSIM_SECURITY_GADGETS_HH

#include <cstdint>

#include "isa/program.hh"

namespace dgsim::security
{

/**
 * Spectre v1: bounds-check bypass.
 *
 * A victim routine `if (idx < size) v = array1[idx]; probe[v*k]` is
 * trained with in-bounds indices, the bounds word is evicted from the
 * L1, and one out-of-bounds access transiently reads the secret placed
 * just past array1 and encodes it in the probe array.
 */
Program spectreV1Gadget(std::uint64_t secret);

/**
 * Figure 4a: the secret is loaded *speculatively* but hits in the L1
 * (DoM allows that); a dependent branch selects between two loads with
 * well-trained address predictions on distinct lines. Leaks under
 * DoM+AP only if branches resolve out of order (the §4.6 ablation).
 */
Program domSpeculativeSecretGadget(std::uint64_t secret);

/**
 * Figure 4b: the secret is loaded *non-speculatively* into a register
 * long before the transient window, then steers a transient branch
 * with distinct loads on the two paths. DoM's threat model protects
 * register secrets; NDA-P's and STT's do not (paper §3).
 */
Program registerSecretGadget(std::uint64_t secret);

} // namespace dgsim::security

#endif // DGSIM_SECURITY_GADGETS_HH
