#include "security/leak.hh"

#include <algorithm>
#include <map>

#include "common/errors.hh"
#include "common/log.hh"
#include "common/rng.hh"

namespace dgsim::security
{

const char *
verdictName(LeakVerdict verdict)
{
    switch (verdict) {
      case LeakVerdict::NoLeak:
        return "no-leak";
      case LeakVerdict::Leak:
        return "leak";
      case LeakVerdict::Inconclusive:
        return "inconclusive";
    }
    return "?";
}

std::vector<SecretPair>
defaultSecretPairs(std::uint64_t seed, unsigned random_pairs)
{
    std::vector<SecretPair> pairs = {
        {3, 5},                  // the historical adjacent pair
        {2, 3},                  // parity differs (low bit only)
        {0, 1ULL << 63},         // MSB-only channel
        {0, ~std::uint64_t{0}},  // every bit flipped
    };
    Rng rng(seed);
    for (unsigned i = 0; i < random_pairs; ++i) {
        SecretPair pair{rng.next(), rng.next()};
        if (pair.a == pair.b) // astronomically unlikely, but fatal
            pair.b = ~pair.b; // to the relational premise
        pairs.push_back(pair);
    }
    return pairs;
}

namespace
{

/** One secret's run: the result, or the wedge that prevented one. */
struct OracleRun
{
    SimResult result;
    bool wedged = false;
    std::string wedgeReason;
};

OracleRun
runSecret(const std::function<Program(std::uint64_t)> &builder,
          const SimConfig &config, std::uint64_t secret)
{
    OracleRun run;
    const Program program = builder(secret);
    try {
        run.result = runProgram(program, config);
    } catch (const WatchdogError &error) {
        run.wedged = true;
        run.wedgeReason = error.what();
    }
    return run;
}

/** Health validation for one pair; nonempty return = inconclusive. */
std::string
healthProblem(const OracleRun &a, const OracleRun &b)
{
    const auto describe = [](const OracleRun &run, char tag) {
        if (run.wedged)
            return std::string("run ") + tag + " tripped the commit "
                   "watchdog (" + run.wedgeReason + ")";
        if (run.result.hitMaxCycles)
            return std::string("run ") + tag + " hit the maxCycles "
                   "limit without committing HALT";
        if (!run.result.halted)
            return std::string("run ") + tag + " stopped before "
                   "committing HALT";
        return std::string();
    };
    std::string problem = describe(a, 'A');
    if (problem.empty())
        problem = describe(b, 'B');
    if (!problem.empty())
        return problem;
    if (a.result.instructions != b.result.instructions) {
        return "secret-dependent architectural divergence: " +
               std::to_string(a.result.instructions) + " vs " +
               std::to_string(b.result.instructions) +
               " committed instructions (the secret steers the "
               "committed path, so any digest difference would be "
               "architectural, not speculative)";
    }
    return std::string();
}

} // namespace

LeakCheck
checkLeakPairs(const std::function<Program(std::uint64_t)> &builder,
               const SimConfig &config,
               const std::vector<SecretPair> &pairs, bool quiet)
{
    SimConfig run_config = config;
    if (run_config.maxCycles == 0)
        run_config.maxCycles = 50'000'000;
    // A wedged machine-generated gadget is a classifiable outcome, not
    // a process-fatal bug.
    run_config.watchdogThrows = true;

    // Each distinct secret is simulated once; pairs share runs.
    std::map<std::uint64_t, OracleRun> runs;
    const auto runOf = [&](std::uint64_t secret) -> const OracleRun & {
        auto it = runs.find(secret);
        if (it == runs.end()) {
            it = runs.emplace(secret,
                              runSecret(builder, run_config, secret))
                     .first;
        }
        return it->second;
    };

    LeakCheck check;
    bool any_inconclusive = false;
    LeakCheck first_inconclusive;
    for (const SecretPair &pair : pairs) {
        const OracleRun &run_a = runOf(pair.a);
        const OracleRun &run_b = runOf(pair.b);

        LeakCheck pair_check;
        pair_check.secretA = pair.a;
        pair_check.secretB = pair.b;
        pair_check.digestA = run_a.wedged ? 0 : run_a.result.uarchDigest;
        pair_check.digestB = run_b.wedged ? 0 : run_b.result.uarchDigest;

        const std::string problem = healthProblem(run_a, run_b);
        if (!problem.empty()) {
            pair_check.verdict = LeakVerdict::Inconclusive;
            pair_check.reason = problem;
            if (!quiet)
                DGSIM_WARN("leak check inconclusive for secrets (" +
                           std::to_string(pair.a) + ", " +
                           std::to_string(pair.b) + "): " + problem);
            if (!any_inconclusive) {
                any_inconclusive = true;
                first_inconclusive = pair_check;
            }
            continue;
        }
        pair_check.cycles =
            std::max(run_a.result.cycles, run_b.result.cycles);

        if (pair_check.digestA != pair_check.digestB) {
            // First leaking pair wins; pair order is deterministic.
            pair_check.verdict = LeakVerdict::Leak;
            return pair_check;
        }
        pair_check.verdict = LeakVerdict::NoLeak;
        check = pair_check;
    }

    // No pair leaked: a single unhealthy pair poisons the whole check —
    // "we couldn't tell" must never read as "proven safe".
    if (any_inconclusive)
        return first_inconclusive;
    return check;
}

LeakCheck
checkLeak(const std::function<Program(std::uint64_t)> &builder,
          const SimConfig &config, std::uint64_t secret_a,
          std::uint64_t secret_b)
{
    return checkLeakPairs(builder, config, {{secret_a, secret_b}});
}

} // namespace dgsim::security
