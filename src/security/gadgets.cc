#include "security/gadgets.hh"

#include "isa/assembler.hh"

namespace dgsim::security
{
namespace
{

// Register conventions for the gadgets.
constexpr RegIndex rT = 1;      ///< Loop counter.
constexpr RegIndex rBound = 2;
constexpr RegIndex rIdx = 3;
constexpr RegIndex rSz = 4;
constexpr RegIndex rA = 5;
constexpr RegIndex rV = 6;
constexpr RegIndex rJunk = 7;
constexpr RegIndex rP = 8;
constexpr RegIndex rEnd = 9;
constexpr RegIndex rMask = 10;
constexpr RegIndex rSecretReg = 11;
constexpr RegIndex rB = 12;

// Memory layout (distinct cache lines / regions).
constexpr Addr kSizeWord = 0x1000;
constexpr Addr kArray1 = 0x2000;   ///< 16 benign words + the secret.
constexpr Addr kProbe = 0x100000;  ///< Probe array (leak receiver).
constexpr Addr kX = 0x5000;
constexpr Addr kY = 0x6000;
constexpr Addr kEvict = 0x4000000; ///< Eviction streaming buffer.

/** Stream over @p bytes at line stride to evict the L1 (and more). */
void
emitEvict(Assembler &assembler, Addr start, std::uint64_t bytes,
          const std::string &suffix)
{
    const std::string loop = "evict_" + suffix;
    assembler.li(rP, start);
    assembler.li(rEnd, start + bytes);
    assembler.label(loop);
    assembler.ld(rJunk, rP);
    assembler.addi(rP, rP, 64);
    assembler.blt(rP, rEnd, loop);
}

/**
 * Burn ~3*n cycles on a serial multiply chain. Used between the
 * committed preload of the secret's line and the victim code so the
 * fill has completed by the time the transient window opens (otherwise
 * DoM classifies the in-flight line as a miss and delays the
 * speculative secret load, defusing the gadget by accident rather than
 * by policy).
 */
void
emitSpacer(Assembler &assembler, unsigned n)
{
    assembler.li(rP, 3);
    for (unsigned i = 0; i < n; ++i)
        assembler.mul(rP, rP, rP);
}

/**
 * Targeted conflict-set eviction: @p count loads at @p stride_bytes
 * from @p start. With stride 256 KiB (4096 lines) all accesses map to
 * one L1 set *and* one L2 set, evicting exactly the victim's
 * conflicting lines while leaving every other set (e.g. the secret's)
 * untouched.
 */
void
emitEvictStride(Assembler &assembler, Addr start, unsigned count,
                std::uint64_t stride_bytes, const std::string &suffix)
{
    (void)suffix;
    // Straight-line (unrolled) absolute-addressed loads: no branches
    // (an untrained back-edge would mispredict and its wrong path would
    // re-fetch the lines being evicted) and no address dependency chain
    // (all loads are port-ready immediately, so younger victim loads
    // cannot overtake the eviction in the load queue).
    for (unsigned i = 0; i < count; ++i) {
        assembler.ld(rJunk, 0,
                     static_cast<std::int64_t>(start + i * stride_bytes));
    }
}

} // namespace

Program
spectreV1Gadget(std::uint64_t secret)
{
    Assembler assembler("spectre-v1");
    constexpr std::uint64_t kElems = 16;
    constexpr std::uint64_t kTrainRounds = 64;

    assembler.data(kSizeWord, kElems);
    for (std::uint64_t i = 0; i < kElems; ++i)
        assembler.data(kArray1 + i * 8, 1 + (i & 1)); // benign: 1 or 2
    // The secret lives just past the array (the classic layout); the
    // benign word next to it keeps the secret's line L1-hot via the
    // committed load below, as a victim that recently used the secret
    // would.
    assembler.data(kArray1 + kElems * 8, secret);
    assembler.data(kArray1 + (kElems + 1) * 8, 0);

    assembler.li(rT, 0);
    assembler.li(rBound, kTrainRounds + 1);
    assembler.label("loop");
    // idx = t & 15 during training; 16 (out of bounds) at t == 64.
    assembler.andi(rIdx, rT, 15);
    assembler.srli(rMask, rT, 6);
    assembler.andi(rMask, rMask, 1);
    assembler.slli(rMask, rMask, 4);
    assembler.or_(rIdx, rIdx, rMask);
    // Right before the attack round, evict the bounds word from the L1
    // so the bounds check resolves slowly (the transient window).
    assembler.xori(rA, rT, kTrainRounds);
    assembler.bne(rA, 0, "no_evict");
    emitEvict(assembler, kEvict, 96 * 1024, "v1");
    assembler.label("no_evict");

    // Keep the secret's line resident (committed benign access), and
    // give the fill time to land before the victim runs.
    assembler.ld(rJunk, 0, kArray1 + (kElems + 1) * 8);
    emitSpacer(assembler, 40);

    // ---- The victim routine ----------------------------------------
    assembler.ld(rSz, 0, kSizeWord);       // bounds word (slow at attack)
    assembler.bge(rIdx, rSz, "bounds_ok"); // not taken while training
    assembler.slli(rA, rIdx, 3);
    assembler.ld(rV, rA, kArray1);         // array1[idx] (secret at t=64)
    assembler.slli(rV, rV, 9);             // v * 512: distinct probe lines
    assembler.ld(rJunk, rV, kProbe);       // transmit via the probe array
    assembler.label("bounds_ok");

    assembler.addi(rT, rT, 1);
    assembler.blt(rT, rBound, "loop");
    assembler.halt();
    return assembler.finish();
}

Program
domSpeculativeSecretGadget(std::uint64_t secret)
{
    Assembler assembler("dom-fig4a");
    // Training walks A1[0..63] with a constant stride, so the stride
    // predictor's (committed, secret-independent) extrapolation for the
    // attack instance lands exactly on the secret at A1[64]: the secret
    // load's doppelganger is *correctly* predicted, as for the static
    // [secret] address in the paper's Figure 4a.
    constexpr std::uint64_t kElems = 64;
    constexpr std::uint64_t kTrainRounds = kElems;

    assembler.data(kSizeWord, kElems);
    // Benign values alternate parity so both inner paths (and both
    // address-predicted loads X and Y) are trained architecturally.
    for (std::uint64_t i = 0; i < kElems; ++i)
        assembler.data(kArray1 + i * 8, i & 1);
    // The secret sits just past the array; its *line* is kept L1-hot by
    // the committed load of the adjacent benign word below (Fig 4a's
    // "hit -- DoM allows").
    assembler.data(kArray1 + kElems * 8, secret);
    assembler.data(kArray1 + (kElems + 1) * 8, 0);

    assembler.li(rT, 0);
    assembler.li(rBound, kTrainRounds + 1);
    assembler.label("loop");

    assembler.xori(rA, rT, kTrainRounds);
    assembler.bne(rA, 0, "no_evict");
    // Targeted conflict eviction: lines congruent to the bounds word's
    // line (64) mod 4096 share its L1 set *and* its L2 set, so these 16
    // loads push the bounds word out of both (L3 hit -> a wide transient
    // window) and push X/Y (same L1 set) out of the L1, while leaving
    // the secret's set completely untouched (its line stays L1-hot).
    emitEvictStride(assembler, 0x41000, 16, 256 * 1024, "f4a");
    // Spacer: the bounds-word load (and its stride-0 doppelganger!)
    // must not reach the memory ports before the eviction's installs
    // complete, or the doppelganger L1-hits and closes the window. The
    // eviction misses contend for MSHRs with older in-flight misses, so
    // their installs can trickle in for hundreds of cycles; 400 serial
    // multiplies fill the ROB and stall the victim's *dispatch* until
    // they commit (~1200 cycles), safely past the eviction tail.
    emitSpacer(assembler, 400);
    assembler.label("no_evict");

    // Keep the secret's line L1-hot with a committed benign access
    // (training never touches it otherwise).
    assembler.ld(rJunk, 0, kArray1 + (kElems + 1) * 8);

    // ---- Victim (idx == t: in bounds while training) ------------------
    assembler.ld(rSz, 0, kSizeWord);
    assembler.bge(rT, rSz, "bounds_ok");
    assembler.slli(rA, rT, 3);
    assembler.ld(rV, rA, kArray1);   // speculative load; L1 hit at attack
    assembler.andi(rB, rV, 1);
    assembler.bne(rB, 0, "odd");     // secret-dependent branch (Fig 4a)
    assembler.ld(rJunk, 0, kX);      // address-predicted load, line X
    assembler.jmp("bounds_ok");
    assembler.label("odd");
    assembler.ld(rJunk, 0, kY);      // address-predicted load, line Y
    assembler.label("bounds_ok");

    assembler.addi(rT, rT, 1);
    assembler.blt(rT, rBound, "loop");
    assembler.halt();
    return assembler.finish();
}

Program
registerSecretGadget(std::uint64_t secret)
{
    Assembler assembler("dom-fig4b");
    constexpr Addr kSecretWord = 0x7000;
    constexpr std::uint64_t kTrainRounds = 64;

    assembler.data(kSecretWord, secret);
    assembler.data(kSizeWord, kTrainRounds);

    // The secret is loaded *non-speculatively*, long before the attack
    // (Fig 4b: "secret loaded non-speculatively into a register").
    assembler.ld(rSecretReg, 0, kSecretWord);

    assembler.li(rT, 0);
    assembler.li(rBound, kTrainRounds + 1);
    assembler.label("loop");
    assembler.xori(rA, rT, kTrainRounds);
    assembler.bne(rA, 0, "no_evict");
    emitEvict(assembler, kEvict, 3 * 1024 * 1024, "f4b");
    assembler.label("no_evict");

    // mask = 0 while training (inner predicate is constant and commits
    // harmlessly); 1 only in the transient attack round.
    assembler.srli(rMask, rT, 6);
    assembler.andi(rMask, rMask, 1);

    // ---- Victim -------------------------------------------------------
    assembler.ld(rSz, 0, kSizeWord);      // slow at attack (evicted)
    assembler.bge(rT, rSz, "bounds_ok");  // not taken while training
    assembler.and_(rB, rSecretReg, rMask); // benign 0 in training
    assembler.bne(rB, 0, "odd");          // register-secret branch
    assembler.ld(rJunk, 0, kX);
    assembler.jmp("bounds_ok");
    assembler.label("odd");
    assembler.ld(rJunk, 0, kY);           // fetched only if secret odd
    assembler.label("bounds_ok");

    assembler.addi(rT, rT, 1);
    assembler.blt(rT, rBound, "loop");
    assembler.halt();
    return assembler.finish();
}

} // namespace dgsim::security
