/**
 * @file
 * Relational leak oracle: runs the same gadget with two different
 * secret values and compares the persistent microarchitectural state
 * afterwards.
 *
 * This operationalizes the paper's leakage definition: an adversary who
 * can probe the machine after the transient window learns the secret
 * iff the µarch digest differs between secrets. Three hardening rules
 * (each closed a real blind spot of the original checker):
 *
 *  1. Run health is validated first. A run that never committed HALT
 *     (hit maxCycles or tripped the commit watchdog), or a secret pair
 *     whose runs commit *different instruction counts* (the secret is
 *     architecturally visible — the gadget is broken, not leaky), is
 *     classified `Inconclusive`, loudly, instead of silently diffing
 *     partial-state digests.
 *
 *  2. The diffed digest is SimResult::uarchDigest — caches plus
 *     gshare/GHR/BTB plus the stride prefetcher — not the cache-only
 *     cacheDigest, so predictor-channel leaks are visible.
 *
 *  3. Secrets come in a seeded *list* of pairs (MSB-only,
 *     all-bits-flipped, adjacent, random) rather than one hardcoded
 *     low-bits pair, so single-bit-channel gadgets aren't missed by
 *     construction.
 */

#ifndef DGSIM_SECURITY_LEAK_HH
#define DGSIM_SECURITY_LEAK_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/config.hh"
#include "isa/program.hh"
#include "sim/simulator.hh"

namespace dgsim::security
{

/** Three-way classification of a differential run. */
enum class LeakVerdict
{
    NoLeak,       ///< Both runs healthy, digests equal for every pair.
    Leak,         ///< Both runs healthy, digests differ for some pair.
    Inconclusive, ///< A run wedged / hit limits / diverged architecturally.
};

/** Stable short name ("no-leak" / "leak" / "inconclusive"). */
const char *verdictName(LeakVerdict verdict);

/** One two-secret input to the relational oracle. */
struct SecretPair
{
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/** Outcome of a two-secret differential run. */
struct LeakCheck
{
    LeakVerdict verdict = LeakVerdict::NoLeak;
    std::uint64_t digestA = 0;
    std::uint64_t digestB = 0;
    /** The secret pair behind the verdict (the leaking pair for Leak,
     * the failing pair for Inconclusive, the last pair for NoLeak). */
    std::uint64_t secretA = 0;
    std::uint64_t secretB = 0;
    /** Human-readable cause when the verdict is Inconclusive. */
    std::string reason;
    /** The slower run's committed cycle count (0 when Inconclusive).
     * The minimizer budgets its probe runs from this: a deletion that
     * un-terminates the gadget fails fast instead of spinning to the
     * full oracle cycle limit. */
    std::uint64_t cycles = 0;

    /** True if the secret left a secret-dependent trace. */
    bool leaked() const { return verdict == LeakVerdict::Leak; }
    bool inconclusive() const
    {
        return verdict == LeakVerdict::Inconclusive;
    }
};

/**
 * The seeded secret-pair list (satellite 3): deterministic function of
 * @p seed. Always contains the fixed structural pairs — adjacent
 * (3, 5), parity-differing (2, 3), MSB-only (0, 1<<63) and
 * all-bits-flipped (0, ~0) — plus @p random_pairs seeded random pairs.
 */
std::vector<SecretPair> defaultSecretPairs(std::uint64_t seed = 1,
                                           unsigned random_pairs = 2);

/**
 * Build the gadget with two different secrets, run both to completion
 * under @p config, validate run health, and diff the widened µarch
 * digests. The commit watchdog is put into throwing mode for these
 * runs so a wedged gadget classifies as Inconclusive instead of
 * aborting the process.
 */
LeakCheck checkLeak(const std::function<Program(std::uint64_t)> &builder,
                    const SimConfig &config, std::uint64_t secret_a = 3,
                    std::uint64_t secret_b = 5);

/**
 * Run the oracle over a whole secret-pair list (each distinct secret is
 * simulated once, memoized). The first leaking pair wins — pair order
 * is deterministic, so so is the reported pair. With no leaking pair,
 * any inconclusive pair makes the whole check Inconclusive; otherwise
 * NoLeak.
 *
 * @p quiet suppresses the per-pair inconclusive warning — for callers
 * like the minimizer whose probe deletions *expectedly* break gadgets
 * thousands of times; a campaign's primary oracle runs stay loud.
 */
LeakCheck
checkLeakPairs(const std::function<Program(std::uint64_t)> &builder,
               const SimConfig &config,
               const std::vector<SecretPair> &pairs, bool quiet = false);

} // namespace dgsim::security

#endif // DGSIM_SECURITY_LEAK_HH
