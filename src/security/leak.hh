/**
 * @file
 * Leak checker: runs the same gadget with two different secret values
 * and compares the persistent microarchitectural state afterwards.
 *
 * This operationalizes the paper's leakage definition: an adversary who
 * can probe the memory hierarchy after the transient window learns the
 * secret iff the cache digest differs between secrets.
 */

#ifndef DGSIM_SECURITY_LEAK_HH
#define DGSIM_SECURITY_LEAK_HH

#include <cstdint>
#include <functional>

#include "common/config.hh"
#include "isa/program.hh"
#include "sim/simulator.hh"

namespace dgsim::security
{

/** Outcome of a two-secret differential run. */
struct LeakCheck
{
    std::uint64_t digestA = 0;
    std::uint64_t digestB = 0;

    /** True if the secret left a secret-dependent trace. */
    bool leaked() const { return digestA != digestB; }
};

/**
 * Build the gadget with two different secrets, run both to completion
 * under @p config, and diff the cache digests.
 */
inline LeakCheck
checkLeak(const std::function<Program(std::uint64_t)> &builder,
          const SimConfig &config, std::uint64_t secret_a = 3,
          std::uint64_t secret_b = 5)
{
    SimConfig run_config = config;
    if (run_config.maxCycles == 0)
        run_config.maxCycles = 50'000'000;

    const Program program_a = builder(secret_a);
    const Program program_b = builder(secret_b);
    const SimResult result_a = runProgram(program_a, run_config);
    const SimResult result_b = runProgram(program_b, run_config);
    return LeakCheck{result_a.cacheDigest, result_b.cacheDigest};
}

} // namespace dgsim::security

#endif // DGSIM_SECURITY_LEAK_HH
