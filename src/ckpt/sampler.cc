#include "ckpt/sampler.hh"

#include <chrono>
#include <memory>
#include <sstream>

#include "ckpt/checkpoint.hh"
#include "ckpt/ffwd.hh"
#include "common/log.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "telemetry/telemetry.hh"

namespace dgsim::ckpt
{

bool
wantsSampledRun(const SimConfig &config)
{
    return config.ffwdInstructions != 0 || config.sampleInterval != 0 ||
           !config.ckptSavePath.empty() || !config.ckptRestorePath.empty();
}

namespace
{

void
validate(const SimConfig &config)
{
    if (config.sampleInterval != 0) {
        if (config.sampleDetail == 0 ||
            config.sampleDetail > config.sampleInterval)
            DGSIM_FATAL("sampling needs 0 < DETAIL <= INTERVAL (got "
                        "interval " +
                        std::to_string(config.sampleInterval) + ", detail " +
                        std::to_string(config.sampleDetail) + ")");
        if (config.maxInstructions == 0)
            DGSIM_FATAL("sampling needs a total instruction budget "
                        "(maxInstructions)");
        if (!config.tracePath.empty())
            DGSIM_FATAL("pipeline tracing is not supported across sampling "
                        "windows; drop --sample or --trace");
    }
    if (!config.ckptSavePath.empty() && config.ckptSaveInst == 0)
        DGSIM_FATAL("checkpoint save needs a positive instruction point "
                    "(FILE@INST)");
}

} // namespace

SimResult
runSampled(const Program &program, const SimConfig &config,
           std::string *stats_dump)
{
    validate(config);
    const auto host_start = std::chrono::steady_clock::now();

    StatRegistry stats;
    FfwdEngine engine(program, config);
    engine.armDeadline();

    // Resuming replaces the functional prefix with a deserialized
    // snapshot; everything downstream is oblivious to the difference.
    std::uint64_t restored_instret = 0;
    if (!config.ckptRestorePath.empty()) {
        const Checkpoint checkpoint = loadCheckpoint(config.ckptRestorePath);
        engine.restore(checkpoint);
        restored_instret = checkpoint.instret;
    }
    if (!config.ckptSavePath.empty() &&
        config.ckptSaveInst <= restored_instret)
        DGSIM_FATAL("checkpoint save point " +
                    std::to_string(config.ckptSaveInst) +
                    " is not past the restored instruction count " +
                    std::to_string(restored_instret));

    // Save points live on functional instruction boundaries, so the
    // fast-forward is split at the save point when one is pending.
    std::uint64_t ffwd_executed = 0;
    bool save_pending = !config.ckptSavePath.empty();
    auto ffwdWithSave = [&](std::uint64_t amount) {
        telemetry::ScopedSpan span(amount != 0 ? "ffwd-warm" : nullptr,
                                   "phase");
        span.arg("instructions", amount);
        while (amount > 0 && !engine.halted()) {
            std::uint64_t chunk = amount;
            if (save_pending && config.ckptSaveInst > engine.instret())
                chunk = std::min(chunk,
                                 config.ckptSaveInst - engine.instret());
            const std::uint64_t done = engine.ffwd(chunk);
            ffwd_executed += done;
            amount -= done;
            if (save_pending && engine.instret() == config.ckptSaveInst) {
                saveCheckpoint(engine.makeCheckpoint(),
                               config.ckptSavePath);
                save_pending = false;
            }
            if (done < chunk)
                break; // halted mid-chunk
        }
    };

    // Each detailed window is a fresh OooCore rebuilt from a canonical
    // checkpoint of the engine state and sharing the measured registry,
    // so counters accumulate across windows.
    std::unique_ptr<OooCore> last_core;
    std::uint64_t windows = 0;
    std::uint64_t switch_point = 0;
    auto runWindow = [&](std::uint64_t budget, std::uint64_t warmup,
                         bool run) -> std::uint64_t {
        const Checkpoint handoff = engine.makeCheckpoint();
        SimConfig window = config;
        window.maxInstructions = budget;
        window.warmupInstructions = warmup;
        // The window is a plain detailed run; scrub the driver-level
        // fields so nothing downstream re-triggers sampling logic.
        window.ffwdInstructions = 0;
        window.sampleInterval = 0;
        window.sampleDetail = 0;
        window.ckptSavePath.clear();
        window.ckptSaveInst = 0;
        window.ckptRestorePath.clear();
        last_core = std::make_unique<OooCore>(program, window, stats);
        last_core->restoreFromCheckpoint(handoff);
        if (!run)
            return 0;
        if (windows == 0)
            switch_point = handoff.instret;
        ++windows;
        telemetry::ScopedSpan span("detailed-window", "phase");
        span.arg("window", windows);
        span.arg("budget", budget);
        const std::uint64_t before = stats.get("core.committedInstrs");
        last_core->run();
        return stats.get("core.committedInstrs") - before;
    };

    if (config.sampleInterval == 0) {
        // Single window: ffwd (possibly zero instructions when purely
        // restoring), then one detailed window under the caller's
        // maxInstructions / warmup limits.
        ffwdWithSave(config.ffwdInstructions);
        runWindow(config.maxInstructions, config.warmupInstructions,
                  /*run=*/true);
    } else {
        const std::uint64_t total = config.maxInstructions;
        const std::uint64_t skip =
            config.sampleInterval - config.sampleDetail;
        std::uint64_t detailed_committed = 0;
        std::uint64_t executed = 0;
        while (executed < total && !engine.halted()) {
            ffwdWithSave(std::min(skip, total - executed));
            executed = ffwd_executed + detailed_committed;
            if (executed >= total || engine.halted())
                break;
            const std::uint64_t budget =
                std::min(config.sampleDetail, total - executed);
            const std::uint64_t committed =
                runWindow(budget, /*warmup=*/0, /*run=*/true);
            detailed_committed += committed;
            executed += committed;
            if (committed == 0)
                break; // window could not retire anything; avoid spinning
            // Resynchronize the functional state over the window the
            // detailed core just simulated, then adopt that core's own
            // (strictly more accurate) warm structures for the next skip.
            engine.resyncArch(committed);
            engine.adoptWarmState(
                last_core->hierarchy().exportWarmState(),
                last_core->branchPredictor().exportState(),
                last_core->strideTable().exportState());
            if (committed < budget)
                break; // detailed window ended early (HALT / maxCycles)
        }
        // A run that halts (or exhausts its budget) during a skip never
        // opened a window; materialize a restored-but-idle core so the
        // harvest below has a hierarchy/doppelganger to read.
        if (!last_core)
            runWindow(0, 0, /*run=*/false);
    }

    if (save_pending)
        DGSIM_FATAL("checkpoint save point " +
                    std::to_string(config.ckptSaveInst) +
                    " was never reached during fast-forward (stopped at " +
                    std::to_string(engine.instret()) + ")");

    // Bookkeeping counters for the fast-forwarded region. Restored
    // instructions count as fast-forwarded so a resumed run reports the
    // same totals as the uninterrupted run it mirrors.
    stats.counter("ffwd.instructions") += restored_instret + ffwd_executed;
    stats.counter("ffwd.switchPoint") += switch_point;
    stats.counter("ffwd.windows") += windows;

    const std::chrono::duration<double> host_elapsed =
        std::chrono::steady_clock::now() - host_start;

    if (stats_dump) {
        std::ostringstream ss;
        stats.dump(ss);
        *stats_dump = ss.str();
    }
    return harvestResult(program, config, stats, *last_core,
                         host_elapsed.count());
}

} // namespace dgsim::ckpt
