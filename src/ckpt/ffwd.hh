/**
 * @file
 * Functional fast-forward engine (the "atomic CPU" of the gem5-style
 * CPU-switching workflow).
 *
 * Drives a FunctionalCore at architectural speed while *functionally
 * warming* the microarchitectural structures a detailed window depends
 * on:
 *   - every load/store walks the cache hierarchy in atomic mode
 *     (tags + LRU evolve exactly as for demand traffic; no timing);
 *   - loads train the stride table and, mirroring the commit stage,
 *     trigger degree-ahead prefetches into the warm hierarchy;
 *   - branches run the full predict -> repair -> update sequence so the
 *     gshare table, global history and BTB converge to the same state
 *     commit-time training produces.
 *
 * Warm-structure counters go to a private scratch StatRegistry: fast
 * forwarded traffic must never appear in measured stats (the detailed
 * windows own the shared registry).
 *
 * The engine is also the checkpoint factory: makeCheckpoint() snapshots
 * the architectural + warm state at the current instruction boundary,
 * and restore() resumes from one.
 */

#ifndef DGSIM_CKPT_FFWD_HH
#define DGSIM_CKPT_FFWD_HH

#include <chrono>
#include <cstdint>

#include "ckpt/checkpoint.hh"
#include "common/config.hh"
#include "common/stats.hh"
#include "isa/functional.hh"
#include "isa/program.hh"
#include "memory/hierarchy.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/stride_table.hh"

namespace dgsim::ckpt
{

/** Functional fast-forward with microarchitectural warming. */
class FfwdEngine
{
  public:
    FfwdEngine(const Program &program, const SimConfig &config);
    /// The engine keeps a reference; temporaries would dangle.
    FfwdEngine(Program &&, const SimConfig &) = delete;

    /**
     * Fast-forward up to @p max_instructions (stops early at HALT).
     * Throws JobTimeoutError past @p deadline when @p deadline_armed
     * (polled every 64Ki instructions, like the detailed core's
     * wall-clock watchdog).
     * @return instructions actually executed.
     */
    std::uint64_t ffwd(std::uint64_t max_instructions);

    /** Snapshot the current state as a Checkpoint. */
    Checkpoint makeCheckpoint() const;

    /** Resume from @p checkpoint (fatal on workload mismatch). */
    void restore(const Checkpoint &checkpoint);

    /**
     * Re-execute @p instructions functionally WITHOUT warming — used to
     * resynchronize the architectural state over a detailed window the
     * OoO core just simulated (the warm structures are then re-seeded
     * from that core's own state, which is strictly more accurate).
     */
    void resyncArch(std::uint64_t instructions);

    /** Replace the warm structures (handback from a detailed window). */
    void adoptWarmState(const HierarchyWarmState &hierarchy,
                        const BranchPredictor::State &branch,
                        const StrideTable::State &stride);

    /** Arm the wall-clock deadline (SimConfig::jobTimeoutMs). */
    void armDeadline();

    std::uint64_t instret() const { return func_.instructionsExecuted(); }
    bool halted() const { return func_.halted(); }
    const FunctionalCore &core() const { return func_; }

  private:
    const Program &program_;
    const SimConfig config_;
    /** Scratch registry: warm traffic never reaches measured stats. */
    StatRegistry warm_stats_;
    FunctionalCore func_;
    MemoryHierarchy warm_hierarchy_;
    BranchPredictor warm_branch_;
    StrideTable warm_stride_;

    bool deadline_armed_ = false;
    std::chrono::steady_clock::time_point deadline_;
};

} // namespace dgsim::ckpt

#endif // DGSIM_CKPT_FFWD_HH
