#include "ckpt/checkpoint.hh"

#include <cctype>
#include <fstream>
#include <sstream>

#include "common/log.hh"

namespace dgsim::ckpt
{
namespace
{

/** 64-bit FNV-1a over a byte range. */
std::uint64_t
fnv1a(const char *data, std::size_t size)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
hex16(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

[[noreturn]] void
corrupt(const std::string &origin, const std::string &why)
{
    DGSIM_FATAL("corrupt or truncated checkpoint (" + origin + "): " + why);
}

void
writeCache(std::ostream &os, const char *name, const CacheWarmState &cache)
{
    std::size_t nonempty = 0;
    for (const auto &set : cache.sets)
        nonempty += !set.empty();
    os << "cache " << name << " " << cache.sets.size() << " " << nonempty
       << "\n";
    for (std::size_t set = 0; set < cache.sets.size(); ++set) {
        const auto &lines = cache.sets[set];
        if (lines.empty())
            continue;
        os << "cs " << set << " " << lines.size();
        for (const CacheWarmLine &line : lines)
            os << " " << line.tag << " " << (line.dirty ? 1 : 0);
        os << "\n";
    }
}

/**
 * Line-oriented reader: hands out one whitespace-tokenized line at a
 * time and turns every shortfall into a fatal corruption report.
 */
class Reader
{
  public:
    Reader(const std::string &text, const std::string &origin)
        : in_(text), origin_(origin)
    {
    }

    /** Next line as a token stream; the first token must be @p key. */
    std::istringstream
    line(const char *key)
    {
        std::string text;
        if (!std::getline(in_, text))
            corrupt(origin_, std::string("missing '") + key + "' section");
        std::istringstream tokens(text);
        std::string head;
        tokens >> head;
        if (head != key)
            corrupt(origin_, std::string("expected '") + key + "', got '" +
                                 head + "'");
        return tokens;
    }

    template <typename T>
    T
    value(std::istringstream &tokens, const char *what)
    {
        T out;
        if (!(tokens >> out))
            corrupt(origin_, std::string("bad or missing ") + what);
        return out;
    }

  private:
    std::istringstream in_;
    const std::string &origin_;
};

CacheWarmState
readCache(Reader &reader, const char *name, const std::string &origin)
{
    std::istringstream header = reader.line("cache");
    const std::string got_name = reader.value<std::string>(header, "cache name");
    if (got_name != name)
        corrupt(origin, std::string("expected cache '") + name + "', got '" +
                            got_name + "'");
    const auto num_sets =
        reader.value<std::uint64_t>(header, "cache set count");
    const auto nonempty =
        reader.value<std::uint64_t>(header, "cache nonempty count");
    CacheWarmState cache;
    cache.sets.resize(num_sets);
    for (std::uint64_t i = 0; i < nonempty; ++i) {
        std::istringstream tokens = reader.line("cs");
        const auto set = reader.value<std::uint64_t>(tokens, "set index");
        if (set >= num_sets)
            corrupt(origin, "cache set index out of range");
        const auto count = reader.value<std::uint64_t>(tokens, "line count");
        auto &lines = cache.sets[set];
        lines.reserve(count);
        for (std::uint64_t j = 0; j < count; ++j) {
            CacheWarmLine line;
            line.tag = reader.value<Addr>(tokens, "line tag");
            line.dirty = reader.value<int>(tokens, "dirty flag") != 0;
            lines.push_back(line);
        }
    }
    return cache;
}

} // namespace

std::string
serialize(const Checkpoint &checkpoint)
{
    for (char c : checkpoint.workload)
        DGSIM_ASSERT(!std::isspace(static_cast<unsigned char>(c)),
                     "workload names must not contain whitespace");
    std::ostringstream os;
    os << "dgsim-ckpt " << kCkptFormatVersion << "\n";
    os << "workload " << checkpoint.workload << "\n";
    os << "instret " << checkpoint.instret << "\n";
    os << "pc " << checkpoint.pc << "\n";
    os << "halted " << (checkpoint.halted ? 1 : 0) << "\n";
    os << "regs";
    for (RegValue reg : checkpoint.regs)
        os << " " << reg;
    os << "\n";

    const auto words = checkpoint.memory.words();
    os << "mem " << words.size() << "\n";
    for (const auto &[addr, value] : words)
        os << "m " << addr << " " << value << "\n";

    writeCache(os, "l1", checkpoint.hierarchy.l1);
    writeCache(os, "l2", checkpoint.hierarchy.l2);
    writeCache(os, "l3", checkpoint.hierarchy.l3);

    os << "bp " << checkpoint.branch.counters.size() << " "
       << checkpoint.branch.ghr << " " << checkpoint.branch.btb.size()
       << "\n";
    os << "bpc ";
    for (std::uint8_t counter : checkpoint.branch.counters)
        os << static_cast<char>('0' + counter);
    os << "\n";
    std::size_t btb_valid = 0;
    for (const auto &entry : checkpoint.branch.btb)
        btb_valid += entry.valid;
    os << "btb " << btb_valid << "\n";
    for (std::size_t i = 0; i < checkpoint.branch.btb.size(); ++i) {
        const auto &entry = checkpoint.branch.btb[i];
        if (entry.valid)
            os << "be " << i << " " << entry.pc << " " << entry.target
               << "\n";
    }

    std::size_t stride_valid = 0;
    for (const StrideEntry &entry : checkpoint.stride.entries)
        stride_valid += entry.valid;
    os << "stride " << checkpoint.stride.entries.size() << " "
       << stride_valid << "\n";
    for (std::size_t i = 0; i < checkpoint.stride.entries.size(); ++i) {
        const StrideEntry &entry = checkpoint.stride.entries[i];
        if (entry.valid)
            os << "se " << i << " " << entry.pc << " " << entry.lastAddr
               << " " << entry.stride << " " << entry.confidence << "\n";
    }

    std::string body = os.str();
    body += "digest " + hex16(fnv1a(body.data(), body.size())) + "\n";
    return body;
}

Checkpoint
deserialize(const std::string &text, const std::string &origin)
{
    // Split off the digest line (the last line of a complete file) and
    // verify it before trusting anything else: truncation and bit rot
    // both fail here, loudly.
    const std::size_t digest_pos = text.rfind("digest ");
    if (digest_pos == std::string::npos ||
        (digest_pos != 0 && text[digest_pos - 1] != '\n'))
        corrupt(origin, "missing digest line");
    const std::string body = text.substr(0, digest_pos);
    std::istringstream digest_line(text.substr(digest_pos));
    std::string keyword, recorded;
    digest_line >> keyword >> recorded;
    const std::string computed = hex16(fnv1a(body.data(), body.size()));
    if (recorded != computed)
        corrupt(origin, "content digest mismatch (recorded " + recorded +
                            ", computed " + computed + ")");

    Reader reader(body, origin);
    Checkpoint checkpoint;

    std::istringstream magic = reader.line("dgsim-ckpt");
    const auto version = reader.value<unsigned>(magic, "format version");
    if (version != kCkptFormatVersion)
        DGSIM_FATAL("checkpoint (" + origin + ") has format version " +
                    std::to_string(version) + "; this build reads version " +
                    std::to_string(kCkptFormatVersion));

    std::istringstream workload = reader.line("workload");
    checkpoint.workload =
        reader.value<std::string>(workload, "workload name");
    std::istringstream instret = reader.line("instret");
    checkpoint.instret =
        reader.value<std::uint64_t>(instret, "instruction count");
    std::istringstream pc = reader.line("pc");
    checkpoint.pc = reader.value<Addr>(pc, "pc");
    std::istringstream halted = reader.line("halted");
    checkpoint.halted = reader.value<int>(halted, "halt flag") != 0;
    std::istringstream regs = reader.line("regs");
    for (std::size_t i = 0; i < checkpoint.regs.size(); ++i)
        checkpoint.regs[i] = reader.value<RegValue>(regs, "register value");

    std::istringstream mem = reader.line("mem");
    const auto word_count = reader.value<std::uint64_t>(mem, "word count");
    for (std::uint64_t i = 0; i < word_count; ++i) {
        std::istringstream word = reader.line("m");
        const auto addr = reader.value<Addr>(word, "word address");
        const auto value = reader.value<RegValue>(word, "word value");
        checkpoint.memory.write(addr, value);
    }

    checkpoint.hierarchy.l1 = readCache(reader, "l1", origin);
    checkpoint.hierarchy.l2 = readCache(reader, "l2", origin);
    checkpoint.hierarchy.l3 = readCache(reader, "l3", origin);

    std::istringstream bp = reader.line("bp");
    const auto counter_count =
        reader.value<std::uint64_t>(bp, "bp counter count");
    checkpoint.branch.ghr = reader.value<std::uint64_t>(bp, "bp history");
    const auto btb_size = reader.value<std::uint64_t>(bp, "btb size");
    std::istringstream bpc = reader.line("bpc");
    std::string digits;
    bpc >> digits; // legitimately empty for a zero-sized table
    if (digits.size() != counter_count)
        corrupt(origin, "bp counter table length mismatch");
    checkpoint.branch.counters.reserve(counter_count);
    for (char digit : digits) {
        if (digit < '0' || digit > '3')
            corrupt(origin, "bp counter out of range");
        checkpoint.branch.counters.push_back(
            static_cast<std::uint8_t>(digit - '0'));
    }
    checkpoint.branch.btb.resize(btb_size);
    std::istringstream btb = reader.line("btb");
    const auto btb_valid = reader.value<std::uint64_t>(btb, "btb count");
    for (std::uint64_t i = 0; i < btb_valid; ++i) {
        std::istringstream entry = reader.line("be");
        const auto index = reader.value<std::uint64_t>(entry, "btb index");
        if (index >= btb_size)
            corrupt(origin, "btb index out of range");
        checkpoint.branch.btb[index].pc =
            reader.value<Addr>(entry, "btb pc");
        checkpoint.branch.btb[index].target =
            reader.value<Addr>(entry, "btb target");
        checkpoint.branch.btb[index].valid = true;
    }

    std::istringstream stride = reader.line("stride");
    const auto entry_count =
        reader.value<std::uint64_t>(stride, "stride entry count");
    const auto stride_valid =
        reader.value<std::uint64_t>(stride, "stride valid count");
    checkpoint.stride.entries.resize(entry_count);
    for (std::uint64_t i = 0; i < stride_valid; ++i) {
        std::istringstream entry = reader.line("se");
        const auto index = reader.value<std::uint64_t>(entry, "stride index");
        if (index >= entry_count)
            corrupt(origin, "stride index out of range");
        StrideEntry &out = checkpoint.stride.entries[index];
        out.pc = reader.value<Addr>(entry, "stride pc");
        out.lastAddr = reader.value<Addr>(entry, "stride lastAddr");
        out.stride = reader.value<std::int64_t>(entry, "stride value");
        out.confidence = reader.value<unsigned>(entry, "stride confidence");
        out.valid = true;
    }

    return checkpoint;
}

void
saveCheckpoint(const Checkpoint &checkpoint, const std::string &path)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        DGSIM_FATAL("cannot open checkpoint '" + path + "' for writing");
    out << serialize(checkpoint);
    out.flush();
    if (!out)
        DGSIM_FATAL("I/O error writing checkpoint '" + path + "'");
}

Checkpoint
loadCheckpoint(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        DGSIM_FATAL("cannot open checkpoint '" + path + "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return deserialize(buffer.str(), path);
}

} // namespace dgsim::ckpt
