/**
 * @file
 * Sampled-simulation driver: composes the functional fast-forward
 * engine (ckpt/ffwd) with the detailed OoO core into gem5-style
 * CPU-switching runs.
 *
 * Three run shapes, all funneled through runSampled():
 *   - single window:  --ffwd N  fast-forwards N instructions with
 *     functional warming, then hands off to one detailed window
 *     (bounded by maxInstructions / maxCycles as usual);
 *   - checkpointing:  --ckpt-save FILE@INST snapshots during the
 *     fast-forward phase; --ckpt-restore FILE resumes from a snapshot
 *     instead of re-executing the prefix;
 *   - sampling:       --sample INTERVAL,DETAIL alternates functional
 *     skip with detailed windows of DETAIL instructions until
 *     maxInstructions total (ffwd + detailed) have executed.
 *
 * Determinism contract: a run that restores a checkpoint taken at
 * instruction K and continues is byte-identical (stats dump) to an
 * uninterrupted run with the same switch point, because BOTH paths
 * rebuild the detailed core from a canonical in-memory Checkpoint —
 * warm state is exported in LRU order with stamps dropped, so the
 * handoff state cannot depend on how the warm structures were filled.
 *
 * Detailed-window stats stay cleanly separated from fast-forwarded
 * work: the engine warms against a private scratch registry, and the
 * shared measured registry only ever sees detailed-window events plus
 * the explicit ffwd.* bookkeeping counters
 * (ffwd.instructions / ffwd.switchPoint / ffwd.windows).
 */

#ifndef DGSIM_CKPT_SAMPLER_HH
#define DGSIM_CKPT_SAMPLER_HH

#include <string>

#include "common/config.hh"
#include "isa/program.hh"
#include "sim/simulator.hh"

namespace dgsim::ckpt
{

/** True when @p config requests any fast-forward/checkpoint feature. */
bool wantsSampledRun(const SimConfig &config);

/**
 * Run @p program under the sampled-simulation driver. Semantics of the
 * shared fields shift slightly from a plain run: maxInstructions
 * bounds the detailed window in single-window mode but the *total*
 * (ffwd + detailed) in sampling mode; warmupInstructions is honoured
 * for the single window and forced to zero for sampling windows.
 * @p stats_dump (when non-null) receives the full counter dump, the
 * determinism key the checkpoint ctest/CI checks byte-compare.
 */
SimResult runSampled(const Program &program, const SimConfig &config,
                     std::string *stats_dump);

} // namespace dgsim::ckpt

#endif // DGSIM_CKPT_SAMPLER_HH
