#include "ckpt/ffwd.hh"

#include <chrono>

#include "common/errors.hh"
#include "common/log.hh"
#include "isa/isa.hh"

namespace dgsim::ckpt
{

FfwdEngine::FfwdEngine(const Program &program, const SimConfig &config)
    : program_(program),
      config_(config),
      func_(program),
      warm_hierarchy_(config, warm_stats_),
      warm_branch_(config.bpHistoryBits, config.btbEntries, warm_stats_),
      warm_stride_(config.predictorEntries, config.predictorAssoc,
                   config.predictorConfidenceThreshold, warm_stats_)
{
}

void
FfwdEngine::armDeadline()
{
    if (config_.jobTimeoutMs == 0)
        return;
    deadline_armed_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(config_.jobTimeoutMs);
}

std::uint64_t
FfwdEngine::ffwd(std::uint64_t max_instructions)
{
    std::uint64_t executed = 0;
    while (executed < max_instructions && !func_.halted()) {
        // Wall-clock sibling of the detailed core's job deadline,
        // polled sparsely so the clock read stays off the hot path.
        if (deadline_armed_ && (executed & 0xffff) == 0 &&
            std::chrono::steady_clock::now() >= deadline_) {
            throw JobTimeoutError(program_.name +
                                  ": job deadline expired during "
                                  "fast-forward");
        }
        const Addr pc = func_.pc();
        DGSIM_ASSERT(program_.validPc(pc),
                     "fast-forward ran off the end of the program");
        const Instruction inst = program_.text[pc];
        const StepResult step = func_.step();
        ++executed;

        switch (opClass(inst.op)) {
          case OpClass::MemRead: {
            warm_hierarchy_.warmAccess(step.effAddr, /*is_write=*/false);
            // Mirror the commit stage: train the stride table with the
            // committed address, then prefetch degree-ahead (§5.1's
            // prefetching mode) so the warm cache contents match what
            // the prefetcher would have pulled in.
            warm_stride_.train(pc, step.effAddr);
            if (config_.prefetcherEnabled) {
                auto ahead = warm_stride_.predictAhead(
                    pc, step.effAddr, config_.prefetchDegree);
                if (ahead && warm_hierarchy_.lineAddr(*ahead) !=
                                 warm_hierarchy_.lineAddr(step.effAddr)) {
                    warm_hierarchy_.warmAccess(*ahead, /*is_write=*/false);
                }
            }
            break;
          }
          case OpClass::MemWrite:
            warm_hierarchy_.warmAccess(step.effAddr, /*is_write=*/true);
            break;
          case OpClass::Branch: {
            // Full predict -> repair -> update sequence: the GHR must
            // advance with predicted directions and be repaired on a
            // mispredict, exactly as the detailed front-end does, so
            // the trained table indices match.
            const BranchPrediction prediction =
                warm_branch_.predict(pc, inst);
            if (isCondBranch(inst.op) && prediction.taken != step.taken)
                warm_branch_.repairHistory(prediction.ghrBefore, step.taken);
            warm_branch_.update(pc, inst, step.taken, step.nextPc,
                                prediction.ghrBefore);
            break;
          }
          default:
            break;
        }
    }
    return executed;
}

void
FfwdEngine::resyncArch(std::uint64_t instructions)
{
    func_.run(instructions);
}

Checkpoint
FfwdEngine::makeCheckpoint() const
{
    Checkpoint checkpoint;
    checkpoint.workload = program_.name;
    checkpoint.instret = func_.instructionsExecuted();
    checkpoint.pc = func_.pc();
    checkpoint.halted = func_.halted();
    for (RegIndex i = 0; i < kNumArchRegs; ++i)
        checkpoint.regs[i] = func_.reg(i);
    checkpoint.memory = func_.memory();
    checkpoint.hierarchy = warm_hierarchy_.exportWarmState();
    checkpoint.branch = warm_branch_.exportState();
    checkpoint.stride = warm_stride_.exportState();
    return checkpoint;
}

void
FfwdEngine::restore(const Checkpoint &checkpoint)
{
    if (checkpoint.workload != program_.name)
        DGSIM_FATAL("checkpoint is for workload '" + checkpoint.workload +
                    "' but the run builds '" + program_.name + "'");
    func_.restoreArchState(checkpoint.regs, checkpoint.memory,
                           checkpoint.pc, checkpoint.halted,
                           checkpoint.instret);
    warm_hierarchy_.restoreWarmState(checkpoint.hierarchy);
    warm_branch_.restoreState(checkpoint.branch);
    warm_stride_.restoreState(checkpoint.stride);
}

void
FfwdEngine::adoptWarmState(const HierarchyWarmState &hierarchy,
                           const BranchPredictor::State &branch,
                           const StrideTable::State &stride)
{
    warm_hierarchy_.restoreWarmState(hierarchy);
    warm_branch_.restoreState(branch);
    warm_stride_.restoreState(stride);
}

} // namespace dgsim::ckpt
