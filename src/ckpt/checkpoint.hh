/**
 * @file
 * Versioned, serializable simulation checkpoints.
 *
 * A Checkpoint captures everything needed to resume a run at an
 * instruction boundary:
 *   - architectural state: register file, PC, halt flag, retired
 *     instruction count and the full (sparse) MemoryImage;
 *   - warmable microarchitectural state: the tag/LRU arrays of all
 *     three cache levels, the branch predictor (counter table, global
 *     history, BTB) and the stride table.
 *
 * The on-disk format is line-oriented text with a fixed section order
 * and a trailing FNV-1a content digest, so checkpoints are diffable,
 * stable across rebuilds and verifiable: load recomputes the digest
 * over everything before the digest line and rejects any mismatch.
 * Timing state (fill times, MSHRs, DRAM slots, in-flight predictions)
 * is deliberately NOT captured: checkpoints are only taken between
 * instructions with the pipeline conceptually drained, so every fill
 * has completed and nothing is outstanding (the handoff invariant —
 * DESIGN.md §7).
 *
 * Format changes must bump kCkptFormatVersion; load refuses other
 * versions rather than guessing.
 */

#ifndef DGSIM_CKPT_CHECKPOINT_HH
#define DGSIM_CKPT_CHECKPOINT_HH

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hh"
#include "memory/hierarchy.hh"
#include "memory/memory_image.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/stride_table.hh"

namespace dgsim::ckpt
{

/** Bump on any serialization change; load() rejects other versions. */
constexpr unsigned kCkptFormatVersion = 1;

/** One resumable simulation state (see file comment). */
struct Checkpoint
{
    /** Program name the state belongs to (restore cross-checks it). */
    std::string workload;
    /** Instructions retired up to this state. */
    std::uint64_t instret = 0;
    Addr pc = 0;
    bool halted = false;
    std::array<RegValue, kNumArchRegs> regs{};
    MemoryImage memory;
    HierarchyWarmState hierarchy;
    BranchPredictor::State branch;
    StrideTable::State stride;
};

/** Serialize to the on-disk text form, digest line included. */
std::string serialize(const Checkpoint &checkpoint);

/**
 * Parse the text form back. @p origin names the source (file path or
 * "<memory>") for error messages. Fatal on version mismatch, digest
 * mismatch, truncation or any structural corruption — a damaged
 * checkpoint must never silently produce a plausible-looking run.
 */
Checkpoint deserialize(const std::string &text, const std::string &origin);

/** Write @p checkpoint to @p path (fatal on I/O failure). */
void saveCheckpoint(const Checkpoint &checkpoint, const std::string &path);

/** Read a checkpoint from @p path (fatal on any error — see above). */
Checkpoint loadCheckpoint(const std::string &path);

} // namespace dgsim::ckpt

#endif // DGSIM_CKPT_CHECKPOINT_HH
