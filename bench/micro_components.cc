/**
 * @file
 * google-benchmark microbenchmarks of the simulator's building blocks:
 * cache lookups, stride-table training/prediction, branch prediction,
 * functional execution and whole-core simulation throughput. These are
 * about the *simulator's* speed (instructions simulated per second),
 * not the simulated machine.
 */

#include <benchmark/benchmark.h>

#include "common/stats.hh"
#include "cpu/core.hh"
#include "isa/functional.hh"
#include "memory/hierarchy.hh"
#include "predictor/branch_predictor.hh"
#include "predictor/stride_table.hh"
#include "sim/simulator.hh"
#include "workloads/generators.hh"

namespace
{

using namespace dgsim;

void
BM_CacheHitLookup(benchmark::State &state)
{
    SimConfig config;
    StatRegistry stats;
    MemoryHierarchy hierarchy(config, stats);
    // Warm one line.
    MemAccessFlags flags;
    hierarchy.access(0x1000, 0, flags);
    Cycle now = 100;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hierarchy.access(0x1000, now, flags));
        ++now;
    }
}
BENCHMARK(BM_CacheHitLookup);

void
BM_CacheMissStream(benchmark::State &state)
{
    SimConfig config;
    StatRegistry stats;
    MemoryHierarchy hierarchy(config, stats);
    MemAccessFlags flags;
    Addr addr = 0;
    Cycle now = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hierarchy.access(addr, now, flags));
        addr += 64;
        now += 2;
    }
}
BENCHMARK(BM_CacheMissStream);

void
BM_StrideTrainPredict(benchmark::State &state)
{
    StatRegistry stats;
    StrideTable table(1024, 8, 2, stats);
    Addr addr = 0x1000;
    for (auto _ : state) {
        table.train(0x42, addr);
        benchmark::DoNotOptimize(table.predictCurrent(0x42));
        table.release(0x42);
        addr += 64;
    }
}
BENCHMARK(BM_StrideTrainPredict);

void
BM_BranchPredict(benchmark::State &state)
{
    StatRegistry stats;
    BranchPredictor predictor(12, 4096, stats);
    Instruction branch{Opcode::Beq, 0, 1, 2, 100};
    Addr pc = 0;
    for (auto _ : state) {
        const BranchPrediction prediction = predictor.predict(pc, branch);
        benchmark::DoNotOptimize(prediction);
        predictor.update(pc, branch, (pc & 3) != 0, 100,
                         prediction.ghrBefore);
        pc = (pc + 1) & 0xFF;
    }
}
BENCHMARK(BM_BranchPredict);

void
BM_FunctionalExecution(benchmark::State &state)
{
    const Program program =
        workloads::genStream("bm-stream", 1024, /*iterations=*/0);
    FunctionalCore core(program);
    for (auto _ : state)
        benchmark::DoNotOptimize(core.step().nextPc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FunctionalExecution);

/** Whole-core simulation throughput (simulated instructions/second). */
void
BM_CoreSimulation(benchmark::State &state)
{
    const auto scheme = static_cast<Scheme>(state.range(0));
    const Program program = workloads::genGather(
        "bm-gather", 128 * 1024, 7, 4, /*iterations=*/0);
    std::uint64_t total_instructions = 0;
    for (auto _ : state) {
        SimConfig config;
        config.scheme = scheme;
        config.addressPrediction = state.range(1) != 0;
        config.maxInstructions = 20'000;
        config.maxCycles = 4'000'000;
        StatRegistry stats;
        OooCore core(program, config, stats);
        total_instructions += core.run();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(total_instructions));
    state.SetLabel("simulated instructions/s in items/s");
}
BENCHMARK(BM_CoreSimulation)
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}})
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
