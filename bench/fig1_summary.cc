/**
 * @file
 * Reproduces the Figure 1 headline numbers: geometric-mean normalized
 * performance of NDA-P, STT and DoM with and without Doppelganger
 * Loads, and the resulting reduction of the mean slowdown (paper: 42%,
 * 48% and 30% respectively).
 *
 * Usage: fig1_summary [instructions-per-run]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace dgsim;
    using namespace dgsim::bench;

    const std::uint64_t instructions = instructionBudget(argc, argv);
    std::printf("=== Figure 1: headline summary, %llu instructions/run "
                "===\n\n",
                static_cast<unsigned long long>(instructions));

    const std::vector<WorkloadRow> rows = runSuiteMatrix(instructions);

    struct SchemePair
    {
        const char *base;
        const char *ap;
        double paperBase;
        double paperAp;
    };
    const SchemePair pairs[] = {
        {"NDA-P", "NDA-P+AP", 0.887, 0.935},
        {"STT", "STT+AP", 0.905, 0.951},
        {"DoM", "DoM+AP", 0.818, 0.873},
    };

    std::printf("%-8s %10s %10s %18s %14s\n", "scheme", "base", "+AP",
                "slowdown reduced", "paper");
    for (const SchemePair &pair : pairs) {
        std::vector<double> base_values;
        std::vector<double> ap_values;
        for (const WorkloadRow &row : rows) {
            base_values.push_back(normalizedIpc(row, pair.base));
            ap_values.push_back(normalizedIpc(row, pair.ap));
        }
        const double base = geomean(base_values);
        const double ap = geomean(ap_values);
        const double base_slowdown = 1.0 - base;
        const double ap_slowdown = 1.0 - ap;
        const double reduced =
            base_slowdown <= 0.0
                ? 0.0
                : 100.0 * (base_slowdown - ap_slowdown) / base_slowdown;
        const double paper_reduced = 100.0 *
                                     ((1.0 - pair.paperBase) -
                                      (1.0 - pair.paperAp)) /
                                     (1.0 - pair.paperBase);
        std::printf("%-8s %10.3f %10.3f %17.1f%% %8.3f->%5.3f (%.0f%%)\n",
                    pair.base, base, ap, reduced, pair.paperBase,
                    pair.paperAp, paper_reduced);
    }

    std::vector<double> unsafe_ap;
    for (const WorkloadRow &row : rows)
        unsafe_ap.push_back(normalizedIpc(row, "Unsafe+AP"));
    std::printf("\nUnsafe baseline + AP: %.3f (paper: ~1.005, \"a geomean "
                "performance improvement of 0.5%%\")\n",
                geomean(unsafe_ap));
    return 0;
}
