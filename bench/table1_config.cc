/**
 * @file
 * Reproduces Table 1 (system configuration): prints the live default
 * SimConfig and verifies it matches the paper's numbers. Exits nonzero
 * on mismatch so configuration drift is caught by the bench run.
 */

#include <cstdio>
#include <cstdlib>

#include "common/config.hh"

namespace
{

int failures = 0;

void
check(const char *name, std::uint64_t actual, std::uint64_t expected,
      const char *unit)
{
    const bool ok = actual == expected;
    if (!ok)
        ++failures;
    std::printf("  %-34s %10llu %-8s %s\n", name,
                static_cast<unsigned long long>(actual), unit,
                ok ? "" : "<-- MISMATCH vs Table 1");
}

} // namespace

int
main()
{
    using namespace dgsim;
    const SimConfig config;

    std::printf("=== Table 1: system configuration ===\n\nProcessor\n");
    check("Decode width", config.decodeWidth, 5, "instr");
    check("Issue width", config.issueWidth, 8, "instr");
    check("Commit width", config.commitWidth, 8, "instr");
    check("Instruction queue", config.iqEntries, 160, "entries");
    check("Reorder buffer", config.robEntries, 352, "entries");
    check("Load queue", config.lqEntries, 128, "entries");
    check("Store queue/buffer", config.sqEntries, 72, "entries");
    check("Address predictor entries", config.predictorEntries, 1024,
          "entries");
    check("Address predictor assoc", config.predictorAssoc, 8, "ways");

    std::printf("\nMemory\n");
    check("L1 D cache size", config.l1d.sizeBytes, 48 * 1024, "B");
    check("L1 D ways", config.l1d.assoc, 12, "ways");
    check("L1 access latency (roundtrip)", config.l1d.latency, 5, "cycles");
    check("L1 MSHRs", config.l1d.numMshrs, 16, "entries");
    check("Private L2 size", config.l2.sizeBytes, 2 * 1024 * 1024, "B");
    check("L2 ways", config.l2.assoc, 8, "ways");
    check("L2 access latency (roundtrip)", config.l2.latency, 15, "cycles");
    check("Shared L3 size", config.l3.sizeBytes, 16 * 1024 * 1024, "B");
    check("L3 ways", config.l3.assoc, 16, "ways");
    check("L3 access latency (roundtrip)", config.l3.latency, 40, "cycles");
    std::printf("  %-34s %10u %-8s (13.5ns at ~3.7GHz)\n",
                "Memory access time", config.dramLatency, "cycles");

    // Predictor storage: each entry holds tag + lastAddr + stride +
    // confidence; the paper quotes 13.5 KiB for 1024 entries.
    const double predictor_kib =
        config.predictorEntries * 13.5 / 1024.0; // 13.5B per entry.
    std::printf("  %-34s %10.1f %-8s (paper: 13.5 KiB)\n",
                "Address predictor storage", predictor_kib, "KiB");

    if (failures != 0) {
        std::printf("\n%d mismatches against Table 1.\n", failures);
        return 1;
    }
    std::printf("\nAll values match Table 1 of the paper.\n");
    return 0;
}
