/**
 * @file
 * Reproduces Figure 6 of the paper: per-benchmark IPC of NDA-P, STT and
 * DoM, with and without Doppelganger Loads (address prediction),
 * normalized to the unsafe baseline; plus the Unsafe+AP column the text
 * discusses (expected to be close to 1.0) and the GMEAN row.
 *
 * Usage: fig6_normalized_ipc [instructions-per-run] [--threads N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace dgsim;
    using namespace dgsim::bench;

    const BenchArgs args = parseBenchArgs(argc, argv);
    std::printf("=== Figure 6: normalized IPC (baseline = 1.000), %llu "
                "instructions/run ===\n\n",
                static_cast<unsigned long long>(args.instructions));

    const std::vector<WorkloadRow> rows =
        runSuiteMatrix(args.instructions, args.threads, args.retries);

    const std::vector<std::string> columns = {
        "Unsafe+AP", "NDA-P", "NDA-P+AP", "STT", "STT+AP", "DoM", "DoM+AP",
    };

    std::printf("%-14s %-9s", "benchmark", "suite");
    for (const std::string &column : columns)
        std::printf(" %9s", column.c_str());
    std::printf("\n");

    std::map<std::string, std::vector<double>> per_column;
    for (const WorkloadRow &row : rows) {
        std::printf("%-14s %-9s", row.name.c_str(), row.suite.c_str());
        for (const std::string &column : columns) {
            const double normalized = normalizedIpc(row, column);
            per_column[column].push_back(normalized);
            std::printf(" %9.3f", normalized);
        }
        std::printf("\n");
    }

    std::printf("%-14s %-9s", "GMEAN", "");
    for (const std::string &column : columns)
        std::printf(" %9.3f", geomean(per_column[column]));
    std::printf("\n");

    std::printf("\nPaper reference (GMEAN): NDA-P 0.887 -> +AP 0.935 | "
                "STT 0.905 -> +AP 0.951 | DoM 0.818 -> +AP 0.873 | "
                "Unsafe+AP ~1.005\n");
    return 0;
}
