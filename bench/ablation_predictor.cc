/**
 * @file
 * Ablation: sensitivity of the Doppelganger gains to the address
 * predictor configuration (size, associativity, confidence threshold)
 * and to the doppelganger port policy. The paper deliberately uses a
 * simple 1024-entry, 8-way stride predictor "to deliver just the ground
 * performance level" (§5.1); this bench quantifies how much headroom a
 * larger/better predictor would have on the same kernels.
 *
 * Usage: ablation_predictor [instructions-per-run]
 */

#include "bench_common.hh"

namespace
{

/** Workloads whose doppelganger behaviour spans the interesting range. */
const char *const kWorkloads[] = {"bzip2", "libquantum", "hmmer", "mcf",
                                  "xalancbmk_s"};

} // namespace

int
main(int argc, char **argv)
{
    using namespace dgsim;
    using namespace dgsim::bench;

    const std::uint64_t instructions = instructionBudget(argc, argv);
    std::printf("=== Ablation: predictor configuration (NDA-P+AP "
                "normalized to NDA-P), %llu instructions/run ===\n\n",
                static_cast<unsigned long long>(instructions));

    struct Variant
    {
        const char *name;
        unsigned entries;
        unsigned assoc;
        unsigned confidence;
    };
    const Variant variants[] = {
        {"64e/4w/c2", 64, 4, 2},    {"256e/8w/c2", 256, 8, 2},
        {"1024e/8w/c2", 1024, 8, 2}, // Table 1 configuration.
        {"4096e/8w/c2", 4096, 8, 2}, {"1024e/8w/c0", 1024, 8, 0},
        {"1024e/8w/c6", 1024, 8, 6},
    };

    std::printf("%-14s", "workload");
    for (const Variant &variant : variants)
        std::printf(" %12s", variant.name);
    std::printf("\n");

    for (const char *name : kWorkloads) {
        const auto &def = workloads::findWorkload(name);
        const Program program = def.build(0);

        SimConfig base;
        base.maxInstructions = instructions;
        base.maxCycles = instructions * 200;
        base.warmupInstructions = instructions / 3;
        base.scheme = Scheme::NdaP;

        const SimResult nda = runProgram(program, base);

        std::printf("%-14s", name);
        for (const Variant &variant : variants) {
            SimConfig config = base;
            config.addressPrediction = true;
            config.predictorEntries = variant.entries;
            config.predictorAssoc = variant.assoc;
            config.predictorConfidenceThreshold = variant.confidence;
            const SimResult result = runProgram(program, config);
            std::printf(" %12.3f", nda.ipc == 0 ? 0 : result.ipc / nda.ipc);
        }
        std::printf("\n");
    }

    std::printf("\nColumns are speedup of NDA-P+AP over NDA-P with the "
                "given predictor (entries/ways/confidence threshold).\n"
                "Expected shape: gains saturate near the Table 1 point; "
                "confidence 0 attaches wrong predictions (replay cost), "
                "very high confidence loses coverage.\n");
    return 0;
}
