/**
 * @file
 * Shared harness for the figure/table reproduction benches: runs the
 * SPEC-proxy suite over the scheme x AP matrix (through the parallel
 * experiment runner) and folds results into per-workload rows.
 */

#ifndef DGSIM_BENCH_BENCH_COMMON_HH
#define DGSIM_BENCH_BENCH_COMMON_HH

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/buildinfo.hh"
#include "runner/experiment_runner.hh"
#include "runner/sweep.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace dgsim::bench
{

/** Results of one workload across all evaluated configurations. */
struct WorkloadRow
{
    std::string name;
    std::string suite;
    /** Keyed by config label ("Unsafe", "NDA-P+AP", ...). */
    std::map<std::string, SimResult> byConfig;
};

/** Default per-run instruction budget (override with argv[1]). */
constexpr std::uint64_t kDefaultInstructions = 100'000;

/** Command-line knobs shared by every bench. */
struct BenchArgs
{
    std::uint64_t instructions = kDefaultInstructions;
    unsigned threads = 1;
    /** Transient-failure retries per job (figure campaigns are long
        enough for host hiccups to matter; sim errors never retry). */
    unsigned retries = 2;
};

/**
 * Parse `[instructions] [--threads N] [--retries N]` from the command
 * line.
 *
 * Malformed or zero values are rejected with a usage message instead of
 * silently turning into a 0-instruction run (strtoull's default).
 */
inline BenchArgs
parseBenchArgs(int argc, char **argv)
{
    auto fail = [&](const std::string &msg) {
        std::fprintf(stderr,
                     "%s: %s\nusage: %s [instructions-per-run] "
                     "[--threads N] [--retries N]\n",
                     argv[0], msg.c_str(), argv[0]);
        std::exit(2);
    };
    auto parsePositive = [&](const char *text,
                             const char *what) -> std::uint64_t {
        errno = 0;
        char *end = nullptr;
        const std::uint64_t value = std::strtoull(text, &end, 10);
        if (*text == '\0' || *end != '\0' || errno == ERANGE || value == 0)
            fail(std::string(what) + " must be a positive integer, got '" +
                 text + "'");
        return value;
    };

    BenchArgs args;
    bool haveBudget = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--threads") {
            if (i + 1 >= argc)
                fail("--threads needs an argument");
            args.threads = static_cast<unsigned>(
                parsePositive(argv[++i], "--threads"));
        } else if (arg == "--retries") {
            if (i + 1 >= argc)
                fail("--retries needs an argument");
            // Zero is legal here: it means "fail fast".
            const char *text = argv[++i];
            errno = 0;
            char *end = nullptr;
            const std::uint64_t value = std::strtoull(text, &end, 10);
            if (*text == '\0' || *end != '\0' || errno == ERANGE)
                fail(std::string("--retries must be a non-negative "
                                 "integer, got '") + text + "'");
            args.retries = static_cast<unsigned>(value);
        } else if (!haveBudget) {
            args.instructions = parsePositive(arg.c_str(),
                                              "instruction budget");
            haveBudget = true;
        } else {
            fail("unexpected argument '" + arg + "'");
        }
    }
    return args;
}

/** Parse the instruction budget from the command line (validated). */
inline std::uint64_t
instructionBudget(int argc, char **argv)
{
    return parseBenchArgs(argc, argv).instructions;
}

/**
 * Run the whole suite over the 8-config evaluation matrix on
 * @p threads worker threads. Row/column order (and therefore all
 * stdout produced from the rows) is independent of the thread count;
 * wall-clock goes to stderr.
 */
inline std::vector<WorkloadRow>
runSuiteMatrix(std::uint64_t instructions, unsigned threads = 1,
               unsigned retries = 2)
{
    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 200;
    // Measure the warmed region only: caches, predictors and branch
    // history settle during the first third of the run.
    base.warmupInstructions = instructions / 3;

    runner::RunnerOptions options;
    options.threads = threads;
    // Retry transient host failures; deterministic sim errors still
    // fail the bench immediately (the runner never retries those).
    options.maxAttempts = retries + 1;
    runner::ExperimentRunner runner(options);

    const auto start = std::chrono::steady_clock::now();
    const std::vector<runner::JobOutcome> outcomes =
        runner.run(runner::SweepSpec::evaluationMatrix(base));
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    std::fprintf(stderr,
                 "  [suite] %zu jobs on %u thread(s): %.2fs (%s build%s)\n",
                 outcomes.size(), runner.threads(), elapsed.count(),
                 buildinfo::kBuildType,
                 buildinfo::kNativeArch ? ", -march=native" : "");

    // Fold the flat outcome list back into per-workload rows. Outcomes
    // arrive in expansion order (workloads outer), so rows keep the
    // suite's presentation order.
    std::vector<WorkloadRow> rows;
    for (const runner::JobOutcome &outcome : outcomes) {
        if (!outcome.ok) {
            std::fprintf(stderr, "%s under %s failed: %s\n",
                         outcome.workload.c_str(),
                         outcome.configLabel.c_str(), outcome.error.c_str());
            std::exit(1);
        }
        if (rows.empty() || rows.back().name != outcome.workload) {
            WorkloadRow row;
            row.name = outcome.workload;
            row.suite = outcome.suite;
            rows.push_back(std::move(row));
        }
        rows.back().byConfig[outcome.configLabel] = outcome.result;
    }
    return rows;
}

/** Geometric mean over a vector of positive values. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Normalized IPC of one config against the unsafe no-AP baseline. */
inline double
normalizedIpc(const WorkloadRow &row, const std::string &label)
{
    const double base = row.byConfig.at("Unsafe").ipc;
    return base == 0.0 ? 0.0 : row.byConfig.at(label).ipc / base;
}

} // namespace dgsim::bench

#endif // DGSIM_BENCH_BENCH_COMMON_HH
