/**
 * @file
 * Shared harness for the figure/table reproduction benches: runs the
 * SPEC-proxy suite over the scheme x AP matrix and caches results.
 */

#ifndef DGSIM_BENCH_BENCH_COMMON_HH
#define DGSIM_BENCH_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace dgsim::bench
{

/** Results of one workload across all evaluated configurations. */
struct WorkloadRow
{
    std::string name;
    std::string suite;
    /** Keyed by config label ("Unsafe", "NDA-P+AP", ...). */
    std::map<std::string, SimResult> byConfig;
};

/** Default per-run instruction budget (override with argv[1]). */
constexpr std::uint64_t kDefaultInstructions = 100'000;

/** Parse the instruction budget from the command line. */
inline std::uint64_t
instructionBudget(int argc, char **argv)
{
    if (argc > 1)
        return std::strtoull(argv[1], nullptr, 10);
    return kDefaultInstructions;
}

/** Run the whole suite over the 8-config evaluation matrix. */
inline std::vector<WorkloadRow>
runSuiteMatrix(std::uint64_t instructions)
{
    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 200;
    // Measure the warmed region only: caches, predictors and branch
    // history settle during the first third of the run.
    base.warmupInstructions = instructions / 3;

    std::vector<WorkloadRow> rows;
    for (const workloads::WorkloadDef &workload :
         workloads::evaluationSuite()) {
        WorkloadRow row;
        row.name = workload.name;
        row.suite = workload.suite;
        const Program program = workload.build(/*iterations=*/0);
        for (const SimConfig &config : evaluationConfigs(base)) {
            row.byConfig[config.label()] = runProgram(program, config);
        }
        std::fprintf(stderr, "  [suite] %-14s done\n", workload.name.c_str());
        rows.push_back(std::move(row));
    }
    return rows;
}

/** Geometric mean over a vector of positive values. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** Normalized IPC of one config against the unsafe no-AP baseline. */
inline double
normalizedIpc(const WorkloadRow &row, const std::string &label)
{
    const double base = row.byConfig.at("Unsafe").ipc;
    return base == 0.0 ? 0.0 : row.byConfig.at(label).ipc / base;
}

} // namespace dgsim::bench

#endif // DGSIM_BENCH_BENCH_COMMON_HH
