/**
 * @file
 * Ablation: the cost of the DoM+AP in-order branch-resolution rule
 * (paper §4.6). DoM with Doppelganger Loads must resolve branches in
 * order, or the doppelganger misses form an implicit channel that leaks
 * (see tests/security_leak_test.cc for the leak demonstration). This
 * bench quantifies what that security fix costs in performance by
 * comparing DoM+AP against the intentionally-insecure eager variant.
 *
 * Usage: ablation_dom_branch [instructions-per-run]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace dgsim;
    using namespace dgsim::bench;

    const std::uint64_t instructions = instructionBudget(argc, argv);
    std::printf("=== Ablation: DoM+AP in-order branch resolution (§4.6), "
                "%llu instructions/run ===\n\n",
                static_cast<unsigned long long>(instructions));

    std::printf("%-14s %10s %12s %14s %10s\n", "benchmark", "DoM",
                "DoM+AP", "DoM+AP-eager", "fix cost");

    std::vector<double> in_order;
    std::vector<double> eager;
    for (const workloads::WorkloadDef &workload :
         workloads::evaluationSuite()) {
        const Program program = workload.build(0);

        SimConfig base;
        base.maxInstructions = instructions;
        base.maxCycles = instructions * 200;
        base.warmupInstructions = instructions / 3;
        base.scheme = Scheme::Dom;

        const SimResult dom = runProgram(program, base);

        SimConfig secure = base;
        secure.addressPrediction = true;
        const SimResult with_fix = runProgram(program, secure);

        SimConfig insecure = secure;
        insecure.domEagerBranchResolution = true;
        const SimResult without_fix = runProgram(program, insecure);

        const double fixed_norm = with_fix.ipc / dom.ipc;
        const double eager_norm = without_fix.ipc / dom.ipc;
        in_order.push_back(fixed_norm);
        eager.push_back(eager_norm);
        std::printf("%-14s %10.3f %12.3f %14.3f %9.1f%%\n",
                    workload.name.c_str(), 1.0, fixed_norm, eager_norm,
                    100.0 * (eager_norm - fixed_norm));
    }

    std::printf("\nGMEAN: in-order %.3f, eager (INSECURE) %.3f -> the "
                "security rule costs %.1f%% on DoM+AP.\n",
                geomean(in_order), geomean(eager),
                100.0 * (geomean(eager) - geomean(in_order)));
    return 0;
}
