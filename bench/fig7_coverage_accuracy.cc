/**
 * @file
 * Reproduces Figure 7: per-benchmark coverage (correctly predicted
 * committed loads / all committed loads) and accuracy (correct /
 * verified predictions) of the address predictor under DoM+AP. The
 * paper reports ~35% geomean coverage, typically >=90% accuracy, with
 * outliers like mcf (9% coverage) and xalancbmk_s (~60% accuracy).
 *
 * The paper notes coverage/accuracy are within 1% across the three
 * schemes; this bench also prints NDA-P+AP as a cross-check.
 *
 * Usage: fig7_coverage_accuracy [instructions-per-run]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace dgsim;
    using namespace dgsim::bench;

    const std::uint64_t instructions = instructionBudget(argc, argv);
    std::printf("=== Figure 7: address-predictor coverage & accuracy "
                "(DoM+AP), %llu instructions/run ===\n\n",
                static_cast<unsigned long long>(instructions));

    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 200;
    base.warmupInstructions = instructions / 3;

    std::printf("%-14s %-9s %10s %10s | %10s %10s\n", "benchmark", "suite",
                "coverage", "accuracy", "cov(NDA)", "acc(NDA)");

    std::vector<double> coverages;
    std::vector<double> accuracies;
    for (const workloads::WorkloadDef &workload :
         workloads::evaluationSuite()) {
        const Program program = workload.build(0);

        SimConfig dom_config = base;
        dom_config.scheme = Scheme::Dom;
        dom_config.addressPrediction = true;
        const SimResult dom = runProgram(program, dom_config);

        SimConfig nda_config = base;
        nda_config.scheme = Scheme::NdaP;
        nda_config.addressPrediction = true;
        const SimResult nda = runProgram(program, nda_config);

        std::printf("%-14s %-9s %9.1f%% %9.1f%% | %9.1f%% %9.1f%%\n",
                    workload.name.c_str(), workload.suite.c_str(),
                    100.0 * dom.dgCoverage, 100.0 * dom.dgAccuracy,
                    100.0 * nda.dgCoverage, 100.0 * nda.dgAccuracy);
        if (dom.dgCoverage > 0.0)
            coverages.push_back(dom.dgCoverage);
        if (dom.dgAccuracy > 0.0)
            accuracies.push_back(dom.dgAccuracy);
    }

    std::printf("\nGMEAN coverage (predicting workloads): %.1f%%  "
                "(paper: ~35%% with max 49%%)\n",
                100.0 * geomean(coverages));
    std::printf("GMEAN accuracy (predicting workloads): %.1f%%  "
                "(paper: typically >=90%%)\n",
                100.0 * geomean(accuracies));
    return 0;
}
