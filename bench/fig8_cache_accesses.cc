/**
 * @file
 * Reproduces Figure 8: L1 and L2 access counts of each scheme with
 * address prediction, normalized to the same scheme without it. The
 * paper highlights xalancbmk's large L1 traffic increase (mispredicted
 * doppelgangers), omnetpp's ~10% L2 increase, and that bzip2/gcc gain
 * L1 accesses but not L2 accesses (correct predictions down the
 * hierarchy).
 *
 * Usage: fig8_cache_accesses [instructions-per-run] [--threads N]
 */

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    using namespace dgsim;
    using namespace dgsim::bench;

    const BenchArgs args = parseBenchArgs(argc, argv);
    std::printf("=== Figure 8: normalized L1/L2 accesses (+AP vs base "
                "scheme), %llu instructions/run ===\n\n",
                static_cast<unsigned long long>(args.instructions));

    const std::vector<WorkloadRow> rows =
        runSuiteMatrix(args.instructions, args.threads, args.retries);

    const std::pair<const char *, const char *> schemes[] = {
        {"NDA-P", "NDA-P+AP"},
        {"STT", "STT+AP"},
        {"DoM", "DoM+AP"},
    };

    auto ratio = [](std::uint64_t ap, std::uint64_t base) {
        return base == 0 ? 0.0
                         : static_cast<double>(ap) /
                               static_cast<double>(base);
    };

    for (const char *level : {"L1", "L2"}) {
        std::printf("--- %s accesses, +AP normalized to base scheme ---\n",
                    level);
        std::printf("%-14s", "benchmark");
        for (const auto &scheme : schemes)
            std::printf(" %10s", scheme.second);
        std::printf("\n");
        std::map<std::string, std::vector<double>> per_scheme;
        for (const WorkloadRow &row : rows) {
            std::printf("%-14s", row.name.c_str());
            for (const auto &scheme : schemes) {
                const SimResult &base = row.byConfig.at(scheme.first);
                const SimResult &ap = row.byConfig.at(scheme.second);
                const double value =
                    level[1] == '1'
                        ? ratio(ap.l1Accesses, base.l1Accesses)
                        : ratio(ap.l2Accesses, base.l2Accesses);
                per_scheme[scheme.second].push_back(value);
                std::printf(" %10.3f", value);
            }
            std::printf("\n");
        }
        std::printf("%-14s", "GMEAN");
        for (const auto &scheme : schemes)
            std::printf(" %10.3f", geomean(per_scheme[scheme.second]));
        std::printf("\n\n");
    }

    std::printf("Expected shape (paper): L1 traffic rises where accuracy "
                "is low (xalancbmk-class);\nL2 traffic stays ~flat where "
                "predictions are correct (bzip2/gcc-class).\n");
    return 0;
}
