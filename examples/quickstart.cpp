/**
 * @file
 * Quickstart: build a tiny workload with the public API, run it under
 * the unsafe baseline and the three secure speculation schemes, with
 * and without Doppelganger Loads, and print normalized performance.
 *
 * Usage: quickstart [instructions-per-run]  (default 50000)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/simulator.hh"
#include "workloads/generators.hh"

int
main(int argc, char **argv)
{
    using namespace dgsim;

    const std::uint64_t instructions =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 50000;

    // An indirect gather: idx = B[i]; v = A[idx]; branch on v. The
    // pattern whose memory parallelism secure schemes destroy and
    // doppelganger loads recover.
    const Program program = workloads::genGather(
        "quickstart-gather", /*table_words=*/512 * 1024,
        /*idx_stride_words=*/7, /*branch_mod=*/16, /*iterations=*/0);

    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 100;

    std::printf("dgsim quickstart: %s, %llu instructions per run\n\n",
                program.name.c_str(),
                static_cast<unsigned long long>(instructions));
    std::printf("%-12s %10s %8s %12s\n", "config", "cycles", "IPC",
                "vs baseline");

    double baseline_ipc = 0.0;
    for (const SimConfig &config : evaluationConfigs(base)) {
        const SimResult result = runProgram(program, config);
        if (config.scheme == Scheme::Unsafe && !config.addressPrediction)
            baseline_ipc = result.ipc;
        std::printf("%-12s %10llu %8.3f %11.1f%%\n",
                    result.configLabel.c_str(),
                    static_cast<unsigned long long>(result.cycles),
                    result.ipc, 100.0 * result.ipc / baseline_ipc);
    }
    std::printf("\nDoppelganger stats under DoM+AP:\n");
    SimConfig dom_ap = base;
    dom_ap.scheme = Scheme::Dom;
    dom_ap.addressPrediction = true;
    const SimResult result = runProgram(program, dom_ap);
    std::printf("  coverage %.1f%%  accuracy %.1f%%  (attached %llu, "
                "issued %llu)\n",
                100.0 * result.dgCoverage, 100.0 * result.dgAccuracy,
                static_cast<unsigned long long>(result.dgAttached),
                static_cast<unsigned long long>(result.dgIssued));
    return 0;
}
