/**
 * @file
 * Demonstrates the security story end to end:
 *  1. Spectre v1 leaks on the unsafe baseline (the cache digest depends
 *     on the secret).
 *  2. NDA-P, STT and DoM block it.
 *  3. Adding Doppelganger Loads does not re-open the channel
 *     (threat-model transparency, paper §4).
 *  4. The Figure 4a implicit channel: DoM+AP stays safe only because
 *     branches resolve in order (§4.6) — the eager ablation leaks.
 *  5. The Figure 4b register-secret gadget shows the threat-model
 *     difference between DoM and NDA-P/STT (§3).
 */

#include <cstdio>

#include "security/gadgets.hh"
#include "security/leak.hh"

namespace
{

using namespace dgsim;

void
report(const char *name, const security::LeakCheck &check, bool expect_leak)
{
    std::printf("  %-44s %-8s (expected %-8s) %s\n", name,
                check.leaked() ? "LEAKS" : "blocked",
                expect_leak ? "LEAKS" : "blocked",
                check.leaked() == expect_leak ? "[ok]" : "[UNEXPECTED]");
}

SimConfig
configFor(Scheme scheme, bool ap, bool eager = false)
{
    SimConfig config;
    config.scheme = scheme;
    config.addressPrediction = ap;
    config.domEagerBranchResolution = eager;
    return config;
}

} // namespace

int
main()
{
    using namespace dgsim;
    using security::checkLeak;

    std::printf("=== Spectre v1 (bounds-check bypass, universal read "
                "gadget) ===\n");
    report("Unsafe baseline",
           checkLeak(security::spectreV1Gadget,
                     configFor(Scheme::Unsafe, false)),
           true);
    for (Scheme scheme : {Scheme::NdaP, Scheme::Stt, Scheme::Dom}) {
        for (bool ap : {false, true}) {
            const std::string name =
                schemeName(scheme) + (ap ? "+AP (doppelgangers)" : "");
            report(name.c_str(),
                   checkLeak(security::spectreV1Gadget,
                             configFor(scheme, ap)),
                   false);
        }
    }

    std::printf("\n=== Figure 4a: speculative secret steering "
                "address-predicted loads ===\n");
    report("DoM (no AP)",
           checkLeak(security::domSpeculativeSecretGadget,
                     configFor(Scheme::Dom, false), 2, 3),
           false);
    report("DoM+AP, in-order branch resolution (4.6)",
           checkLeak(security::domSpeculativeSecretGadget,
                     configFor(Scheme::Dom, true), 2, 3),
           false);
    report("DoM+AP, eager resolution (INSECURE ablation)",
           checkLeak(security::domSpeculativeSecretGadget,
                     configFor(Scheme::Dom, true, /*eager=*/true), 2, 3),
           true);

    std::printf("\n=== Figure 4b: secret residing in a register ===\n");
    report("DoM (register protection)",
           checkLeak(security::registerSecretGadget,
                     configFor(Scheme::Dom, false), 2, 3),
           false);
    report("DoM+AP",
           checkLeak(security::registerSecretGadget,
                     configFor(Scheme::Dom, true), 2, 3),
           false);
    report("NDA-P (register secrets out of scope)",
           checkLeak(security::registerSecretGadget,
                     configFor(Scheme::NdaP, false), 2, 3),
           true);
    report("STT (register secrets out of scope)",
           checkLeak(security::registerSecretGadget,
                     configFor(Scheme::Stt, false), 2, 3),
           true);

    std::printf("\nA \"LEAKS\" row means the final cache-hierarchy state "
                "differed between two runs\nthat were identical except "
                "for the secret value.\n");
    return 0;
}
