/**
 * @file
 * Explores the address predictor interactively: for one workload,
 * sweep the predictor size and confidence threshold and report
 * coverage, accuracy and the resulting DoM+AP speedup. A playground
 * for the paper's "better predictors are future work" direction.
 *
 * Usage: predictor_explorer [workload] [instructions]
 *        (defaults: xalancbmk_s 60000)
 */

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace dgsim;

    const std::string name = argc > 1 ? argv[1] : "xalancbmk_s";
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60000;

    const auto &workload = workloads::findWorkload(name);
    const Program program = workload.build(0);

    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 300;
    base.warmupInstructions = instructions / 3;
    base.scheme = Scheme::Dom;

    const SimResult dom = runProgram(program, base);
    std::printf("workload %s (%s), DoM baseline IPC %.3f\n\n",
                workload.name.c_str(), workload.pattern.c_str(), dom.ipc);
    std::printf("%8s %6s %6s | %9s %9s %9s\n", "entries", "assoc", "conf",
                "coverage", "accuracy", "speedup");

    const unsigned entry_sweep[] = {64, 256, 1024, 4096};
    const unsigned conf_sweep[] = {1, 2, 4};
    for (unsigned entries : entry_sweep) {
        for (unsigned conf : conf_sweep) {
            SimConfig config = base;
            config.addressPrediction = true;
            config.predictorEntries = entries;
            config.predictorAssoc = 8;
            config.predictorConfidenceThreshold = conf;
            const SimResult result = runProgram(program, config);
            std::printf("%8u %6u %6u | %8.1f%% %8.1f%% %8.3fx\n", entries,
                        8u, conf, 100.0 * result.dgCoverage,
                        100.0 * result.dgAccuracy, result.ipc / dom.ipc);
        }
    }
    std::printf("\nTable 1 operating point: 1024 entries, 8-way, "
                "confidence 2.\n");
    return 0;
}
