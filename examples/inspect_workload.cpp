/**
 * @file
 * Diagnostic: run one named workload from the evaluation suite across
 * the scheme matrix and dump the interesting counters side by side.
 *
 * Usage: inspect_workload <workload-name> [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace dgsim;

    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <workload> [instructions]\n",
                     argv[0]);
        std::fprintf(stderr, "workloads:");
        for (const auto &w : workloads::evaluationSuite())
            std::fprintf(stderr, " %s", w.name.c_str());
        std::fprintf(stderr, "\n");
        return 1;
    }
    const std::uint64_t instructions =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 60000;

    const auto &def = workloads::findWorkload(argv[1]);
    const Program program = def.build(0);

    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 300;

    std::vector<SimResult> results;
    for (const SimConfig &config : evaluationConfigs(base))
        results.push_back(runProgram(program, config));

    auto row = [&](const char *label, auto getter) {
        std::printf("%-16s", label);
        for (const SimResult &r : results)
            std::printf(" %10.0f", static_cast<double>(getter(r)));
        std::printf("\n");
    };

    std::printf("workload: %s (%s)\n%-16s", def.name.c_str(),
                def.pattern.c_str(), "");
    for (const SimResult &r : results)
        std::printf(" %10s", r.configLabel.c_str());
    std::printf("\n");
    row("cycles", [](const SimResult &r) { return r.cycles; });
    std::printf("%-16s", "ipc");
    for (const SimResult &r : results)
        std::printf(" %10.3f", r.ipc);
    std::printf("\n");
    row("l1Accesses", [](const SimResult &r) { return r.l1Accesses; });
    row("l1Misses", [](const SimResult &r) { return r.l1Misses; });
    row("l2Accesses", [](const SimResult &r) { return r.l2Accesses; });
    row("l3Accesses", [](const SimResult &r) { return r.l3Accesses; });
    row("dram", [](const SimResult &r) { return r.dramAccesses; });
    row("domDelayed", [](const SimResult &r) { return r.domDelayed; });
    row("brSquashes", [](const SimResult &r) { return r.branchSquashes; });
    row("memSquashes",
        [](const SimResult &r) { return r.memOrderSquashes; });
    row("stlFwd", [](const SimResult &r) { return r.stlForwards; });
    row("loads", [](const SimResult &r) { return r.committedLoads; });
    row("branches", [](const SimResult &r) { return r.committedBranches; });
    row("dgAttached", [](const SimResult &r) { return r.dgAttached; });
    row("dgIssued", [](const SimResult &r) { return r.dgIssued; });
    row("dgOk", [](const SimResult &r) { return r.dgVerifiedOk; });
    row("dgBad", [](const SimResult &r) { return r.dgVerifiedBad; });
    row("prefetches", [](const SimResult &r) {
        auto it = r.counters.find("core.prefetchesIssued");
        return it == r.counters.end() ? 0ULL : it->second;
    });
    std::printf("%-16s", "coverage");
    for (const SimResult &r : results)
        std::printf(" %10.2f", r.dgCoverage);
    std::printf("\n%-16s", "accuracy");
    for (const SimResult &r : results)
        std::printf(" %10.2f", r.dgAccuracy);
    std::printf("\n");
    return 0;
}
