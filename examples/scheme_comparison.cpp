/**
 * @file
 * Runs the full SPEC-proxy evaluation suite across the scheme x AP
 * matrix and prints the normalized-IPC table — a compact programmatic
 * tour of the library's top-level API (suite registry, SimConfig,
 * runProgram, SimResult).
 *
 * Usage: scheme_comparison [instructions-per-run]   (default 40000)
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <vector>

#include "sim/simulator.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace dgsim;

    const std::uint64_t instructions =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 40000;

    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 200;
    base.warmupInstructions = instructions / 3;

    std::printf("%-14s %8s", "workload", "base-IPC");
    const std::vector<SimConfig> configs = evaluationConfigs(base);
    for (const SimConfig &config : configs) {
        if (config.scheme != Scheme::Unsafe || config.addressPrediction)
            std::printf(" %9s", config.label().c_str());
    }
    std::printf("\n");

    std::map<std::string, double> log_sums;
    std::size_t count = 0;
    for (const auto &workload : workloads::evaluationSuite()) {
        const Program program = workload.build(0);
        double base_ipc = 0.0;
        std::vector<std::pair<std::string, double>> row;
        for (const SimConfig &config : configs) {
            const SimResult result = runProgram(program, config);
            if (config.scheme == Scheme::Unsafe &&
                !config.addressPrediction) {
                base_ipc = result.ipc;
            } else {
                row.emplace_back(config.label(), result.ipc / base_ipc);
            }
        }
        std::printf("%-14s %8.2f", workload.name.c_str(), base_ipc);
        for (const auto &[label, normalized] : row) {
            std::printf(" %9.3f", normalized);
            log_sums[label] += std::log(normalized);
        }
        std::printf("\n");
        ++count;
    }

    std::printf("%-14s %8s", "GMEAN", "");
    for (const SimConfig &config : configs) {
        if (config.scheme != Scheme::Unsafe || config.addressPrediction) {
            std::printf(" %9.3f",
                        std::exp(log_sums[config.label()] /
                                 static_cast<double>(count)));
        }
    }
    std::printf("\n");
    return 0;
}
