/**
 * @file
 * Property tests over the whole SPEC-proxy workload suite: every
 * finite kernel must commit exactly the functional oracle's
 * architectural state under every scheme x AP configuration, and the
 * endless variants must make forward progress with sane statistics.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "cpu/core.hh"
#include "isa/functional.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace dgsim
{
namespace
{

using workloads::WorkloadDef;

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadDef &workload : workloads::evaluationSuite())
        names.push_back(workload.name);
    return names;
}

std::string
sanitize(std::string name)
{
    for (auto &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class WorkloadOracleTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadOracleTest, FiniteKernelMatchesOracleUnderEveryConfig)
{
    const WorkloadDef &def = workloads::findWorkload(GetParam());
    const Program program = def.build(/*iterations=*/120);

    FunctionalCore oracle(program);
    oracle.run(2'000'000);
    ASSERT_TRUE(oracle.halted()) << def.name << ": oracle did not halt";

    for (Scheme scheme :
         {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt, Scheme::Dom}) {
        for (bool ap : {false, true}) {
            SimConfig config;
            config.scheme = scheme;
            config.addressPrediction = ap;
            config.checkArchState = true; // per-commit lockstep check
            config.maxCycles = 10'000'000;
            StatRegistry stats;
            OooCore core(program, config, stats);
            core.run();
            const std::string label =
                def.name + " under " + config.label();
            for (unsigned reg = 1; reg < kNumArchRegs; ++reg) {
                ASSERT_EQ(core.archReg(static_cast<RegIndex>(reg)),
                          oracle.reg(static_cast<RegIndex>(reg)))
                    << label << ", x" << reg;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadOracleTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const ::testing::TestParamInfo<std::string> &i) {
                             return sanitize(i.param);
                         });

class WorkloadSmokeTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadSmokeTest, EndlessKernelMakesProgressAndCollectsStats)
{
    const WorkloadDef &def = workloads::findWorkload(GetParam());
    const Program program = def.build(/*iterations=*/0);
    SimConfig config;
    config.maxInstructions = 8000;
    config.maxCycles = 3'000'000;
    const SimResult result = runProgram(program, config);
    EXPECT_GE(result.instructions, 8000u) << def.name;
    EXPECT_GT(result.ipc, 0.01) << def.name;
    EXPECT_GT(result.committedLoads, 0u) << def.name;
    EXPECT_GT(result.committedBranches, 0u)
        << def.name << ": every kernel must run under control speculation";
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadSmokeTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const ::testing::TestParamInfo<std::string> &i) {
                             return sanitize(i.param);
                         });

TEST(SuiteTest, RegistryIsWellFormed)
{
    const auto &suite = workloads::evaluationSuite();
    EXPECT_GE(suite.size(), 20u) << "the evaluation needs a broad suite";
    unsigned spec2006 = 0;
    unsigned spec2017 = 0;
    for (const WorkloadDef &workload : suite) {
        EXPECT_FALSE(workload.name.empty());
        EXPECT_FALSE(workload.pattern.empty());
        if (workload.suite == "SPEC2006")
            ++spec2006;
        else if (workload.suite == "SPEC2017")
            ++spec2017;
        else
            ADD_FAILURE() << "unknown suite " << workload.suite;
    }
    EXPECT_GE(spec2006, 10u);
    EXPECT_GE(spec2017, 10u);
}

TEST(SuiteTest, FindUnknownWorkloadDies)
{
    EXPECT_EXIT(workloads::findWorkload("no-such-benchmark"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

TEST(SuiteTest, LongTierIsSeparateFromTheEvaluationSuite)
{
    // The long-horizon tier exists for fast-forward/sampling runs and
    // must never leak into the paper-figure suite (or tier-1 tests,
    // which parameterize over evaluationSuite()).
    unsigned long_tier = 0;
    for (const WorkloadDef &workload : workloads::extendedSuite())
        if (workload.tier == "long")
            ++long_tier;
    EXPECT_GE(long_tier, 2u)
        << "need at least two long-horizon workloads for sampling runs";
    for (const WorkloadDef &workload : workloads::evaluationSuite())
        EXPECT_EQ(workload.tier, "default") << workload.name;
    EXPECT_EQ(workloads::extendedSuite().size(),
              workloads::evaluationSuite().size() + long_tier);
    // findWorkload resolves long-tier names too.
    EXPECT_EQ(workloads::findWorkload("stream_long").tier, "long");
}

TEST(SuiteTest, LongTierWorkloadsSpanAMillionInstructions)
{
    // "Long horizon" is a real claim: the finite builds must execute
    // >= 1M instructions functionally (fast: no detailed core here).
    for (const WorkloadDef &workload : workloads::extendedSuite()) {
        if (workload.tier != "long")
            continue;
        const Program program = workload.build(/*iterations=*/200'000);
        FunctionalCore functional(program);
        functional.run(100'000'000);
        EXPECT_TRUE(functional.halted()) << workload.name;
        EXPECT_GE(functional.instructionsExecuted(), 1'000'000u)
            << workload.name;
    }
}

} // namespace
} // namespace dgsim
