/**
 * @file
 * Squash-storm stress test for the DynInst recycling pool.
 *
 * A mispredict-heavy program — every loop iteration branches on random
 * bits of loaded data, so gshare hovers near coin-flip accuracy —
 * churns thousands of wrong-path instructions through the pipeline.
 * While it runs we tick the core by hand and assert two pool
 * invariants on every cycle:
 *
 *  1. live() never exceeds the in-flight window (ROB plus the lazily
 *     filtered side lists), i.e. squash paths release every pooled
 *     instruction and nothing leaks;
 *  2. capacity() stays pinned at the high-water mark, i.e. the steady
 *     state cycle loop performs zero per-instruction heap allocations.
 *
 * Afterwards the final architectural state must still match the
 * functional oracle — recycled slots must never alias live state.
 */

#include <algorithm>
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "isa/functional.hh"
#include "sim/simulator.hh"

namespace dgsim
{
namespace
{

constexpr Addr kDataBase = 0x20000;
constexpr std::uint64_t kDataWords = 1024;
constexpr std::uint64_t kIterations = 1500;

/**
 * Loop whose control flow depends on random data: each iteration loads
 * a pseudo-random word and takes three branches keyed to independent
 * bits of it, with enough ALU filler on every path that a mispredict
 * flushes a deep wrong-path window.
 */
Program
stormProgram(std::uint64_t seed)
{
    Rng rng(seed);
    Assembler assembler("squash-storm");

    for (std::uint64_t i = 0; i < kDataWords; ++i)
        assembler.data(kDataBase + i * 8, rng.next());

    // x1: data base, x2: LCG state, x3: running checksum,
    // x20: loop counter, x21: bound.
    assembler.li(1, kDataBase)
        .li(2, rng.next() | 1)
        .li(3, 0)
        .li(20, 0)
        .li(21, kIterations);

    assembler.label("loop");

    // x2 = x2 * 6364136223846793005 + 1442695040888963407 (MMIX LCG).
    assembler.li(4, 6364136223846793005ull)
        .mul(2, 2, 4)
        .li(4, 1442695040888963407ull)
        .add(2, 2, 4);

    // Load a data word selected by the LCG's high bits.
    assembler.srli(5, 2, 50)
        .andi(5, 5, (kDataWords - 1) * 8)
        .andi(5, 5, ~7LL)
        .add(5, 5, 1)
        .ld(6, 5);

    // Three data-dependent branches on independent bits of the loaded
    // word. Each arm mixes a different constant into the checksum so a
    // wrong-path commit (a pool aliasing bug) changes the final state.
    assembler.andi(7, 6, 1 << 3)
        .beq(7, 0, "even_a")
        .xori(3, 3, 0x1111)
        .add(3, 3, 6)
        .jmp("join_a")
        .label("even_a")
        .xori(3, 3, 0x2222)
        .sub(3, 3, 6)
        .label("join_a");

    assembler.andi(7, 6, 1 << 17)
        .beq(7, 0, "even_b")
        .slli(8, 6, 1)
        .add(3, 3, 8)
        .jmp("join_b")
        .label("even_b")
        .srli(8, 6, 1)
        .xor_(3, 3, 8)
        .label("join_b");

    assembler.andi(7, 6, 1 << 31)
        .beq(7, 0, "even_c")
        .mul(9, 6, 4)
        .xor_(3, 3, 9)
        .label("even_c");

    // Store the checksum back so memory state also witnesses ordering.
    assembler.andi(10, 3, (kDataWords - 1) * 8)
        .andi(10, 10, ~7LL)
        .add(10, 10, 1)
        .st(3, 10);

    assembler.addi(20, 20, 1).blt(20, 21, "loop").halt();
    return assembler.finish();
}

TEST(SquashStormTest, PoolBoundedAndStateMatchesOracle)
{
    const Program program = stormProgram(0xdead5eed);

    FunctionalCore oracle(program);
    oracle.run(10'000'000);
    ASSERT_TRUE(oracle.halted());

    for (const SimConfig &config : evaluationConfigs(SimConfig{})) {
        SimConfig cfg = config;
        cfg.maxCycles = 20'000'000;

        StatRegistry stats;
        OooCore core(program, cfg, stats);

        // The pool may hold one entry per ROB slot plus squashed
        // stragglers parked in the lazily filtered exec/branch lists
        // (bounded by the in-flight window) for up to a cycle.
        const std::size_t bound = 2 * cfg.robEntries;
        std::size_t high_water = 0;
        while (!core.done()) {
            core.tick();
            high_water = std::max(high_water, core.dynInstPoolLive());
            ASSERT_LE(core.dynInstPoolLive(), bound)
                << cfg.label() << ": pool leak at cycle " << core.cycle();
        }

        // Slabs are allocated in fixed-size chunks, so total capacity
        // must stay within one slab of the high-water mark: steady
        // state recycles instead of allocating.
        EXPECT_LE(core.dynInstPoolCapacity(),
                  ((high_water / DynInstPool::kSlabEntries) + 1) *
                      DynInstPool::kSlabEntries)
            << cfg.label() << ": pool grew past its high-water mark";
        EXPECT_EQ(core.dynInstPoolLive(), 0u)
            << cfg.label() << ": instructions still live after HALT";

        // The storm must actually have stormed.
        EXPECT_GE(stats.get("core.branchSquashes"), 1000u) << cfg.label();

        const std::string label = program.name + " under " + cfg.label();
        for (unsigned reg = 1; reg < kNumArchRegs; ++reg) {
            ASSERT_EQ(core.archReg(static_cast<RegIndex>(reg)),
                      oracle.reg(static_cast<RegIndex>(reg)))
                << label << ", x" << reg;
        }
        for (const auto &[addr, value] : oracle.memory().words()) {
            ASSERT_EQ(core.dataMemory().read(addr), value)
                << label << ", mem[" << addr << "]";
        }
    }
}

} // namespace
} // namespace dgsim
