/**
 * @file
 * Store-to-load forwarding and memory-order violation handling in the
 * out-of-order core, across all schemes.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "isa/functional.hh"

namespace dgsim
{
namespace
{

SimConfig
makeConfig(Scheme scheme, bool ap)
{
    SimConfig config;
    config.scheme = scheme;
    config.addressPrediction = ap;
    config.checkArchState = true; // lockstep oracle on every commit
    config.maxCycles = 2'000'000;
    return config;
}

void
runAllConfigs(const Program &program,
              const std::function<void(const OooCore &, StatRegistry &,
                                       const std::string &)> &verify)
{
    for (Scheme scheme :
         {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt, Scheme::Dom}) {
        for (bool ap : {false, true}) {
            StatRegistry stats;
            OooCore core(program, makeConfig(scheme, ap), stats);
            core.run();
            verify(core, stats,
                   schemeName(scheme) + (ap ? "+AP" : ""));
        }
    }
}

TEST(StlfTest, ForwardsFromYoungestMatchingStore)
{
    // Two stores to the same slot; the load must see the younger one.
    Assembler assembler("stlf-youngest");
    assembler.li(1, 0x7000)
        .li(2, 11)
        .li(3, 22)
        .st(2, 1)   // mem[slot] = 11
        .st(3, 1)   // mem[slot] = 22
        .ld(4, 1)   // must read 22
        .halt();
    const Program program = assembler.finish();
    runAllConfigs(program,
                  [](const OooCore &core, StatRegistry &,
                     const std::string &label) {
                      EXPECT_EQ(core.archReg(4), 22u) << label;
                  });
}

TEST(StlfTest, ForwardingHappensInsteadOfCacheAccess)
{
    Assembler assembler("stlf-fast");
    assembler.li(1, 0x7000).li(2, 5);
    // A tight store->load pair repeated: forwarding should fire.
    assembler.li(3, 0).li(4, 30);
    assembler.label("loop");
    assembler.st(2, 1);
    assembler.ld(5, 1);
    assembler.add(6, 6, 5);
    assembler.addi(3, 3, 1);
    assembler.blt(3, 4, "loop");
    assembler.halt();
    const Program program = assembler.finish();
    StatRegistry stats;
    OooCore core(program, makeConfig(Scheme::Unsafe, false), stats);
    core.run();
    EXPECT_GT(stats.get("core.stlForwards"), 0u);
    EXPECT_EQ(core.archReg(6), 150u);
}

TEST(MemOrderTest, LateStoreAddressSquashesStaleLoad)
{
    // The store's address resolves late (long dependency chain); a
    // younger load to the same address will have read stale memory and
    // must be squashed and re-executed.
    constexpr Addr kSlot = 0x7000;
    Assembler assembler("memorder");
    assembler.data(kSlot, 1); // stale value
    assembler.li(1, 3);
    // Slow address computation ending at kSlot.
    assembler.mul(1, 1, 1);
    assembler.mul(1, 1, 1);
    assembler.mul(1, 1, 1);
    assembler.mul(1, 1, 1);
    assembler.li(1, kSlot); // address finally known
    assembler.li(2, 99);
    assembler.st(2, 1);     // store 99 (address was slow)
    assembler.li(3, kSlot);
    assembler.ld(4, 3)      // younger load, address ready immediately
        .halt();
    const Program program = assembler.finish();
    runAllConfigs(program,
                  [](const OooCore &core, StatRegistry &,
                     const std::string &label) {
                      EXPECT_EQ(core.archReg(4), 99u) << label;
                  });
}

TEST(MemOrderTest, ViolationCounterFires)
{
    // Like above but in a loop so at least one violation actually
    // occurs (timing-dependent per scheme; assert on the unsafe core).
    constexpr Addr kSlot = 0x7000;
    Assembler assembler("memorder-loop");
    assembler.data(kSlot, 1);
    assembler.li(1, 0).li(2, 20).li(7, 0);
    assembler.label("loop");
    assembler.li(3, 3);
    assembler.mul(3, 3, 3);
    assembler.mul(3, 3, 3);
    assembler.mul(3, 3, 3);
    assembler.andi(3, 3, 0); // 0
    assembler.addi(3, 3, kSlot); // slow path to the address
    assembler.st(1, 3);
    assembler.li(4, kSlot);
    assembler.ld(5, 4);
    assembler.add(7, 7, 5);
    assembler.addi(1, 1, 1);
    assembler.blt(1, 2, "loop");
    assembler.halt();
    const Program program = assembler.finish();
    StatRegistry stats;
    OooCore core(program, makeConfig(Scheme::Unsafe, false), stats);
    core.run();
    // Sum of 0..19 = 190.
    EXPECT_EQ(core.archReg(7), 190u);
    EXPECT_GT(stats.get("core.memOrderSquashes"), 0u)
        << "the optimistic load should have been caught at least once";
}

TEST(StlfTest, AmbiguousStoreDoesNotForwardWrongValue)
{
    // Store to a *different* address than the later load: no forward.
    Assembler assembler("no-alias");
    assembler.data(0x7000, 123);
    assembler.li(1, 0x8000).li(2, 55);
    assembler.st(2, 1);       // writes 0x8000
    assembler.li(3, 0x7000);
    assembler.ld(4, 3)        // reads 0x7000: must be 123
        .halt();
    const Program program = assembler.finish();
    runAllConfigs(program,
                  [](const OooCore &core, StatRegistry &,
                     const std::string &label) {
                      EXPECT_EQ(core.archReg(4), 123u) << label;
                  });
}

} // namespace
} // namespace dgsim
