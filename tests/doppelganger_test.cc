/**
 * @file
 * Directed tests of the Doppelganger Loads mechanism (paper §4, §5):
 * state machine, store-to-load-forwarding override (§4.4), invalidation
 * snooping (§4.5), misprediction replay, and the commit-only predictor
 * training invariant.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "core/doppelganger.hh"
#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "isa/functional.hh"
#include "sim/simulator.hh"

namespace dgsim
{
namespace
{

SimConfig
apConfig(Scheme scheme)
{
    SimConfig config;
    config.scheme = scheme;
    config.addressPrediction = true;
    config.checkArchState = true;
    config.maxCycles = 5'000'000;
    return config;
}

// --- Unit-level state machine -----------------------------------------

TEST(DoppelgangerUnitTest, AttachRequiresConfidentEntry)
{
    SimConfig config;
    config.addressPrediction = true;
    StatRegistry stats;
    StrideTable table(64, 4, 2, stats);
    DoppelgangerUnit unit(config, table, stats);

    DynInst load;
    load.cls = OpClass::MemRead;
    load.pc = 0x10;
    unit.attachPrediction(load);
    EXPECT_EQ(load.dgState, DgState::None) << "untrained PC";

    table.train(0x10, 96);
    table.train(0x10, 160);
    table.train(0x10, 224);
    table.train(0x10, 288);
    unit.attachPrediction(load);
    EXPECT_EQ(load.dgState, DgState::Predicted);
    EXPECT_EQ(load.dgPredictedAddr, 352u);
}

TEST(DoppelgangerUnitTest, DisabledUnitNeverAttaches)
{
    SimConfig config;
    config.addressPrediction = false;
    StatRegistry stats;
    StrideTable table(64, 4, 2, stats);
    DoppelgangerUnit unit(config, table, stats);
    table.train(0x10, 100);
    table.train(0x10, 164);
    table.train(0x10, 228);
    table.train(0x10, 292);
    DynInst load;
    load.cls = OpClass::MemRead;
    load.pc = 0x10;
    unit.attachPrediction(load);
    EXPECT_EQ(load.dgState, DgState::None);
}

TEST(DoppelgangerUnitTest, VerifyMatchAndMismatch)
{
    SimConfig config;
    config.addressPrediction = true;
    StatRegistry stats;
    StrideTable table(64, 4, 2, stats);
    DoppelgangerUnit unit(config, table, stats);
    table.train(0x10, 0);
    table.train(0x10, 64);
    table.train(0x10, 128);
    table.train(0x10, 192);

    DynInst match;
    match.cls = OpClass::MemRead;
    match.pc = 0x10;
    unit.attachPrediction(match);
    match.dgAccessIssued = true;
    match.addrReady = true;
    match.effAddr = match.dgPredictedAddr;
    unit.verify(match);
    EXPECT_EQ(match.dgState, DgState::Verified);

    DynInst mismatch;
    mismatch.cls = OpClass::MemRead;
    mismatch.pc = 0x10;
    unit.attachPrediction(mismatch);
    mismatch.dgAccessIssued = true;
    mismatch.addrReady = true;
    mismatch.effAddr = 0xdead00;
    unit.verify(mismatch);
    EXPECT_EQ(mismatch.dgState, DgState::Mispredicted);
    EXPECT_EQ(stats.get("dg.verifiedOk"), 1u);
    EXPECT_EQ(stats.get("dg.verifiedBad"), 1u);
}

TEST(DoppelgangerUnitTest, UnissuedWrongPredictionIsDroppedNotCounted)
{
    SimConfig config;
    config.addressPrediction = true;
    StatRegistry stats;
    StrideTable table(64, 4, 2, stats);
    DoppelgangerUnit unit(config, table, stats);
    table.train(0x10, 0);
    table.train(0x10, 64);
    table.train(0x10, 128);
    table.train(0x10, 192);
    DynInst load;
    load.cls = OpClass::MemRead;
    load.pc = 0x10;
    unit.attachPrediction(load);
    load.addrReady = true;
    load.effAddr = 0xdead00; // wrong, but the access never went out
    unit.verify(load);
    EXPECT_EQ(load.dgState, DgState::None);
    EXPECT_EQ(stats.get("dg.verifiedBad"), 0u);
    EXPECT_EQ(stats.get("dg.droppedUnissued"), 1u);
}

// --- End-to-end: §4.4 store-to-load forwarding override ----------------

TEST(DoppelgangerStlfTest, StoreValueOverridesPreloadAndAccessStillIssues)
{
    // Train a load PC on a fixed address, then store to that address
    // with slowly-produced data and immediately reload. The
    // doppelganger issues to memory (it must not be suppressed by the
    // matching store, §4.4), but the committed value is the store's.
    constexpr Addr kSlot = 0x4000;
    Assembler assembler("stlf-override");
    assembler.data(kSlot, 7); // initial memory value

    assembler.li(1, 0).li(2, 12).li(3, 0);
    assembler.label("train");
    assembler.ld(4, 0, kSlot);
    assembler.add(3, 3, 4);
    assembler.addi(1, 1, 1);
    assembler.blt(1, 2, "train");

    // Slow data: serial multiplies ending in the value 41.
    assembler.li(5, 3);
    assembler.mul(5, 5, 5);
    assembler.mul(5, 5, 5);
    assembler.mul(5, 5, 5);
    assembler.li(5, 41);
    assembler.st(5, 0, kSlot);  // store 41
    assembler.ld(6, 0, kSlot);  // doppelganger-predicted reload
    assembler.addi(6, 6, 1);    // r6 = 42
    assembler.halt();
    const Program program = assembler.finish();

    for (Scheme scheme :
         {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt, Scheme::Dom}) {
        StatRegistry stats;
        OooCore core(program, apConfig(scheme), stats);
        core.run();
        EXPECT_EQ(core.archReg(6), 42u) << schemeName(scheme);
        EXPECT_EQ(core.dataMemory().read(kSlot), 41u);
        EXPECT_GT(stats.get("dg.attached"), 0u) << schemeName(scheme);
    }
}

// --- End-to-end: misprediction replay -------------------------------------

TEST(DoppelgangerReplayTest, MispredictedDoppelgangerReplaysCorrectly)
{
    // Train a stride, then break it: the last load's prediction is
    // wrong, the preload is discarded, and the replayed load commits
    // the right value under every scheme.
    constexpr Addr kBase = 0x8000;
    Assembler assembler("dg-replay");
    for (unsigned i = 0; i < 16; ++i)
        assembler.data(kBase + i * 8, 100 + i);
    assembler.data(0x9000, 999);

    assembler.li(1, 0).li(2, 12).li(3, kBase).li(4, 0);
    assembler.label("loop");
    assembler.slli(5, 1, 3);
    assembler.add(5, 5, 3);
    assembler.ld(6, 5);       // strided: trains the predictor
    assembler.add(4, 4, 6);
    assembler.addi(1, 1, 1);
    assembler.blt(1, 2, "loop");
    // Same PC would predict kBase+12*8; jump the cursor instead.
    assembler.li(3, 0x9000 - 12 * 8);
    assembler.slli(5, 1, 3);
    assembler.add(5, 5, 3);
    assembler.ld(7, 5);       // actual address 0x9000: mispredicted
    assembler.halt();
    const Program program = assembler.finish();

    for (Scheme scheme :
         {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt, Scheme::Dom}) {
        StatRegistry stats;
        OooCore core(program, apConfig(scheme), stats);
        core.run();
        EXPECT_EQ(core.archReg(7), 999u) << schemeName(scheme);
    }
}

// --- End-to-end: §4.5 invalidation snoop -----------------------------------

TEST(DoppelgangerInvalidationTest, SnoopedLineStillCommitsCorrectValue)
{
    // An invalidation arriving while loads/doppelgangers are in flight
    // must never corrupt architectural state: the noted invalidation
    // squashes at propagation and the re-executed load re-reads memory.
    constexpr Addr kSlot = 0x4000;
    Assembler assembler("inval-snoop");
    assembler.data(kSlot, 55);
    assembler.li(1, 0).li(2, 40).li(3, 0);
    assembler.label("loop");
    assembler.ld(4, 0, kSlot); // same line every iteration
    assembler.add(3, 3, 4);
    assembler.addi(1, 1, 1);
    assembler.blt(1, 2, "loop");
    assembler.halt();
    const Program program = assembler.finish();

    for (Scheme scheme : {Scheme::Unsafe, Scheme::NdaP, Scheme::Dom}) {
        SimConfig config = apConfig(scheme);
        config.checkArchState = true;
        StatRegistry stats;
        OooCore core(program, config, stats);
        // Let the pipeline fill with speculative loads, then invalidate.
        for (int i = 0; i < 40 && !core.done(); ++i)
            core.tick();
        core.externalInvalidate(kSlot);
        core.run();
        EXPECT_EQ(core.archReg(3), 55u * 40u) << schemeName(scheme);
        EXPECT_FALSE(core.hierarchy().linePresent(1, kSlot) &&
                     stats.get("l1d.accesses") == 0);
    }
}

// --- Commit-only training invariant ----------------------------------------

TEST(DoppelgangerTrainingTest, WrongPathLoadsNeverTrainThePredictor)
{
    // A mispredicted branch repeatedly executes a wrong-path load at a
    // PC that never commits. The predictor must have no entry for it.
    constexpr Addr kTable = 0x4000;
    Assembler assembler("no-spec-training");
    assembler.data(0x1000, 1);
    assembler.li(1, 0).li(2, 60).li(3, 0);
    assembler.label("loop");
    assembler.ld(4, 0, 0x1000);    // always 1
    assembler.beq(4, 0, "never");  // never taken architecturally
    assembler.jmp("join");
    assembler.label("never");
    assembler.ld(5, 0, kTable);    // wrong-path-only load
    assembler.label("join");
    assembler.addi(1, 1, 1);
    assembler.blt(1, 2, "loop");
    assembler.halt();
    const Program program = assembler.finish();

    Addr wrong_path_pc = 0;
    for (Addr pc = 0; pc < program.text.size(); ++pc) {
        if (program.text[pc].op == Opcode::Ld &&
            program.text[pc].imm == static_cast<std::int64_t>(kTable)) {
            wrong_path_pc = pc;
        }
    }
    ASSERT_NE(wrong_path_pc, 0u);

    StatRegistry stats;
    OooCore core(program, apConfig(Scheme::Unsafe), stats);
    core.run();
    EXPECT_EQ(core.strideTable().peek(wrong_path_pc), nullptr)
        << "predictor state must be trained by committed loads only";
}

} // namespace
} // namespace dgsim
