/**
 * @file
 * Decision-table tests for the secure speculation policies (paper §2,
 * §5.1-§5.3) plus in-core behavioural checks of the scheme semantics.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "secure/dom_policy.hh"
#include "secure/nda_policy.hh"
#include "secure/policy.hh"
#include "secure/stt_policy.hh"
#include "secure/unsafe_policy.hh"

namespace dgsim
{
namespace
{

DynInst
loadInst()
{
    DynInst inst;
    inst.cls = OpClass::MemRead;
    return inst;
}

SpecContext
context(bool shadowed, bool tainted, bool ap = false)
{
    return SpecContext{shadowed, tainted, ap};
}

TEST(PolicyFactoryTest, BuildsTheRightPolicy)
{
    for (Scheme scheme :
         {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt, Scheme::Dom}) {
        SimConfig config;
        config.scheme = scheme;
        EXPECT_EQ(makePolicy(config)->scheme(), scheme);
    }
}

TEST(NdaPolicyTest, DelaysPropagationWhileShadowed)
{
    NdaPolicy policy;
    const DynInst load = loadInst();
    EXPECT_TRUE(policy.loadMayIssue(load, context(true, false)));
    EXPECT_FALSE(policy.loadMayPropagate(load, context(true, false)))
        << "NDA-P: no propagation under a shadow";
    EXPECT_TRUE(policy.loadMayPropagate(load, context(false, false)));
    EXPECT_FALSE(policy.dgMayPropagate(load, context(true, false)));
    EXPECT_TRUE(policy.dgMayPropagate(load, context(false, false)));
    EXPECT_TRUE(policy.branchMayResolve(load, context(true, false)));
    EXPECT_FALSE(policy.taintsLoads());
}

TEST(SttPolicyTest, BlocksTaintedTransmitters)
{
    SttPolicy policy;
    const DynInst load = loadInst();
    EXPECT_FALSE(policy.loadMayIssue(load, context(true, true)))
        << "tainted address operands block the load transmitter";
    EXPECT_TRUE(policy.loadMayIssue(load, context(true, false)));
    EXPECT_TRUE(policy.loadMayPropagate(load, context(true, false)))
        << "STT propagates (and taints) immediately";
    EXPECT_FALSE(policy.branchMayResolve(load, context(false, true)))
        << "tainted predicates delay branch resolution";
    EXPECT_TRUE(policy.branchMayResolve(load, context(true, false)));
    EXPECT_FALSE(policy.storeMayIssueAgu(load, context(false, true)));
    EXPECT_TRUE(policy.taintsLoads());
    EXPECT_TRUE(policy.dgMayPropagate(load, context(true, false)))
        << "verified doppelganger propagates tainted (paper 5.2)";
    EXPECT_FALSE(policy.dgReplayMayIssue(load, context(false, true)));
}

TEST(DomPolicyTest, AccessFlagsAndApRules)
{
    DomPolicy policy;
    const DynInst load = loadInst();
    const MemAccessFlags shadowed_flags =
        policy.loadAccessFlags(load, context(true, false));
    EXPECT_TRUE(shadowed_flags.domProtected);
    EXPECT_TRUE(shadowed_flags.speculative);
    EXPECT_TRUE(shadowed_flags.delayReplacementUpdate);
    const MemAccessFlags safe_flags =
        policy.loadAccessFlags(load, context(false, false));
    EXPECT_FALSE(safe_flags.speculative);
    EXPECT_FALSE(safe_flags.delayReplacementUpdate);

    // Branch resolution: eager without AP, in-order with AP (paper 4.6).
    EXPECT_TRUE(policy.branchMayResolve(load, context(true, false, false)));
    EXPECT_FALSE(policy.branchMayResolve(load, context(true, false, true)));
    EXPECT_TRUE(policy.branchMayResolve(load, context(false, false, true)));

    // Verified doppelgangers: L1 hits release at verification, misses
    // wait for non-speculative (paper 5.3).
    DynInst hit = loadInst();
    hit.dgL1Hit = true;
    EXPECT_TRUE(policy.dgMayPropagate(hit, context(true, false)));
    DynInst miss = loadInst();
    miss.dgL1Hit = false;
    EXPECT_FALSE(policy.dgMayPropagate(miss, context(true, false)));
    EXPECT_TRUE(policy.dgMayPropagate(miss, context(false, false)));

    // Mispredicted doppelganger replay waits for non-speculative.
    EXPECT_FALSE(policy.dgReplayMayIssue(load, context(true, false)));
    EXPECT_TRUE(policy.dgReplayMayIssue(load, context(false, false)));
}

TEST(DomPolicyTest, EagerAblationRemovesInOrderRule)
{
    DomPolicy policy(/*eager_branch_resolution=*/true);
    const DynInst load = loadInst();
    EXPECT_TRUE(policy.branchMayResolve(load, context(true, false, true)));
}

TEST(UnsafePolicyTest, EverythingAllowed)
{
    UnsafePolicy policy;
    const DynInst load = loadInst();
    EXPECT_TRUE(policy.loadMayIssue(load, context(true, true)));
    EXPECT_TRUE(policy.loadMayPropagate(load, context(true, true)));
    EXPECT_TRUE(policy.branchMayResolve(load, context(true, true)));
    EXPECT_FALSE(policy.taintsLoads());
}

// --- Behavioural checks in the core -------------------------------------

/** A dependent-load chain with a long-latency producer: measures how
 * the schemes delay the dependent load's issue/propagation. */
Program
dependentChainProgram()
{
    Assembler assembler("dep-chain");
    // B[i] holds the byte offset of A-element to load (strided).
    for (unsigned i = 0; i < 64; ++i)
        assembler.data(0x10000 + i * 8, i * 64);
    assembler.li(1, 0).li(2, 48).li(3, 0x10000).li(4, 0x40000).li(5, 0);
    assembler.label("loop");
    assembler.slli(6, 1, 3);
    assembler.add(6, 6, 3);
    assembler.ld(7, 6);     // idx load
    assembler.add(8, 7, 4);
    assembler.ld(9, 8);     // dependent load (cold DRAM miss)
    assembler.add(5, 5, 9);
    // Branch on the loaded value: keeps a control shadow open for the
    // whole miss latency, so younger loads are genuinely speculative.
    assembler.bne(9, 0, "skip");
    assembler.addi(5, 5, 1);
    assembler.label("skip");
    assembler.addi(1, 1, 1);
    assembler.blt(1, 2, "loop");
    assembler.halt();
    return assembler.finish();
}

TEST(SchemeBehaviourTest, SecureSchemesAreNeverFasterThanUnsafe)
{
    const Program program = dependentChainProgram();
    std::map<Scheme, Cycle> cycles;
    for (Scheme scheme :
         {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt, Scheme::Dom}) {
        SimConfig config;
        config.scheme = scheme;
        config.checkArchState = true;
        config.maxCycles = 1'000'000;
        StatRegistry stats;
        OooCore core(program, config, stats);
        core.run();
        cycles[scheme] = core.cycle();
    }
    EXPECT_LE(cycles[Scheme::Unsafe], cycles[Scheme::NdaP]);
    EXPECT_LE(cycles[Scheme::Unsafe], cycles[Scheme::Stt]);
    EXPECT_LE(cycles[Scheme::Unsafe], cycles[Scheme::Dom]);
}

TEST(SchemeBehaviourTest, SttTaintsAreCreatedAndCleared)
{
    const Program program = dependentChainProgram();
    SimConfig config;
    config.scheme = Scheme::Stt;
    config.maxCycles = 1'000'000;
    StatRegistry stats;
    OooCore core(program, config, stats);
    bool saw_taint = false;
    while (!core.done()) {
        core.tick();
        if (!core.taints().empty())
            saw_taint = true;
    }
    EXPECT_TRUE(saw_taint) << "speculative loads must create taints";
    EXPECT_TRUE(core.taints().empty())
        << "all taints must clear by the end of the program";
}

TEST(SchemeBehaviourTest, DomDelaysSpeculativeMisses)
{
    const Program program = dependentChainProgram();
    SimConfig config;
    config.scheme = Scheme::Dom;
    config.maxCycles = 1'000'000;
    StatRegistry stats;
    OooCore core(program, config, stats);
    core.run();
    EXPECT_GT(stats.get("mem.domDelayed"), 0u)
        << "a miss-heavy kernel must exercise the DoM delay path";
}

} // namespace
} // namespace dgsim
