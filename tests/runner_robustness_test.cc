/**
 * @file
 * Fault-tolerance tests for the experiment runner: retry/backoff
 * classification, deterministic fault injection, cooperative drain,
 * the completion journal and kill/resume round-trips, and the
 * wall-clock job timeout.
 *
 * Drain is driven through the cancel flag (the exact state a real
 * SIGINT sets), not through signals: ctest runs these in-process and a
 * raised signal would be indistinguishable from a hung test.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/errors.hh"
#include "common/signals.hh"
#include "runner/experiment_runner.hh"
#include "runner/journal.hh"
#include "runner/result_sink.hh"
#include "runner/sweep.hh"
#include "workloads/suite.hh"

namespace dgsim::runner
{
namespace
{

/** A small but real sweep: 2 L1-resident workloads x the full matrix. */
SweepSpec
smallSpec(std::uint64_t instructions)
{
    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 200;
    base.warmupInstructions = instructions / 3;

    SweepSpec spec;
    spec.workloads = {workloads::findWorkload("gobmk"),
                      workloads::findWorkload("h264ref")};
    spec.configs = evaluationConfigs(base);
    return spec;
}

std::string
jsonlOf(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream ss;
    JsonlSink sink(ss);
    for (const JobOutcome &outcome : outcomes)
        sink.consume(outcome);
    return ss.str();
}

/** Thread-safe per-job execution counter shared by the mock executors. */
class ExecutionLog
{
  public:
    void
    bump(std::size_t index)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counts_[index];
    }

    unsigned
    count(std::size_t index) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = counts_.find(index);
        return it == counts_.end() ? 0 : it->second;
    }

    std::size_t
    jobsExecuted() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return counts_.size();
    }

  private:
    mutable std::mutex mutex_;
    std::map<std::size_t, unsigned> counts_;
};

/** Deterministic mock result so serialized outputs are comparable. */
SimResult
mockResult(const Job &job)
{
    SimResult result;
    result.workload = job.workload;
    result.configLabel = job.config.label();
    result.cycles = 1000 + job.index;
    result.instructions = 500 + job.index;
    result.ipc = 0.5;
    return result;
}

/** Options with retries on and no real sleeping between attempts. */
RunnerOptions
fastRetryOptions(unsigned threads, unsigned maxAttempts)
{
    RunnerOptions options;
    options.threads = threads;
    options.progress = false;
    options.maxAttempts = maxAttempts;
    options.backoff.baseMs = 0; // Tests should not sleep.
    return options;
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

TEST(RunnerRetry, TransientFailuresRetryUntilSuccess)
{
    const SweepSpec spec = smallSpec(1'000);
    auto log = std::make_shared<ExecutionLog>();

    RunnerOptions options = fastRetryOptions(4, 3);
    options.execute = [log](const Job &job) {
        log->bump(job.index);
        // Fail the first two attempts of every job, succeed on the third.
        if (log->count(job.index) < 3)
            throw TransientError("flaky host for " + job.workload);
        return mockResult(job);
    };
    const auto outcomes = ExperimentRunner(options).run(spec);

    ASSERT_EQ(outcomes.size(), spec.jobCount());
    for (const JobOutcome &outcome : outcomes) {
        EXPECT_TRUE(outcome.ok) << outcome.error;
        EXPECT_EQ(outcome.attempts, 3u);
        EXPECT_TRUE(outcome.error.empty());
        EXPECT_EQ(log->count(outcome.index), 3u);
        EXPECT_EQ(outcome.result.cycles, 1000 + outcome.index);
    }
}

TEST(RunnerRetry, ExhaustionSurfacesTheOriginalError)
{
    const SweepSpec spec = smallSpec(1'000);
    auto log = std::make_shared<ExecutionLog>();

    RunnerOptions options = fastRetryOptions(4, 3);
    options.execute = [log](const Job &job) -> SimResult {
        log->bump(job.index);
        throw TransientError("disk on fire for " + job.workload);
    };
    const auto outcomes = ExperimentRunner(options).run(spec);

    for (const JobOutcome &outcome : outcomes) {
        EXPECT_FALSE(outcome.ok);
        EXPECT_EQ(outcome.attempts, 3u);
        EXPECT_EQ(log->count(outcome.index), 3u);
        EXPECT_NE(outcome.error.find("disk on fire for " + outcome.workload),
                  std::string::npos)
            << outcome.error;
    }
}

TEST(RunnerRetry, DeterministicSimErrorsAreNeverRetried)
{
    const SweepSpec spec = smallSpec(1'000);
    auto log = std::make_shared<ExecutionLog>();

    RunnerOptions options = fastRetryOptions(4, 5);
    options.execute = [log](const Job &job) -> SimResult {
        log->bump(job.index);
        throw std::runtime_error("bad program in " + job.workload);
    };
    const auto outcomes = ExperimentRunner(options).run(spec);

    for (const JobOutcome &outcome : outcomes) {
        EXPECT_FALSE(outcome.ok);
        // Reported once: exactly one attempt despite a budget of 5.
        EXPECT_EQ(outcome.attempts, 1u);
        EXPECT_EQ(log->count(outcome.index), 1u);
        EXPECT_NE(outcome.error.find("bad program"), std::string::npos);
    }
}

TEST(RunnerInject, FaultInjectionIsDeterministicAndRecovers)
{
    const SweepSpec spec = smallSpec(1'000);

    auto runOnce = [&](double rate, std::uint64_t seed, unsigned threads) {
        RunnerOptions options = fastRetryOptions(threads, 16);
        options.execute = mockResult;
        options.injectFailRate = rate;
        options.injectFailSeed = seed;
        return ExperimentRunner(options).run(spec);
    };

    const auto faulty = runOnce(0.6, 42, 4);
    const auto faultyAgain = runOnce(0.6, 42, 2);
    const auto clean = runOnce(0.0, 0, 4);

    // With enough attempts the faulty sweep completes...
    for (const JobOutcome &outcome : faulty)
        EXPECT_TRUE(outcome.ok) << outcome.error;
    // ...its serialized results match the fault-free run byte for byte...
    EXPECT_EQ(jsonlOf(faulty), jsonlOf(clean));
    // ...and the retry *schedule* is a pure function of (rate, seed),
    // independent of the thread count.
    bool anyRetried = false;
    for (std::size_t i = 0; i < faulty.size(); ++i) {
        EXPECT_EQ(faulty[i].attempts, faultyAgain[i].attempts);
        anyRetried |= faulty[i].attempts > 1;
    }
    EXPECT_TRUE(anyRetried) << "rate 0.6 should have faulted something";
}

TEST(RunnerDrain, CancelStopsDispatchAndFinishesInFlight)
{
    const SweepSpec spec = smallSpec(1'000);
    std::atomic<bool> cancel{false};
    auto log = std::make_shared<ExecutionLog>();

    RunnerOptions options = fastRetryOptions(1, 1); // Serial: determinism.
    options.cancel = &cancel;
    options.execute = [log, &cancel](const Job &job) {
        log->bump(job.index);
        // The drain request lands while job 2 is in flight; it must
        // still finish, and nothing later may start.
        if (job.index == 2)
            cancel.store(true);
        return mockResult(job);
    };
    const auto outcomes = ExperimentRunner(options).run(spec);

    ASSERT_EQ(outcomes.size(), spec.jobCount());
    EXPECT_EQ(log->jobsExecuted(), 3u);
    for (const JobOutcome &outcome : outcomes) {
        if (outcome.index <= 2) {
            EXPECT_TRUE(outcome.ok) << outcome.error;
            EXPECT_EQ(outcome.attempts, 1u);
        } else {
            EXPECT_FALSE(outcome.ok);
            EXPECT_EQ(outcome.attempts, 0u);
            EXPECT_NE(outcome.error.find("interrupted"), std::string::npos);
        }
    }
}

TEST(RunnerDrain, CancelAbandonsPendingRetries)
{
    const SweepSpec spec = smallSpec(1'000);
    std::atomic<bool> cancel{false};
    auto log = std::make_shared<ExecutionLog>();

    RunnerOptions options = fastRetryOptions(1, 10);
    options.cancel = &cancel;
    options.execute = [log, &cancel](const Job &job) -> SimResult {
        log->bump(job.index);
        cancel.store(true); // Drain arrives during the first attempt...
        throw TransientError("flaky");
    };
    const auto outcomes = ExperimentRunner(options).run(spec);

    // ...so the failing job gives up instead of burning 9 more retries,
    // and every queued job is skipped.
    EXPECT_EQ(log->jobsExecuted(), 1u);
    EXPECT_EQ(log->count(0), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_NE(outcomes[0].error.find("retries abandoned"),
              std::string::npos);
}

TEST(RunnerJournal, KillAndResumeMatchesUninterruptedByteForByte)
{
    const SweepSpec spec = smallSpec(1'000);
    const std::string journalPath =
        tempPath("kill_resume_journal.jsonl");
    std::remove(journalPath.c_str());

    // Reference: the same sweep, uninterrupted.
    RunnerOptions reference = fastRetryOptions(4, 1);
    reference.execute = mockResult;
    const auto uninterrupted = ExperimentRunner(reference).run(spec);

    // "Killed" run: serial so the cut point is deterministic — jobs
    // 0..4 complete (and are journaled), the rest never start.
    std::atomic<bool> cancel{false};
    RunnerOptions interrupted = fastRetryOptions(1, 1);
    interrupted.journalPath = journalPath;
    interrupted.cancel = &cancel;
    interrupted.execute = [&cancel](const Job &job) {
        if (job.index == 4)
            cancel.store(true);
        return mockResult(job);
    };
    const auto partial = ExperimentRunner(interrupted).run(spec);
    std::size_t completed = 0;
    for (const JobOutcome &outcome : partial)
        completed += outcome.ok;
    ASSERT_EQ(completed, 5u);

    // Resume: journaled successes restore without re-execution, the
    // rest run, and the merged output is byte-identical.
    auto log = std::make_shared<ExecutionLog>();
    RunnerOptions resumed = fastRetryOptions(4, 1);
    resumed.journalPath = journalPath;
    resumed.resume = loadJournal(journalPath);
    ASSERT_EQ(resumed.resume.size(), 5u);
    resumed.execute = [log](const Job &job) {
        log->bump(job.index);
        return mockResult(job);
    };
    const auto merged = ExperimentRunner(resumed).run(spec);

    EXPECT_EQ(log->jobsExecuted(), spec.jobCount() - 5);
    for (const JobOutcome &outcome : merged) {
        EXPECT_TRUE(outcome.ok) << outcome.error;
        EXPECT_EQ(outcome.resumed, outcome.index < 5);
        EXPECT_EQ(log->count(outcome.index), outcome.index < 5 ? 0u : 1u);
    }
    EXPECT_EQ(jsonlOf(merged), jsonlOf(uninterrupted));
}

TEST(RunnerJournal, JournaledFailuresRunAgainOnResume)
{
    const SweepSpec spec = smallSpec(1'000);
    const std::string journalPath = tempPath("retry_on_resume.jsonl");
    std::remove(journalPath.c_str());

    // First run: every job fails deterministically and is journaled.
    RunnerOptions failing = fastRetryOptions(2, 1);
    failing.journalPath = journalPath;
    failing.execute = [](const Job &) -> SimResult {
        throw std::runtime_error("first run fails");
    };
    ExperimentRunner(failing).run(spec);

    // Resume: failures are not "completed" — all jobs execute again.
    auto log = std::make_shared<ExecutionLog>();
    RunnerOptions resumed = fastRetryOptions(2, 1);
    resumed.resume = loadJournal(journalPath);
    ASSERT_EQ(resumed.resume.size(), spec.jobCount());
    resumed.execute = [log](const Job &job) {
        log->bump(job.index);
        return mockResult(job);
    };
    const auto merged = ExperimentRunner(resumed).run(spec);

    EXPECT_EQ(log->jobsExecuted(), spec.jobCount());
    for (const JobOutcome &outcome : merged) {
        EXPECT_TRUE(outcome.ok) << outcome.error;
        EXPECT_FALSE(outcome.resumed);
    }
}

TEST(RunnerJournal, LoadToleratesTruncatedFinalRecord)
{
    const SweepSpec spec = smallSpec(1'000);
    const std::string journalPath = tempPath("truncated_tail.jsonl");
    std::remove(journalPath.c_str());

    RunnerOptions options = fastRetryOptions(2, 1);
    options.journalPath = journalPath;
    options.execute = mockResult;
    ExperimentRunner(options).run(spec);

    // A kill mid-write leaves a partial line; loading must drop it and
    // keep every complete record.
    {
        std::ofstream out(journalPath, std::ios::app);
        out << "{\"key\":\"half-writ";
    }
    const JournalMap map = loadJournal(journalPath);
    EXPECT_EQ(map.size(), spec.jobCount());
}

TEST(RunnerJournal, MissingJournalLoadsEmpty)
{
    EXPECT_TRUE(loadJournal(tempPath("nonexistent.jsonl")).empty());
}

TEST(RunnerJournal, JobKeyTracksIdentityNotIndex)
{
    const std::vector<Job> jobs = smallSpec(1'000).expand();
    // Same job content, different index: identical key.
    Job reindexed = jobs[3];
    reindexed.index = 99;
    EXPECT_EQ(jobKey(jobs[3]), jobKey(reindexed));
    // Different budget: different key (stale journals must not match).
    Job rebudgeted = jobs[3];
    rebudgeted.config.maxInstructions += 1;
    EXPECT_NE(jobKey(jobs[3]), jobKey(rebudgeted));
    // All keys within a sweep are distinct.
    std::set<std::string> keys;
    for (const Job &job : jobs)
        keys.insert(jobKey(job));
    EXPECT_EQ(keys.size(), jobs.size());
}

TEST(RunnerJournal, JobKeyCoversSampledSimulationShape)
{
    // A journal record from a plain run must never satisfy a resumed
    // sweep whose jobs fast-forward, sample or touch checkpoints:
    // every run-shape field must perturb the key.
    const std::vector<Job> jobs = smallSpec(1'000).expand();
    const Job &base = jobs[0];
    const auto mutated = [&](auto &&tweak) {
        Job job = base;
        tweak(job.config);
        return jobKey(job);
    };
    EXPECT_NE(jobKey(base),
              mutated([](SimConfig &c) { c.ffwdInstructions = 50'000; }));
    EXPECT_NE(jobKey(base),
              mutated([](SimConfig &c) { c.sampleInterval = 10'000; }));
    EXPECT_NE(jobKey(base),
              mutated([](SimConfig &c) { c.sampleDetail = 1'000; }));
    EXPECT_NE(jobKey(base),
              mutated([](SimConfig &c) { c.ckptSavePath = "a.ckpt"; }));
    EXPECT_NE(jobKey(base),
              mutated([](SimConfig &c) { c.ckptSaveInst = 25'000; }));
    EXPECT_NE(jobKey(base),
              mutated([](SimConfig &c) { c.ckptRestorePath = "a.ckpt"; }));
    // And each field perturbs it differently (no accidental aliasing
    // between the path fields or the counters).
    std::set<std::string> keys{jobKey(base)};
    keys.insert(mutated([](SimConfig &c) { c.ffwdInstructions = 1; }));
    keys.insert(mutated([](SimConfig &c) { c.sampleInterval = 1; }));
    keys.insert(mutated([](SimConfig &c) { c.sampleDetail = 1; }));
    keys.insert(mutated([](SimConfig &c) { c.ckptSaveInst = 1; }));
    keys.insert(mutated([](SimConfig &c) { c.ckptSavePath = "x"; }));
    keys.insert(mutated([](SimConfig &c) { c.ckptRestorePath = "x"; }));
    EXPECT_EQ(keys.size(), 7u);
}

TEST(RunnerJournal, SyncedJournalRoundTrips)
{
    const SweepSpec spec = smallSpec(1'000);
    const std::string journalPath = tempPath("synced_journal.jsonl");
    std::remove(journalPath.c_str());

    // --journal-sync path: every record is fsync'd through the
    // secondary descriptor; the journal must still load identically.
    RunnerOptions options = fastRetryOptions(2, 1);
    options.journalPath = journalPath;
    options.journalSync = true;
    options.execute = mockResult;
    const auto outcomes = ExperimentRunner(options).run(spec);

    const JournalMap map = loadJournal(journalPath);
    ASSERT_EQ(map.size(), spec.jobCount());
    for (const JobOutcome &outcome : outcomes) {
        EXPECT_TRUE(outcome.ok) << outcome.error;
        const auto it = map.find(jobKey(spec.expand()[outcome.index]));
        ASSERT_NE(it, map.end());
        EXPECT_EQ(it->second.result.cycles, outcome.result.cycles);
    }
}

TEST(RunnerHeartbeat, PeriodicLinesAreEmittedAndWellFormed)
{
    const SweepSpec spec = smallSpec(1'000);
    std::FILE *stream = std::tmpfile();
    ASSERT_NE(stream, nullptr);

    RunnerOptions options = fastRetryOptions(2, 1);
    options.heartbeatSec = 0.02;
    options.heartbeatStream = stream;
    options.execute = [](const Job &job) {
        // Slow enough that several heartbeat periods elapse mid-sweep.
        std::this_thread::sleep_for(std::chrono::milliseconds(15));
        return mockResult(job);
    };
    const auto outcomes = ExperimentRunner(options).run(spec);
    for (const JobOutcome &outcome : outcomes)
        EXPECT_TRUE(outcome.ok) << outcome.error;

    std::rewind(stream);
    char buffer[256];
    std::size_t lines = 0;
    while (std::fgets(buffer, sizeof(buffer), stream)) {
        ++lines;
        const std::string line = buffer;
        // Each heartbeat is one whole line: prefix, done/total counter
        // bounded by the sweep size, and a rate — never a fragment.
        EXPECT_EQ(line.find("[runner] heartbeat "), 0u) << line;
        EXPECT_EQ(line.back(), '\n') << line;
        std::size_t done = 0, total = 0;
        ASSERT_EQ(std::sscanf(buffer, "[runner] heartbeat %zu/%zu", &done,
                              &total),
                  2)
            << line;
        EXPECT_LE(done, spec.jobCount());
        EXPECT_EQ(total, spec.jobCount());
    }
    EXPECT_GE(lines, 2u);
    std::fclose(stream);
}

TEST(RunnerHeartbeat, DisabledByDefault)
{
    const SweepSpec spec = smallSpec(1'000);
    std::FILE *stream = std::tmpfile();
    ASSERT_NE(stream, nullptr);

    RunnerOptions options = fastRetryOptions(2, 1);
    options.heartbeatStream = stream; // No heartbeatSec: stays silent.
    options.execute = mockResult;
    ExperimentRunner(options).run(spec);

    std::rewind(stream);
    char buffer[8];
    EXPECT_EQ(std::fgets(buffer, sizeof(buffer), stream), nullptr);
    std::fclose(stream);
}

TEST(RunnerTimeout, WallClockTimeoutIsTransientAndRetried)
{
    // A genuinely endless run: no instruction or cycle limit, so only
    // the wall-clock deadline can end it.
    SimConfig base;
    base.maxInstructions = 0;
    base.maxCycles = 0;
    base.jobTimeoutMs = 40;

    SweepSpec spec;
    spec.workloads = {workloads::findWorkload("gobmk")};
    spec.configs = {base};
    spec.iterations = 0; // Endless kernel loop.

    RunnerOptions options = fastRetryOptions(1, 2);
    const auto outcomes = ExperimentRunner(options).run(spec);

    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    // Timeouts classify as transient: both attempts were consumed.
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_NE(outcomes[0].error.find("wall-clock job timeout"),
              std::string::npos)
        << outcomes[0].error;
}

TEST(DrainFlagApi, ProgrammaticRequestAndReset)
{
    resetDrainFlagForTest();
    EXPECT_FALSE(drainRequested());
    EXPECT_FALSE(drainFlag().load());
    requestDrain();
    EXPECT_TRUE(drainRequested());
    EXPECT_TRUE(drainFlag().load());
    resetDrainFlagForTest();
    EXPECT_FALSE(drainRequested());
}

} // namespace
} // namespace dgsim::runner
