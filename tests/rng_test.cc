/**
 * @file
 * Guard tests for the small common utilities grown in the
 * fault-tolerance work: the Rng precondition checks (below(0) was a
 * division by zero, range() could wrap `hi - lo + 1` to 0) and the
 * retry Backoff schedule. The Rng guards are output-neutral: every
 * previously legal call returns the exact value it always did, which
 * the golden-stats suite pins separately.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "common/backoff.hh"
#include "common/rng.hh"

namespace dgsim
{
namespace
{

TEST(Rng, BelowZeroBoundDies)
{
    Rng rng(1);
    EXPECT_DEATH(rng.below(0), "nonzero bound");
}

TEST(Rng, RangeWithInvertedBoundsDies)
{
    Rng rng(1);
    EXPECT_DEATH(rng.range(5, 2), "");
}

TEST(Rng, RangeFullDomainDoesNotWrapToZero)
{
    // hi - lo + 1 == 2^64 wraps to 0; the old code divided by it.
    Rng rng(42);
    Rng twin(42);
    const std::uint64_t value =
        rng.range(0, std::numeric_limits<std::uint64_t>::max());
    // Degenerates to the raw next() draw, deterministically.
    EXPECT_EQ(value, twin.next());
}

TEST(Rng, RangeStaysWithinBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t value = rng.range(10, 17);
        EXPECT_GE(value, 10u);
        EXPECT_LE(value, 17u);
    }
    // Degenerate single-point range.
    EXPECT_EQ(rng.range(3, 3), 3u);
}

TEST(Rng, BelowAndRangeAgree)
{
    // The guards rewrote range() in terms of `lo + next() % span`; it
    // must still equal the historical `lo + below(span)` draw so golden
    // stats stay byte-identical.
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.range(5, 14), 5 + b.below(10));
}

TEST(Backoff, DoublesFromBaseUpToCap)
{
    const Backoff backoff{100, 5000};
    EXPECT_EQ(backoff.delayMs(1), 100u);
    EXPECT_EQ(backoff.delayMs(2), 200u);
    EXPECT_EQ(backoff.delayMs(3), 400u);
    EXPECT_EQ(backoff.delayMs(6), 3200u);
    EXPECT_EQ(backoff.delayMs(7), 5000u); // 6400 clamps to the cap.
    EXPECT_EQ(backoff.delayMs(100), 5000u); // Shift saturates, no UB.
}

TEST(Backoff, ZeroBaseMeansNoDelay)
{
    const Backoff backoff{0, 5000};
    EXPECT_EQ(backoff.delayMs(1), 0u);
    EXPECT_EQ(backoff.delayMs(10), 0u);
}

} // namespace
} // namespace dgsim
