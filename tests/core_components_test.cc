/**
 * @file
 * Unit tests for the core's bookkeeping components: physical register
 * file with RAT/free list, shadow tracker, and STT taint tracker.
 */

#include <gtest/gtest.h>

#include "cpu/regfile.hh"
#include "cpu/shadow_tracker.hh"
#include "secure/taint_tracker.hh"

namespace dgsim
{
namespace
{

// --- RegFile -------------------------------------------------------------

TEST(RegFileTest, InitialMappingIsIdentityAndReady)
{
    RegFile regfile(64);
    for (unsigned i = 0; i < kNumArchRegs; ++i) {
        EXPECT_EQ(regfile.lookup(static_cast<RegIndex>(i)), i);
        EXPECT_TRUE(regfile.ready(static_cast<PhysReg>(i)));
    }
    EXPECT_EQ(regfile.numFree(), 64u - kNumArchRegs);
}

TEST(RegFileTest, RenameAllocatesFreshUnreadyRegister)
{
    RegFile regfile(64);
    auto [fresh, previous] = regfile.rename(5);
    EXPECT_EQ(previous, 5u);
    EXPECT_NE(fresh, previous);
    EXPECT_FALSE(regfile.ready(fresh));
    EXPECT_EQ(regfile.lookup(5), fresh);
}

TEST(RegFileTest, RollbackRestoresMappingYoungestFirst)
{
    RegFile regfile(64);
    auto [p1, prev1] = regfile.rename(3);
    auto [p2, prev2] = regfile.rename(3);
    EXPECT_EQ(prev2, p1);
    const unsigned free_before = regfile.numFree();
    regfile.rollback(3, p2, prev2);
    EXPECT_EQ(regfile.lookup(3), p1);
    regfile.rollback(3, p1, prev1);
    EXPECT_EQ(regfile.lookup(3), 3u);
    EXPECT_EQ(regfile.numFree(), free_before + 2);
}

TEST(RegFileTest, CommitReleasesPreviousMapping)
{
    RegFile regfile(64);
    const unsigned free_before = regfile.numFree();
    auto [fresh, previous] = regfile.rename(7);
    EXPECT_EQ(regfile.numFree(), free_before - 1);
    regfile.releaseAtCommit(previous);
    EXPECT_EQ(regfile.numFree(), free_before);
    (void)fresh;
}

TEST(RegFileTest, ArchValueFollowsCurrentMapping)
{
    RegFile regfile(64);
    regfile.setValue(4, 111);
    EXPECT_EQ(regfile.archValue(4), 111u);
    auto [fresh, previous] = regfile.rename(4);
    (void)previous;
    regfile.setValue(fresh, 222);
    EXPECT_EQ(regfile.archValue(4), 222u);
}

// --- ShadowTracker ---------------------------------------------------------

TEST(ShadowTrackerTest, OlderCasterShadowsYounger)
{
    ShadowTracker shadows;
    shadows.cast(10);
    EXPECT_FALSE(shadows.isShadowed(10)) << "a caster is not self-shadowed";
    EXPECT_TRUE(shadows.isShadowed(11));
    EXPECT_FALSE(shadows.isShadowed(9));
    shadows.release(10);
    EXPECT_FALSE(shadows.isShadowed(11));
}

TEST(ShadowTrackerTest, OldestWins)
{
    ShadowTracker shadows;
    shadows.cast(20);
    shadows.cast(5);
    EXPECT_EQ(shadows.oldest(), 5u);
    EXPECT_TRUE(shadows.isShadowed(6));
    shadows.release(5);
    EXPECT_EQ(shadows.oldest(), 20u);
    EXPECT_FALSE(shadows.isShadowed(6));
    EXPECT_TRUE(shadows.isShadowed(25));
}

TEST(ShadowTrackerTest, SquashRemovesYoungerCasters)
{
    ShadowTracker shadows;
    shadows.cast(10);
    shadows.cast(20);
    shadows.cast(30);
    shadows.squashYoungerThan(15);
    EXPECT_EQ(shadows.size(), 1u);
    EXPECT_TRUE(shadows.isShadowed(11));
    EXPECT_FALSE(shadows.isShadowed(10));
}

// --- TaintTracker ------------------------------------------------------------

TEST(TaintTrackerTest, RootLifecycle)
{
    TaintTracker taints;
    EXPECT_FALSE(taints.tainted(5));
    taints.addRoot(5);
    EXPECT_TRUE(taints.tainted(5));
    taints.clearRoot(5);
    EXPECT_FALSE(taints.tainted(5));
    EXPECT_FALSE(taints.tainted(kInvalidSeq));
}

TEST(TaintTrackerTest, CombinePicksYoungestLiveRoot)
{
    TaintTracker taints;
    taints.addRoot(5);
    taints.addRoot(9);
    EXPECT_EQ(taints.combine(5, 9), 9u);
    EXPECT_EQ(taints.combine(9, kInvalidSeq), 9u);
    EXPECT_EQ(taints.combine(kInvalidSeq, kInvalidSeq), kInvalidSeq);
    // A cleared root no longer taints the combination.
    taints.clearRoot(9);
    EXPECT_EQ(taints.combine(5, 9), 5u);
    taints.clearRoot(5);
    EXPECT_EQ(taints.combine(5, 9), kInvalidSeq);
}

TEST(TaintTrackerTest, SquashDropsYoungRoots)
{
    TaintTracker taints;
    taints.addRoot(10);
    taints.addRoot(20);
    taints.squashYoungerThan(15);
    EXPECT_TRUE(taints.tainted(10));
    EXPECT_FALSE(taints.tainted(20));
}

} // namespace
} // namespace dgsim
