/**
 * @file
 * Functional/detailed co-validation: the FunctionalCore (the engine
 * behind fast-forward, checkpoints and the lockstep oracle) and the
 * detailed OoO core must agree on the final *architectural* outcome of
 * every finite suite kernel — full register file, memory-image digest
 * and retired-instruction count. This is the property that makes a
 * functional fast-forward prefix interchangeable with detailed
 * execution of the same prefix, i.e. the soundness argument for the
 * whole sampled-simulation subsystem.
 *
 * workloads_test already lockstep-checks registers per commit under
 * every scheme; this suite instead checks the end state including
 * memory (stores, not just register writebacks) with the oracle off,
 * so the two engines run fully independently.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "cpu/core.hh"
#include "isa/functional.hh"
#include "workloads/suite.hh"

namespace dgsim
{
namespace
{

using workloads::WorkloadDef;

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const WorkloadDef &workload : workloads::evaluationSuite())
        names.push_back(workload.name);
    return names;
}

std::string
sanitize(std::string name)
{
    for (auto &c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return name;
}

class CoValidationTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(CoValidationTest, FunctionalAndDetailedAgreeOnFinalArchState)
{
    const WorkloadDef &def = workloads::findWorkload(GetParam());
    const Program program = def.build(/*iterations=*/200);

    FunctionalCore functional(program);
    functional.run(5'000'000);
    ASSERT_TRUE(functional.halted())
        << def.name << ": functional run did not halt";

    // One fast scheme and one restrictive scheme: enough to catch an
    // architectural divergence without re-running the full matrix
    // (workloads_test covers that per-commit).
    for (Scheme scheme : {Scheme::Unsafe, Scheme::Dom}) {
        SimConfig config;
        config.scheme = scheme;
        config.addressPrediction = true;
        config.maxCycles = 20'000'000;
        StatRegistry stats;
        OooCore core(program, config, stats);
        core.run();
        const std::string label = def.name + " under " + config.label();

        EXPECT_EQ(stats.get("core.committedInstrs"),
                  functional.instructionsExecuted())
            << label << ": retired-instruction count";
        for (unsigned reg = 1; reg < kNumArchRegs; ++reg) {
            ASSERT_EQ(core.archReg(static_cast<RegIndex>(reg)),
                      functional.reg(static_cast<RegIndex>(reg)))
                << label << ", x" << reg;
        }
        EXPECT_EQ(core.dataMemory().digest(), functional.memory().digest())
            << label << ": final memory images diverge";
    }
}

INSTANTIATE_TEST_SUITE_P(Suite, CoValidationTest,
                         ::testing::ValuesIn(workloadNames()),
                         [](const ::testing::TestParamInfo<std::string> &i) {
                             return sanitize(i.param);
                         });

} // namespace
} // namespace dgsim
