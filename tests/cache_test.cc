/**
 * @file
 * Unit tests for the memory substrate: cache tag array, MSHR file and
 * the three-level hierarchy (including the Delay-on-Miss semantics and
 * the security digest).
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "common/stats.hh"
#include "memory/cache.hh"
#include "memory/hierarchy.hh"
#include "memory/mshr.hh"

namespace dgsim
{
namespace
{

CacheConfig
tinyCacheConfig()
{
    // 4 sets x 2 ways x 64B.
    return CacheConfig{"test", 512, 2, 64, 3, 4};
}

TEST(CacheTest, MissThenHit)
{
    StatRegistry stats;
    Cache cache(tinyCacheConfig(), stats);
    EXPECT_FALSE(cache.lookup(100, true).present);
    cache.install(100, 0, false);
    EXPECT_TRUE(cache.lookup(100, true).present);
    EXPECT_TRUE(cache.probe(100));
    EXPECT_FALSE(cache.probe(101));
}

TEST(CacheTest, LruEviction)
{
    StatRegistry stats;
    Cache cache(tinyCacheConfig(), stats);
    // Lines 0, 4, 8 all map to set 0 (4 sets); 2 ways.
    cache.install(0, 0, false);
    cache.install(4, 0, false);
    cache.lookup(0, true); // 0 is now MRU.
    cache.install(8, 0, false);
    EXPECT_TRUE(cache.probe(0));  // survived (MRU)
    EXPECT_FALSE(cache.probe(4)); // evicted (LRU)
    EXPECT_TRUE(cache.probe(8));
}

TEST(CacheTest, DelayedLruUpdateChangesVictimChoice)
{
    StatRegistry stats;
    Cache cache(tinyCacheConfig(), stats);
    cache.install(0, 0, false);
    cache.install(4, 0, false);
    // DoM speculative hit: no replacement update.
    cache.lookup(0, /*update_lru=*/false);
    cache.install(8, 0, false);
    // Without the update, 0 was LRU and is the victim.
    EXPECT_FALSE(cache.probe(0));
    EXPECT_TRUE(cache.probe(4));
}

TEST(CacheTest, RetroactiveTouchAtCommit)
{
    StatRegistry stats;
    Cache cache(tinyCacheConfig(), stats);
    cache.install(0, 0, false);
    cache.install(4, 0, false);
    cache.lookup(0, false); // speculative hit, no update
    cache.touch(0);         // commit-time retroactive update
    cache.install(8, 0, false);
    EXPECT_TRUE(cache.probe(0)); // survived thanks to the touch
    EXPECT_FALSE(cache.probe(4));
}

TEST(CacheTest, DirtyEvictionCountsWriteback)
{
    StatRegistry stats;
    Cache cache(tinyCacheConfig(), stats);
    cache.install(0, 0, true); // dirty
    cache.install(4, 0, false);
    const Addr victim = cache.install(8, 0, false);
    EXPECT_EQ(victim, 0u); // dirty victim's address returned
    EXPECT_EQ(cache.writebacks.value(), 1u);
}

TEST(CacheTest, InvalidateRemovesLine)
{
    StatRegistry stats;
    Cache cache(tinyCacheConfig(), stats);
    cache.install(0, 0, false);
    cache.invalidate(0);
    EXPECT_FALSE(cache.probe(0));
}

TEST(CacheTest, HashIgnoresAccessCountButSeesContent)
{
    StatRegistry stats;
    Cache a(tinyCacheConfig(), stats);
    Cache b(tinyCacheConfig(), stats);
    a.install(0, 0, false);
    b.install(0, 0, false);
    // Extra lookups must not change the digest (same recency order).
    a.lookup(0, true);
    a.lookup(0, true);
    std::uint64_t ha = 0xcbf29ce484222325ULL;
    std::uint64_t hb = 0xcbf29ce484222325ULL;
    a.hashState(ha);
    b.hashState(hb);
    EXPECT_EQ(ha, hb);

    // Different content must change it.
    b.install(4, 0, false);
    hb = 0xcbf29ce484222325ULL;
    b.hashState(hb);
    EXPECT_NE(ha, hb);
}

TEST(CacheTest, HashSeesRecencyOrder)
{
    StatRegistry stats;
    Cache a(tinyCacheConfig(), stats);
    Cache b(tinyCacheConfig(), stats);
    a.install(0, 0, false);
    a.install(4, 0, false);
    b.install(0, 0, false);
    b.install(4, 0, false);
    // Reverse the recency in b only.
    b.lookup(0, true);
    std::uint64_t ha = 0xcbf29ce484222325ULL;
    std::uint64_t hb = 0xcbf29ce484222325ULL;
    a.hashState(ha);
    b.hashState(hb);
    EXPECT_NE(ha, hb) << "replacement order is attacker-visible state";
}

// --- MSHR --------------------------------------------------------------

TEST(MshrTest, CapacityAndReclaim)
{
    MshrFile mshrs(2);
    EXPECT_TRUE(mshrs.allocate(1, 0, 100));
    EXPECT_TRUE(mshrs.allocate(2, 0, 100));
    EXPECT_FALSE(mshrs.allocate(3, 0, 100)) << "file must be full";
    EXPECT_TRUE(mshrs.full(50));
    // After the fills complete, entries are reclaimable.
    EXPECT_FALSE(mshrs.full(101));
    EXPECT_TRUE(mshrs.allocate(3, 101, 200));
}

TEST(MshrTest, FindInFlight)
{
    MshrFile mshrs(4);
    mshrs.allocate(7, 0, 55);
    EXPECT_EQ(mshrs.findInFlight(7), 55u);
    EXPECT_EQ(mshrs.findInFlight(8), kInvalidCycle);
}

// --- Hierarchy -----------------------------------------------------------

SimConfig
hierConfig()
{
    SimConfig config;
    return config;
}

TEST(HierarchyTest, LatenciesFollowTable1)
{
    SimConfig config = hierConfig();
    StatRegistry stats;
    MemoryHierarchy hierarchy(config, stats);
    MemAccessFlags flags;

    // Cold: DRAM (L3 roundtrip + DRAM latency).
    const AccessOutcome cold = hierarchy.access(0x1000, 100, flags);
    EXPECT_EQ(cold.status, AccessStatus::Miss);
    EXPECT_EQ(cold.serviceLevel, 4u);
    EXPECT_EQ(cold.completeAt, 100 + config.l3.latency + config.dramLatency);

    // Warm hit: L1 latency.
    const Cycle warm_time = cold.completeAt + 10;
    const AccessOutcome warm = hierarchy.access(0x1000, warm_time, flags);
    EXPECT_EQ(warm.status, AccessStatus::Hit);
    EXPECT_EQ(warm.completeAt, warm_time + config.l1d.latency);
}

TEST(HierarchyTest, InFlightAccessMerges)
{
    SimConfig config = hierConfig();
    StatRegistry stats;
    MemoryHierarchy hierarchy(config, stats);
    MemAccessFlags flags;
    const AccessOutcome first = hierarchy.access(0x1000, 100, flags);
    const AccessOutcome second = hierarchy.access(0x1008, 101, flags);
    EXPECT_EQ(second.completeAt, first.completeAt) << "same line merges";
    EXPECT_EQ(stats.get("l2.accesses"), 1u)
        << "merged access must not reach the L2";
}

TEST(HierarchyTest, MshrLimitRejects)
{
    SimConfig config = hierConfig();
    config.l1d.numMshrs = 2;
    StatRegistry stats;
    MemoryHierarchy hierarchy(config, stats);
    MemAccessFlags flags;
    EXPECT_TRUE(hierarchy.access(0 * 64, 0, flags).accepted());
    EXPECT_TRUE(hierarchy.access(1 * 64, 0, flags).accepted());
    EXPECT_EQ(hierarchy.access(2 * 64, 0, flags).status,
              AccessStatus::Rejected);
}

TEST(HierarchyTest, DomRejectsSpeculativeMisses)
{
    SimConfig config = hierConfig();
    StatRegistry stats;
    MemoryHierarchy hierarchy(config, stats);

    MemAccessFlags dom_flags;
    dom_flags.domProtected = true;
    dom_flags.speculative = true;
    const AccessOutcome miss = hierarchy.access(0x2000, 10, dom_flags);
    EXPECT_EQ(miss.status, AccessStatus::DomDelayed);
    EXPECT_FALSE(hierarchy.linePresent(1, 0x2000))
        << "a DoM-delayed miss must leave no trace";
    EXPECT_FALSE(hierarchy.linePresent(2, 0x2000));

    // Non-speculative re-issue proceeds normally.
    dom_flags.speculative = false;
    EXPECT_TRUE(hierarchy.access(0x2000, 20, dom_flags).accepted());
    // A later speculative access to the now-present line hits.
    dom_flags.speculative = true;
    const AccessOutcome hit =
        hierarchy.access(0x2000, 500, dom_flags);
    EXPECT_EQ(hit.status, AccessStatus::Hit);
}

TEST(HierarchyTest, DomDelaysInFlightLinesToo)
{
    SimConfig config = hierConfig();
    StatRegistry stats;
    MemoryHierarchy hierarchy(config, stats);
    MemAccessFlags plain;
    hierarchy.access(0x3000, 10, plain); // fill in flight
    MemAccessFlags dom_flags;
    dom_flags.domProtected = true;
    dom_flags.speculative = true;
    EXPECT_EQ(hierarchy.access(0x3000, 12, dom_flags).status,
              AccessStatus::DomDelayed)
        << "an in-flight line is still an L1 miss for DoM";
}

TEST(HierarchyTest, DramBandwidthSerializesBursts)
{
    SimConfig config = hierConfig();
    config.l1d.numMshrs = 16;
    StatRegistry stats;
    MemoryHierarchy hierarchy(config, stats);
    MemAccessFlags flags;
    // Two simultaneous DRAM misses: the second starts one issue
    // interval later.
    const AccessOutcome a = hierarchy.access(0x10000, 0, flags);
    const AccessOutcome b = hierarchy.access(0x20000, 0, flags);
    EXPECT_EQ(b.completeAt - a.completeAt, config.dramIssueInterval);
}

TEST(HierarchyTest, DigestDeterminism)
{
    SimConfig config = hierConfig();
    StatRegistry stats_a, stats_b;
    MemoryHierarchy a(config, stats_a);
    MemoryHierarchy b(config, stats_b);
    MemAccessFlags flags;
    for (Addr addr = 0; addr < 64 * 100; addr += 64) {
        a.access(addr, addr, flags);
        b.access(addr, addr, flags);
    }
    EXPECT_EQ(a.digest(), b.digest());
    b.access(64 * 200, 99999, flags);
    EXPECT_NE(a.digest(), b.digest());
}

TEST(HierarchyTest, InvalidateDropsAllLevels)
{
    SimConfig config = hierConfig();
    StatRegistry stats;
    MemoryHierarchy hierarchy(config, stats);
    MemAccessFlags flags;
    hierarchy.access(0x4000, 0, flags);
    EXPECT_TRUE(hierarchy.linePresent(1, 0x4000));
    EXPECT_TRUE(hierarchy.linePresent(2, 0x4000));
    EXPECT_TRUE(hierarchy.linePresent(3, 0x4000));
    hierarchy.invalidate(0x4000);
    EXPECT_FALSE(hierarchy.linePresent(1, 0x4000));
    EXPECT_FALSE(hierarchy.linePresent(2, 0x4000));
    EXPECT_FALSE(hierarchy.linePresent(3, 0x4000));
}

/** Property sweep: hit latency is constant across many addresses. */
class HierarchyLatencyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(HierarchyLatencyProperty, WarmHitLatencyIsL1Latency)
{
    SimConfig config = hierConfig();
    StatRegistry stats;
    MemoryHierarchy hierarchy(config, stats);
    MemAccessFlags flags;
    const Addr addr = static_cast<Addr>(GetParam()) * 4096 + 64;
    const AccessOutcome cold = hierarchy.access(addr, 0, flags);
    const Cycle later = cold.completeAt + 5;
    const AccessOutcome warm = hierarchy.access(addr, later, flags);
    EXPECT_EQ(warm.status, AccessStatus::Hit);
    EXPECT_EQ(warm.completeAt - later, config.l1d.latency);
}

INSTANTIATE_TEST_SUITE_P(Addresses, HierarchyLatencyProperty,
                         ::testing::Range(0, 16));

} // namespace
} // namespace dgsim
