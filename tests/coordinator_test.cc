/**
 * @file
 * Work-stealing coordinator tests: a forked multi-worker campaign
 * completes and byte-compares to a single-process run; a worker killed
 * mid-job (after claiming, before journaling — the worst moment) is
 * recovered by a fresh coordinator pass in the same invocation, or by
 * simply re-running the campaign; fault injection composes with it all.
 *
 * These tests really fork(): each worker is a separate process writing
 * its own journal, and the injected death is a literal _exit(9) between
 * the claim append and the journal record.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runner/campaign.hh"
#include "runner/coordinator.hh"
#include "runner/experiment_runner.hh"
#include "runner/journal.hh"
#include "runner/result_sink.hh"
#include "runner/sweep.hh"

namespace dgsim::runner
{
namespace
{

/** Identity-keyed mock (never index-keyed: shard runs re-index). */
SimResult
identityMockResult(const Job &job)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : job.workload + "/" + job.config.label()) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    SimResult result;
    result.workload = job.workload;
    result.configLabel = job.config.label();
    result.cycles = 1000 + hash % 1000;
    result.instructions = 500 + hash % 500;
    result.ipc = 0.5;
    return result;
}

/**
 * The same mock slowed down enough that every worker of a multi-worker
 * campaign gets to claim at least one job before the pool drains —
 * the death-injection tests need the doomed worker to reach a claim.
 */
SimResult
slowMockResult(const Job &job)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    return identityMockResult(job);
}

std::string
jsonlOf(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream ss;
    JsonlSink sink(ss);
    for (const JobOutcome &outcome : outcomes)
        sink.consume(outcome);
    return ss.str();
}

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

/** Write a fresh 3-shard manifest for the small sweep; clears leftover
    worker journals and claims so every test starts cold. */
std::string
freshManifest(const std::string &name, CampaignManifest &manifest,
              double injectFailRate = 0.0, std::uint64_t injectSeed = 0)
{
    manifest = CampaignManifest{};
    manifest.name = name;
    manifest.shards = 3;
    manifest.suite = "gobmk,h264ref";
    manifest.instructions = 1'000;
    manifest.retries = 12;
    manifest.retryBaseMs = 0;
    manifest.injectFailRate = injectFailRate;
    manifest.injectFailSeed = injectSeed;
    for (const Job &job : manifestSpec(manifest).expand())
        manifest.jobKeys.push_back(jobKey(job));

    const std::string path = tempPath(name + ".manifest");
    writeManifest(path, manifest);
    for (unsigned w = 0; w < 8; ++w)
        std::remove(workerJournalPath(path, w).c_str());
    std::remove(claimsPath(path).c_str());
    return path;
}

/** The single-process reference the campaign must byte-match. */
std::vector<JobOutcome>
referenceRun(const CampaignManifest &manifest)
{
    RunnerOptions options;
    options.threads = 1;
    options.progress = false;
    options.maxAttempts = manifest.retries + 1;
    options.backoff.baseMs = 0;
    options.injectFailRate = manifest.injectFailRate;
    options.injectFailSeed = manifest.injectFailSeed;
    options.execute = identityMockResult;
    return ExperimentRunner(options).run(manifestSpec(manifest).expand());
}

TEST(Coordinator, CampaignMatchesSingleProcessByteForByte)
{
    CampaignManifest manifest;
    const std::string path = freshManifest("coord_clean", manifest);

    CoordinatorOptions options;
    options.workers = 3;
    options.progress = false;
    options.execute = identityMockResult;
    const CampaignReport report = runCampaign(path, manifest, options);

    EXPECT_EQ(report.total, manifest.jobKeys.size());
    EXPECT_EQ(report.ok, report.total);
    EXPECT_EQ(report.failed, 0u);
    EXPECT_EQ(report.missing, 0u);
    EXPECT_EQ(report.passes, 1u);
    EXPECT_EQ(report.workerDeaths, 0u);
    EXPECT_FALSE(report.drained);
    EXPECT_EQ(jsonlOf(report.outcomes), jsonlOf(referenceRun(manifest)));
}

TEST(Coordinator, RerunningACompleteCampaignResumesNotReruns)
{
    CampaignManifest manifest;
    const std::string path = freshManifest("coord_rerun", manifest);

    CoordinatorOptions options;
    options.workers = 2;
    options.progress = false;
    options.execute = identityMockResult;
    const CampaignReport first = runCampaign(path, manifest, options);
    ASSERT_EQ(first.missing, 0u);

    // Second invocation: every job is settled in the journals, so no
    // worker executes anything (no new claims appear).
    const CampaignReport second = runCampaign(path, manifest, options);
    EXPECT_EQ(second.ok, second.total);
    EXPECT_EQ(second.stolen, 0u);
    EXPECT_EQ(second.duplicates, 0u);
    EXPECT_EQ(jsonlOf(second.outcomes), jsonlOf(first.outcomes));
}

TEST(Coordinator, WorkerDeathMidJobIsRecoveredInRun)
{
    CampaignManifest manifest;
    const std::string path = freshManifest("coord_death", manifest);
    const std::string marker = tempPath("coord_death.marker");
    std::remove(marker.c_str());

    // Worker 1 kills itself at its first claim — claimed, unjournaled.
    CoordinatorOptions options;
    options.workers = 3;
    options.progress = false;
    options.execute = slowMockResult;
    options.killWorker = 1;
    options.killAfterJobs = 0;
    options.killOnceMarker = marker;
    const CampaignReport report = runCampaign(path, manifest, options);

    // The death was observed, a recovery pass ran, and the merged
    // result is still complete and byte-identical.
    EXPECT_GE(report.workerDeaths, 1u);
    EXPECT_GE(report.passes, 2u);
    EXPECT_EQ(report.ok, report.total);
    EXPECT_EQ(report.missing, 0u);
    EXPECT_EQ(jsonlOf(report.outcomes), jsonlOf(referenceRun(manifest)));
}

TEST(Coordinator, KilledCampaignResumesOnRestart)
{
    CampaignManifest manifest;
    const std::string path = freshManifest("coord_restart", manifest);
    const std::string marker = tempPath("coord_restart.marker");
    std::remove(marker.c_str());

    // One worker, no recovery passes: the worker dies at its first
    // claim, so the first invocation journals nothing and reports the
    // whole campaign missing — the "coordinator itself was killed"
    // shape.
    CoordinatorOptions doomed;
    doomed.workers = 1;
    doomed.progress = false;
    doomed.maxPasses = 1;
    doomed.execute = identityMockResult;
    doomed.killWorker = 0;
    doomed.killAfterJobs = 0;
    doomed.killOnceMarker = marker;
    const CampaignReport first = runCampaign(path, manifest, doomed);
    EXPECT_GE(first.workerDeaths, 1u);
    EXPECT_GT(first.missing, 0u);

    // Restart: same campaign, no injection (the marker also makes the
    // kill once-only). Journals resume, the rest runs, the merged
    // output byte-matches an uninterrupted run.
    CoordinatorOptions restarted;
    restarted.workers = 3;
    restarted.progress = false;
    restarted.execute = identityMockResult;
    const CampaignReport second = runCampaign(path, manifest, restarted);
    EXPECT_EQ(second.workerDeaths, 0u);
    EXPECT_EQ(second.ok, second.total);
    EXPECT_EQ(second.missing, 0u);
    EXPECT_EQ(jsonlOf(second.outcomes), jsonlOf(referenceRun(manifest)));
}

TEST(Coordinator, FaultInjectionComposesWithWorkStealing)
{
    // Injected transient faults retry inside each worker (driven by the
    // manifest's budgets), and the final output still byte-matches a
    // clean single-process run — the retry schedule is identity-keyed,
    // so it lands identically no matter which worker runs the job.
    CampaignManifest manifest;
    const std::string path =
        freshManifest("coord_inject", manifest, 0.3, 7);

    CoordinatorOptions options;
    options.workers = 3;
    options.progress = false;
    options.execute = identityMockResult;
    const CampaignReport report = runCampaign(path, manifest, options);

    EXPECT_EQ(report.ok, report.total);
    EXPECT_EQ(report.missing, 0u);

    CampaignManifest clean = manifest;
    clean.injectFailRate = 0.0;
    EXPECT_EQ(jsonlOf(report.outcomes), jsonlOf(referenceRun(clean)));
}

TEST(Coordinator, MismatchedManifestFailsLoudly)
{
    CampaignManifest manifest;
    const std::string path = freshManifest("coord_mismatch", manifest);

    // The manifest on disk was pinned for a different sweep: the
    // coordinator must refuse before forking anything.
    CampaignManifest drifted = manifest;
    drifted.instructions = 9'999;

    CoordinatorOptions options;
    options.workers = 2;
    options.progress = false;
    options.execute = identityMockResult;
    EXPECT_THROW(runCampaign(path, drifted, options), CampaignError);
}

} // namespace
} // namespace dgsim::runner
