/**
 * @file
 * Sharded-campaign tests: the sharding invariants (pure-function
 * membership, disjoint + covering partitions, stability across
 * expansion order), the manifest round-trip and its drift detection,
 * and the headline guarantee — per-shard journals merged by identity
 * byte-compare to an uninterrupted single-process run.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runner/campaign.hh"
#include "runner/experiment_runner.hh"
#include "runner/journal.hh"
#include "runner/result_sink.hh"
#include "runner/sweep.hh"
#include "workloads/suite.hh"

namespace dgsim::runner
{
namespace
{

/** A small but real sweep: 2 L1-resident workloads x the full matrix. */
SweepSpec
smallSpec(std::uint64_t instructions)
{
    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 200;
    base.warmupInstructions = instructions / 3;

    SweepSpec spec;
    spec.workloads = {workloads::findWorkload("gobmk"),
                      workloads::findWorkload("h264ref")};
    spec.configs = evaluationConfigs(base);
    return spec;
}

/**
 * Deterministic mock keyed on job *identity*, never on job.index:
 * shard runs re-index their jobs 0..n-1, so an index-keyed mock would
 * fabricate different results per shard and void the byte comparison.
 */
SimResult
identityMockResult(const Job &job)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : job.workload + "/" + job.config.label()) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    SimResult result;
    result.workload = job.workload;
    result.configLabel = job.config.label();
    result.cycles = 1000 + hash % 1000;
    result.instructions = 500 + hash % 500;
    result.ipc = 0.5;
    return result;
}

std::string
jsonlOf(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream ss;
    JsonlSink sink(ss);
    for (const JobOutcome &outcome : outcomes)
        sink.consume(outcome);
    return ss.str();
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

/** A manifest describing smallSpec() in the canonical vocabulary. */
CampaignManifest
smallManifest(unsigned shards, std::uint64_t instructions)
{
    CampaignManifest manifest;
    manifest.name = "test-campaign";
    manifest.shards = shards;
    manifest.suite = "gobmk,h264ref";
    manifest.instructions = instructions;
    manifest.retries = 2;
    manifest.retryBaseMs = 0;
    for (const Job &job : manifestSpec(manifest).expand())
        manifest.jobKeys.push_back(jobKey(job));
    return manifest;
}

TEST(Sharding, MembershipIsAPureFunctionOfIdentity)
{
    const std::vector<Job> jobs = smallSpec(1'000).expand();
    for (const Job &job : jobs) {
        const std::string key = jobKey(job);
        // Stable across calls and independent of index.
        EXPECT_EQ(shardOf(key, 5), shardOf(key, 5));
        Job reindexed = job;
        reindexed.index = 999;
        EXPECT_EQ(shardOf(jobKey(reindexed), 5), shardOf(key, 5));
        // Always in range.
        for (unsigned n : {1u, 2u, 3u, 5u, 8u})
            EXPECT_LT(shardOf(key, n), n);
    }
    EXPECT_THROW(shardOf("any", 0), CampaignError);
}

TEST(Sharding, ShardsAreDisjointAndCovering)
{
    const std::vector<Job> jobs = smallSpec(1'000).expand();
    std::set<std::string> all;
    for (const Job &job : jobs)
        all.insert(jobKey(job));
    ASSERT_EQ(all.size(), jobs.size());

    for (unsigned n : {1u, 2u, 3u, 5u, 8u}) {
        std::set<std::string> seen;
        std::size_t totalFiltered = 0;
        for (unsigned s = 0; s < n; ++s) {
            const std::vector<Job> mine = filterShard(jobs, s, n);
            totalFiltered += mine.size();
            for (std::size_t i = 0; i < mine.size(); ++i) {
                // Re-indexed densely, membership agrees with shardOf.
                EXPECT_EQ(mine[i].index, i);
                const std::string key = jobKey(mine[i]);
                EXPECT_EQ(shardOf(key, n), s);
                // Disjoint: no key appears in two shards.
                EXPECT_TRUE(seen.insert(key).second) << key;
            }
        }
        // Covering: the union is exactly the full sweep.
        EXPECT_EQ(totalFiltered, jobs.size()) << n << " shards";
        EXPECT_EQ(seen, all) << n << " shards";
    }
    EXPECT_THROW(filterShard(jobs, 3, 3), CampaignError);
}

TEST(Manifest, WriteLoadRoundTrip)
{
    const std::string path = tempPath("manifest_roundtrip.jsonl");
    CampaignManifest manifest = smallManifest(3, 2'000);
    manifest.jobTimeoutSec = 7;
    manifest.injectFailRate = 0.25;
    manifest.injectFailSeed = 42;
    writeManifest(path, manifest);

    const CampaignManifest loaded = loadManifest(path);
    EXPECT_EQ(loaded.name, manifest.name);
    EXPECT_EQ(loaded.shards, manifest.shards);
    EXPECT_EQ(loaded.suite, manifest.suite);
    EXPECT_EQ(loaded.tier, manifest.tier);
    EXPECT_EQ(loaded.schemes, manifest.schemes);
    EXPECT_EQ(loaded.ap, manifest.ap);
    EXPECT_EQ(loaded.instructions, manifest.instructions);
    EXPECT_EQ(loaded.retries, manifest.retries);
    EXPECT_EQ(loaded.retryBaseMs, manifest.retryBaseMs);
    EXPECT_EQ(loaded.jobTimeoutSec, manifest.jobTimeoutSec);
    EXPECT_EQ(loaded.injectFailRate, manifest.injectFailRate);
    EXPECT_EQ(loaded.injectFailSeed, manifest.injectFailSeed);
    EXPECT_EQ(loaded.jobKeys, manifest.jobKeys);

    // The loaded manifest validates against its own re-expansion.
    EXPECT_EQ(validateManifest(loaded, manifestSpec(loaded).expand()), "");
}

TEST(Manifest, ValidateCatchesSpecDrift)
{
    CampaignManifest manifest = smallManifest(2, 2'000);
    const std::vector<Job> jobs = manifestSpec(manifest).expand();
    EXPECT_EQ(validateManifest(manifest, jobs), "");

    // A different budget re-keys every job: loud mismatch.
    CampaignManifest drifted = manifest;
    drifted.instructions = 3'000;
    const std::string keyError =
        validateManifest(drifted, manifestSpec(drifted).expand());
    EXPECT_NE(keyError.find("drifted"), std::string::npos) << keyError;

    // A different sweep size is caught before any key comparison.
    CampaignManifest shrunk = manifest;
    shrunk.suite = "gobmk";
    const std::string sizeError =
        validateManifest(manifest, manifestSpec(shrunk).expand());
    EXPECT_NE(sizeError.find("expects"), std::string::npos) << sizeError;
}

TEST(Manifest, LoadRejectsCorruptInput)
{
    const std::string path = tempPath("manifest_corrupt.jsonl");

    EXPECT_THROW(loadManifest(tempPath("manifest_missing.jsonl")),
                 CampaignError);

    { std::ofstream(path) << "not json\n"; }
    EXPECT_THROW(loadManifest(path), CampaignError);

    { std::ofstream(path) << "{\"dgsim_campaign\":99}\n"; }
    EXPECT_THROW(loadManifest(path), CampaignError);

    // A job line whose recorded shard disagrees with shardOf(): the
    // manifest was edited or written by a drifted binary.
    CampaignManifest manifest = smallManifest(3, 2'000);
    writeManifest(path, manifest);
    {
        std::ifstream in(path);
        std::string header, jobLine;
        std::getline(in, header);
        std::getline(in, jobLine);
        in.close();
        const std::size_t colon = jobLine.rfind(':');
        const unsigned shard = static_cast<unsigned>(
            std::stoul(jobLine.substr(colon + 1)));
        std::ofstream out(path, std::ios::trunc);
        out << header << "\n"
            << jobLine.substr(0, colon + 1) << (shard + 1) % 3 << "}\n";
    }
    EXPECT_THROW(loadManifest(path), CampaignError);
}

TEST(Merge, ThreeShardJournalsMatchSingleProcessByteForByte)
{
    const SweepSpec spec = smallSpec(1'000);
    const std::vector<Job> jobs = spec.expand();

    // Reference: the same sweep, one process, no sharding.
    RunnerOptions reference;
    reference.threads = 2;
    reference.progress = false;
    reference.execute = identityMockResult;
    const auto uninterrupted = ExperimentRunner(reference).run(jobs);

    // Three independent shard runs, each journaling its own file —
    // exactly what three `dgrun --shard s/3 --journal ...` invocations
    // (possibly on three machines) produce.
    std::vector<std::string> journalPaths;
    for (unsigned s = 0; s < 3; ++s) {
        const std::string path =
            tempPath(("merge_shard" + std::to_string(s) + ".jsonl").c_str());
        std::remove(path.c_str());
        journalPaths.push_back(path);

        RunnerOptions options;
        options.threads = 1;
        options.progress = false;
        options.execute = identityMockResult;
        options.journalPath = path;
        ExperimentRunner(options).run(filterShard(jobs, s, 3));
    }

    const JournalMap merged = mergeJournals(journalPaths);
    EXPECT_EQ(merged.size(), jobs.size());
    const auto outcomes = orderOutcomes(merged, jobs);

    ASSERT_EQ(outcomes.size(), uninterrupted.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
        // Indices are rewritten from shard-local back to full-sweep.
        EXPECT_EQ(outcomes[i].index, i);
    }
    EXPECT_EQ(jsonlOf(outcomes), jsonlOf(uninterrupted));
}

TEST(Merge, MissingJobsSurfaceInsteadOfVanishing)
{
    const std::vector<Job> jobs = smallSpec(1'000).expand();

    // Only shard 0 of 3 ever ran.
    const std::string path = tempPath("merge_partial.jsonl");
    std::remove(path.c_str());
    RunnerOptions options;
    options.threads = 1;
    options.progress = false;
    options.execute = identityMockResult;
    options.journalPath = path;
    const std::vector<Job> mine = filterShard(jobs, 0, 3);
    ExperimentRunner(options).run(mine);

    const auto outcomes = orderOutcomes(mergeJournals({path}), jobs);
    ASSERT_EQ(outcomes.size(), jobs.size());
    std::size_t present = 0, missing = 0;
    for (const JobOutcome &outcome : outcomes) {
        if (outcome.ok) {
            ++present;
        } else {
            ++missing;
            EXPECT_EQ(outcome.attempts, 0u);
            EXPECT_NE(outcome.error.find("missing"), std::string::npos);
        }
    }
    EXPECT_EQ(present, mine.size());
    EXPECT_EQ(missing, jobs.size() - mine.size());
}

} // namespace
} // namespace dgsim::runner
