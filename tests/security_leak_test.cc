/**
 * @file
 * Security validation (paper §3, §4): differential runs of the attack
 * gadgets with two secrets, asserting exactly which configurations leak
 * into the memory hierarchy.
 *
 *  - Spectre v1 leaks on the unsafe baseline and is blocked by NDA-P,
 *    STT and DoM — and stays blocked when Doppelganger Loads are added
 *    (threat-model transparency, §4.2).
 *  - Figure 4a (speculatively loaded secret steering address-predicted
 *    loads) stays blocked under DoM+AP thanks to in-order branch
 *    resolution — and demonstrably leaks when that rule is ablated
 *    (§4.6).
 *  - Figure 4b (register secret): DoM's threat model protects it,
 *    NDA-P's and STT's do not (§3.1/§3.2) — with or without AP.
 */

#include <gtest/gtest.h>

#include <set>

#include "isa/assembler.hh"
#include "security/gadgets.hh"
#include "security/leak.hh"

namespace dgsim
{
namespace
{

SimConfig
makeConfig(Scheme scheme, bool ap)
{
    SimConfig config;
    config.scheme = scheme;
    config.addressPrediction = ap;
    return config;
}

// --- Spectre v1 --------------------------------------------------------

TEST(SpectreV1Test, LeaksOnUnsafeBaseline)
{
    const auto check = security::checkLeak(
        security::spectreV1Gadget, makeConfig(Scheme::Unsafe, false));
    EXPECT_TRUE(check.leaked())
        << "the unprotected core must reproduce the Spectre leak";
}

TEST(SpectreV1Test, LeaksOnUnsafeBaselineWithAp)
{
    const auto check = security::checkLeak(
        security::spectreV1Gadget, makeConfig(Scheme::Unsafe, true));
    EXPECT_TRUE(check.leaked());
}

class SecureSchemeBlocksV1
    : public ::testing::TestWithParam<std::tuple<Scheme, bool>>
{
};

TEST_P(SecureSchemeBlocksV1, NoLeak)
{
    const auto [scheme, ap] = GetParam();
    const auto check = security::checkLeak(security::spectreV1Gadget,
                                           makeConfig(scheme, ap));
    EXPECT_FALSE(check.leaked())
        << schemeName(scheme) << (ap ? "+AP" : "")
        << " must block the Spectre v1 universal read gadget";
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SecureSchemeBlocksV1,
    ::testing::Combine(::testing::Values(Scheme::NdaP, Scheme::Stt,
                                         Scheme::Dom),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, bool>> &info) {
        std::string name = schemeName(std::get<0>(info.param));
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + (std::get<1>(info.param) ? "_AP" : "_NoAP");
    });

// --- Figure 4a: speculative secret + doppelganger implicit channel ----

TEST(DomFig4aTest, BaselineDomBlocks)
{
    const auto check = security::checkLeak(
        security::domSpeculativeSecretGadget,
        makeConfig(Scheme::Dom, false), /*secret_a=*/2, /*secret_b=*/3);
    EXPECT_FALSE(check.leaked());
}

TEST(DomFig4aTest, DomWithApBlocksViaInOrderResolution)
{
    const auto check = security::checkLeak(
        security::domSpeculativeSecretGadget,
        makeConfig(Scheme::Dom, true), /*secret_a=*/2, /*secret_b=*/3);
    EXPECT_FALSE(check.leaked())
        << "DoM+AP with in-order branch resolution (§4.6) must not leak";
}

TEST(DomFig4aTest, EagerBranchResolutionAblationLeaks)
{
    SimConfig config = makeConfig(Scheme::Dom, true);
    config.domEagerBranchResolution = true; // intentionally insecure
    const auto check = security::checkLeak(
        security::domSpeculativeSecretGadget, config, /*secret_a=*/2,
        /*secret_b=*/3);
    EXPECT_TRUE(check.leaked())
        << "without §4.6's in-order rule the doppelganger misses form "
           "an implicit channel; this ablation must reproduce the leak";
}

TEST(DomFig4aTest, NdaAndSttBlockTheSpeculativeSecret)
{
    // The steering value is *speculatively loaded*, so NDA-P never
    // propagates it and STT delays the tainted branch resolution.
    for (Scheme scheme : {Scheme::NdaP, Scheme::Stt}) {
        for (bool ap : {false, true}) {
            const auto check = security::checkLeak(
                security::domSpeculativeSecretGadget,
                makeConfig(scheme, ap), /*secret_a=*/2, /*secret_b=*/3);
            EXPECT_FALSE(check.leaked())
                << schemeName(scheme) << (ap ? "+AP" : "");
        }
    }
}

// --- Figure 4b: register secret (threat-model difference, §3) ----------

TEST(RegisterSecretTest, DomProtectsRegisterSecrets)
{
    for (bool ap : {false, true}) {
        const auto check = security::checkLeak(
            security::registerSecretGadget, makeConfig(Scheme::Dom, ap),
            /*secret_a=*/2, /*secret_b=*/3);
        EXPECT_FALSE(check.leaked())
            << "DoM's threat model covers register secrets (ap=" << ap
            << ")";
    }
}

TEST(RegisterSecretTest, NdaAndSttDoNotCoverRegisterSecrets)
{
    // Not a bug: NDA-P and STT explicitly scope register secrets out of
    // their threat models (§3.1). The gadget must therefore leak, with
    // or without doppelgangers (which change nothing about it).
    for (Scheme scheme : {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt}) {
        for (bool ap : {false, true}) {
            const auto check = security::checkLeak(
                security::registerSecretGadget, makeConfig(scheme, ap),
                /*secret_a=*/2, /*secret_b=*/3);
            EXPECT_TRUE(check.leaked())
                << schemeName(scheme) << (ap ? "+AP" : "");
        }
    }
}

// --- Run-health validation (the oracle's former blind spots) -----------

/** Architecturally spins forever; HALT is unreachable. */
Program
nonHaltingProgram(std::uint64_t)
{
    Assembler assembler("non-halting");
    assembler.label("spin").jmp("spin").halt();
    return assembler.finish();
}

TEST(LeakOracleHealthTest, NonHaltingGadgetIsInconclusiveNotNoLeak)
{
    SimConfig config = makeConfig(Scheme::Unsafe, false);
    config.maxCycles = 20'000; // Keep the doomed runs short.
    const auto check = security::checkLeak(nonHaltingProgram, config);
    EXPECT_TRUE(check.inconclusive())
        << "identical truncated digests must never read as 'no leak'";
    EXPECT_FALSE(check.leaked());
    EXPECT_NE(check.reason.find("maxCycles"), std::string::npos)
        << check.reason;
}

TEST(LeakOracleHealthTest, WedgedGadgetIsInconclusiveNotFatal)
{
    // The never-resolving debug policy wedges any branchy program; the
    // oracle flips the commit watchdog into throwing mode, so the wedge
    // classifies instead of aborting the process.
    SimConfig config = makeConfig(Scheme::Unsafe, false);
    config.wedgeNeverResolve = true;
    const auto check = security::checkLeak(security::spectreV1Gadget,
                                           config);
    EXPECT_TRUE(check.inconclusive());
    EXPECT_NE(check.reason.find("watchdog"), std::string::npos)
        << check.reason;
}

/** Commits a secret-dependent number of instructions (parity branch). */
Program
secretSteeredProgram(std::uint64_t secret)
{
    Assembler assembler("secret-steered");
    assembler.data(0x1000, secret);
    assembler.li(1, 0x1000).ld(2, 1).andi(2, 2, 1);
    assembler.bne(2, 0, "odd");
    assembler.nop().nop();
    assembler.label("odd").halt();
    return assembler.finish();
}

TEST(LeakOracleHealthTest, ArchitecturalDivergenceIsInconclusive)
{
    // The secret steers the *committed* path: any digest difference is
    // architectural, not a speculative side channel, so the relational
    // premise doesn't hold and the oracle must say so.
    const auto check = security::checkLeak(
        secretSteeredProgram, makeConfig(Scheme::Unsafe, false),
        /*secret_a=*/2, /*secret_b=*/3);
    EXPECT_TRUE(check.inconclusive());
    EXPECT_NE(check.reason.find("divergence"), std::string::npos)
        << check.reason;
}

TEST(LeakOracleHealthTest, InconclusivePairPoisonsNoLeak)
{
    // One healthy no-leak pair plus one architecturally-divergent pair:
    // the aggregate must be Inconclusive, never "proven safe".
    const auto check = security::checkLeakPairs(
        secretSteeredProgram, makeConfig(Scheme::Unsafe, false),
        {{2, 4}, {2, 3}});
    EXPECT_TRUE(check.inconclusive());
}

// --- The seeded secret-pair list ----------------------------------------

TEST(SecretPairsTest, DeterministicAndCoversStructuralChannels)
{
    const auto pairs = security::defaultSecretPairs(1);
    const auto again = security::defaultSecretPairs(1);
    ASSERT_EQ(pairs.size(), again.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        EXPECT_EQ(pairs[i].a, again[i].a);
        EXPECT_EQ(pairs[i].b, again[i].b);
    }
    // The structural pairs a single hardcoded (3, 5) misses by
    // construction: MSB-only and all-bits-flipped channels.
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (const auto &pair : pairs) {
        EXPECT_NE(pair.a, pair.b);
        seen.insert({pair.a, pair.b});
    }
    EXPECT_TRUE(seen.count({0, 1ULL << 63}));
    EXPECT_TRUE(seen.count({0, ~std::uint64_t{0}}));
    EXPECT_TRUE(seen.count({3, 5}));
}

// --- Determinism sanity --------------------------------------------------

TEST(LeakCheckerTest, SameSecretProducesSameDigest)
{
    const auto check =
        security::checkLeak(security::spectreV1Gadget,
                            makeConfig(Scheme::Unsafe, false), 7, 7);
    EXPECT_FALSE(check.leaked())
        << "equal secrets must give bit-identical microarchitectural "
           "state (simulator determinism)";
}

} // namespace
} // namespace dgsim
