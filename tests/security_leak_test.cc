/**
 * @file
 * Security validation (paper §3, §4): differential runs of the attack
 * gadgets with two secrets, asserting exactly which configurations leak
 * into the memory hierarchy.
 *
 *  - Spectre v1 leaks on the unsafe baseline and is blocked by NDA-P,
 *    STT and DoM — and stays blocked when Doppelganger Loads are added
 *    (threat-model transparency, §4.2).
 *  - Figure 4a (speculatively loaded secret steering address-predicted
 *    loads) stays blocked under DoM+AP thanks to in-order branch
 *    resolution — and demonstrably leaks when that rule is ablated
 *    (§4.6).
 *  - Figure 4b (register secret): DoM's threat model protects it,
 *    NDA-P's and STT's do not (§3.1/§3.2) — with or without AP.
 */

#include <gtest/gtest.h>

#include "security/gadgets.hh"
#include "security/leak.hh"

namespace dgsim
{
namespace
{

SimConfig
makeConfig(Scheme scheme, bool ap)
{
    SimConfig config;
    config.scheme = scheme;
    config.addressPrediction = ap;
    return config;
}

// --- Spectre v1 --------------------------------------------------------

TEST(SpectreV1Test, LeaksOnUnsafeBaseline)
{
    const auto check = security::checkLeak(
        security::spectreV1Gadget, makeConfig(Scheme::Unsafe, false));
    EXPECT_TRUE(check.leaked())
        << "the unprotected core must reproduce the Spectre leak";
}

TEST(SpectreV1Test, LeaksOnUnsafeBaselineWithAp)
{
    const auto check = security::checkLeak(
        security::spectreV1Gadget, makeConfig(Scheme::Unsafe, true));
    EXPECT_TRUE(check.leaked());
}

class SecureSchemeBlocksV1
    : public ::testing::TestWithParam<std::tuple<Scheme, bool>>
{
};

TEST_P(SecureSchemeBlocksV1, NoLeak)
{
    const auto [scheme, ap] = GetParam();
    const auto check = security::checkLeak(security::spectreV1Gadget,
                                           makeConfig(scheme, ap));
    EXPECT_FALSE(check.leaked())
        << schemeName(scheme) << (ap ? "+AP" : "")
        << " must block the Spectre v1 universal read gadget";
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SecureSchemeBlocksV1,
    ::testing::Combine(::testing::Values(Scheme::NdaP, Scheme::Stt,
                                         Scheme::Dom),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, bool>> &info) {
        std::string name = schemeName(std::get<0>(info.param));
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + (std::get<1>(info.param) ? "_AP" : "_NoAP");
    });

// --- Figure 4a: speculative secret + doppelganger implicit channel ----

TEST(DomFig4aTest, BaselineDomBlocks)
{
    const auto check = security::checkLeak(
        security::domSpeculativeSecretGadget,
        makeConfig(Scheme::Dom, false), /*secret_a=*/2, /*secret_b=*/3);
    EXPECT_FALSE(check.leaked());
}

TEST(DomFig4aTest, DomWithApBlocksViaInOrderResolution)
{
    const auto check = security::checkLeak(
        security::domSpeculativeSecretGadget,
        makeConfig(Scheme::Dom, true), /*secret_a=*/2, /*secret_b=*/3);
    EXPECT_FALSE(check.leaked())
        << "DoM+AP with in-order branch resolution (§4.6) must not leak";
}

TEST(DomFig4aTest, EagerBranchResolutionAblationLeaks)
{
    SimConfig config = makeConfig(Scheme::Dom, true);
    config.domEagerBranchResolution = true; // intentionally insecure
    const auto check = security::checkLeak(
        security::domSpeculativeSecretGadget, config, /*secret_a=*/2,
        /*secret_b=*/3);
    EXPECT_TRUE(check.leaked())
        << "without §4.6's in-order rule the doppelganger misses form "
           "an implicit channel; this ablation must reproduce the leak";
}

TEST(DomFig4aTest, NdaAndSttBlockTheSpeculativeSecret)
{
    // The steering value is *speculatively loaded*, so NDA-P never
    // propagates it and STT delays the tainted branch resolution.
    for (Scheme scheme : {Scheme::NdaP, Scheme::Stt}) {
        for (bool ap : {false, true}) {
            const auto check = security::checkLeak(
                security::domSpeculativeSecretGadget,
                makeConfig(scheme, ap), /*secret_a=*/2, /*secret_b=*/3);
            EXPECT_FALSE(check.leaked())
                << schemeName(scheme) << (ap ? "+AP" : "");
        }
    }
}

// --- Figure 4b: register secret (threat-model difference, §3) ----------

TEST(RegisterSecretTest, DomProtectsRegisterSecrets)
{
    for (bool ap : {false, true}) {
        const auto check = security::checkLeak(
            security::registerSecretGadget, makeConfig(Scheme::Dom, ap),
            /*secret_a=*/2, /*secret_b=*/3);
        EXPECT_FALSE(check.leaked())
            << "DoM's threat model covers register secrets (ap=" << ap
            << ")";
    }
}

TEST(RegisterSecretTest, NdaAndSttDoNotCoverRegisterSecrets)
{
    // Not a bug: NDA-P and STT explicitly scope register secrets out of
    // their threat models (§3.1). The gadget must therefore leak, with
    // or without doppelgangers (which change nothing about it).
    for (Scheme scheme : {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt}) {
        for (bool ap : {false, true}) {
            const auto check = security::checkLeak(
                security::registerSecretGadget, makeConfig(scheme, ap),
                /*secret_a=*/2, /*secret_b=*/3);
            EXPECT_TRUE(check.leaked())
                << schemeName(scheme) << (ap ? "+AP" : "");
        }
    }
}

// --- Determinism sanity --------------------------------------------------

TEST(LeakCheckerTest, SameSecretProducesSameDigest)
{
    const auto check =
        security::checkLeak(security::spectreV1Gadget,
                            makeConfig(Scheme::Unsafe, false), 7, 7);
    EXPECT_FALSE(check.leaked())
        << "equal secrets must give bit-identical microarchitectural "
           "state (simulator determinism)";
}

} // namespace
} // namespace dgsim
