/**
 * @file
 * Unit tests for the micro-ISA, assembler and functional simulator.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "isa/functional.hh"

namespace dgsim
{
namespace
{

TEST(IsaTest, OpClassClassification)
{
    EXPECT_EQ(opClass(Opcode::Add), OpClass::IntAlu);
    EXPECT_EQ(opClass(Opcode::Mul), OpClass::IntMul);
    EXPECT_EQ(opClass(Opcode::Div), OpClass::IntDiv);
    EXPECT_EQ(opClass(Opcode::Ld), OpClass::MemRead);
    EXPECT_EQ(opClass(Opcode::St), OpClass::MemWrite);
    EXPECT_EQ(opClass(Opcode::Beq), OpClass::Branch);
    EXPECT_EQ(opClass(Opcode::Halt), OpClass::No_OpClass);
}

TEST(IsaTest, StoreHasNoDest)
{
    Instruction store{Opcode::St, 5, 1, 2, 0};
    EXPECT_FALSE(writesDest(store));
    EXPECT_TRUE(readsRs1(store));
    EXPECT_TRUE(readsRs2(store));
}

TEST(IsaTest, X0NeverWritten)
{
    Instruction addi{Opcode::Addi, 0, 1, 0, 7};
    EXPECT_FALSE(writesDest(addi));
}

TEST(AssemblerTest, ResolvesForwardAndBackwardLabels)
{
    Assembler assembler("labels");
    assembler.li(1, 0)
        .label("loop")
        .addi(1, 1, 1)
        .slti(2, 1, 3)
        .bne(2, 0, "loop")
        .jmp("end")
        .addi(1, 1, 100) // skipped
        .label("end")
        .halt();
    Program program = assembler.finish();

    FunctionalCore core(program);
    core.run();
    EXPECT_EQ(core.reg(1), 3u);
    EXPECT_TRUE(core.halted());
}

TEST(FunctionalTest, AluSemantics)
{
    Assembler assembler("alu");
    assembler.li(1, 21)
        .li(2, 2)
        .mul(3, 1, 2)   // 42
        .sub(4, 3, 2)   // 40
        .xori(5, 4, 0xF) // 40 ^ 15 = 39
        .srli(6, 3, 1)  // 21
        .slt(7, 2, 1)   // 1
        .div(8, 3, 2)   // 21
        .halt();
    const Program program = assembler.finish();
    FunctionalCore core(program);
    core.run();
    EXPECT_EQ(core.reg(3), 42u);
    EXPECT_EQ(core.reg(4), 40u);
    EXPECT_EQ(core.reg(5), 39u);
    EXPECT_EQ(core.reg(6), 21u);
    EXPECT_EQ(core.reg(7), 1u);
    EXPECT_EQ(core.reg(8), 21u);
}

TEST(FunctionalTest, DivByZeroDefinedAsZero)
{
    Assembler assembler("div0");
    assembler.li(1, 9).li(2, 0).div(3, 1, 2).halt();
    const Program program = assembler.finish();
    FunctionalCore core(program);
    core.run();
    EXPECT_EQ(core.reg(3), 0u);
}

TEST(FunctionalTest, LoadStoreRoundTrip)
{
    Assembler assembler("mem");
    assembler.data(0x1000, 77)
        .li(1, 0x1000)
        .ld(2, 1)        // 77
        .addi(2, 2, 1)   // 78
        .st(2, 1, 8)     // mem[0x1008] = 78
        .ld(3, 1, 8)     // 78
        .halt();
    const Program program = assembler.finish();
    FunctionalCore core(program);
    core.run();
    EXPECT_EQ(core.reg(2), 78u);
    EXPECT_EQ(core.reg(3), 78u);
    EXPECT_EQ(core.memory().read(0x1008), 78u);
}

TEST(FunctionalTest, JalLinksReturnAddress)
{
    Assembler assembler("call");
    assembler.li(1, 5)
        .jal(31, "callee")
        .addi(2, 1, 1) // executed after return: r2 = r1 + 1
        .halt();
    assembler.label("callee").addi(1, 1, 10).jalr(0, 31);
    const Program program = assembler.finish();
    FunctionalCore core(program);
    core.run();
    EXPECT_EQ(core.reg(1), 15u);
    EXPECT_EQ(core.reg(2), 16u);
}

TEST(FunctionalTest, RunRespectsInstructionLimit)
{
    Assembler assembler("infinite");
    assembler.label("spin").jmp("spin");
    const Program program = assembler.finish();
    FunctionalCore core(program);
    const std::uint64_t executed = core.run(1000);
    EXPECT_EQ(executed, 1000u);
    EXPECT_FALSE(core.halted());
}

TEST(FunctionalTest, BranchSemantics)
{
    // blt uses signed comparison.
    Assembler assembler("signed");
    assembler.li(1, static_cast<std::uint64_t>(-5))
        .li(2, 3)
        .li(3, 0)
        .blt(1, 2, "yes")
        .jmp("end")
        .label("yes")
        .li(3, 1)
        .label("end")
        .halt();
    const Program program = assembler.finish();
    FunctionalCore core(program);
    core.run();
    EXPECT_EQ(core.reg(3), 1u);
}

} // namespace
} // namespace dgsim
