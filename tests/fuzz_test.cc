/**
 * @file
 * Regression tests for the attacker-program fuzzer: synthesizer
 * determinism, the .dgasm round trip, the planted-leak budget, the
 * minimizer's contract (leak-preserving, size-monotone, fixed point),
 * the secure-scheme cleanliness of the candidate population, and the
 * runner integration (job identity, counter round trip, post-pass
 * artifacts).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "fuzz/dgasm.hh"
#include "fuzz/fuzz.hh"
#include "fuzz/minimize.hh"
#include "fuzz/oracle.hh"
#include "fuzz/synth.hh"
#include "runner/journal.hh"
#include "runner/sweep.hh"
#include "security/leak.hh"
#include "sim/simulator.hh"

namespace dgsim
{
namespace
{

/** The Unsafe / AP-off column of the oracle matrix. */
SimConfig
unsafeColumn()
{
    SimConfig config = fuzz::oracleBaseConfig();
    config.scheme = Scheme::Unsafe;
    config.addressPrediction = false;
    return config;
}

security::LeakCheck
checkUnder(const fuzz::AttackerIr &ir, const SimConfig &config,
           const std::vector<security::SecretPair> &pairs)
{
    const auto builder = [&ir](std::uint64_t secret) {
        return ir.lower(secret);
    };
    return security::checkLeakPairs(builder, config, pairs);
}

/**
 * The first candidate of @p fuzz_seed that leaks under the Unsafe
 * baseline, searching at most @p budget keys; the found key is written
 * to @p key_out. This *is* the planted-leak acceptance check: a
 * synthesizer whose population can't even beat the undefended machine
 * within a small fixed budget is testing nothing.
 */
bool
findUnsafeLeak(std::uint64_t fuzz_seed, std::uint64_t budget,
               std::uint64_t &key_out, security::LeakCheck &check_out)
{
    const auto pairs = security::defaultSecretPairs(fuzz_seed);
    for (std::uint64_t key = 0; key < budget; ++key) {
        const fuzz::AttackerIr ir = fuzz::synthesize(fuzz_seed, key);
        const security::LeakCheck check =
            checkUnder(ir, unsafeColumn(), pairs);
        if (check.leaked()) {
            key_out = key;
            check_out = check;
            return true;
        }
    }
    return false;
}

// --- Synthesizer -------------------------------------------------------

TEST(FuzzSynthTest, CandidateIsPureFunctionOfSeedAndKey)
{
    for (std::uint64_t key : {0ULL, 7ULL, 123ULL}) {
        const fuzz::AttackerIr a = fuzz::synthesize(1, key);
        const fuzz::AttackerIr b = fuzz::synthesize(1, key);
        EXPECT_EQ(fuzz::writeDgasm(a), fuzz::writeDgasm(b));
    }
}

TEST(FuzzSynthTest, DifferentKeysAndSeedsDiverge)
{
    const std::string base = fuzz::writeDgasm(fuzz::synthesize(1, 0));
    EXPECT_NE(base, fuzz::writeDgasm(fuzz::synthesize(1, 1)));
    EXPECT_NE(base, fuzz::writeDgasm(fuzz::synthesize(2, 0)));
}

TEST(FuzzSynthTest, CandidatesTerminateAndLowerDeterministically)
{
    for (std::uint64_t key = 0; key < 8; ++key) {
        const fuzz::AttackerIr ir = fuzz::synthesize(1, key);
        SimConfig config = unsafeColumn();
        config.watchdogThrows = true;
        const SimResult result = runProgram(ir.lower(3), config);
        EXPECT_TRUE(result.halted) << "candidate " << key
                                   << " must commit HALT";
        EXPECT_FALSE(result.hitMaxCycles);
        // Lowering twice with the same secret is bit-identical.
        const SimResult again = runProgram(ir.lower(3), config);
        EXPECT_EQ(result.uarchDigest, again.uarchDigest);
    }
}

// --- .dgasm round trip --------------------------------------------------

TEST(DgasmTest, RoundTripPreservesTheCandidate)
{
    for (std::uint64_t key : {0ULL, 3ULL, 42ULL}) {
        const fuzz::AttackerIr ir = fuzz::synthesize(1, key);
        const std::string text = fuzz::writeDgasm(ir);
        const fuzz::AttackerIr back = fuzz::parseDgasm(text, "test");
        EXPECT_EQ(text, fuzz::writeDgasm(back));
        EXPECT_EQ(ir.instructionCount(), back.instructionCount());
        // The round trip preserves behavior, not just text: identical
        // lowered digests under the same secret.
        const SimConfig config = unsafeColumn();
        EXPECT_EQ(runProgram(ir.lower(5), config).uarchDigest,
                  runProgram(back.lower(5), config).uarchDigest);
    }
}

// --- Planted leak within a fixed budget ---------------------------------

TEST(FuzzOracleTest, UnsafeLeakFoundWithinFixedBudget)
{
    std::uint64_t key = 0;
    security::LeakCheck check;
    ASSERT_TRUE(findUnsafeLeak(1, 16, key, check))
        << "no candidate of seed 1 leaked on the undefended machine "
           "within 16 keys — the synthesizer population is broken";
    EXPECT_NE(check.digestA, check.digestB);
}

TEST(FuzzOracleTest, SecureSchemesCleanOnCandidatePrefix)
{
    const auto pairs = security::defaultSecretPairs(1);
    for (std::uint64_t key = 0; key < 2; ++key) {
        const fuzz::AttackerIr ir = fuzz::synthesize(1, key);
        const auto verdicts =
            fuzz::evaluateCandidate(ir, fuzz::oracleBaseConfig(), pairs);
        ASSERT_EQ(verdicts.size(), 8u); // 4 schemes x 2 AP modes
        for (const fuzz::ConfigVerdict &verdict : verdicts)
            EXPECT_FALSE(verdict.finding())
                << "candidate " << key << " leaked under "
                << verdict.configLabel;
    }
}

// --- Minimizer contract -------------------------------------------------

TEST(FuzzMinimizeTest, LeakPreservingSizeMonotoneFixedPoint)
{
    std::uint64_t key = 0;
    security::LeakCheck check;
    ASSERT_TRUE(findUnsafeLeak(1, 16, key, check));
    const fuzz::AttackerIr ir = fuzz::synthesize(1, key);
    const security::SecretPair pair{check.secretA, check.secretB};

    const fuzz::MinimizeResult minimized =
        fuzz::minimizeLeak(ir, unsafeColumn(), pair);
    EXPECT_TRUE(minimized.converged);
    // Size-monotone: deletions only.
    EXPECT_LE(minimized.ir.instructionCount(), ir.instructionCount());
    EXPECT_LE(minimized.ir.data.size(), ir.data.size());
    // Leak-preserving: the output still leaks under the exact
    // (config, pair) that produced the hit.
    EXPECT_TRUE(checkUnder(minimized.ir, unsafeColumn(), {pair}).leaked());
    // Fixed point: minimizing the minimum changes nothing.
    const fuzz::MinimizeResult again =
        fuzz::minimizeLeak(minimized.ir, unsafeColumn(), pair);
    EXPECT_EQ(fuzz::writeDgasm(minimized.ir), fuzz::writeDgasm(again.ir));
}

TEST(FuzzMinimizeTest, NonLeakingInputReturnsUnchangedAfterOneTest)
{
    // Candidate 0 does not leak under STT: the minimizer must detect
    // that with its single baseline run and give the input back.
    SimConfig stt = fuzz::oracleBaseConfig();
    stt.scheme = Scheme::Stt;
    stt.addressPrediction = false;
    const fuzz::AttackerIr ir = fuzz::synthesize(1, 0);
    ASSERT_FALSE(checkUnder(ir, stt, {{3, 5}}).leaked());
    const fuzz::MinimizeResult result =
        fuzz::minimizeLeak(ir, stt, {3, 5});
    EXPECT_EQ(result.testsRun, 1u);
    EXPECT_EQ(fuzz::writeDgasm(result.ir), fuzz::writeDgasm(ir));
}

// --- Runner integration -------------------------------------------------

TEST(FuzzRunnerTest, JobIdentityCoversCandidateAndSeed)
{
    runner::SweepSpec spec;
    spec.configs = {fuzz::oracleBaseConfig()};
    spec.fuzzCount = 4;
    spec.fuzzSeed = 1;
    const std::vector<runner::Job> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 4u);
    std::set<std::string> keys;
    for (const runner::Job &job : jobs) {
        EXPECT_EQ(job.kind, runner::JobKind::FuzzCandidate);
        keys.insert(runner::jobKey(job));
    }
    EXPECT_EQ(keys.size(), jobs.size()) << "fuzz job keys must be distinct";

    // A different campaign seed is a different identity: its journal
    // records must never satisfy this sweep's resume.
    runner::SweepSpec other = spec;
    other.fuzzSeed = 2;
    EXPECT_NE(runner::jobKey(spec.expand().front()),
              runner::jobKey(other.expand().front()));
}

TEST(FuzzRunnerTest, VerdictsRoundTripThroughCounters)
{
    runner::SweepSpec spec;
    spec.configs = {fuzz::oracleBaseConfig()};
    spec.fuzzCount = 1;
    spec.fuzzSeed = 1;
    const runner::Job job = spec.expand().front();

    const SimResult result = fuzz::runCandidateJob(job);
    EXPECT_EQ(result.counters.at("fuzz.key"), 0u);
    EXPECT_EQ(result.counters.at("fuzz.seed"), 1u);

    const std::vector<fuzz::ConfigVerdict> verdicts =
        fuzz::readVerdicts(result);
    ASSERT_EQ(verdicts.size(), 8u);
    // Candidate 0 of seed 1 leaks under Unsafe (the planted-leak test
    // above guarantees *some* early candidate does; this one pins the
    // decoded classification against the direct oracle).
    const auto pairs = security::defaultSecretPairs(1);
    const auto direct = fuzz::evaluateCandidate(fuzz::synthesize(1, 0),
                                                fuzz::oracleBaseConfig(),
                                                pairs);
    ASSERT_EQ(direct.size(), verdicts.size());
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
        EXPECT_EQ(verdicts[i].configLabel, direct[i].configLabel);
        EXPECT_EQ(verdicts[i].check.verdict, direct[i].check.verdict);
        EXPECT_EQ(verdicts[i].check.digestA, direct[i].check.digestA);
        EXPECT_EQ(verdicts[i].check.digestB, direct[i].check.digestB);
        EXPECT_EQ(verdicts[i].expected, direct[i].expected);
    }
}

TEST(FuzzRunnerTest, PostPassEmitsReplayableArtifacts)
{
    std::uint64_t key = 0;
    security::LeakCheck check;
    ASSERT_TRUE(findUnsafeLeak(1, 16, key, check));

    runner::SweepSpec spec;
    spec.configs = {fuzz::oracleBaseConfig()};
    spec.fuzzCount = key + 1;
    spec.fuzzSeed = 1;
    std::vector<runner::JobOutcome> outcomes;
    for (const runner::Job &job : spec.expand()) {
        runner::JobOutcome outcome;
        outcome.index = job.index;
        outcome.workload = job.workload;
        outcome.suite = job.suite;
        outcome.configLabel = job.config.label();
        outcome.ok = true;
        outcome.result = fuzz::runCandidateJob(job);
        outcomes.push_back(std::move(outcome));
    }

    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / "fuzz_post";
    std::filesystem::remove_all(dir);
    fuzz::PostOptions popts;
    popts.fuzzSeed = 1;
    popts.reproDir = (dir / "repros").string();
    popts.findingsPath = (dir / "findings.jsonl").string();
    popts.quiet = true;
    std::ostringstream log;
    const fuzz::PostSummary summary =
        fuzz::postProcess(outcomes, popts, log);

    EXPECT_EQ(summary.candidates, outcomes.size());
    EXPECT_GE(summary.expectedLeaks, 1u);
    EXPECT_EQ(summary.findings, 0u)
        << "a secure scheme leaked on the seed-1 prefix";
    ASSERT_TRUE(std::filesystem::exists(popts.findingsPath));

    // Every hit must be reproducible from its .dgasm alone.
    const std::string repro = popts.reproDir + "/" +
                              fuzz::candidateName(key) + ".dgasm";
    ASSERT_TRUE(std::filesystem::exists(repro));
    const fuzz::AttackerIr replayed = fuzz::loadDgasm(repro);
    EXPECT_TRUE(checkUnder(replayed, unsafeColumn(),
                           security::defaultSecretPairs(1))
                    .leaked());

    // The post-pass is deterministic: running it again over the same
    // outcomes produces a byte-identical findings file.
    std::stringstream first;
    first << std::ifstream(popts.findingsPath).rdbuf();
    std::ostringstream log2;
    fuzz::postProcess(outcomes, popts, log2);
    std::stringstream second;
    second << std::ifstream(popts.findingsPath).rdbuf();
    EXPECT_EQ(first.str(), second.str());
}

} // namespace
} // namespace dgsim
