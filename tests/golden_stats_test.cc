/**
 * @file
 * Golden-stats determinism harness.
 *
 * Runs a fixed trio of workloads under every policy (Unsafe / NDA-P /
 * STT / DoM) with and without address prediction, and byte-compares the
 * full sorted `StatRegistry::dump()` against checked-in golden files.
 * This is the guard rail for hot-path refactors: any optimization of
 * the cycle loop (instruction pooling, paged memory, flat trackers)
 * must leave every simulated counter bit-identical, and this test makes
 * a silent behavioural change impossible.
 *
 * Regenerate (only when a change *intends* to alter simulated
 * behaviour) with:
 *
 *     DGSIM_UPDATE_GOLDEN=1 ./build/tests/golden_stats_test
 *
 * and justify the diff in the commit message.
 */

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "cpu/core.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

#ifndef DGSIM_GOLDEN_DIR
#error "DGSIM_GOLDEN_DIR must point at tests/golden"
#endif

namespace dgsim
{
namespace
{

/// Per-run instruction budget. Small enough that all 24 runs finish in
/// about a second, large enough to exercise warm caches, the stride
/// predictor and every squash path.
constexpr std::uint64_t kInstructions = 20'000;

/// Three behaviour classes: strided gather (L2 working set, value
/// branches), branchy/unpredictable (L1), multi-array strided
/// reduction (L2). Together they cover doppelganger hits/misses,
/// branch squash storms and DoM delay/retry traffic.
const char *const kWorkloads[] = {"bzip2", "gobmk", "hmmer"};

SimConfig
baseConfig()
{
    SimConfig config;
    config.maxInstructions = kInstructions;
    config.maxCycles = kInstructions * 200;
    return config;
}

/** Render one workload's stats under all eight configs as text. */
std::string
renderWorkload(const std::string &name, bool idle_skip = true)
{
    const workloads::WorkloadDef &def = workloads::findWorkload(name);
    const Program program = def.build(0); // Endless; bounded by budget.
    std::ostringstream out;
    for (SimConfig config : evaluationConfigs(baseConfig())) {
        config.idleSkip = idle_skip;
        StatRegistry stats;
        OooCore core(program, config, stats);
        core.run();
        out << "== " << name << " / " << config.label() << " ==\n";
        stats.dump(out);
    }
    return out.str();
}

std::string
goldenPath(const std::string &name)
{
    return std::string(DGSIM_GOLDEN_DIR) + "/" + name + ".stats.txt";
}

TEST(GoldenStatsTest, CountersMatchCheckedInGolden)
{
    const bool update = std::getenv("DGSIM_UPDATE_GOLDEN") != nullptr;
    for (const char *name : kWorkloads) {
        const std::string rendered = renderWorkload(name);
        const std::string path = goldenPath(name);
        if (update) {
            std::ofstream out(path, std::ios::binary);
            ASSERT_TRUE(out) << "cannot write " << path;
            out << rendered;
            continue;
        }
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in) << "missing golden file " << path
                        << " (regenerate with DGSIM_UPDATE_GOLDEN=1)";
        const std::string expected(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        EXPECT_EQ(rendered, expected)
            << name << ": simulated counters diverged from " << path;
    }
}

/** Runs are deterministic: the same simulation twice gives the same
 * bytes (catches accidental wall-clock/random/pointer-order inputs). */
TEST(GoldenStatsTest, RenderingIsDeterministic)
{
    EXPECT_EQ(renderWorkload("gobmk"), renderWorkload("gobmk"));
}

/** The event-driven time warp is a host-side optimization only: the
 * full matrix re-run with skipping disabled must be byte-identical to
 * the skipping run. A late next-event horizon (a component that can
 * change state before the cycle nextEventCycle() reported) shows up
 * here as a counter diff. */
TEST(GoldenStatsTest, IdleSkippingIsInvisibleInCounters)
{
    for (const char *name : kWorkloads) {
        EXPECT_EQ(renderWorkload(name, /*idle_skip=*/true),
                  renderWorkload(name, /*idle_skip=*/false))
            << name << ": idle-cycle skipping changed simulated counters";
    }
}

} // namespace
} // namespace dgsim
