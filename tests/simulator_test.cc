/**
 * @file
 * Tests for the top-level Simulator facade and configuration plumbing.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/generators.hh"

namespace dgsim
{
namespace
{

TEST(ConfigTest, LabelsMatchPaperTerminology)
{
    SimConfig config;
    EXPECT_EQ(config.label(), "Unsafe");
    config.scheme = Scheme::NdaP;
    EXPECT_EQ(config.label(), "NDA-P");
    config.addressPrediction = true;
    EXPECT_EQ(config.label(), "NDA-P+AP");
    config.scheme = Scheme::Stt;
    EXPECT_EQ(config.label(), "STT+AP");
    config.scheme = Scheme::Dom;
    EXPECT_EQ(config.label(), "DoM+AP");
}

TEST(ConfigTest, EvaluationMatrixHasEightColumns)
{
    const auto configs = evaluationConfigs(SimConfig{});
    ASSERT_EQ(configs.size(), 8u);
    EXPECT_EQ(configs.front().label(), "Unsafe");
    EXPECT_EQ(configs.back().label(), "DoM+AP");
    // Every scheme appears with and without AP.
    unsigned with_ap = 0;
    for (const SimConfig &config : configs)
        with_ap += config.addressPrediction ? 1 : 0;
    EXPECT_EQ(with_ap, 4u);
}

TEST(SimulatorTest, ResultFieldsArePopulated)
{
    const Program program =
        workloads::genStream("facade", 4096, /*iterations=*/0);
    SimConfig config;
    config.maxInstructions = 5000;
    config.maxCycles = 1'000'000;
    const SimResult result = runProgram(program, config);

    EXPECT_EQ(result.workload, "facade");
    EXPECT_EQ(result.configLabel, "Unsafe");
    EXPECT_GE(result.instructions, 5000u);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.l1Accesses, 0u);
    EXPECT_GT(result.committedLoads, 0u);
    EXPECT_NE(result.cacheDigest, 0u);
    EXPECT_FALSE(result.counters.empty());
    EXPECT_EQ(result.counters.at("core.committedInstrs"),
              result.instructions);
}

TEST(SimulatorTest, WarmupResetsMeasurementRegion)
{
    const Program program =
        workloads::genStream("warmup", 4096, /*iterations=*/0);
    SimConfig config;
    config.maxInstructions = 9000;
    config.maxCycles = 1'000'000;
    config.warmupInstructions = 6000;
    const SimResult result = runProgram(program, config);
    // Only the post-warm-up region is counted.
    EXPECT_LE(result.instructions, 3100u);
    EXPECT_GE(result.instructions, 2900u);
}

TEST(SimulatorTest, SameConfigIsDeterministic)
{
    const Program program =
        workloads::genGather("det", 1 << 16, 7, 8, /*iterations=*/0);
    SimConfig config;
    config.scheme = Scheme::Dom;
    config.addressPrediction = true;
    config.maxInstructions = 20000;
    config.maxCycles = 4'000'000;
    const SimResult a = runProgram(program, config);
    const SimResult b = runProgram(program, config);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.cacheDigest, b.cacheDigest);
    EXPECT_EQ(a.counters, b.counters);
}

} // namespace
} // namespace dgsim
