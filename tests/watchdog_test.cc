/**
 * @file
 * Commit-watchdog and flight-recorder tests.
 *
 * Wedges a core on purpose (SimConfig::wedgeNeverResolve runs a policy
 * whose branches never resolve, so the first branch blocks commit
 * forever) and asserts the watchdog aborts with the pipeline-state +
 * flight-recorder dump instead of spinning to the cycle limit. Death
 * tests bound their runtime with maxCycles, so a watchdog regression
 * shows up as a test failure, not a hang.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "obs/flight_recorder.hh"
#include "workloads/suite.hh"

namespace dgsim
{
namespace
{

SimConfig
wedgedConfig()
{
    SimConfig config;
    config.wedgeNeverResolve = true;
    config.watchdogCycles = 2'000;
    config.maxInstructions = 10'000;
    // Backstop: if the watchdog regresses, the run still terminates
    // and the death-test assertion fails fast instead of hanging.
    config.maxCycles = 50'000;
    return config;
}

TEST(WatchdogTest, FiresWithFlightRecorderDump)
{
    const Program program = workloads::findWorkload("bzip2").build(0);
    // The abort message carries the watchdog diagnosis; the panic hook
    // dumps the pipeline state and the flight recorder to stderr first.
    EXPECT_DEATH(
        {
            SimConfig config = wedgedConfig();
            StatRegistry stats;
            OooCore core(program, config, stats);
            core.run();
        },
        "commit watchdog: no instruction committed for "
        "2000 cycles.*dgsim pipeline state.*"
        "rob head.*flight recorder");
}

TEST(WatchdogTest, DisabledWatchdogRunsToCycleLimit)
{
    const Program program = workloads::findWorkload("bzip2").build(0);
    // Both time-warp modes must land on maxCycles exactly: the skip
    // target is clamped to the limit, never jumped past it.
    for (bool skip : {true, false}) {
        SimConfig config = wedgedConfig();
        config.watchdogCycles = 0; // Off: the wedge spins to maxCycles.
        config.maxCycles = 10'000;
        config.idleSkip = skip;
        StatRegistry stats;
        OooCore core(program, config, stats);
        core.run();
        EXPECT_TRUE(core.done());
        EXPECT_EQ(core.cycle(), 10'000u) << "idleSkip=" << skip;
        // The wedge is real: almost nothing commits.
        EXPECT_LT(core.committed(), 100u);
    }
}

/**
 * The skip target is clamped to last_commit + watchdogCycles, so a
 * wedged pipeline panics at the exact same cycle whether the clock
 * walked there or warped there. The fire cycle is derived at runtime
 * (probe run with the watchdog off) rather than hardcoded, so it
 * tracks intentional golden-behaviour changes automatically.
 */
TEST(WatchdogTest, FiresAtIdenticalCycleInBothTimeWarpModes)
{
    const Program program = workloads::findWorkload("bzip2").build(0);
    SimConfig probe = wedgedConfig();
    probe.watchdogCycles = 0;
    probe.maxCycles = 10'000;
    StatRegistry probe_stats;
    OooCore probe_core(program, probe, probe_stats);
    probe_core.run();
    const Cycle fire =
        probe_core.lastCommitCycle() + wedgedConfig().watchdogCycles;

    const std::string pattern =
        "commit watchdog: no instruction committed for 2000 cycles "
        "\\(cycle " + std::to_string(fire) + ",";
    for (bool skip : {true, false}) {
        EXPECT_DEATH(
            {
                SimConfig config = wedgedConfig();
                config.idleSkip = skip;
                StatRegistry stats;
                OooCore core(program, config, stats);
                core.run();
            },
            pattern)
            << "idleSkip=" << skip;
    }
}

TEST(WatchdogTest, HealthyRunNeverFires)
{
    const Program program = workloads::findWorkload("hmmer").build(0);
    SimConfig config;
    config.scheme = Scheme::Stt;
    config.watchdogCycles = 2'000; // Tight, but commits keep coming.
    config.maxInstructions = 20'000;
    config.maxCycles = 20'000 * 200;
    StatRegistry stats;
    OooCore core(program, config, stats);
    core.run();
    EXPECT_EQ(core.committed(), 20'000u);
}

// ---------------------------------------------------------------------
// Flight recorder unit behaviour.
// ---------------------------------------------------------------------

TEST(FlightRecorderTest, RingWrapsAndDumpsMostRecent)
{
    FlightRecorder recorder;
    const std::size_t total = FlightRecorder::kCapacity + 10;
    for (std::size_t i = 0; i < total; ++i)
        recorder.record(FrEvent::ShadowRelease, /*cycle=*/i, /*seq=*/i);
    EXPECT_EQ(recorder.recorded(), total);

    std::ostringstream os;
    recorder.dump(os, /*last=*/4);
    const std::string text = os.str();
    // Only the most recent records survive the wrap.
    EXPECT_NE(text.find("cycle          265"), std::string::npos);
    EXPECT_EQ(text.find("cycle            5 "), std::string::npos);
    EXPECT_NE(text.find("shadow-release"), std::string::npos);

    recorder.clear();
    EXPECT_EQ(recorder.recorded(), 0u);
}

TEST(FlightRecorderTest, SimulatedWedgeRecordsBlockedEvents)
{
    const Program program = workloads::findWorkload("bzip2").build(0);
    SimConfig config = wedgedConfig();
    config.watchdogCycles = 0; // Keep the core alive for inspection.
    config.maxCycles = 5'000;
    StatRegistry stats;
    OooCore core(program, config, stats);
    core.run();

    // The never-resolving branch shows up as a policy-blocked event.
    const FlightRecorder &recorder = core.flightRecorder();
    EXPECT_GT(recorder.recorded(), 0u);
    std::ostringstream os;
    recorder.dump(os);
    EXPECT_NE(os.str().find("prop-blocked"), std::string::npos);
}

} // namespace
} // namespace dgsim
