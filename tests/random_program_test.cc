/**
 * @file
 * Differential fuzzing: structured random programs are executed under
 * every scheme x AP configuration with the lockstep oracle enabled, and
 * the final architectural state is compared against the functional
 * simulator. This is the broadest correctness net in the suite — it
 * exercises rename/rollback, store-to-load forwarding, memory-order
 * squashes, doppelganger verification/replay and the scheme gates with
 * instruction mixes no hand-written test would cover.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/stats.hh"
#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "isa/functional.hh"

namespace dgsim
{
namespace
{

constexpr Addr kDataBase = 0x10000;
constexpr std::uint64_t kDataWords = 256; // small: heavy aliasing

/** Generate a structured random program that always terminates. */
Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    Assembler assembler("fuzz-" + std::to_string(seed));

    // Random initial data and registers.
    for (std::uint64_t i = 0; i < kDataWords; ++i)
        assembler.data(kDataBase + i * 8, rng.next() >> 40);
    for (RegIndex reg = 1; reg <= 12; ++reg)
        assembler.li(reg, rng.below(1 << 20));

    // x20: loop counter, x21: bound, x22: data base.
    const std::uint64_t iterations = 20 + rng.below(30);
    assembler.li(20, 0).li(21, iterations).li(22, kDataBase);
    assembler.label("loop");

    const unsigned body_len = 6 + static_cast<unsigned>(rng.below(14));
    unsigned branch_id = 0;
    for (unsigned i = 0; i < body_len; ++i) {
        const auto r = [&] {
            return static_cast<RegIndex>(1 + rng.below(12));
        };
        switch (rng.below(10)) {
          case 0:
          case 1: { // load from a random (aligned) slot
            const std::int64_t disp =
                static_cast<std::int64_t>(rng.below(kDataWords) * 8);
            assembler.ld(r(), 22, disp);
            break;
          }
          case 2: { // store to a random slot
            const std::int64_t disp =
                static_cast<std::int64_t>(rng.below(kDataWords) * 8);
            assembler.st(r(), 22, disp);
            break;
          }
          case 3: { // indexed load: address from a (masked) register
            const RegIndex idx = r();
            assembler.andi(13, idx, (kDataWords - 1) * 8);
            assembler.andi(13, 13, ~7LL);
            assembler.add(13, 13, 22);
            assembler.ld(r(), 13);
            break;
          }
          case 4: { // forward branch over a small random block
            const std::string skip =
                "skip_" + std::to_string(branch_id++);
            assembler.beq(r(), r(), skip);
            assembler.xori(r(), r(), 0x5a);
            assembler.add(r(), r(), r());
            assembler.label(skip);
            break;
          }
          case 5:
            assembler.mul(r(), r(), r());
            break;
          case 6:
            assembler.div(r(), r(), r());
            break;
          case 7:
            assembler.slli(r(), r(), rng.below(8));
            break;
          case 8:
            assembler.sub(r(), r(), r());
            break;
          default:
            assembler.add(r(), r(), r());
            break;
        }
    }

    assembler.addi(20, 20, 1);
    assembler.blt(20, 21, "loop");
    assembler.halt();
    return assembler.finish();
}

class RandomProgramTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomProgramTest, AllConfigsMatchOracle)
{
    const Program program =
        randomProgram(0xf00d + static_cast<std::uint64_t>(GetParam()));

    FunctionalCore oracle(program);
    oracle.run(1'000'000);
    ASSERT_TRUE(oracle.halted());

    for (Scheme scheme :
         {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt, Scheme::Dom}) {
        for (bool ap : {false, true}) {
            SimConfig config;
            config.scheme = scheme;
            config.addressPrediction = ap;
            config.checkArchState = true; // panics on any divergence
            config.maxCycles = 5'000'000;
            StatRegistry stats;
            OooCore core(program, config, stats);
            core.run();
            const std::string label =
                program.name + " under " + config.label();
            for (unsigned reg = 1; reg < kNumArchRegs; ++reg) {
                ASSERT_EQ(core.archReg(static_cast<RegIndex>(reg)),
                          oracle.reg(static_cast<RegIndex>(reg)))
                    << label << ", x" << reg;
            }
            for (const auto &[addr, value] : oracle.memory().words()) {
                ASSERT_EQ(core.dataMemory().read(addr), value)
                    << label << ", mem[" << addr << "]";
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range(0, 24));

} // namespace
} // namespace dgsim
