/**
 * @file
 * Tests for the parallel experiment runner: thread-count-independent
 * determinism, per-job failure isolation, and sink round-tripping.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "runner/experiment_runner.hh"
#include "runner/result_sink.hh"
#include "runner/sweep.hh"
#include "runner/thread_pool.hh"
#include "workloads/suite.hh"

namespace dgsim::runner
{
namespace
{

/** A small but real sweep: 2 L1-resident workloads x the full matrix. */
SweepSpec
smallSpec(std::uint64_t instructions)
{
    SimConfig base;
    base.maxInstructions = instructions;
    base.maxCycles = instructions * 200;
    base.warmupInstructions = instructions / 3;

    SweepSpec spec;
    spec.workloads = {workloads::findWorkload("gobmk"),
                      workloads::findWorkload("h264ref")};
    spec.configs = evaluationConfigs(base);
    return spec;
}

std::string
jsonlOf(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream ss;
    JsonlSink sink(ss);
    for (const JobOutcome &outcome : outcomes)
        sink.consume(outcome);
    return ss.str();
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> hits{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&hits] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 100);

    // The pool stays usable after a wait().
    pool.submit([&hits] { ++hits; });
    pool.wait();
    EXPECT_EQ(hits.load(), 101);
}

TEST(ExperimentRunner, FourThreadsMatchSerialByteForByte)
{
    const SweepSpec spec = smallSpec(2'000);

    RunnerOptions serial;
    serial.threads = 1;
    serial.progress = false;
    ExperimentRunner serialRunner(serial);
    const auto serialOutcomes = serialRunner.run(spec);

    RunnerOptions parallel;
    parallel.threads = 4;
    parallel.progress = false;
    ExperimentRunner parallelRunner(parallel);
    const auto parallelOutcomes = parallelRunner.run(spec);

    ASSERT_EQ(serialOutcomes.size(), spec.jobCount());
    ASSERT_EQ(parallelOutcomes.size(), spec.jobCount());
    EXPECT_EQ(jsonlOf(serialOutcomes), jsonlOf(parallelOutcomes));
    for (const JobOutcome &outcome : parallelOutcomes)
        EXPECT_TRUE(outcome.ok) << outcome.workload << " / "
                                << outcome.configLabel << ": "
                                << outcome.error;
}

TEST(ExperimentRunner, ThrowingJobIsIsolated)
{
    const SweepSpec spec = smallSpec(1'000);

    RunnerOptions options;
    options.threads = 4;
    options.progress = false;
    options.execute = [](const Job &job) -> SimResult {
        if (job.config.scheme == Scheme::Stt)
            throw std::runtime_error("injected failure for " + job.workload);
        SimResult result;
        result.workload = job.workload;
        result.configLabel = job.config.label();
        result.cycles = job.index + 1;
        return result;
    };
    ExperimentRunner runner(options);
    const auto outcomes = runner.run(spec);

    ASSERT_EQ(outcomes.size(), spec.jobCount());
    std::size_t failed = 0;
    for (const JobOutcome &outcome : outcomes) {
        if (outcome.configLabel.rfind("STT", 0) == 0) {
            EXPECT_FALSE(outcome.ok);
            EXPECT_NE(outcome.error.find("injected failure"),
                      std::string::npos);
            ++failed;
        } else {
            EXPECT_TRUE(outcome.ok) << outcome.error;
            // The pool kept executing and results stayed index-ordered.
            EXPECT_EQ(outcome.result.cycles, outcome.index + 1);
        }
    }
    // STT and STT+AP columns for each of the two workloads.
    EXPECT_EQ(failed, 4u);
}

/** An outcome exercising every serialized field, incl. nasty strings. */
JobOutcome
fullyPopulatedOutcome()
{
    JobOutcome outcome;
    outcome.index = 7;
    outcome.workload = "name,with \"quotes\"";
    outcome.suite = "SPEC2006";
    outcome.configLabel = "DoM+AP";
    outcome.ok = true;
    outcome.error = "";
    SimResult &r = outcome.result;
    r.workload = outcome.workload;
    r.configLabel = outcome.configLabel;
    r.cycles = 123456789;
    r.instructions = 987654;
    r.ipc = 1.0 / 3.0;
    r.l1Accesses = 11;
    r.l1Misses = 12;
    r.l2Accesses = 13;
    r.l2Misses = 14;
    r.l3Accesses = 15;
    r.dramAccesses = 16;
    r.dgCoverage = 0.875;
    r.dgAccuracy = 0.3333333333333333;
    r.dgAttached = 17;
    r.dgIssued = 18;
    r.dgVerifiedOk = 19;
    r.dgVerifiedBad = 20;
    r.committedLoads = 21;
    r.committedStores = 22;
    r.committedBranches = 23;
    r.branchSquashes = 24;
    r.memOrderSquashes = 25;
    r.domDelayed = 26;
    r.stlForwards = 27;
    r.cacheDigest = 0xffffffffffffffffULL; // Needs full uint64 range.
    r.counters["core.cycles"] = 123456789;
    r.counters["weird name, with\ncomma+newline"] = 42;
    return outcome;
}

JobOutcome
failedOutcome()
{
    JobOutcome outcome;
    outcome.index = 8;
    outcome.workload = "mcf";
    outcome.suite = "SPEC2006";
    outcome.configLabel = "STT";
    outcome.ok = false;
    outcome.error = "line1\nline2 with \"quotes\" and \\backslash";
    return outcome;
}

void
expectOutcomeEq(const JobOutcome &actual, const JobOutcome &expected)
{
    EXPECT_EQ(actual.index, expected.index);
    EXPECT_EQ(actual.workload, expected.workload);
    EXPECT_EQ(actual.suite, expected.suite);
    EXPECT_EQ(actual.configLabel, expected.configLabel);
    EXPECT_EQ(actual.ok, expected.ok);
    EXPECT_EQ(actual.error, expected.error);
    const SimResult &a = actual.result;
    const SimResult &e = expected.result;
    EXPECT_EQ(a.cycles, e.cycles);
    EXPECT_EQ(a.instructions, e.instructions);
    EXPECT_EQ(a.ipc, e.ipc);
    EXPECT_EQ(a.l1Accesses, e.l1Accesses);
    EXPECT_EQ(a.l1Misses, e.l1Misses);
    EXPECT_EQ(a.l2Accesses, e.l2Accesses);
    EXPECT_EQ(a.l2Misses, e.l2Misses);
    EXPECT_EQ(a.l3Accesses, e.l3Accesses);
    EXPECT_EQ(a.dramAccesses, e.dramAccesses);
    EXPECT_EQ(a.dgCoverage, e.dgCoverage);
    EXPECT_EQ(a.dgAccuracy, e.dgAccuracy);
    EXPECT_EQ(a.dgAttached, e.dgAttached);
    EXPECT_EQ(a.dgIssued, e.dgIssued);
    EXPECT_EQ(a.dgVerifiedOk, e.dgVerifiedOk);
    EXPECT_EQ(a.dgVerifiedBad, e.dgVerifiedBad);
    EXPECT_EQ(a.committedLoads, e.committedLoads);
    EXPECT_EQ(a.committedStores, e.committedStores);
    EXPECT_EQ(a.committedBranches, e.committedBranches);
    EXPECT_EQ(a.branchSquashes, e.branchSquashes);
    EXPECT_EQ(a.memOrderSquashes, e.memOrderSquashes);
    EXPECT_EQ(a.domDelayed, e.domDelayed);
    EXPECT_EQ(a.stlForwards, e.stlForwards);
    EXPECT_EQ(a.cacheDigest, e.cacheDigest);
    EXPECT_EQ(a.counters, e.counters);
}

TEST(ResultSinks, JsonlRoundTripsAllFields)
{
    const std::vector<JobOutcome> original = {fullyPopulatedOutcome(),
                                              failedOutcome()};
    std::stringstream ss;
    JsonlSink sink(ss);
    for (const JobOutcome &outcome : original)
        sink.consume(outcome);
    sink.finish();

    const std::vector<JobOutcome> loaded = readJsonl(ss);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        expectOutcomeEq(loaded[i], original[i]);
}

TEST(ResultSinks, CsvRoundTripsAllFields)
{
    const std::vector<JobOutcome> original = {fullyPopulatedOutcome(),
                                              failedOutcome()};
    std::stringstream ss;
    CsvSink sink(ss);
    for (const JobOutcome &outcome : original)
        sink.consume(outcome);
    sink.finish();

    const std::vector<JobOutcome> loaded = readCsv(ss);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i)
        expectOutcomeEq(loaded[i], original[i]);
}

TEST(ResultSinks, SinksAttachedToRunnerSeeIndexOrder)
{
    const SweepSpec spec = smallSpec(1'000);

    RunnerOptions options;
    options.threads = 4;
    options.progress = false;
    options.execute = [](const Job &job) {
        SimResult result;
        result.cycles = job.index;
        return result;
    };
    ExperimentRunner runner(options);
    std::stringstream ss;
    JsonlSink sink(ss);
    runner.addSink(&sink);
    runner.run(spec);

    const std::vector<JobOutcome> loaded = readJsonl(ss);
    ASSERT_EQ(loaded.size(), spec.jobCount());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].index, i);
        EXPECT_EQ(loaded[i].result.cycles, i);
    }
}

TEST(SweepSpec, ExpansionSharesProgramsAcrossConfigs)
{
    const SweepSpec spec = smallSpec(1'000);
    const std::vector<Job> jobs = spec.expand();
    ASSERT_EQ(jobs.size(), 16u);
    // The 8 configuration columns of one workload share one Program.
    for (std::size_t i = 1; i < 8; ++i)
        EXPECT_EQ(jobs[i].program.get(), jobs[0].program.get());
    EXPECT_NE(jobs[8].program.get(), jobs[0].program.get());
    EXPECT_EQ(jobs[0].workload, "gobmk");
    EXPECT_EQ(jobs[8].workload, "h264ref");
}

} // namespace
} // namespace dgsim::runner
