/**
 * @file
 * Event-driven idle-cycle skipping (time warp) tests.
 *
 * The core's run() loop may replace a span of quiescent ticks with one
 * clock jump to the earliest next-event horizon. These tests pin the
 * contract from the other side of golden_stats_test: targeted scenarios
 * that stress each horizon source — in-flight FU completions across a
 * squash, DoM delayed release, post-squash fetch stall, MSHR fills —
 * must produce byte-identical stats dumps, identical distribution
 * dumps (weighted samples stand in for the skipped per-cycle ones) and
 * identical final cycle/commit counts with skipping on and off, while
 * the skipping run actually skips (idleCyclesSkipped > 0).
 */

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "common/config.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace dgsim
{
namespace
{

constexpr std::uint64_t kInstructions = 20'000;

SimConfig
baseConfig()
{
    SimConfig config;
    config.maxInstructions = kInstructions;
    config.maxCycles = kInstructions * 200;
    return config;
}

struct ModeRun
{
    SimResult result;
    std::string dump;
};

ModeRun
runMode(const std::string &workload, SimConfig config, bool idle_skip)
{
    const Program program = workloads::findWorkload(workload).build(0);
    config.idleSkip = idle_skip;
    ModeRun run;
    run.result = runProgram(program, config, &run.dump);
    return run;
}

/** Run @p workload under @p config in both modes and assert the
 * simulated results are indistinguishable. Returns the skip-on run so
 * callers can add scenario-specific assertions. */
ModeRun
expectModesAgree(const std::string &workload, const SimConfig &config)
{
    ModeRun on = runMode(workload, config, /*idle_skip=*/true);
    const ModeRun off = runMode(workload, config, /*idle_skip=*/false);

    EXPECT_EQ(on.dump, off.dump)
        << workload << "/" << config.label()
        << ": stats dump diverged between time-warp modes";
    EXPECT_EQ(on.result.distributions, off.result.distributions)
        << workload << "/" << config.label()
        << ": weighted occupancy samples diverged from per-cycle ones";
    EXPECT_EQ(on.result.cycles, off.result.cycles);
    EXPECT_EQ(on.result.instructions, off.result.instructions);
    EXPECT_EQ(on.result.cacheDigest, off.result.cacheDigest);
    EXPECT_EQ(on.result.counters, off.result.counters);

    // The knob itself works: off never warps, and the host-side stats
    // never leak into the golden counter map.
    EXPECT_EQ(off.result.idleCyclesSkipped, 0u);
    EXPECT_EQ(off.result.skipEvents, 0u);
    EXPECT_EQ(on.result.counters.count("core.idleCyclesSkipped"), 0u);
    EXPECT_EQ(on.result.counters.count("core.skipEvents"), 0u);
    return on;
}

/** Memory-bound pointer chase: long MSHR-fill waits are the bread and
 * butter of the time warp. The LQ-completion and MSHR-fill horizons
 * must wake the core exactly when data lands. */
TEST(IdleSkipTest, MemoryBoundChaseSkipsWithIdenticalResults)
{
    SimConfig config = baseConfig();
    config.scheme = Scheme::Stt;
    config.addressPrediction = true;
    const ModeRun on = expectModesAgree("mcf", config);
    EXPECT_GT(on.result.idleCyclesSkipped, 0u);
    EXPECT_GT(on.result.skipEvents, 0u);
    // Each warp spans at least one skipped cycle.
    EXPECT_GE(on.result.idleCyclesSkipped, on.result.skipEvents);
}

/** DoM delayed release: unsafe loads sit epoch-gated until their
 * shadow lifts, so the delayed-release horizon (earliest in-flight
 * completion that bumps the wake epoch) is what ends the quiescent
 * span. domDelayed > 0 proves the path was exercised. */
TEST(IdleSkipTest, DomDelayedReleaseHorizon)
{
    SimConfig config = baseConfig();
    config.scheme = Scheme::Dom;
    config.addressPrediction = false;
    const ModeRun on = expectModesAgree("mcf", config);
    EXPECT_GT(on.result.domDelayed, 0u);
    EXPECT_GT(on.result.idleCyclesSkipped, 0u);
}

/** Branchy workload: squash recovery leaves the fetch stage stalled
 * for the mispredict penalty with an otherwise-empty pipeline, so the
 * fetch-stall horizon is what must be honoured. A late horizon would
 * shift every post-squash refill and show up in the dump compare. */
TEST(IdleSkipTest, SquashAndFetchStallHorizons)
{
    SimConfig config = baseConfig();
    config.scheme = Scheme::Stt;
    config.addressPrediction = true;
    const ModeRun on = expectModesAgree("gobmk", config);
    EXPECT_GT(on.result.branchSquashes, 0u);
}

/** The full scheme spread on one chase workload: every policy gates
 * wakeups differently (NDA-P propagation, STT taint, DoM delay), and
 * each must expose a horizon no later than its next state change. */
TEST(IdleSkipTest, AllSchemesAgreeAcrossModes)
{
    for (Scheme scheme :
         {Scheme::Unsafe, Scheme::NdaP, Scheme::Stt, Scheme::Dom}) {
        SimConfig config = baseConfig();
        config.scheme = scheme;
        config.addressPrediction = true;
        expectModesAgree("astar", config);
    }
}

/** Sampled runs route through the ckpt driver with several detailed
 * windows sharing one registry: skip stats must accumulate across
 * windows and the simulated results must still match. */
TEST(IdleSkipTest, SampledRunAccumulatesSkipStats)
{
    SimConfig config = baseConfig();
    config.scheme = Scheme::Stt;
    config.addressPrediction = true;
    config.maxInstructions = 40'000;
    config.maxCycles = 40'000 * 200;
    config.sampleInterval = 10'000;
    config.sampleDetail = 2'000;
    const ModeRun on = expectModesAgree("mcf", config);
    EXPECT_GT(on.result.idleCyclesSkipped, 0u);
}

} // namespace
} // namespace dgsim
