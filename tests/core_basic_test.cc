/**
 * @file
 * End-to-end correctness of the out-of-order core: every program must
 * commit exactly the architectural state the functional oracle
 * produces, under every scheme and with/without address prediction.
 * The lockstep oracle inside the core (checkArchState) additionally
 * cross-checks every committed instruction.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "cpu/core.hh"
#include "isa/assembler.hh"
#include "isa/functional.hh"
#include "sim/simulator.hh"

namespace dgsim
{
namespace
{

SimConfig
testConfig(Scheme scheme, bool ap)
{
    SimConfig config;
    config.scheme = scheme;
    config.addressPrediction = ap;
    config.checkArchState = true;
    config.maxCycles = 2'000'000;
    return config;
}

/** Run @p program under @p config and compare final state vs oracle. */
void
expectMatchesOracle(const Program &program, const SimConfig &config)
{
    StatRegistry stats;
    OooCore core(program, config, stats);
    core.run();

    FunctionalCore oracle(program);
    oracle.run();

    ASSERT_TRUE(oracle.halted()) << "oracle did not halt";
    for (unsigned reg = 0; reg < kNumArchRegs; ++reg) {
        EXPECT_EQ(core.archReg(static_cast<RegIndex>(reg)),
                  oracle.reg(static_cast<RegIndex>(reg)))
            << program.name << " under " << config.label() << ", x" << reg;
    }
    for (const auto &[addr, value] : oracle.memory().words()) {
        EXPECT_EQ(core.dataMemory().read(addr), value)
            << program.name << " under " << config.label() << ", mem["
            << addr << "]";
    }
}

Program
simpleLoopProgram()
{
    Assembler assembler("simple-loop");
    // Sum 0..99 into r3.
    assembler.li(1, 0)  // i
        .li(2, 100)     // bound
        .li(3, 0)       // sum
        .label("loop")
        .add(3, 3, 1)
        .addi(1, 1, 1)
        .blt(1, 2, "loop")
        .halt();
    return assembler.finish();
}

Program
memoryLoopProgram()
{
    Assembler assembler("memory-loop");
    // Write then read back an array with a dependent accumulation.
    constexpr Addr base = 0x10000;
    assembler.li(1, base)
        .li(2, 64) // elements
        .li(3, 0)  // i
        .label("write")
        .slli(4, 3, 3)
        .add(4, 4, 1)
        .st(3, 4)
        .addi(3, 3, 1)
        .blt(3, 2, "write")
        .li(3, 0)
        .li(5, 0) // sum
        .label("read")
        .slli(4, 3, 3)
        .add(4, 4, 1)
        .ld(6, 4)
        .add(5, 5, 6)
        .addi(3, 3, 1)
        .blt(3, 2, "read")
        .halt();
    return assembler.finish();
}

Program
pointerChaseProgram()
{
    Assembler assembler("pointer-chase");
    // A small circular linked list: node i at base + i*16, next pointer
    // in word 0, payload in word 1. Chase 200 hops accumulating payload.
    constexpr Addr base = 0x20000;
    constexpr unsigned nodes = 16;
    for (unsigned i = 0; i < nodes; ++i) {
        const Addr addr = base + i * 16;
        const Addr next = base + ((i * 7 + 3) % nodes) * 16;
        assembler.data(addr, next);
        assembler.data(addr + 8, i + 1);
    }
    assembler.li(1, base) // cursor
        .li(2, 0)         // hops
        .li(3, 200)       // bound
        .li(4, 0)         // sum
        .label("chase")
        .ld(5, 1, 8)      // payload
        .add(4, 4, 5)
        .ld(1, 1)         // dependent load: next pointer
        .addi(2, 2, 1)
        .blt(2, 3, "chase")
        .halt();
    return assembler.finish();
}

Program
dataDependentBranchProgram()
{
    Assembler assembler("data-branch");
    // Branch direction depends on loaded (pseudo-random) data, forcing
    // mispredictions and wrong-path execution.
    constexpr Addr base = 0x30000;
    std::uint64_t x = 0x12345678;
    for (unsigned i = 0; i < 128; ++i) {
        x = x * 6364136223846793005ULL + 1442695040888963407ULL;
        assembler.data(base + i * 8, (x >> 33) & 1);
    }
    assembler.li(1, base)
        .li(2, 0)  // i
        .li(3, 128)
        .li(4, 0)  // count of ones
        .li(5, 0)  // count of zeros
        .label("loop")
        .slli(6, 2, 3)
        .add(6, 6, 1)
        .ld(7, 6)
        .beq(7, 0, "zero")
        .addi(4, 4, 1)
        .jmp("next")
        .label("zero")
        .addi(5, 5, 1)
        .label("next")
        .addi(2, 2, 1)
        .blt(2, 3, "loop")
        .halt();
    return assembler.finish();
}

Program
storeLoadForwardProgram()
{
    Assembler assembler("stl-forward");
    // Repeated store->load to the same address inside a loop exercises
    // forwarding and memory-order checks.
    constexpr Addr slot = 0x40000;
    assembler.li(1, slot)
        .li(2, 0) // i
        .li(3, 50)
        .li(4, 0) // acc
        .label("loop")
        .st(2, 1)     // mem[slot] = i
        .ld(5, 1)     // forwarded
        .add(4, 4, 5)
        .addi(6, 2, 3)
        .st(6, 1, 8)  // mem[slot+8] = i+3
        .ld(7, 1, 8)
        .add(4, 4, 7)
        .addi(2, 2, 1)
        .blt(2, 3, "loop")
        .halt();
    return assembler.finish();
}

class CoreAllSchemesTest
    : public ::testing::TestWithParam<std::tuple<Scheme, bool>>
{
};

TEST_P(CoreAllSchemesTest, SimpleLoopMatchesOracle)
{
    const auto [scheme, ap] = GetParam();
    const Program program = simpleLoopProgram();
    expectMatchesOracle(program, testConfig(scheme, ap));
}

TEST_P(CoreAllSchemesTest, MemoryLoopMatchesOracle)
{
    const auto [scheme, ap] = GetParam();
    const Program program = memoryLoopProgram();
    expectMatchesOracle(program, testConfig(scheme, ap));
}

TEST_P(CoreAllSchemesTest, PointerChaseMatchesOracle)
{
    const auto [scheme, ap] = GetParam();
    const Program program = pointerChaseProgram();
    expectMatchesOracle(program, testConfig(scheme, ap));
}

TEST_P(CoreAllSchemesTest, DataDependentBranchesMatchOracle)
{
    const auto [scheme, ap] = GetParam();
    const Program program = dataDependentBranchProgram();
    expectMatchesOracle(program, testConfig(scheme, ap));
}

TEST_P(CoreAllSchemesTest, StoreLoadForwardingMatchesOracle)
{
    const auto [scheme, ap] = GetParam();
    const Program program = storeLoadForwardProgram();
    expectMatchesOracle(program, testConfig(scheme, ap));
}

INSTANTIATE_TEST_SUITE_P(
    SchemeMatrix, CoreAllSchemesTest,
    ::testing::Combine(::testing::Values(Scheme::Unsafe, Scheme::NdaP,
                                         Scheme::Stt, Scheme::Dom),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<Scheme, bool>> &info) {
        std::string name = schemeName(std::get<0>(info.param));
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name + (std::get<1>(info.param) ? "_AP" : "_NoAP");
    });

TEST(CoreTest, ReportsIpcAndCounts)
{
    const Program program = simpleLoopProgram();
    SimResult result = runProgram(program, testConfig(Scheme::Unsafe, false));
    EXPECT_GT(result.instructions, 300u);
    EXPECT_GT(result.cycles, 0u);
    EXPECT_GT(result.ipc, 0.5) << "baseline IPC suspiciously low";
    EXPECT_GT(result.committedBranches, 99u);
}

TEST(CoreTest, MaxInstructionLimitStopsRun)
{
    Assembler assembler("spin");
    assembler.label("spin").addi(1, 1, 1).jmp("spin");
    const Program program = assembler.finish();
    SimConfig config = testConfig(Scheme::Unsafe, false);
    config.maxInstructions = 500;
    StatRegistry stats;
    OooCore core(program, config, stats);
    core.run();
    EXPECT_GE(core.committed(), 500u);
    EXPECT_LT(core.committed(), 520u);
}

} // namespace
} // namespace dgsim
