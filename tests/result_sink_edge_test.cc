/**
 * @file
 * Round-trip edge cases for the result sinks' hand-rolled numeric
 * serialization — the bug class this file pins down:
 *
 *  - strtoull silently wraps "-1" to 2^64-1 and skips leading
 *    whitespace, so sign/space prefixes must be rejected up front;
 *  - %.17g prints bare `nan`/`inf`, which is not JSON — non-finite
 *    doubles serialize as quoted "NaN"/"Infinity"/"-Infinity" tokens
 *    and must read back exactly;
 *  - strtod sets ERANGE for *underflow* too, with a perfectly valid
 *    subnormal result — only overflow may be rejected.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "runner/result_sink.hh"
#include "runner/sweep.hh"

namespace dgsim::runner
{
namespace
{

JobOutcome
baseOutcome()
{
    JobOutcome outcome;
    outcome.index = 0;
    outcome.workload = "gobmk";
    outcome.suite = "SPEC2006";
    outcome.configLabel = "DoM+AP";
    outcome.ok = true;
    outcome.result.workload = outcome.workload;
    outcome.result.configLabel = outcome.configLabel;
    outcome.result.cycles = 1000;
    outcome.result.instructions = 500;
    outcome.result.ipc = 0.5;
    return outcome;
}

/** Serialize, round-trip through the JSONL reader, return the copy. */
JobOutcome
jsonlRoundTrip(const JobOutcome &outcome)
{
    std::stringstream ss;
    JsonlSink sink(ss);
    sink.consume(outcome);
    sink.finish();
    const auto loaded = readJsonl(ss);
    EXPECT_EQ(loaded.size(), 1u);
    return loaded.at(0);
}

/** Serialize, round-trip through the CSV reader, return the copy. */
JobOutcome
csvRoundTrip(const JobOutcome &outcome)
{
    std::stringstream ss;
    CsvSink sink(ss);
    sink.consume(outcome);
    sink.finish();
    const auto loaded = readCsv(ss);
    EXPECT_EQ(loaded.size(), 1u);
    return loaded.at(0);
}

/** One serialized line with a field value swapped for a hostile one. */
std::string
corruptedLine(const std::string &from, const std::string &to)
{
    std::string line = toJsonLine(baseOutcome());
    const std::size_t at = line.find(from);
    EXPECT_NE(at, std::string::npos) << "fixture drift: " << from;
    line.replace(at, from.size(), to);
    return line + "\n";
}

void
readJsonlText(const std::string &text)
{
    std::istringstream ss(text);
    readJsonl(ss);
}

using IntegerParsing = ::testing::Test;

TEST(IntegerParsing, NegativeValueIsFatalNotWrapped)
{
    // strtoull("-1") "succeeds" with 18446744073709551615; accepting it
    // would turn a corrupted record into a plausible huge counter.
    EXPECT_EXIT(readJsonlText(corruptedLine("\"cycles\":1000",
                                            "\"cycles\":\"-1\"")),
                testing::ExitedWithCode(1), "bad integer for cycles");
}

TEST(IntegerParsing, ExplicitPlusSignIsFatal)
{
    EXPECT_EXIT(readJsonlText(corruptedLine("\"cycles\":1000",
                                            "\"cycles\":\"+1\"")),
                testing::ExitedWithCode(1), "bad integer for cycles");
}

TEST(IntegerParsing, LeadingWhitespaceIsFatal)
{
    // strtoull skips isspace() prefixes; the wire format never contains
    // them, so their presence means the record is corrupt.
    EXPECT_EXIT(readJsonlText(corruptedLine("\"cycles\":1000",
                                            "\"cycles\":\" 1\"")),
                testing::ExitedWithCode(1), "bad integer for cycles");
}

TEST(IntegerParsing, OverflowIsFatal)
{
    EXPECT_EXIT(readJsonlText(corruptedLine(
                    "\"cycles\":1000", "\"cycles\":99999999999999999999999")),
                testing::ExitedWithCode(1), "bad integer for cycles");
}

TEST(IntegerParsing, CsvNegativeCounterIsFatal)
{
    JobOutcome outcome = baseOutcome();
    outcome.result.counters["core.cycles"] = 7;
    std::stringstream ss;
    CsvSink sink(ss);
    sink.consume(outcome);
    sink.finish();
    std::string text = ss.str();
    const std::size_t at = text.rfind(",7");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 2, ",-7");
    EXPECT_EXIT(
        {
            std::istringstream in(text);
            readCsv(in);
        },
        testing::ExitedWithCode(1), "bad integer");
}

TEST(NonFiniteDoubles, JsonlLinesStayValidJson)
{
    JobOutcome outcome = baseOutcome();
    outcome.result.ipc = std::numeric_limits<double>::quiet_NaN();
    const std::string line = toJsonLine(outcome);
    // %.17g would have produced `"ipc":nan` — a token no JSON parser
    // (including ours) accepts. The sink must quote it instead.
    EXPECT_EQ(line.find(":nan"), std::string::npos) << line;
    EXPECT_EQ(line.find(":inf"), std::string::npos) << line;
    EXPECT_NE(line.find("\"ipc\":\"NaN\""), std::string::npos) << line;
}

TEST(NonFiniteDoubles, JsonlRoundTrip)
{
    JobOutcome outcome = baseOutcome();
    outcome.result.ipc = std::numeric_limits<double>::quiet_NaN();
    outcome.result.dgCoverage = std::numeric_limits<double>::infinity();
    outcome.result.dgAccuracy = -std::numeric_limits<double>::infinity();

    const JobOutcome loaded = jsonlRoundTrip(outcome);
    EXPECT_TRUE(std::isnan(loaded.result.ipc));
    EXPECT_TRUE(std::isinf(loaded.result.dgCoverage));
    EXPECT_FALSE(std::signbit(loaded.result.dgCoverage));
    EXPECT_TRUE(std::isinf(loaded.result.dgAccuracy));
    EXPECT_TRUE(std::signbit(loaded.result.dgAccuracy));
}

TEST(NonFiniteDoubles, CsvRoundTrip)
{
    JobOutcome outcome = baseOutcome();
    outcome.result.ipc = std::numeric_limits<double>::quiet_NaN();
    outcome.result.dgCoverage = -std::numeric_limits<double>::infinity();

    const JobOutcome loaded = csvRoundTrip(outcome);
    EXPECT_TRUE(std::isnan(loaded.result.ipc));
    EXPECT_TRUE(std::isinf(loaded.result.dgCoverage));
    EXPECT_TRUE(std::signbit(loaded.result.dgCoverage));
}

TEST(SubnormalDoubles, RoundTripExactly)
{
    // strtod reports ERANGE for these even though the returned value is
    // exact; the reader must not treat underflow as corruption.
    const double denormMin = std::numeric_limits<double>::denorm_min();
    JobOutcome outcome = baseOutcome();
    outcome.result.ipc = denormMin;          // 5e-324
    outcome.result.dgCoverage = 1.5e-310;    // Mid-range subnormal.
    outcome.result.dgAccuracy = -denormMin;  // Signed underflow.

    const JobOutcome viaJsonl = jsonlRoundTrip(outcome);
    EXPECT_EQ(viaJsonl.result.ipc, denormMin);
    EXPECT_EQ(viaJsonl.result.dgCoverage, 1.5e-310);
    EXPECT_EQ(viaJsonl.result.dgAccuracy, -denormMin);

    const JobOutcome viaCsv = csvRoundTrip(outcome);
    EXPECT_EQ(viaCsv.result.ipc, denormMin);
    EXPECT_EQ(viaCsv.result.dgCoverage, 1.5e-310);
    EXPECT_EQ(viaCsv.result.dgAccuracy, -denormMin);
}

TEST(DoubleParsing, OverflowIsStillFatal)
{
    EXPECT_EXIT(readJsonlText(corruptedLine("\"ipc\":0.5",
                                            "\"ipc\":1e999")),
                testing::ExitedWithCode(1), "bad number for ipc");
}

TEST(DoubleParsing, WhitespaceAndPlusPrefixesAreFatal)
{
    EXPECT_EXIT(readJsonlText(corruptedLine("\"ipc\":0.5",
                                            "\"ipc\":\" 0.5\"")),
                testing::ExitedWithCode(1), "bad number for ipc");
    EXPECT_EXIT(readJsonlText(corruptedLine("\"ipc\":0.5",
                                            "\"ipc\":\"+0.5\"")),
                testing::ExitedWithCode(1), "bad number for ipc");
}

} // namespace
} // namespace dgsim::runner
