/**
 * @file
 * Fleet-telemetry tests: every emitted artifact (trace-event part
 * files, the merged trace document, Prometheus snapshots) round-trips
 * through the strict runner JSON parser; a real forked multi-worker
 * campaign produces one merged trace with a track per worker pid; a
 * killed worker's truncated part-file tail is tolerated exactly like a
 * truncated journal line; and results/journals stay byte-identical
 * with telemetry on — observability must never perturb the data.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "runner/campaign.hh"
#include "runner/coordinator.hh"
#include "runner/experiment_runner.hh"
#include "runner/journal.hh"
#include "runner/json.hh"
#include "runner/result_sink.hh"
#include "runner/sweep.hh"
#include "telemetry/metrics.hh"
#include "telemetry/report.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/trace.hh"

namespace dgsim
{
namespace
{

using runner::CampaignManifest;
using runner::CampaignReport;
using runner::CoordinatorOptions;
using runner::ExperimentRunner;
using runner::Job;
using runner::JobOutcome;
using runner::JournalWriter;
using runner::JsonParseError;
using runner::JsonParser;
using runner::JsonValue;
using runner::JsonlSink;
using runner::RunnerOptions;
using runner::claimsPath;
using runner::jobKey;
using runner::jsonMember;
using runner::manifestSpec;
using runner::runCampaign;
using runner::workerJournalPath;

std::string
tempPath(const std::string &name)
{
    return testing::TempDir() + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Identity-keyed mock (the coordinator_test idiom). */
SimResult
identityMockResult(const Job &job)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : job.workload + "/" + job.config.label()) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    SimResult result;
    result.workload = job.workload;
    result.configLabel = job.config.label();
    result.cycles = 1000 + hash % 1000;
    result.instructions = 500 + hash % 500;
    result.ipc = 0.5;
    return result;
}

/** Slowed so workers live long enough to show up as trace tracks. */
SimResult
slowMockResult(const Job &job)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    return identityMockResult(job);
}

std::string
jsonlOf(const std::vector<JobOutcome> &outcomes)
{
    std::ostringstream ss;
    JsonlSink sink(ss);
    for (const JobOutcome &outcome : outcomes)
        sink.consume(outcome);
    return ss.str();
}

std::string
freshManifest(const std::string &name, CampaignManifest &manifest)
{
    manifest = CampaignManifest{};
    manifest.name = name;
    manifest.shards = 3;
    manifest.suite = "gobmk,h264ref";
    manifest.instructions = 1'000;
    manifest.retries = 12;
    manifest.retryBaseMs = 0;
    for (const Job &job : manifestSpec(manifest).expand())
        manifest.jobKeys.push_back(jobKey(job));

    const std::string path = tempPath(name + ".manifest");
    writeManifest(path, manifest);
    for (unsigned w = 0; w < 8; ++w)
        std::remove(workerJournalPath(path, w).c_str());
    std::remove(claimsPath(path).c_str());
    return path;
}

/**
 * Every telemetry-enabling test runs through this fixture so a failed
 * assertion can never leave the process-global state enabled for the
 * next test (enable() is deliberately fatal when nested).
 */
class Telemetry : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        telemetry::finalizeTrace();
        telemetry::shutdown();
    }

    /** Enable tracing into TempDir and remember the trace path. */
    void
    enableTrace(const std::string &name)
    {
        tracePath_ = tempPath(name);
        std::remove(tracePath_.c_str());
        telemetry::TelemetryConfig config;
        config.tracePath = tracePath_;
        telemetry::enable(config);
    }

    std::string tracePath_;
};

// --- The strict JSON parser's array extension --------------------------

TEST(TelemetryJson, ParsesArraysAndMultilineDocuments)
{
    const std::string text = "{\n  \"traceEvents\": [\r\n"
                             "    {\"a\": 1},\n    {\"a\": [true, \"x\"]}\n"
                             "  ],\n  \"n\": 2\n}\n";
    const JsonValue document = JsonParser(text).parse();
    const JsonValue &list = jsonMember(document, "traceEvents");
    ASSERT_EQ(list.kind, JsonValue::Kind::Array);
    ASSERT_EQ(list.array.size(), 2u);
    EXPECT_EQ(jsonMember(list.array[0], "a").number, "1");
    const JsonValue &nested = jsonMember(list.array[1], "a");
    ASSERT_EQ(nested.kind, JsonValue::Kind::Array);
    ASSERT_EQ(nested.array.size(), 2u);
    EXPECT_TRUE(nested.array[0].boolean);
    EXPECT_EQ(nested.array[1].str, "x");

    const JsonValue empty = JsonParser("[]").parse();
    EXPECT_EQ(empty.kind, JsonValue::Kind::Array);
    EXPECT_TRUE(empty.array.empty());

    EXPECT_THROW(JsonParser("[1,]").parse(), JsonParseError);
    EXPECT_THROW(JsonParser("[1 2]").parse(), JsonParseError);
    EXPECT_THROW(JsonParser("[").parse(), JsonParseError);
}

// --- Prometheus rendering ----------------------------------------------

TEST(TelemetryMetrics, RendersPrometheusTextWithOneTypeLinePerFamily)
{
    telemetry::MetricsRegistry registry;
    registry.add("dgsim_jobs_done_total", 1.0);
    registry.add("dgsim_jobs_done_total", 2.0);
    registry.add("dgsim_shard_outstanding_total{shard=\"0\"}", 4.0);
    registry.add("dgsim_shard_outstanding_total{shard=\"1\"}", 5.0);
    registry.set("dgsim_kips", 123.5);

    EXPECT_DOUBLE_EQ(registry.value("dgsim_jobs_done_total"), 3.0);
    EXPECT_DOUBLE_EQ(registry.value("dgsim_kips"), 123.5);
    EXPECT_DOUBLE_EQ(registry.value("absent"), 0.0);

    const std::string text = registry.renderPrometheus();
    EXPECT_NE(text.find("# TYPE dgsim_jobs_done_total counter\n"
                        "dgsim_jobs_done_total 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE dgsim_kips gauge\ndgsim_kips 123.5\n"),
              std::string::npos);
    // One TYPE line covers both labeled series of the family.
    EXPECT_NE(
        text.find("# TYPE dgsim_shard_outstanding_total counter\n"
                  "dgsim_shard_outstanding_total{shard=\"0\"} 4\n"
                  "dgsim_shard_outstanding_total{shard=\"1\"} 5\n"),
        std::string::npos);
}

TEST(TelemetryMetrics, SnapshotFileIsReplacedAtomically)
{
    const std::string path = tempPath("telemetry_snapshot.prom");
    ASSERT_TRUE(telemetry::writeFileAtomic(path, "a 1\n"));
    ASSERT_TRUE(telemetry::writeFileAtomic(path, "a 2\n"));
    EXPECT_EQ(readFile(path), "a 2\n");
}

// --- Span round-trip through the strict parser -------------------------

TEST_F(Telemetry, SpansRoundTripThroughStrictParser)
{
    enableTrace("telemetry_roundtrip.json");
    {
        telemetry::ScopedSpan outer("campaign", "campaign");
        outer.arg("manifest", "m \"quoted\" \\ path");
        telemetry::ScopedSpan inner("job", "job");
        inner.arg("attempts", std::uint64_t{3});
    }
    ASSERT_EQ(telemetry::finalizeTrace(), tracePath_);

    const std::vector<telemetry::TraceEvent> events =
        telemetry::loadMergedTrace(tracePath_);
    EXPECT_EQ(telemetry::validateTraceEvents(events), "");

    std::set<std::string> names;
    for (const telemetry::TraceEvent &event : events)
        names.insert(event.name);
    EXPECT_TRUE(names.count("process_name"));
    EXPECT_TRUE(names.count("campaign"));
    EXPECT_TRUE(names.count("job"));
    for (const telemetry::TraceEvent &event : events) {
        if (event.name == "campaign") {
            EXPECT_EQ(event.args.at("manifest"), "m \"quoted\" \\ path");
        } else if (event.name == "job") {
            EXPECT_EQ(event.args.at("attempts"), "3");
        }
    }
}

TEST_F(Telemetry, NullNameSpanAndDisabledSpanEmitNothing)
{
    // Disabled: no state, nothing to write anywhere.
    {
        telemetry::ScopedSpan span("job", "job");
        span.arg("key", "k");
    }
    EXPECT_FALSE(telemetry::enabled());

    enableTrace("telemetry_nullname.json");
    {
        telemetry::ScopedSpan inert(nullptr, "phase");
        inert.arg("ignored", std::uint64_t{1});
        telemetry::ScopedSpan real("expand", "phase");
    }
    telemetry::finalizeTrace();
    const std::vector<telemetry::TraceEvent> events =
        telemetry::loadMergedTrace(tracePath_);
    std::size_t spans = 0;
    for (const telemetry::TraceEvent &event : events)
        spans += event.ph == "X";
    EXPECT_EQ(spans, 1u);
}

// --- Tolerant part-file loading (the journal-loader contract) ----------

TEST(TelemetryTrace, TruncatedFinalLineIsDroppedInteriorIsFatal)
{
    const std::string good =
        "{\"name\":\"job\",\"cat\":\"job\",\"ph\":\"X\",\"ts\":1,"
        "\"dur\":2,\"pid\":10,\"tid\":1,\"args\":{}}\n";

    const std::string tail = tempPath("telemetry_tail.events");
    {
        std::ofstream out(tail, std::ios::trunc);
        out << good << good << "{\"name\":\"job\",\"cat\":\"j";
    }
    EXPECT_EQ(telemetry::loadTraceEvents(tail).size(), 2u);

    const std::string interior = tempPath("telemetry_interior.events");
    {
        std::ofstream out(interior, std::ios::trunc);
        out << good << "{\"name\":\"job\",\"cat\":\"j\n" << good;
    }
    EXPECT_DEATH(telemetry::loadTraceEvents(interior), "corrupt");

    EXPECT_TRUE(telemetry::loadTraceEvents(tempPath("telemetry_no.events"))
                    .empty());
}

TEST(TelemetryTrace, MergeSortsByTimestampAndEmitsStrictJson)
{
    const std::string a = tempPath("telemetry_merge_a.events");
    const std::string b = tempPath("telemetry_merge_b.events");
    {
        std::ofstream out(a, std::ios::trunc);
        out << "{\"name\":\"late\",\"cat\":\"phase\",\"ph\":\"X\","
               "\"ts\":30,\"dur\":1,\"pid\":1,\"tid\":1,\"args\":{}}\n";
    }
    {
        std::ofstream out(b, std::ios::trunc);
        out << "{\"name\":\"early\",\"cat\":\"phase\",\"ph\":\"X\","
               "\"ts\":10,\"dur\":1,\"pid\":2,\"tid\":1,\"args\":{}}\n"
            << "{\"name\":\"torn\",\"cat\":\"pha"; // killed mid-write
    }
    const std::string merged = tempPath("telemetry_merge_out.json");
    EXPECT_EQ(telemetry::mergeTraceFiles({a, b, "missing.events"}, merged),
              2u);

    const std::vector<telemetry::TraceEvent> events =
        telemetry::loadMergedTrace(merged);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].name, "early");
    EXPECT_EQ(events[1].name, "late");
    EXPECT_EQ(telemetry::validateTraceEvents(events), "");
}

// --- The real thing: a forked multi-worker campaign --------------------

TEST_F(Telemetry, ForkCampaignProducesOneMergedTraceWithWorkerTracks)
{
    CampaignManifest manifest;
    const std::string path = freshManifest("telemetry_camp", manifest);
    enableTrace("telemetry_camp.trace.json");

    CoordinatorOptions options;
    options.workers = 3;
    options.progress = false;
    options.execute = slowMockResult;
    CampaignReport report;
    {
        telemetry::ScopedSpan span("campaign", "campaign");
        report = runCampaign(path, manifest, options);
    }
    ASSERT_EQ(report.ok, report.total);

    telemetry::finalizeTrace();
    const std::vector<telemetry::TraceEvent> events =
        telemetry::loadMergedTrace(tracePath_);
    EXPECT_EQ(telemetry::validateTraceEvents(events), "");

    // One named track per worker process, plus the parent's.
    std::set<std::uint64_t> workerPids;
    std::uint64_t campaignUs = 0;
    std::map<std::uint64_t, std::uint64_t> workerSpanUs;
    std::size_t jobSpans = 0;
    for (const telemetry::TraceEvent &event : events) {
        if (event.ph == "M" &&
            event.args.at("name").rfind("worker", 0) == 0)
            workerPids.insert(event.pid);
        if (event.name == "campaign")
            campaignUs = std::max(campaignUs, event.dur);
        if (event.name == "worker")
            workerSpanUs[event.pid] += event.dur;
        jobSpans += event.name == "job";
    }
    EXPECT_EQ(workerPids.size(), 3u);
    EXPECT_EQ(jobSpans, report.total);
    ASSERT_GT(campaignUs, 0u);
    ASSERT_EQ(workerSpanUs.size(), 3u);
    // Worker spans must cover the campaign span's wall-clock; the
    // slack is fork/expand/reap overhead, bounded well below half of
    // even this tiny campaign (jobs are 15ms each).
    for (const auto &entry : workerSpanUs) {
        EXPECT_TRUE(workerPids.count(entry.first));
        EXPECT_GT(static_cast<double>(entry.second),
                  0.5 * static_cast<double>(campaignUs));
    }

    // The report joins journals + trace into the straggler view.
    telemetry::ReportInputs inputs;
    for (unsigned w = 0; w < 3; ++w)
        inputs.journalPaths.push_back(workerJournalPath(path, w));
    inputs.tracePath = tracePath_;
    const std::string text = telemetry::buildCampaignReport(inputs);
    EXPECT_NE(text.find("== campaign report =="), std::string::npos);
    EXPECT_NE(text.find("pass timeline:"), std::string::npos);
    EXPECT_NE(text.find("worker 0"), std::string::npos);
    EXPECT_NE(text.find("worker 2"), std::string::npos);
}

TEST_F(Telemetry, KilledWorkerLeavesALoadableTrace)
{
    CampaignManifest manifest;
    const std::string path = freshManifest("telemetry_kill", manifest);
    const std::string marker = tempPath("telemetry_kill.marker");
    std::remove(marker.c_str());
    enableTrace("telemetry_kill.trace.json");

    CoordinatorOptions options;
    options.workers = 3;
    options.progress = false;
    options.execute = slowMockResult;
    options.killWorker = 1;
    options.killAfterJobs = 0;
    options.killOnceMarker = marker;
    CampaignReport report;
    {
        telemetry::ScopedSpan span("campaign", "campaign");
        report = runCampaign(path, manifest, options);
    }
    ASSERT_GE(report.workerDeaths, 1u);
    ASSERT_GE(report.passes, 2u);
    ASSERT_EQ(report.ok, report.total);

    // Simulate the _exit(9) landing mid-write(2) as well: a torn final
    // line in the dead worker's part file must merge like a torn
    // journal line — dropped with a warning, never fatal.
    {
        std::ofstream out(tracePath_ + ".w1.events", std::ios::app);
        out << "{\"name\":\"job\",\"cat\":\"jo";
    }

    telemetry::finalizeTrace();
    const std::vector<telemetry::TraceEvent> events =
        telemetry::loadMergedTrace(tracePath_);
    EXPECT_EQ(telemetry::validateTraceEvents(events), "");

    // The recovery pass shows up in the merged trace.
    bool recoveryPass = false;
    for (const telemetry::TraceEvent &event : events)
        recoveryPass |= event.name == "pass" && event.cat == "recovery";
    EXPECT_TRUE(recoveryPass);
}

// --- Telemetry must never perturb results ------------------------------

TEST_F(Telemetry, ResultsAndJournalsAreByteIdenticalWithTelemetryOn)
{
    CampaignManifest manifest;
    manifest.shards = 1;
    manifest.suite = "gobmk";
    manifest.instructions = 1'000;
    const std::vector<Job> jobs = manifestSpec(manifest).expand();

    auto journalRun = [&](const std::string &journal) {
        std::remove(journal.c_str());
        RunnerOptions options;
        options.threads = 2;
        options.progress = false;
        options.execute = identityMockResult;
        options.journalPath = journal;
        return ExperimentRunner(options).run(jobs);
    };

    const std::string offJournal = tempPath("telemetry_off.journal");
    const std::vector<JobOutcome> off = journalRun(offJournal);

    enableTrace("telemetry_identity.trace.json");
    const std::string onJournal = tempPath("telemetry_on.journal");
    const std::vector<JobOutcome> on = journalRun(onJournal);

    EXPECT_EQ(jsonlOf(off), jsonlOf(on));
    EXPECT_EQ(readFile(offJournal), readFile(onJournal));
}

// --- The --report aggregation ------------------------------------------

TEST(TelemetryReport, PercentilesPerWorkloadAndRetryStorms)
{
    const std::string journal = tempPath("telemetry_report.journal");
    std::remove(journal.c_str());
    {
        JournalWriter writer(journal, /*host_metrics=*/true,
                             /*sync=*/false);
        for (int i = 0; i < 4; ++i) {
            JobOutcome outcome;
            outcome.workload = i < 2 ? "alpha" : "beta";
            outcome.suite = "suite";
            outcome.configLabel = "Unsafe";
            outcome.ok = true;
            outcome.attempts = i == 3 ? 5 : 1;
            outcome.result.hostSeconds = 0.5 + 0.25 * i;
            writer.record("job-" + std::to_string(i), outcome);
        }
    }

    telemetry::ReportInputs inputs;
    inputs.journalPaths = {journal};
    const std::string text = telemetry::buildCampaignReport(inputs);
    EXPECT_NE(text.find("4 record(s): 4 ok, 0 failed; 1 retried"),
              std::string::npos);
    EXPECT_NE(text.find("p50"), std::string::npos);
    EXPECT_NE(text.find("p99"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("beta"), std::string::npos);
    EXPECT_NE(text.find("job-3"), std::string::npos);
    EXPECT_NE(text.find("5 attempt(s)"), std::string::npos);
    // No trace was given: the trace sections must simply be absent,
    // not fail the report.
    EXPECT_EQ(text.find("telemetry trace:"), std::string::npos);
}

// --- The runner heartbeat extension ------------------------------------

TEST(TelemetryHeartbeat, CarriesRetryCount)
{
    CampaignManifest manifest;
    manifest.shards = 1;
    manifest.suite = "gobmk,h264ref";
    manifest.instructions = 1'000;
    const std::vector<Job> jobs = manifestSpec(manifest).expand();

    std::FILE *stream = std::tmpfile();
    ASSERT_NE(stream, nullptr);
    RunnerOptions options;
    options.threads = 1;
    options.progress = false;
    options.execute = slowMockResult;
    options.heartbeatSec = 0.02;
    options.heartbeatStream = stream;
    ExperimentRunner(options).run(jobs);

    std::rewind(stream);
    std::string text;
    char buffer[256];
    while (std::fgets(buffer, sizeof(buffer), stream))
        text += buffer;
    std::fclose(stream);

    std::size_t done = 0, total = 0;
    ASSERT_NE(text.find("[runner] heartbeat"), std::string::npos);
    ASSERT_EQ(std::sscanf(text.c_str(), "[runner] heartbeat %zu/%zu",
                          &done, &total),
              2);
    EXPECT_EQ(total, jobs.size());
    EXPECT_NE(text.find("retried\n"), std::string::npos);
}

} // namespace
} // namespace dgsim
