/**
 * @file
 * Pipeline-trace and distribution-stats tests.
 *
 * Runs a real workload with O3PipeView tracing enabled, re-parses the
 * emitted file with the shared parser, and checks the structural
 * invariants every Konata-compatible trace must satisfy: monotonic
 * stage stamps, squashed instructions flagged with retire tick 0,
 * retired records in sequence order, and the --trace-start /
 * --trace-insts window respected. Also covers the Histogram /
 * dumpDistributions machinery and its independence from the golden
 * counter dump.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "cpu/core.hh"
#include "obs/pipe_trace.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace dgsim
{
namespace
{

SimConfig
tracedConfig(const std::string &trace_path)
{
    SimConfig config;
    config.scheme = Scheme::Stt;
    config.addressPrediction = true;
    config.maxInstructions = 20'000;
    config.maxCycles = 20'000 * 200;
    config.tracePath = trace_path;
    return config;
}

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

TEST(PipeTraceTest, TraceParsesAndValidates)
{
    const std::string path = tempPath("dgsim_pipe_trace.txt");
    SimConfig config = tracedConfig(path);

    const Program program = workloads::findWorkload("bzip2").build(0);
    std::uint64_t trace_records = 0;
    {
        // The tracer's buffered stream flushes on core destruction.
        StatRegistry stats;
        OooCore core(program, config, stats);
        core.run();
        trace_records = core.traceRecords();
    }
    ASSERT_GT(trace_records, 0u);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    const std::vector<TraceRecord> records = parseO3PipeView(in);
    EXPECT_EQ(records.size(), trace_records);

    // The full structural validation: monotonic non-zero stage stamps,
    // [squashed] flag iff retire tick 0, retired records seq-ordered.
    EXPECT_EQ(validateO3PipeView(records), "");

    // A branchy workload must shed wrong-path work into the trace, and
    // commit the bulk of it.
    std::size_t squashed = 0;
    for (const TraceRecord &record : records) {
        squashed += record.squashed;
        EXPECT_NE(record.fetch, 0u);
        if (!record.squashed) {
            // Committed instructions went through the whole pipe.
            EXPECT_NE(record.issue, 0u);
            EXPECT_NE(record.complete, 0u);
            EXPECT_GE(record.retire, record.complete);
        }
    }
    EXPECT_GT(squashed, 0u);
    EXPECT_GT(records.size() - squashed, squashed);

    // Ticks are whole cycles.
    for (const TraceRecord &record : records)
        EXPECT_EQ(record.fetch % kTicksPerCycle, 0u);

    std::remove(path.c_str());
}

TEST(PipeTraceTest, WindowGatingLimitsRecords)
{
    const std::string path = tempPath("dgsim_pipe_window.txt");
    SimConfig config = tracedConfig(path);
    config.traceStartInst = 5'000;
    config.traceMaxInsts = 700;

    const Program program = workloads::findWorkload("gobmk").build(0);
    std::uint64_t trace_records = 0;
    {
        StatRegistry stats;
        OooCore core(program, config, stats);
        core.run();
        trace_records = core.traceRecords();
    }

    // Exactly the armed window is flushed (squashed or retired).
    EXPECT_EQ(trace_records, 700u);

    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    const std::vector<TraceRecord> records = parseO3PipeView(in);
    EXPECT_EQ(records.size(), 700u);
    EXPECT_EQ(validateO3PipeView(records), "");
    std::remove(path.c_str());
}

TEST(PipeTraceTest, TracingOffLeavesNoRecords)
{
    SimConfig config;
    config.maxInstructions = 5'000;
    config.maxCycles = 5'000 * 200;
    const Program program = workloads::findWorkload("hmmer").build(0);
    StatRegistry stats;
    OooCore core(program, config, stats);
    core.run();
    EXPECT_EQ(core.traceRecords(), 0u);
}

TEST(PipeTraceTest, ValidatorRejectsBrokenRecords)
{
    TraceRecord good;
    good.seq = 1;
    good.fetch = 1000;
    good.decode = 2000;
    good.rename = 3000;
    good.dispatch = 3000;
    good.issue = 4000;
    good.complete = 5000;
    good.retire = 6000;
    good.disasm = "addi x1, x0, 1";
    EXPECT_EQ(validateO3PipeView({good}), "");

    TraceRecord backwards = good;
    backwards.issue = 2500; // Before rename.
    EXPECT_NE(validateO3PipeView({backwards}), "");

    TraceRecord unflagged = good;
    unflagged.retire = 0; // Squashed but not annotated.
    unflagged.squashed = true;
    EXPECT_NE(validateO3PipeView({unflagged}), "");

    TraceRecord out_of_order = good;
    out_of_order.seq = 1; // Same seq retired twice.
    EXPECT_NE(validateO3PipeView({good, out_of_order}), "");
}

// ---------------------------------------------------------------------
// Distribution stats.
// ---------------------------------------------------------------------

TEST(DistributionStatsTest, HistogramBasics)
{
    Histogram hist(/*bucket_width=*/4, /*num_buckets=*/4);
    EXPECT_EQ(hist.count(), 0u);

    hist.sample(0);
    hist.sample(3);  // Bucket [0,4)
    hist.sample(4);  // Bucket [4,8)
    hist.sample(100); // Clamped into the last bucket.
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_EQ(hist.min(), 0u);
    EXPECT_EQ(hist.max(), 100u);
    EXPECT_DOUBLE_EQ(hist.mean(), (0.0 + 3.0 + 4.0 + 100.0) / 4.0);

    std::ostringstream os;
    hist.dump(os, "test.dist");
    const std::string text = os.str();
    EXPECT_NE(text.find("test.dist.samples 4"), std::string::npos);
    EXPECT_NE(text.find("test.dist.bucket[0,4) 2"), std::string::npos);
    EXPECT_NE(text.find("test.dist.bucket[4,8) 1"), std::string::npos);
    // Clamp lands in the open-ended last bucket.
    EXPECT_NE(text.find("test.dist.bucket[12,inf) 1"), std::string::npos);
    // Empty buckets are omitted.
    EXPECT_EQ(text.find("bucket[8,12)"), std::string::npos);

    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
}

TEST(DistributionStatsTest, SeparateFromCounterDump)
{
    StatRegistry stats;
    Counter &counter = stats.counter("a.counter");
    ++counter;
    Histogram &hist = stats.histogram("a.dist", 1, 8);
    hist.sample(2);

    // The golden-compared counter dump must not mention distributions.
    std::ostringstream counters;
    stats.dump(counters);
    EXPECT_NE(counters.str().find("a.counter 1"), std::string::npos);
    EXPECT_EQ(counters.str().find("a.dist"), std::string::npos);

    // And the distribution section carries only distributions.
    std::ostringstream dists;
    stats.dumpDistributions(dists);
    EXPECT_EQ(dists.str().find("a.counter"), std::string::npos);
    EXPECT_NE(dists.str().find("a.dist.samples 1"), std::string::npos);

    // Same-name re-registration returns the same histogram.
    EXPECT_EQ(&stats.histogram("a.dist", 1, 8), &hist);
    EXPECT_EQ(stats.histogramCount(), 1u);

    // resetAll clears distributions along with counters.
    stats.resetAll();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(counter.value(), 0u);
}

TEST(DistributionStatsTest, SimulationPopulatesDistributions)
{
    SimConfig config;
    config.scheme = Scheme::Stt;
    config.addressPrediction = true;
    config.maxInstructions = 20'000;
    config.maxCycles = 20'000 * 200;
    const Program program = workloads::findWorkload("bzip2").build(0);
    const SimResult result = runProgram(program, config);

    EXPECT_FALSE(result.distributions.empty());
    EXPECT_NE(result.distributions.find("core.loadToUseDist.samples"),
              std::string::npos);
    EXPECT_NE(result.distributions.find("core.shadowReleaseDelayDist"),
              std::string::npos);
    EXPECT_NE(result.distributions.find("core.robOccupancyDist"),
              std::string::npos);
    EXPECT_NE(result.distributions.find("mem.missLatencyDist"),
              std::string::npos);
    EXPECT_NE(result.distributions.find("dg.confidenceDist"),
              std::string::npos);
    EXPECT_GT(result.hostSeconds, 0.0);
    EXPECT_GT(result.kips(), 0.0);
}

} // namespace
} // namespace dgsim
