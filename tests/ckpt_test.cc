/**
 * @file
 * Checkpoint/restore + sampled-simulation subsystem tests:
 *   - MemoryImage round-trips through the on-disk format exactly,
 *     including sparse pages, written-then-zeroed words and far words
 *     beyond the direct-page range;
 *   - corrupted/truncated/version-skewed checkpoints die loudly;
 *   - warm-structure restores reject geometry mismatches;
 *   - the determinism contract: save -> restore -> continue produces a
 *     byte-identical stats dump to the uninterrupted run with the same
 *     switch point (the property the CI smoke also enforces end to
 *     end through dgrun);
 *   - sampling windows account instructions exactly and keep detailed
 *     stats separated from fast-forwarded work.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "ckpt/checkpoint.hh"
#include "ckpt/ffwd.hh"
#include "ckpt/sampler.hh"
#include "common/stats.hh"
#include "predictor/branch_predictor.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace dgsim
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "ckpt_test_" + name;
}

/** A checkpoint with only architectural content (no warm state). */
ckpt::Checkpoint
archOnlyCheckpoint()
{
    ckpt::Checkpoint checkpoint;
    checkpoint.workload = "synthetic";
    checkpoint.instret = 12345;
    checkpoint.pc = 42;
    for (std::size_t i = 0; i < checkpoint.regs.size(); ++i)
        checkpoint.regs[i] = i * 0x0101;
    return checkpoint;
}

TEST(CkptMemoryImage, RoundTripPreservesSparseAndZeroedAndFarWords)
{
    ckpt::Checkpoint checkpoint = archOnlyCheckpoint();
    MemoryImage &memory = checkpoint.memory;
    // Sparse pages: two words pages apart.
    memory.write(0x1000, 7);
    memory.write(0x900000, 9);
    // Written-then-zeroed: must survive as an *explicit* zero word —
    // the detailed core's STL forwarding treats "written zero" and
    // "never written" identically, but the footprint must not shrink.
    memory.write(0x2000, 1234);
    memory.write(0x2000, 0);
    // Far words beyond the direct-page range (>= 8 GiB).
    memory.write(1ull << 34, 0xfeed);
    memory.write((1ull << 34) + 8, 0);

    const std::uint64_t digest_before = memory.digest();
    const auto words_before = memory.words();
    ASSERT_EQ(words_before.size(), 5u);

    const std::string text = ckpt::serialize(checkpoint);
    const ckpt::Checkpoint loaded = ckpt::deserialize(text, "test");

    EXPECT_EQ(loaded.workload, checkpoint.workload);
    EXPECT_EQ(loaded.instret, checkpoint.instret);
    EXPECT_EQ(loaded.pc, checkpoint.pc);
    EXPECT_EQ(loaded.regs, checkpoint.regs);
    EXPECT_EQ(loaded.memory.words(), words_before);
    EXPECT_EQ(loaded.memory.digest(), digest_before);
    EXPECT_EQ(loaded.memory.read(0x2000), 0u);
    EXPECT_EQ(loaded.memory.read(1ull << 34), 0xfeedu);
}

TEST(CkptMemoryImage, DigestSeesZeroedWordsAndFarWords)
{
    MemoryImage a;
    MemoryImage b;
    a.write(0x100, 5);
    b.write(0x100, 5);
    EXPECT_EQ(a.digest(), b.digest());
    // A written-then-zeroed word changes the footprint, so digests of
    // "wrote zero" and "never wrote" must differ.
    a.write(0x200, 1);
    a.write(0x200, 0);
    EXPECT_NE(a.digest(), b.digest());
    // Far words participate too.
    MemoryImage c;
    c.write(0x100, 5);
    c.write(1ull << 35, 77);
    EXPECT_NE(c.digest(), b.digest());
}

TEST(CkptFormatDeathTest, TruncatedCheckpointDies)
{
    const std::string text = ckpt::serialize(archOnlyCheckpoint());
    const std::string truncated = text.substr(0, text.size() / 2);
    EXPECT_EXIT(ckpt::deserialize(truncated, "trunc"),
                ::testing::ExitedWithCode(1),
                "corrupt or truncated checkpoint");
}

TEST(CkptFormatDeathTest, BitFlippedCheckpointDies)
{
    std::string text = ckpt::serialize(archOnlyCheckpoint());
    const std::size_t pos = text.find("12345");
    ASSERT_NE(pos, std::string::npos);
    text[pos] = '9';
    EXPECT_EXIT(ckpt::deserialize(text, "flip"),
                ::testing::ExitedWithCode(1), "digest mismatch");
}

TEST(CkptFormatDeathTest, FutureFormatVersionDies)
{
    // Re-stamp the version and re-digest so only the version check can
    // object: format evolution must be explicit, never silent.
    std::string text = ckpt::serialize(archOnlyCheckpoint());
    text.replace(0, std::string("dgsim-ckpt 1").size(), "dgsim-ckpt 2");
    const std::size_t digest_pos = text.rfind("digest ");
    text.resize(digest_pos);
    // Rebuild the digest line the same way serialize() does.
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ULL;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "digest %016llx\n",
                  static_cast<unsigned long long>(hash));
    text += buf;
    EXPECT_EXIT(ckpt::deserialize(text, "future"),
                ::testing::ExitedWithCode(1), "format version");
}

TEST(CkptFormatDeathTest, MissingFileDies)
{
    EXPECT_EXIT(ckpt::loadCheckpoint(tempPath("does_not_exist.ckpt")),
                ::testing::ExitedWithCode(1), "cannot open checkpoint");
}

TEST(CkptGeometryDeathTest, BranchPredictorGeometryMismatchDies)
{
    StatRegistry stats_a, stats_b;
    BranchPredictor small(/*history_bits=*/8, /*btb_entries=*/512, stats_a);
    BranchPredictor big(/*history_bits=*/12, /*btb_entries=*/4096, stats_b);
    const BranchPredictor::State state = small.exportState();
    EXPECT_EXIT(big.restoreState(state), ::testing::ExitedWithCode(1),
                "geometry mismatch");
}

TEST(CkptGeometryDeathTest, RestoringIntoDifferentCacheGeometryDies)
{
    const workloads::WorkloadDef &def = workloads::findWorkload("gobmk");
    const Program program = def.build(/*iterations=*/0);
    SimConfig config;
    ckpt::FfwdEngine engine(program, config);
    engine.ffwd(2'000);
    const ckpt::Checkpoint checkpoint = engine.makeCheckpoint();

    SimConfig shrunk = config;
    shrunk.l1d.sizeBytes = config.l1d.sizeBytes / 2;
    ckpt::FfwdEngine other(program, shrunk);
    EXPECT_EXIT(other.restore(checkpoint), ::testing::ExitedWithCode(1),
                "geometry mismatch");
}

TEST(CkptWarming, FastForwardPopulatesWarmStructures)
{
    const workloads::WorkloadDef &def = workloads::findWorkload("bzip2");
    const Program program = def.build(/*iterations=*/0);
    SimConfig config;
    ckpt::FfwdEngine engine(program, config);
    ASSERT_EQ(engine.ffwd(20'000), 20'000u);
    const ckpt::Checkpoint checkpoint = engine.makeCheckpoint();

    std::size_t warm_lines = 0;
    for (const auto &set : checkpoint.hierarchy.l1.sets)
        warm_lines += set.size();
    EXPECT_GT(warm_lines, 16u) << "fast-forward must warm the L1";

    std::size_t trained_counters = 0;
    for (const std::uint8_t counter : checkpoint.branch.counters)
        trained_counters += counter != 1; // 1 = reset value
    EXPECT_GT(trained_counters, 0u)
        << "fast-forward must train the branch predictor";

    std::size_t stride_entries = 0;
    for (const StrideEntry &entry : checkpoint.stride.entries)
        stride_entries += entry.valid;
    EXPECT_GT(stride_entries, 0u)
        << "fast-forward must train the stride table";

    // Canonical form: warm state never carries timestamps or inflight
    // bits, so two engines reaching the same point by different paths
    // export identical checkpoints.
    for (const StrideEntry &entry : checkpoint.stride.entries) {
        EXPECT_EQ(entry.lruStamp, 0u);
        EXPECT_EQ(entry.inflight, 0u);
    }
}

TEST(CkptDeterminism, SaveRestoreContinueMatchesUninterruptedByteForByte)
{
    const workloads::WorkloadDef &def = workloads::findWorkload("bzip2");
    const Program program = def.build(/*iterations=*/0);
    const std::string path = tempPath("bzip2.ckpt");
    std::remove(path.c_str());

    SimConfig base;
    base.scheme = Scheme::Stt;
    base.addressPrediction = true;
    base.maxInstructions = 3'000;
    base.maxCycles = 3'000'000;

    // Run A: uninterrupted — ffwd 20k, one detailed window.
    SimConfig uninterrupted = base;
    uninterrupted.ffwdInstructions = 20'000;
    std::string dump_a;
    const SimResult result_a = runProgram(program, uninterrupted, &dump_a);

    // Run B: same shape, saving a checkpoint at instruction 10k.
    SimConfig saving = uninterrupted;
    saving.ckptSavePath = path;
    saving.ckptSaveInst = 10'000;
    std::string dump_b;
    runProgram(program, saving, &dump_b);

    // Run C: restore at 10k, fast-forward the remaining 10k, continue.
    SimConfig resumed = base;
    resumed.ffwdInstructions = 10'000;
    resumed.ckptRestorePath = path;
    std::string dump_c;
    const SimResult result_c = runProgram(program, resumed, &dump_c);

    EXPECT_FALSE(dump_a.empty());
    EXPECT_EQ(dump_a, dump_b)
        << "saving a checkpoint must not perturb the run";
    EXPECT_EQ(dump_a, dump_c)
        << "restore + continue must be byte-identical to uninterrupted";
    EXPECT_EQ(result_a.cacheDigest, result_c.cacheDigest);
    EXPECT_EQ(result_a.counters.at("ffwd.instructions"), 20'000u);
    EXPECT_EQ(result_c.counters.at("ffwd.instructions"), 20'000u)
        << "restored instructions count as fast-forwarded";
    std::remove(path.c_str());
}

TEST(CkptDeterminism, CheckpointFileRoundTripsThroughDisk)
{
    const workloads::WorkloadDef &def = workloads::findWorkload("mcf");
    const Program program = def.build(/*iterations=*/0);
    SimConfig config;
    ckpt::FfwdEngine engine(program, config);
    engine.ffwd(5'000);
    const ckpt::Checkpoint checkpoint = engine.makeCheckpoint();

    const std::string path = tempPath("mcf.ckpt");
    ckpt::saveCheckpoint(checkpoint, path);
    const ckpt::Checkpoint loaded = ckpt::loadCheckpoint(path);
    EXPECT_EQ(ckpt::serialize(checkpoint), ckpt::serialize(loaded));
    std::remove(path.c_str());
}

TEST(CkptSampling, WindowAccountingSeparatesDetailedFromFastForwarded)
{
    const workloads::WorkloadDef &def = workloads::findWorkload("gobmk");
    const Program program = def.build(/*iterations=*/0);

    SimConfig config;
    config.maxInstructions = 20'000; // total: ffwd + detailed
    config.sampleInterval = 5'000;
    config.sampleDetail = 1'000;
    config.maxCycles = 3'000'000;

    std::string dump;
    const SimResult result = runProgram(program, config, &dump);

    // 4 periods of (4k skip + 1k detail): detailed stats cover exactly
    // the windows, fast-forwarded work only the ffwd.* counters.
    EXPECT_EQ(result.instructions, 4'000u);
    EXPECT_EQ(result.counters.at("ffwd.windows"), 4u);
    EXPECT_EQ(result.counters.at("ffwd.instructions"), 16'000u);
    EXPECT_EQ(result.counters.at("ffwd.switchPoint"), 4'000u);
    EXPECT_EQ(result.counters.at("core.committedInstrs"), 4'000u);
    EXPECT_NE(dump.find("ffwd.windows 4"), std::string::npos);
}

TEST(CkptSampling, SamplingIsDeterministicAcrossRepeats)
{
    const workloads::WorkloadDef &def = workloads::findWorkload("omnetpp");
    const Program program = def.build(/*iterations=*/0);

    SimConfig config;
    config.scheme = Scheme::Dom;
    config.addressPrediction = true;
    config.maxInstructions = 30'000;
    config.sampleInterval = 10'000;
    config.sampleDetail = 2'000;
    config.maxCycles = 10'000'000;

    std::string first, second;
    runProgram(program, config, &first);
    runProgram(program, config, &second);
    EXPECT_FALSE(first.empty());
    EXPECT_EQ(first, second);
}

TEST(CkptSampling, HaltDuringFastForwardEndsTheRunCleanly)
{
    // A finite kernel much shorter than the requested fast-forward:
    // the driver must stop at HALT without opening further windows.
    const workloads::WorkloadDef &def = workloads::findWorkload("gobmk");
    const Program program = def.build(/*iterations=*/50);

    SimConfig config;
    config.maxInstructions = 1'000'000;
    config.sampleInterval = 500'000;
    config.sampleDetail = 1'000;
    config.maxCycles = 10'000'000;

    const SimResult result = runProgram(program, config);
    EXPECT_EQ(result.counters.at("ffwd.windows"), 0u);
    EXPECT_GT(result.counters.at("ffwd.instructions"), 0u);
    EXPECT_EQ(result.instructions, 0u)
        << "no detailed window ran, so no detailed instructions";
}

TEST(CkptSamplerDeathTest, InvalidShapesDie)
{
    const workloads::WorkloadDef &def = workloads::findWorkload("gobmk");
    const Program program = def.build(/*iterations=*/0);

    SimConfig bad_detail;
    bad_detail.maxInstructions = 10'000;
    bad_detail.sampleInterval = 1'000;
    bad_detail.sampleDetail = 2'000;
    EXPECT_EXIT(runProgram(program, bad_detail),
                ::testing::ExitedWithCode(1), "DETAIL <= INTERVAL");

    SimConfig no_budget;
    no_budget.sampleInterval = 1'000;
    no_budget.sampleDetail = 100;
    EXPECT_EXIT(runProgram(program, no_budget),
                ::testing::ExitedWithCode(1), "total instruction budget");

    SimConfig unreachable_save;
    unreachable_save.ffwdInstructions = 1'000;
    unreachable_save.maxInstructions = 500;
    unreachable_save.maxCycles = 1'000'000;
    unreachable_save.ckptSavePath = tempPath("unreachable.ckpt");
    unreachable_save.ckptSaveInst = 5'000;
    EXPECT_EXIT(runProgram(program, unreachable_save),
                ::testing::ExitedWithCode(1), "never reached");
}

} // namespace
} // namespace dgsim
